# Empty dependencies file for rememberr_cli_lib.
# This may be replaced when dependencies are built.
