file(REMOVE_RECURSE
  "CMakeFiles/rememberr_cli_lib.dir/commands.cc.o"
  "CMakeFiles/rememberr_cli_lib.dir/commands.cc.o.d"
  "librememberr_cli_lib.a"
  "librememberr_cli_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rememberr_cli_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
