file(REMOVE_RECURSE
  "librememberr_cli_lib.a"
)
