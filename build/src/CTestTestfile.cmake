# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("text")
subdirs("taxonomy")
subdirs("model")
subdirs("document")
subdirs("corpus")
subdirs("dedup")
subdirs("classify")
subdirs("db")
subdirs("analysis")
subdirs("guidance")
subdirs("report")
subdirs("core")
subdirs("cli")
