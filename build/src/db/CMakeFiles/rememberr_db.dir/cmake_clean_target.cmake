file(REMOVE_RECURSE
  "librememberr_db.a"
)
