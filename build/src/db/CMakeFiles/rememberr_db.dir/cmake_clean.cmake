file(REMOVE_RECURSE
  "CMakeFiles/rememberr_db.dir/database.cc.o"
  "CMakeFiles/rememberr_db.dir/database.cc.o.d"
  "CMakeFiles/rememberr_db.dir/query.cc.o"
  "CMakeFiles/rememberr_db.dir/query.cc.o.d"
  "librememberr_db.a"
  "librememberr_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rememberr_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
