# Empty compiler generated dependencies file for rememberr_db.
# This may be replaced when dependencies are built.
