file(REMOVE_RECURSE
  "CMakeFiles/rememberr_classify.dir/engine.cc.o"
  "CMakeFiles/rememberr_classify.dir/engine.cc.o.d"
  "CMakeFiles/rememberr_classify.dir/foureyes.cc.o"
  "CMakeFiles/rememberr_classify.dir/foureyes.cc.o.d"
  "CMakeFiles/rememberr_classify.dir/highlight.cc.o"
  "CMakeFiles/rememberr_classify.dir/highlight.cc.o.d"
  "CMakeFiles/rememberr_classify.dir/rules.cc.o"
  "CMakeFiles/rememberr_classify.dir/rules.cc.o.d"
  "librememberr_classify.a"
  "librememberr_classify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rememberr_classify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
