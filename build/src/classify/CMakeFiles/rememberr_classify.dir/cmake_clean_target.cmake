file(REMOVE_RECURSE
  "librememberr_classify.a"
)
