# Empty dependencies file for rememberr_classify.
# This may be replaced when dependencies are built.
