# Empty compiler generated dependencies file for rememberr_util.
# This may be replaced when dependencies are built.
