file(REMOVE_RECURSE
  "librememberr_util.a"
)
