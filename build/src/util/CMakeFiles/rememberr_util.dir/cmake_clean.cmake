file(REMOVE_RECURSE
  "CMakeFiles/rememberr_util.dir/csv.cc.o"
  "CMakeFiles/rememberr_util.dir/csv.cc.o.d"
  "CMakeFiles/rememberr_util.dir/date.cc.o"
  "CMakeFiles/rememberr_util.dir/date.cc.o.d"
  "CMakeFiles/rememberr_util.dir/json.cc.o"
  "CMakeFiles/rememberr_util.dir/json.cc.o.d"
  "CMakeFiles/rememberr_util.dir/logging.cc.o"
  "CMakeFiles/rememberr_util.dir/logging.cc.o.d"
  "CMakeFiles/rememberr_util.dir/rng.cc.o"
  "CMakeFiles/rememberr_util.dir/rng.cc.o.d"
  "CMakeFiles/rememberr_util.dir/strings.cc.o"
  "CMakeFiles/rememberr_util.dir/strings.cc.o.d"
  "librememberr_util.a"
  "librememberr_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rememberr_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
