file(REMOVE_RECURSE
  "CMakeFiles/rememberr_dedup.dir/dedup.cc.o"
  "CMakeFiles/rememberr_dedup.dir/dedup.cc.o.d"
  "librememberr_dedup.a"
  "librememberr_dedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rememberr_dedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
