# Empty compiler generated dependencies file for rememberr_dedup.
# This may be replaced when dependencies are built.
