file(REMOVE_RECURSE
  "librememberr_dedup.a"
)
