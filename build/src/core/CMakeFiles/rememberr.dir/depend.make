# Empty dependencies file for rememberr.
# This may be replaced when dependencies are built.
