file(REMOVE_RECURSE
  "CMakeFiles/rememberr.dir/pipeline.cc.o"
  "CMakeFiles/rememberr.dir/pipeline.cc.o.d"
  "librememberr.a"
  "librememberr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rememberr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
