file(REMOVE_RECURSE
  "librememberr.a"
)
