# Empty dependencies file for rememberr_report.
# This may be replaced when dependencies are built.
