file(REMOVE_RECURSE
  "librememberr_report.a"
)
