file(REMOVE_RECURSE
  "CMakeFiles/rememberr_report.dir/chart.cc.o"
  "CMakeFiles/rememberr_report.dir/chart.cc.o.d"
  "CMakeFiles/rememberr_report.dir/svg.cc.o"
  "CMakeFiles/rememberr_report.dir/svg.cc.o.d"
  "CMakeFiles/rememberr_report.dir/table.cc.o"
  "CMakeFiles/rememberr_report.dir/table.cc.o.d"
  "librememberr_report.a"
  "librememberr_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rememberr_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
