file(REMOVE_RECURSE
  "librememberr_document.a"
)
