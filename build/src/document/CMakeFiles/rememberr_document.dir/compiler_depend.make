# Empty compiler generated dependencies file for rememberr_document.
# This may be replaced when dependencies are built.
