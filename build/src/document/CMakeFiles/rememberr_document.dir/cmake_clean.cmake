file(REMOVE_RECURSE
  "CMakeFiles/rememberr_document.dir/format.cc.o"
  "CMakeFiles/rememberr_document.dir/format.cc.o.d"
  "CMakeFiles/rememberr_document.dir/lint.cc.o"
  "CMakeFiles/rememberr_document.dir/lint.cc.o.d"
  "librememberr_document.a"
  "librememberr_document.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rememberr_document.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
