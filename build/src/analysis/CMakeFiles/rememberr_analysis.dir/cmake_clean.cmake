file(REMOVE_RECURSE
  "CMakeFiles/rememberr_analysis.dir/correlation.cc.o"
  "CMakeFiles/rememberr_analysis.dir/correlation.cc.o.d"
  "CMakeFiles/rememberr_analysis.dir/criticality.cc.o"
  "CMakeFiles/rememberr_analysis.dir/criticality.cc.o.d"
  "CMakeFiles/rememberr_analysis.dir/evolution.cc.o"
  "CMakeFiles/rememberr_analysis.dir/evolution.cc.o.d"
  "CMakeFiles/rememberr_analysis.dir/frequency.cc.o"
  "CMakeFiles/rememberr_analysis.dir/frequency.cc.o.d"
  "CMakeFiles/rememberr_analysis.dir/heredity.cc.o"
  "CMakeFiles/rememberr_analysis.dir/heredity.cc.o.d"
  "CMakeFiles/rememberr_analysis.dir/msr.cc.o"
  "CMakeFiles/rememberr_analysis.dir/msr.cc.o.d"
  "CMakeFiles/rememberr_analysis.dir/stats.cc.o"
  "CMakeFiles/rememberr_analysis.dir/stats.cc.o.d"
  "CMakeFiles/rememberr_analysis.dir/timeline.cc.o"
  "CMakeFiles/rememberr_analysis.dir/timeline.cc.o.d"
  "CMakeFiles/rememberr_analysis.dir/vendorcmp.cc.o"
  "CMakeFiles/rememberr_analysis.dir/vendorcmp.cc.o.d"
  "CMakeFiles/rememberr_analysis.dir/workfix.cc.o"
  "CMakeFiles/rememberr_analysis.dir/workfix.cc.o.d"
  "librememberr_analysis.a"
  "librememberr_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rememberr_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
