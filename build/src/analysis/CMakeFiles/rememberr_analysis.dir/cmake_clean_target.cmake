file(REMOVE_RECURSE
  "librememberr_analysis.a"
)
