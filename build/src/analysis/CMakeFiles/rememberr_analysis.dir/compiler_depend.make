# Empty compiler generated dependencies file for rememberr_analysis.
# This may be replaced when dependencies are built.
