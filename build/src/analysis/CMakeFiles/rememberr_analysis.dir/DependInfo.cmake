
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/correlation.cc" "src/analysis/CMakeFiles/rememberr_analysis.dir/correlation.cc.o" "gcc" "src/analysis/CMakeFiles/rememberr_analysis.dir/correlation.cc.o.d"
  "/root/repo/src/analysis/criticality.cc" "src/analysis/CMakeFiles/rememberr_analysis.dir/criticality.cc.o" "gcc" "src/analysis/CMakeFiles/rememberr_analysis.dir/criticality.cc.o.d"
  "/root/repo/src/analysis/evolution.cc" "src/analysis/CMakeFiles/rememberr_analysis.dir/evolution.cc.o" "gcc" "src/analysis/CMakeFiles/rememberr_analysis.dir/evolution.cc.o.d"
  "/root/repo/src/analysis/frequency.cc" "src/analysis/CMakeFiles/rememberr_analysis.dir/frequency.cc.o" "gcc" "src/analysis/CMakeFiles/rememberr_analysis.dir/frequency.cc.o.d"
  "/root/repo/src/analysis/heredity.cc" "src/analysis/CMakeFiles/rememberr_analysis.dir/heredity.cc.o" "gcc" "src/analysis/CMakeFiles/rememberr_analysis.dir/heredity.cc.o.d"
  "/root/repo/src/analysis/msr.cc" "src/analysis/CMakeFiles/rememberr_analysis.dir/msr.cc.o" "gcc" "src/analysis/CMakeFiles/rememberr_analysis.dir/msr.cc.o.d"
  "/root/repo/src/analysis/stats.cc" "src/analysis/CMakeFiles/rememberr_analysis.dir/stats.cc.o" "gcc" "src/analysis/CMakeFiles/rememberr_analysis.dir/stats.cc.o.d"
  "/root/repo/src/analysis/timeline.cc" "src/analysis/CMakeFiles/rememberr_analysis.dir/timeline.cc.o" "gcc" "src/analysis/CMakeFiles/rememberr_analysis.dir/timeline.cc.o.d"
  "/root/repo/src/analysis/vendorcmp.cc" "src/analysis/CMakeFiles/rememberr_analysis.dir/vendorcmp.cc.o" "gcc" "src/analysis/CMakeFiles/rememberr_analysis.dir/vendorcmp.cc.o.d"
  "/root/repo/src/analysis/workfix.cc" "src/analysis/CMakeFiles/rememberr_analysis.dir/workfix.cc.o" "gcc" "src/analysis/CMakeFiles/rememberr_analysis.dir/workfix.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/db/CMakeFiles/rememberr_db.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/rememberr_model.dir/DependInfo.cmake"
  "/root/repo/build/src/taxonomy/CMakeFiles/rememberr_taxonomy.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/rememberr_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rememberr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/classify/CMakeFiles/rememberr_classify.dir/DependInfo.cmake"
  "/root/repo/build/src/dedup/CMakeFiles/rememberr_dedup.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/rememberr_corpus.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
