file(REMOVE_RECURSE
  "CMakeFiles/rememberr_model.dir/erratum.cc.o"
  "CMakeFiles/rememberr_model.dir/erratum.cc.o.d"
  "CMakeFiles/rememberr_model.dir/types.cc.o"
  "CMakeFiles/rememberr_model.dir/types.cc.o.d"
  "librememberr_model.a"
  "librememberr_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rememberr_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
