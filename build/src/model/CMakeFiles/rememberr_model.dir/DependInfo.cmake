
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/erratum.cc" "src/model/CMakeFiles/rememberr_model.dir/erratum.cc.o" "gcc" "src/model/CMakeFiles/rememberr_model.dir/erratum.cc.o.d"
  "/root/repo/src/model/types.cc" "src/model/CMakeFiles/rememberr_model.dir/types.cc.o" "gcc" "src/model/CMakeFiles/rememberr_model.dir/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rememberr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
