# Empty dependencies file for rememberr_model.
# This may be replaced when dependencies are built.
