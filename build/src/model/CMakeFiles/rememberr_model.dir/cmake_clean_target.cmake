file(REMOVE_RECURSE
  "librememberr_model.a"
)
