# Empty compiler generated dependencies file for rememberr_text.
# This may be replaced when dependencies are built.
