file(REMOVE_RECURSE
  "CMakeFiles/rememberr_text.dir/ngram_index.cc.o"
  "CMakeFiles/rememberr_text.dir/ngram_index.cc.o.d"
  "CMakeFiles/rememberr_text.dir/regex.cc.o"
  "CMakeFiles/rememberr_text.dir/regex.cc.o.d"
  "CMakeFiles/rememberr_text.dir/similarity.cc.o"
  "CMakeFiles/rememberr_text.dir/similarity.cc.o.d"
  "CMakeFiles/rememberr_text.dir/tokenize.cc.o"
  "CMakeFiles/rememberr_text.dir/tokenize.cc.o.d"
  "librememberr_text.a"
  "librememberr_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rememberr_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
