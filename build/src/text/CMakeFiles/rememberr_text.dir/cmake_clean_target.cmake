file(REMOVE_RECURSE
  "librememberr_text.a"
)
