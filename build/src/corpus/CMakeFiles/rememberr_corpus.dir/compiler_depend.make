# Empty compiler generated dependencies file for rememberr_corpus.
# This may be replaced when dependencies are built.
