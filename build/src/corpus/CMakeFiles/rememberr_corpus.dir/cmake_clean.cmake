file(REMOVE_RECURSE
  "CMakeFiles/rememberr_corpus.dir/calibration.cc.o"
  "CMakeFiles/rememberr_corpus.dir/calibration.cc.o.d"
  "CMakeFiles/rememberr_corpus.dir/corpus.cc.o"
  "CMakeFiles/rememberr_corpus.dir/corpus.cc.o.d"
  "CMakeFiles/rememberr_corpus.dir/generator.cc.o"
  "CMakeFiles/rememberr_corpus.dir/generator.cc.o.d"
  "CMakeFiles/rememberr_corpus.dir/phrasebank.cc.o"
  "CMakeFiles/rememberr_corpus.dir/phrasebank.cc.o.d"
  "librememberr_corpus.a"
  "librememberr_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rememberr_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
