file(REMOVE_RECURSE
  "librememberr_corpus.a"
)
