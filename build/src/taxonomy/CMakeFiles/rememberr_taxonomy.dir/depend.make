# Empty dependencies file for rememberr_taxonomy.
# This may be replaced when dependencies are built.
