file(REMOVE_RECURSE
  "CMakeFiles/rememberr_taxonomy.dir/taxonomy.cc.o"
  "CMakeFiles/rememberr_taxonomy.dir/taxonomy.cc.o.d"
  "librememberr_taxonomy.a"
  "librememberr_taxonomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rememberr_taxonomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
