file(REMOVE_RECURSE
  "librememberr_taxonomy.a"
)
