# Empty compiler generated dependencies file for rememberr_guidance.
# This may be replaced when dependencies are built.
