file(REMOVE_RECURSE
  "CMakeFiles/rememberr_guidance.dir/guidance.cc.o"
  "CMakeFiles/rememberr_guidance.dir/guidance.cc.o.d"
  "librememberr_guidance.a"
  "librememberr_guidance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rememberr_guidance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
