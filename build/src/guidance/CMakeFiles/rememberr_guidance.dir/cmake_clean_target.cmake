file(REMOVE_RECURSE
  "librememberr_guidance.a"
)
