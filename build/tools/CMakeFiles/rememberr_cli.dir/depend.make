# Empty dependencies file for rememberr_cli.
# This may be replaced when dependencies are built.
