file(REMOVE_RECURSE
  "CMakeFiles/rememberr_cli.dir/rememberr_cli.cc.o"
  "CMakeFiles/rememberr_cli.dir/rememberr_cli.cc.o.d"
  "rememberr_cli"
  "rememberr_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rememberr_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
