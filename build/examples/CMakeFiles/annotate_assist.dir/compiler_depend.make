# Empty compiler generated dependencies file for annotate_assist.
# This may be replaced when dependencies are built.
