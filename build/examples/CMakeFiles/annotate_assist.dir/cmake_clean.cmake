file(REMOVE_RECURSE
  "CMakeFiles/annotate_assist.dir/annotate_assist.cpp.o"
  "CMakeFiles/annotate_assist.dir/annotate_assist.cpp.o.d"
  "annotate_assist"
  "annotate_assist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/annotate_assist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
