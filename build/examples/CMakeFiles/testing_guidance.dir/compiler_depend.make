# Empty compiler generated dependencies file for testing_guidance.
# This may be replaced when dependencies are built.
