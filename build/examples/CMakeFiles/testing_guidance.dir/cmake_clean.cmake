file(REMOVE_RECURSE
  "CMakeFiles/testing_guidance.dir/testing_guidance.cpp.o"
  "CMakeFiles/testing_guidance.dir/testing_guidance.cpp.o.d"
  "testing_guidance"
  "testing_guidance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/testing_guidance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
