# Empty compiler generated dependencies file for errata_lint.
# This may be replaced when dependencies are built.
