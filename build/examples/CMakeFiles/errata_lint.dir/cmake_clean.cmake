file(REMOVE_RECURSE
  "CMakeFiles/errata_lint.dir/errata_lint.cpp.o"
  "CMakeFiles/errata_lint.dir/errata_lint.cpp.o.d"
  "errata_lint"
  "errata_lint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/errata_lint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
