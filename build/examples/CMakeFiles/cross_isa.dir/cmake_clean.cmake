file(REMOVE_RECURSE
  "CMakeFiles/cross_isa.dir/cross_isa.cpp.o"
  "CMakeFiles/cross_isa.dir/cross_isa.cpp.o.d"
  "cross_isa"
  "cross_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
