# Empty dependencies file for cross_isa.
# This may be replaced when dependencies are built.
