# Empty dependencies file for bench_fig5_latent.
# This may be replaced when dependencies are built.
