file(REMOVE_RECURSE
  "../bench/bench_fig5_latent"
  "../bench/bench_fig5_latent.pdb"
  "CMakeFiles/bench_fig5_latent.dir/bench_fig5_latent.cc.o"
  "CMakeFiles/bench_fig5_latent.dir/bench_fig5_latent.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_latent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
