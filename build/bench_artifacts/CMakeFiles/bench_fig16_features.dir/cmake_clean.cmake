file(REMOVE_RECURSE
  "../bench/bench_fig16_features"
  "../bench/bench_fig16_features.pdb"
  "CMakeFiles/bench_fig16_features.dir/bench_fig16_features.cc.o"
  "CMakeFiles/bench_fig16_features.dir/bench_fig16_features.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
