# Empty dependencies file for bench_fig3_heredity.
# This may be replaced when dependencies are built.
