file(REMOVE_RECURSE
  "../bench/bench_fig3_heredity"
  "../bench/bench_fig3_heredity.pdb"
  "CMakeFiles/bench_fig3_heredity.dir/bench_fig3_heredity.cc.o"
  "CMakeFiles/bench_fig3_heredity.dir/bench_fig3_heredity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_heredity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
