file(REMOVE_RECURSE
  "../bench/bench_fig19_msrs"
  "../bench/bench_fig19_msrs.pdb"
  "CMakeFiles/bench_fig19_msrs.dir/bench_fig19_msrs.cc.o"
  "CMakeFiles/bench_fig19_msrs.dir/bench_fig19_msrs.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_msrs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
