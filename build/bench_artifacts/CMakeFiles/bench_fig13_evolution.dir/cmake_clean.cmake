file(REMOVE_RECURSE
  "../bench/bench_fig13_evolution"
  "../bench/bench_fig13_evolution.pdb"
  "CMakeFiles/bench_fig13_evolution.dir/bench_fig13_evolution.cc.o"
  "CMakeFiles/bench_fig13_evolution.dir/bench_fig13_evolution.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_evolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
