file(REMOVE_RECURSE
  "../bench/bench_fig12_correlation"
  "../bench/bench_fig12_correlation.pdb"
  "CMakeFiles/bench_fig12_correlation.dir/bench_fig12_correlation.cc.o"
  "CMakeFiles/bench_fig12_correlation.dir/bench_fig12_correlation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
