# Empty dependencies file for bench_fig17_contexts.
# This may be replaced when dependencies are built.
