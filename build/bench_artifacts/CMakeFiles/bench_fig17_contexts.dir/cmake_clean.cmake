file(REMOVE_RECURSE
  "../bench/bench_fig17_contexts"
  "../bench/bench_fig17_contexts.pdb"
  "CMakeFiles/bench_fig17_contexts.dir/bench_fig17_contexts.cc.o"
  "CMakeFiles/bench_fig17_contexts.dir/bench_fig17_contexts.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_contexts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
