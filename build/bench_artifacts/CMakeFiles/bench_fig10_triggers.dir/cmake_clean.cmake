file(REMOVE_RECURSE
  "../bench/bench_fig10_triggers"
  "../bench/bench_fig10_triggers.pdb"
  "CMakeFiles/bench_fig10_triggers.dir/bench_fig10_triggers.cc.o"
  "CMakeFiles/bench_fig10_triggers.dir/bench_fig10_triggers.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_triggers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
