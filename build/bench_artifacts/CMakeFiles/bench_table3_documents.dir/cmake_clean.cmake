file(REMOVE_RECURSE
  "../bench/bench_table3_documents"
  "../bench/bench_table3_documents.pdb"
  "CMakeFiles/bench_table3_documents.dir/bench_table3_documents.cc.o"
  "CMakeFiles/bench_table3_documents.dir/bench_table3_documents.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_documents.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
