
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table3_documents.cc" "bench_artifacts/CMakeFiles/bench_table3_documents.dir/bench_table3_documents.cc.o" "gcc" "bench_artifacts/CMakeFiles/bench_table3_documents.dir/bench_table3_documents.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench_artifacts/CMakeFiles/rememberr_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rememberr.dir/DependInfo.cmake"
  "/root/repo/build/src/document/CMakeFiles/rememberr_document.dir/DependInfo.cmake"
  "/root/repo/build/src/guidance/CMakeFiles/rememberr_guidance.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/rememberr_report.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/rememberr_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/rememberr_db.dir/DependInfo.cmake"
  "/root/repo/build/src/classify/CMakeFiles/rememberr_classify.dir/DependInfo.cmake"
  "/root/repo/build/src/dedup/CMakeFiles/rememberr_dedup.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/rememberr_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/rememberr_model.dir/DependInfo.cmake"
  "/root/repo/build/src/taxonomy/CMakeFiles/rememberr_taxonomy.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/rememberr_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rememberr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
