file(REMOVE_RECURSE
  "../bench/bench_observation_plan"
  "../bench/bench_observation_plan.pdb"
  "CMakeFiles/bench_observation_plan.dir/bench_observation_plan.cc.o"
  "CMakeFiles/bench_observation_plan.dir/bench_observation_plan.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_observation_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
