# Empty compiler generated dependencies file for bench_observation_plan.
# This may be replaced when dependencies are built.
