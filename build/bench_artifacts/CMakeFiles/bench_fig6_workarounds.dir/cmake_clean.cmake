file(REMOVE_RECURSE
  "../bench/bench_fig6_workarounds"
  "../bench/bench_fig6_workarounds.pdb"
  "CMakeFiles/bench_fig6_workarounds.dir/bench_fig6_workarounds.cc.o"
  "CMakeFiles/bench_fig6_workarounds.dir/bench_fig6_workarounds.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_workarounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
