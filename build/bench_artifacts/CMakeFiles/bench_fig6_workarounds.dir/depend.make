# Empty dependencies file for bench_fig6_workarounds.
# This may be replaced when dependencies are built.
