file(REMOVE_RECURSE
  "../bench/bench_fig14_vendor_classes"
  "../bench/bench_fig14_vendor_classes.pdb"
  "CMakeFiles/bench_fig14_vendor_classes.dir/bench_fig14_vendor_classes.cc.o"
  "CMakeFiles/bench_fig14_vendor_classes.dir/bench_fig14_vendor_classes.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_vendor_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
