# Empty compiler generated dependencies file for bench_fig14_vendor_classes.
# This may be replaced when dependencies are built.
