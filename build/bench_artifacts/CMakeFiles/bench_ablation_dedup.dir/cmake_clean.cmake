file(REMOVE_RECURSE
  "../bench/bench_ablation_dedup"
  "../bench/bench_ablation_dedup.pdb"
  "CMakeFiles/bench_ablation_dedup.dir/bench_ablation_dedup.cc.o"
  "CMakeFiles/bench_ablation_dedup.dir/bench_ablation_dedup.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
