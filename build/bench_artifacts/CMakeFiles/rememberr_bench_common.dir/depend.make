# Empty dependencies file for rememberr_bench_common.
# This may be replaced when dependencies are built.
