file(REMOVE_RECURSE
  "librememberr_bench_common.a"
)
