file(REMOVE_RECURSE
  "CMakeFiles/rememberr_bench_common.dir/common.cc.o"
  "CMakeFiles/rememberr_bench_common.dir/common.cc.o.d"
  "librememberr_bench_common.a"
  "librememberr_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rememberr_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
