file(REMOVE_RECURSE
  "../bench/bench_table7_format"
  "../bench/bench_table7_format.pdb"
  "CMakeFiles/bench_table7_format.dir/bench_table7_format.cc.o"
  "CMakeFiles/bench_table7_format.dir/bench_table7_format.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_format.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
