# Empty dependencies file for bench_table7_format.
# This may be replaced when dependencies are built.
