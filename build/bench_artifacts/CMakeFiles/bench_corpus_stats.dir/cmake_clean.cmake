file(REMOVE_RECURSE
  "../bench/bench_corpus_stats"
  "../bench/bench_corpus_stats.pdb"
  "CMakeFiles/bench_corpus_stats.dir/bench_corpus_stats.cc.o"
  "CMakeFiles/bench_corpus_stats.dir/bench_corpus_stats.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_corpus_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
