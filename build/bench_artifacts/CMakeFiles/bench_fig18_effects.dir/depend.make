# Empty dependencies file for bench_fig18_effects.
# This may be replaced when dependencies are built.
