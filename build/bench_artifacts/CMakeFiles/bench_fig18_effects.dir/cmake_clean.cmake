file(REMOVE_RECURSE
  "../bench/bench_fig18_effects"
  "../bench/bench_fig18_effects.pdb"
  "CMakeFiles/bench_fig18_effects.dir/bench_fig18_effects.cc.o"
  "CMakeFiles/bench_fig18_effects.dir/bench_fig18_effects.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_effects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
