# Empty compiler generated dependencies file for bench_fig11_trigger_count.
# This may be replaced when dependencies are built.
