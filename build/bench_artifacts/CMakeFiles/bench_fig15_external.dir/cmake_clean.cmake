file(REMOVE_RECURSE
  "../bench/bench_fig15_external"
  "../bench/bench_fig15_external.pdb"
  "CMakeFiles/bench_fig15_external.dir/bench_fig15_external.cc.o"
  "CMakeFiles/bench_fig15_external.dir/bench_fig15_external.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_external.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
