# Empty compiler generated dependencies file for bench_fig7_fixes.
# This may be replaced when dependencies are built.
