file(REMOVE_RECURSE
  "../bench/bench_fig7_fixes"
  "../bench/bench_fig7_fixes.pdb"
  "CMakeFiles/bench_fig7_fixes.dir/bench_fig7_fixes.cc.o"
  "CMakeFiles/bench_fig7_fixes.dir/bench_fig7_fixes.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_fixes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
