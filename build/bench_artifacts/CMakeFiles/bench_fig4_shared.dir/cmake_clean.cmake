file(REMOVE_RECURSE
  "../bench/bench_fig4_shared"
  "../bench/bench_fig4_shared.pdb"
  "CMakeFiles/bench_fig4_shared.dir/bench_fig4_shared.cc.o"
  "CMakeFiles/bench_fig4_shared.dir/bench_fig4_shared.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_shared.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
