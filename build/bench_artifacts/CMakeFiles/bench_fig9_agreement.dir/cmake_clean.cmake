file(REMOVE_RECURSE
  "../bench/bench_fig9_agreement"
  "../bench/bench_fig9_agreement.pdb"
  "CMakeFiles/bench_fig9_agreement.dir/bench_fig9_agreement.cc.o"
  "CMakeFiles/bench_fig9_agreement.dir/bench_fig9_agreement.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_agreement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
