# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_classify[1]_include.cmake")
include("/root/repo/build/tests/test_cli[1]_include.cmake")
include("/root/repo/build/tests/test_corpus[1]_include.cmake")
include("/root/repo/build/tests/test_corpus_sweep[1]_include.cmake")
include("/root/repo/build/tests/test_criticality[1]_include.cmake")
include("/root/repo/build/tests/test_csv[1]_include.cmake")
include("/root/repo/build/tests/test_date[1]_include.cmake")
include("/root/repo/build/tests/test_db[1]_include.cmake")
include("/root/repo/build/tests/test_dedup[1]_include.cmake")
include("/root/repo/build/tests/test_document[1]_include.cmake")
include("/root/repo/build/tests/test_guidance[1]_include.cmake")
include("/root/repo/build/tests/test_lint[1]_include.cmake")
include("/root/repo/build/tests/test_json[1]_include.cmake")
include("/root/repo/build/tests/test_model[1]_include.cmake")
include("/root/repo/build/tests/test_parser_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_regex[1]_include.cmake")
include("/root/repo/build/tests/test_regex_differential[1]_include.cmake")
include("/root/repo/build/tests/test_report[1]_include.cmake")
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_smoke[1]_include.cmake")
include("/root/repo/build/tests/test_strings[1]_include.cmake")
include("/root/repo/build/tests/test_taxonomy[1]_include.cmake")
include("/root/repo/build/tests/test_text[1]_include.cmake")
