file(REMOVE_RECURSE
  "CMakeFiles/test_corpus_sweep.dir/test_corpus_sweep.cc.o"
  "CMakeFiles/test_corpus_sweep.dir/test_corpus_sweep.cc.o.d"
  "test_corpus_sweep"
  "test_corpus_sweep.pdb"
  "test_corpus_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_corpus_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
