# Empty dependencies file for test_corpus_sweep.
# This may be replaced when dependencies are built.
