file(REMOVE_RECURSE
  "CMakeFiles/test_regex.dir/test_regex.cc.o"
  "CMakeFiles/test_regex.dir/test_regex.cc.o.d"
  "test_regex"
  "test_regex.pdb"
  "test_regex[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_regex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
