file(REMOVE_RECURSE
  "CMakeFiles/test_taxonomy.dir/test_taxonomy.cc.o"
  "CMakeFiles/test_taxonomy.dir/test_taxonomy.cc.o.d"
  "test_taxonomy"
  "test_taxonomy.pdb"
  "test_taxonomy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_taxonomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
