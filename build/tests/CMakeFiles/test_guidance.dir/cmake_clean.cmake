file(REMOVE_RECURSE
  "CMakeFiles/test_guidance.dir/test_guidance.cc.o"
  "CMakeFiles/test_guidance.dir/test_guidance.cc.o.d"
  "test_guidance"
  "test_guidance.pdb"
  "test_guidance[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_guidance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
