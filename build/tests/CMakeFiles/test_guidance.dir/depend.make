# Empty dependencies file for test_guidance.
# This may be replaced when dependencies are built.
