# Empty dependencies file for test_document.
# This may be replaced when dependencies are built.
