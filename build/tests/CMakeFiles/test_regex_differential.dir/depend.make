# Empty dependencies file for test_regex_differential.
# This may be replaced when dependencies are built.
