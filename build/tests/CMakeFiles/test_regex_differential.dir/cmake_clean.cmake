file(REMOVE_RECURSE
  "CMakeFiles/test_regex_differential.dir/test_regex_differential.cc.o"
  "CMakeFiles/test_regex_differential.dir/test_regex_differential.cc.o.d"
  "test_regex_differential"
  "test_regex_differential.pdb"
  "test_regex_differential[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_regex_differential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
