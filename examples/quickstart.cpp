/**
 * @file
 * Quickstart: run the pipeline, print headline numbers, query the
 * database and show one entry in the proposed Table VII format.
 */

#include <cstdio>

#include "core/rememberr.hh"

int
main()
{
    using namespace rememberr;

    std::printf("RemembERR quickstart\n");
    std::printf("====================\n\n");
    std::printf("Running the full pipeline "
                "(generate -> parse -> dedup -> classify)...\n\n");

    PipelineResult result = runPipeline();
    const Database &db = result.database;

    HeadlineStats stats = headlineStats(result.groundTruth);
    std::printf("Collected errata: %zu (Intel %zu, AMD %zu)\n",
                stats.totalRows, stats.intelRows, stats.amdRows);
    std::printf("Unique errata:    %zu (Intel %zu, AMD %zu)\n\n",
                stats.totalUnique, stats.intelUnique,
                stats.amdUnique);

    // A custom query: virtualization-context bugs that hang the CPU
    // and have no workaround.
    const Taxonomy &taxonomy = Taxonomy::instance();
    CategoryId vmg = *taxonomy.parseCategory("Ctx_PRV_vmg");
    CategoryId hng = *taxonomy.parseCategory("Eff_HNG_hng");

    auto matches = Query(db)
                       .hasCategory(vmg)
                       .hasCategory(hng)
                       .workaround(WorkaroundClass::None)
                       .run();
    std::printf("VM-guest hangs without workaround: %zu\n\n",
                matches.size());

    if (!matches.empty()) {
        std::printf("First match in the proposed erratum format "
                    "(Table VII):\n\n%s\n",
                    renderProposedFormat(*matches.front()).c_str());
    }

    // Top triggers, the paper's headline insight (Observation O7).
    std::printf("Top 5 triggers across both vendors:\n");
    for (const CategoryFrequency &freq :
         categoryFrequencies(db, Axis::Trigger, 5)) {
        std::printf("  %-14s %4zu (Intel %zu, AMD %zu)\n",
                    freq.code.c_str(), freq.total(),
                    freq.intelCount, freq.amdCount);
    }
    return 0;
}
