/**
 * @file
 * Example: derive a directed design-testing campaign from the
 * database (the Section VI use case).
 *
 * Triggers are conjunctive and observations disjunctive, so an
 * effective campaign (a) drives the trigger *combinations* that
 * historically uncovered bugs and (b) watches the cheapest
 * observation points. This example prints a ranked campaign plan:
 * which stimulus pairs to exercise, in which contexts, and where to
 * look for deviations.
 */

#include <cstdio>

#include "core/rememberr.hh"

int
main()
{
    using namespace rememberr;

    setLogQuiet(true);
    std::printf("Building the RemembERR database...\n\n");
    PipelineResult result = runPipeline();
    const Database &db = result.groundTruth;
    const Taxonomy &taxonomy = Taxonomy::instance();

    std::printf("=== Directed testing campaign derived from %zu "
                "unique errata ===\n\n",
                db.entries().size());

    // 1. Stimulus pairs: the strongest trigger correlations.
    std::printf("1. Combined stimuli to exercise (Figure 12: "
                "conjunctive triggers):\n");
    TriggerCorrelation correlation = triggerCorrelation(db);
    for (const auto &pair : correlation.topPairs(6)) {
        const AbstractCategory &a = taxonomy.categoryById(pair.a);
        const AbstractCategory &b = taxonomy.categoryById(pair.b);
        std::printf("   - %s + %s (%zu past bugs)\n",
                    a.description.c_str(), b.description.c_str(),
                    pair.count);
    }

    // 2. Contexts to set up.
    std::printf("\n2. Contexts to run the stimuli in (Figure 17: "
                "disjunctive, any suffices per bug):\n");
    for (const CategoryFrequency &freq :
         categoryFrequencies(db, Axis::Context, 4)) {
        std::printf("   - %s (%zu past bugs)\n",
                    taxonomy.categoryById(freq.id)
                        .description.c_str(),
                    freq.total());
    }

    // 3. Observation points.
    std::printf("\n3. Observation points, cheapest first "
                "(Figure 18/19: one deviation suffices):\n");
    for (const CategoryFrequency &freq :
         categoryFrequencies(db, Axis::Effect, 4)) {
        std::printf("   - watch for %s (%zu past bugs)\n",
                    taxonomy.categoryById(freq.id)
                        .description.c_str(),
                    freq.total());
    }
    std::printf("   MSRs worth polling:\n");
    auto msrs = msrFrequencies(db);
    for (std::size_t i = 0; i < msrs.size() && i < 4; ++i) {
        std::printf("   - %s (witnesses %zu past bugs)\n",
                    msrs[i].family.c_str(), msrs[i].total());
    }

    // 4. The paper's headline recommendation, recomputed.
    std::printf("\n4. Headline recommendation (Observation O7):\n");
    CategoryId wrg = *taxonomy.parseCategory("Trg_CFG_wrg");
    CategoryId tht = *taxonomy.parseCategory("Trg_POW_tht");
    CategoryId pwc = *taxonomy.parseCategory("Trg_POW_pwc");
    std::size_t msrPower =
        Query(db)
            .hasCategory(wrg)
            .where([&](const DbEntry &entry) {
                return entry.triggers.contains(tht) ||
                       entry.triggers.contains(pwc);
            })
            .count();
    std::printf("   %zu unique errata require MSR-determined "
                "configurations combined with power level\n"
                "   transitions or throttling — testing tools must "
                "exert power transitions under\n"
                "   MSR-determined configurations while operating "
                "custom features.\n",
                msrPower);

    // 5. What a PCIe-focused campaign must add (Section III's
    //    motivating example).
    CategoryId pci = *taxonomy.parseCategory("Trg_EXT_pci");
    CategoryId rst = *taxonomy.parseCategory("Trg_EXT_rst");
    std::size_t pciBugs = Query(db).hasCategory(pci).count();
    std::size_t pciNeedsReset = Query(db)
                                    .hasCategory(pci)
                                    .hasCategory(rst)
                                    .count();
    std::size_t pciNeedsPower =
        Query(db)
            .hasCategory(pci)
            .where([&](const DbEntry &entry) {
                return entry.triggers.contains(pwc) ||
                       entry.triggers.contains(tht);
            })
            .count();
    std::printf("\n5. PCIe example (Section III): of %zu "
                "PCIe-trigger bugs, %zu additionally require a\n"
                "   reset signal and %zu require power-level "
                "changes — connecting a PCIe device alone\n"
                "   is not enough.\n",
                pciBugs, pciNeedsReset, pciNeedsPower);
    return 0;
}
