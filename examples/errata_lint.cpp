/**
 * @file
 * Example: lint specification-update documents for "errata in
 * errata".
 *
 * Section IV-A documents that the vendor documents contain errors
 * themselves. This example renders every generated document to the
 * text format, re-parses it (as a consumer of real documents would)
 * and reports every defect the linter finds, then compares the
 * totals with the paper's counts.
 *
 * Usage: errata_lint [path-to-document.txt]
 *   With a path, lints that document instead of the built-in corpus.
 */

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/rememberr.hh"

namespace {

using namespace rememberr;

int
lintOneFile(const char *path)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "cannot open %s\n", path);
        return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    auto parsed = parseDocument(buffer.str());
    if (!parsed) {
        std::fprintf(stderr, "parse error in %s: %s\n", path,
                     parsed.error().toString().c_str());
        return 1;
    }
    auto findings = lintDocument(parsed.value());
    std::printf("%s: %zu finding(s)\n", path, findings.size());
    for (const LintFinding &finding : findings) {
        std::printf("  [%s] %s\n",
                    std::string(defectKindName(finding.kind))
                        .c_str(),
                    finding.detail.c_str());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace rememberr;

    if (argc > 1)
        return lintOneFile(argv[1]);

    setLogQuiet(true);
    std::printf("Generating the corpus and linting all 28 "
                "documents...\n\n");
    Corpus corpus = generateDefaultCorpus();

    std::vector<std::vector<LintFinding>> perDoc;
    for (const ErrataDocument &document : corpus.documents) {
        // Go through the text format, as a real consumer would.
        auto parsed = parseDocument(renderDocument(document));
        if (!parsed) {
            std::fprintf(stderr, "%s failed to parse: %s\n",
                         document.design.name.c_str(),
                         parsed.error().toString().c_str());
            return 1;
        }
        auto findings = lintDocument(parsed.value());
        if (!findings.empty()) {
            std::printf("%s (%s):\n", document.design.name.c_str(),
                        document.design.reference.c_str());
            for (const LintFinding &finding : findings)
                std::printf("  [%s] %s\n",
                            std::string(
                                defectKindName(finding.kind))
                                .c_str(),
                            finding.detail.c_str());
        }
        perDoc.push_back(std::move(findings));
    }

    LintSummary summary = summarizeFindings(perDoc);
    std::printf("\nTotals vs the paper (Section IV-A):\n");
    std::printf("  duplicate revision claims: %d (paper: 8)\n",
                summary.duplicateRevisionClaims());
    std::printf("  missing from notes:        %d (paper: 12)\n",
                summary.missingFromNotes());
    std::printf("  reused names:              %d (paper: 1)\n",
                summary.reusedNames());
    std::printf("  missing/duplicate fields:  %d (paper: 7)\n",
                summary.missingFields() + summary.duplicateFields());
    std::printf("  wrong MSR numbers:         %d (paper: 3)\n",
                summary.wrongMsrNumbers());
    std::printf("  intra-document duplicates: %d (paper: 11)\n",
                summary.intraDocDuplicates());
    return 0;
}
