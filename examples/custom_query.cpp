/**
 * @file
 * Example: the artifact appendix's "custom script" — how to write
 * your own analyses against the database.
 *
 * The question answered here: are security-sensitive bugs (those
 * reachable from a virtual machine guest with no workaround)
 * getting fixed more often than other bugs? Also demonstrates
 * exporting query results as JSON and CSV for downstream tooling.
 */

#include <cstdio>
#include <fstream>

#include "core/rememberr.hh"

int
main()
{
    using namespace rememberr;

    setLogQuiet(true);
    PipelineResult result = runPipeline();
    const Database &db = result.groundTruth;
    const Taxonomy &taxonomy = Taxonomy::instance();

    // ---- A custom research question ------------------------------
    CategoryId vmg = *taxonomy.parseCategory("Ctx_PRV_vmg");

    auto guestReachable = Query(db).hasCategory(vmg);
    std::size_t total = guestReachable.count();
    std::size_t fixedCount =
        Query(db).hasCategory(vmg).status(FixStatus::Fixed).count();

    std::size_t otherTotal = db.entries().size() - total;
    std::size_t otherFixed =
        Query(db).status(FixStatus::Fixed).count() - fixedCount;

    std::printf("Custom query: are VM-guest-reachable bugs fixed "
                "more often?\n\n");
    std::printf("  guest-reachable bugs: %zu, fixed: %zu (%s)\n",
                total, fixedCount,
                strings::formatPercent(
                    static_cast<double>(fixedCount) /
                    static_cast<double>(total))
                    .c_str());
    std::printf("  all other bugs:       %zu, fixed: %zu (%s)\n\n",
                otherTotal, otherFixed,
                strings::formatPercent(
                    static_cast<double>(otherFixed) /
                    static_cast<double>(otherTotal))
                    .c_str());

    // ---- Breakdown of the guest-reachable bugs by effect class ----
    std::printf("Effects of guest-reachable bugs by class:\n");
    for (const auto &[cls, count] :
         Query(db).hasCategory(vmg).countByClass(Axis::Effect)) {
        std::printf("  %-8s %zu\n",
                    taxonomy.classById(cls).code.c_str(), count);
    }

    // ---- How long do they survive across generations? -------------
    std::size_t longLived = Query(db)
                                .hasCategory(vmg)
                                .occurrenceCountAtLeast(3)
                                .count();
    std::printf("\nguest-reachable bugs present in 3+ documents: "
                "%zu\n",
                longLived);

    // ---- Export for downstream tooling -----------------------------
    {
        JsonValue json = JsonValue::makeArray();
        for (const DbEntry *entry : guestReachable.run()) {
            JsonValue item = JsonValue::makeObject();
            item["key"] = static_cast<std::int64_t>(entry->key);
            item["title"] = entry->title;
            item["fixed"] = entry->status == FixStatus::Fixed;
            json.append(std::move(item));
        }
        std::ofstream out("vm_guest_bugs.json");
        out << json.dumpPretty() << "\n";
        std::printf("\nwrote vm_guest_bugs.json (%zu entries)\n",
                    json.size());
    }
    {
        std::ofstream out("rememberr_db.csv");
        out << db.toCsv();
        std::printf("wrote rememberr_db.csv (%zu unique errata)\n",
                    db.entries().size());
    }
    return 0;
}
