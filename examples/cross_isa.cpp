/**
 * @file
 * Example: cross-ISA extensibility.
 *
 * Section V-A: "RemembERR is a cross-ISA database as typically, only
 * items at the *concrete* level may be ISA-specific. Therefore,
 * RemembERR can naturally be extended with errata from designs
 * implementing other ISAs (e.g., POWER, ARM)."
 *
 * This example takes three hand-written errata in the style of a
 * RISC-V vendor's errata sheet and runs them through the
 * software-assisted classification: the *abstract* categories apply
 * unchanged even though the concrete ISA details differ.
 */

#include <cstdio>

#include "core/rememberr.hh"

namespace {

rememberr::Erratum
makeErratum(const char *id, const char *title, const char *desc,
            const char *impl)
{
    rememberr::Erratum erratum;
    erratum.localId = id;
    erratum.title = title;
    erratum.description = desc;
    erratum.implications = impl;
    erratum.workaroundText = "None identified.";
    return erratum;
}

} // namespace

int
main()
{
    using namespace rememberr;

    setLogQuiet(true);
    const Taxonomy &taxonomy = Taxonomy::instance();

    std::vector<Erratum> riscvErrata;
    riscvErrata.push_back(makeErratum(
        "RV001", "Hart May Hang During Power State Transition",
        "If a hart resumes from the C6 power state while a debug "
        "breakpoint matches on the first fetched instruction, the "
        "hart may hang.",
        "The system may stop responding."));
    riscvErrata.push_back(makeErratum(
        "RV002",
        "Page Table Walk May Report a Spurious Fault",
        "When the hardware page table walker performs a page table "
        "walk concurrently with a TLB invalidation executing on "
        "another hart, a spurious page fault may be reported.",
        "Software may observe unexpected page faults."));
    riscvErrata.push_back(makeErratum(
        "RV003",
        "CSR Value May Be Incorrect After Machine-Level Trap",
        "If software writes a model specific register equivalent "
        "(a machine-level CSR) with a reserved encoding while "
        "thermal throttling engages, the register may hold an "
        "incorrect value afterwards.",
        "Machine-mode software relying on the CSR contents may "
        "not operate properly."));

    std::printf("Classifying RISC-V-style errata with the "
                "cross-ISA scheme\n");
    std::printf("(only the concrete level is ISA-specific; the "
                "abstract categories transfer)\n\n");

    for (const Erratum &erratum : riscvErrata) {
        EngineResult result = classifyErratum(erratum);
        std::printf("%s: %s\n", erratum.localId.c_str(),
                    erratum.title.c_str());
        std::printf("  auto-accepted:\n");
        for (CategoryId id : result.autoYes.toVector()) {
            const AbstractCategory &cat =
                taxonomy.categoryById(id);
            std::printf("    %-14s %s\n", cat.code.c_str(),
                        cat.description.c_str());
        }
        std::printf("  manual decisions: %zu\n\n",
                    result.manual.size());
    }

    std::printf("The same trigger conjunctions the x86 study "
                "recommends (debug features + power\n"
                "transitions, walks + invalidations, MSR writes + "
                "throttling) appear verbatim —\n"
                "the testing guidance transfers to the new ISA "
                "without reclassification.\n");
    return 0;
}
