/**
 * @file
 * Example: the computer-assisted annotation workflow of
 * Section V-A, on one erratum.
 *
 * Shows the three-way split per category (auto-yes / auto-no /
 * manual) and the syntax-highlighted text a human annotator would
 * see for the manual decisions.
 */

#include <cstdio>

#include "core/rememberr.hh"

int
main()
{
    using namespace rememberr;

    setLogQuiet(true);

    // The Table I erratum, transcribed.
    Erratum erratum;
    erratum.localId = "ADL001";
    erratum.title = "X87 FDP Value May be Saved Incorrectly";
    erratum.description =
        "Execution of the FSAVE, FNSAVE, FSTENV, or FNSTENV "
        "instructions in real-address mode or virtual-8086 mode "
        "may save an incorrect value for the x87 FDP (FPU data "
        "pointer). This erratum does not apply if the last "
        "non-control x87 instruction had an unmasked exception.";
    erratum.implications =
        "Software operating in real-address mode or virtual-8086 "
        "mode that depends on the FDP value for non-control x87 "
        "instructions without unmasked exceptions may not operate "
        "properly.";
    erratum.workaroundText = "None identified.";

    std::printf("Classifying the Table I erratum (%s)...\n\n",
                erratum.localId.c_str());

    EngineResult result = classifyErratum(erratum);
    const Taxonomy &taxonomy = Taxonomy::instance();

    std::printf("auto-accepted categories:\n");
    for (CategoryId id : result.autoYes.toVector())
        std::printf("  %s — %s\n",
                    taxonomy.categoryById(id).code.c_str(),
                    taxonomy.categoryById(id).description.c_str());

    std::printf("\nmanual decisions required (%zu):\n",
                result.manual.size());
    for (CategoryId id : result.manual)
        std::printf("  %s — %s\n",
                    taxonomy.categoryById(id).code.c_str(),
                    taxonomy.categoryById(id).description.c_str());

    std::size_t autoNo = 60 - result.autoYes.size() -
                         result.manual.size();
    std::printf("\nauto-rejected (irrelevant) categories: %zu of "
                "60\n",
                autoNo);

    // Show the highlighting an annotator would see for the first
    // manual decision.
    if (!result.manual.empty()) {
        CategoryId id = result.manual.front();
        std::string body = erratumBodyText(erratum);
        auto spans = highlightCategory(body, id);
        std::printf("\nhighlighted text for the %s decision "
                    "(ANSI):\n\n%s\n",
                    taxonomy.categoryById(id).code.c_str(),
                    renderAnsi(body, spans).c_str());
    }
    return 0;
}
