/**
 * @file
 * The rememberr command-line tool. All logic lives in
 * src/cli/commands.cc so it can be unit-tested; this file only
 * forwards argv.
 */

#include <iostream>
#include <string>
#include <vector>

#include "cli/commands.hh"

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    return rememberr::cli::runCli(args, std::cout, std::cerr);
}
