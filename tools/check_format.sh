#!/bin/sh
# Source-hygiene smoke check (a clang-format stand-in that needs no
# tooling): no tab indentation, no trailing whitespace, and a final
# newline in every C++ source file. Run from the repository root,
# or via the `check_format` CMake target.
#
# Exit status: 0 when clean, 1 with one line per offending file.

set -u

fail=0
tab=$(printf '\t')

files=$(find src tests bench tools examples \
    \( -name '*.cc' -o -name '*.hh' \) 2>/dev/null | sort)

for f in $files; do
    if grep -n "^${tab}" "$f" > /dev/null; then
        echo "check_format: $f: tab indentation"
        fail=1
    fi
    if grep -n "[ ${tab}]\$" "$f" > /dev/null; then
        echo "check_format: $f: trailing whitespace"
        fail=1
    fi
    if [ -s "$f" ] && [ "$(tail -c 1 "$f" | wc -l)" -eq 0 ]; then
        echo "check_format: $f: missing final newline"
        fail=1
    fi
done

if [ "$fail" -eq 0 ]; then
    echo "check_format: $(echo "$files" | wc -l | tr -d ' ') files clean"
fi
exit "$fail"
