/**
 * @file
 * JSONL stream validator for CI: every non-empty line must parse as
 * a self-contained JSON object, and each object must contain every
 * key named with --require. Used to gate the metrics exporter's
 * time-series files and the --log-json record stream.
 *
 *   jsonl_check [--require key1,key2,...] [--min-lines N] FILE
 *   jsonl_check --single [--require key1,key2,...] FILE
 *
 * With --single the whole file is one (possibly pretty-printed,
 * multi-line) JSON object instead of a line-delimited stream — the
 * mode the BENCH_*.json artifacts are validated in.
 *
 * Exit status: 0 when the whole stream validates, 1 on any parse
 * failure, missing key or short stream, 2 on usage errors.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "util/json.hh"

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage: jsonl_check [--single] "
                 "[--require key1,key2,...] "
                 "[--min-lines N] FILE\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> required;
    std::size_t minLines = 1;
    bool single = false;
    std::string path;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--single") {
            single = true;
        } else if (arg == "--require" && i + 1 < argc) {
            std::string list = argv[++i];
            std::size_t pos = 0;
            while (pos <= list.size()) {
                std::size_t comma = list.find(',', pos);
                if (comma == std::string::npos)
                    comma = list.size();
                std::string key = list.substr(pos, comma - pos);
                if (!key.empty())
                    required.push_back(key);
                pos = comma + 1;
            }
        } else if (arg == "--min-lines" && i + 1 < argc) {
            minLines = static_cast<std::size_t>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (!arg.empty() && arg[0] == '-') {
            return usage();
        } else if (path.empty()) {
            path = arg;
        } else {
            return usage();
        }
    }
    if (path.empty())
        return usage();

    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "jsonl_check: cannot open %s\n",
                     path.c_str());
        return 1;
    }

    if (single) {
        std::string body{std::istreambuf_iterator<char>(in),
                         std::istreambuf_iterator<char>()};
        auto parsed = rememberr::parseJson(body);
        if (!parsed) {
            std::fprintf(stderr,
                         "jsonl_check: %s: parse error: %s\n",
                         path.c_str(),
                         parsed.error().toString().c_str());
            return 1;
        }
        if (!parsed.value().isObject()) {
            std::fprintf(stderr,
                         "jsonl_check: %s: not a JSON object\n",
                         path.c_str());
            return 1;
        }
        for (const std::string &key : required) {
            if (!parsed.value().contains(key)) {
                std::fprintf(stderr,
                             "jsonl_check: %s: missing key "
                             "\"%s\"\n",
                             path.c_str(), key.c_str());
                return 1;
            }
        }
        std::printf("jsonl_check: %s: single object ok\n",
                    path.c_str());
        return 0;
    }

    std::string line;
    std::size_t lineNo = 0;
    std::size_t records = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        if (line.empty())
            continue;
        auto parsed = rememberr::parseJson(line);
        if (!parsed) {
            std::fprintf(stderr,
                         "jsonl_check: %s:%zu: parse error: %s\n",
                         path.c_str(), lineNo,
                         parsed.error().toString().c_str());
            return 1;
        }
        if (!parsed.value().isObject()) {
            std::fprintf(stderr,
                         "jsonl_check: %s:%zu: not a JSON object\n",
                         path.c_str(), lineNo);
            return 1;
        }
        for (const std::string &key : required) {
            if (!parsed.value().contains(key)) {
                std::fprintf(
                    stderr,
                    "jsonl_check: %s:%zu: missing key \"%s\"\n",
                    path.c_str(), lineNo, key.c_str());
                return 1;
            }
        }
        ++records;
    }
    if (records < minLines) {
        std::fprintf(stderr,
                     "jsonl_check: %s: %zu record(s), expected at "
                     "least %zu\n",
                     path.c_str(), records, minLines);
        return 1;
    }
    std::printf("jsonl_check: %s: %zu record(s) ok\n", path.c_str(),
                records);
    return 0;
}
