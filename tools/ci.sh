#!/bin/sh
# Local CI driver: the checks a change must pass before it merges.
#
#   1. tier-1: configure + build + full ctest suite;
#   2. source hygiene (tools/check_format.sh);
#   3. corpus static analysis: `rememberr check` against the
#      accepted-findings baseline (tools/check.baseline) — fails on
#      any finding not already baselined — plus a strict-JSON
#      validation of the SARIF artifact via jsonl_check --single;
#   4. snapshot determinism: write the binary snapshot at
#      --threads 1 and --threads 8, require byte-identical files,
#      then smoke a query through the --snapshot fast path;
#   5. live observability: a pipeline command run with
#      --metrics-interval 50 --log-json, with the JSONL metrics
#      series and the structured log stream both validated by
#      tools/jsonl_check;
#   6. parse fast-path equivalence: `bench_parse --smoke` asserts
#      the lazy-DFA regex tier and the table-driven tokenizer
#      reproduce the backtracking VM / cctype reference outputs
#      hash-for-hash;
#   7. serve daemon: start `rememberr serve` on an ephemeral port
#      against the snapshot from step 4, run `bench_serve --smoke`
#      (daemon responses must be bit-identical to in-process query
#      execution over cache miss, hit and pipelined paths), validate
#      the BENCH_serve.json schema with jsonl_check --single, then
#      SIGTERM the daemon and require a clean (graceful-drain) exit;
#   8. clang-tidy via the check_tidy target (skips when clang-tidy
#      is not installed);
#   9. a ThreadSanitizer build running the concurrency-sensitive
#      tests (parallel executor, observability including the sharded
#      quantiles and the exporter thread, the literal prefilter
#      differential, the regex tier differential — whose shared
#      lazy-DFA cache is built under concurrent scans — the
#      similarity kernels, which are scanned/scored concurrently
#      from dedup and foureyes shards, the serve stack, whose
#      sharded LRU cache and worker pool are hammered by concurrent
#      clients, and the automata decision procedures);
#  10. an UndefinedBehaviorSanitizer build running the parser,
#      regex (including the tier differential, the tokenizer
#      byte-table differential and the automata procedures),
#      diagnostics, snapshot, file-io and CLI tests, where the
#      bit-twiddling lives.
#
# Usage: tools/ci.sh [build-dir]   (default: build-ci)
# Exit status: nonzero on the first failing step.

set -eu

root=$(cd "$(dirname "$0")/.." && pwd)
build=${1:-build-ci}
tsan_build=${build}-tsan
ubsan_build=${build}-ubsan
jobs=$(nproc 2>/dev/null || echo 4)

# Sanitizer target lists, shared by the build and run loops below so
# the two can never drift apart.
tsan_tests="test_parallel test_obs test_obs_live
    test_similarity_kernels test_regex_differential test_serve
    test_automata"
ubsan_tests="test_document test_regex test_regex_differential
    test_text test_diag test_check test_snapshot test_fileio
    test_cli test_automata"

scratch=$(mktemp -d)
trap 'rm -rf "$scratch"' EXIT

step() {
    printf '\n==== ci: %s ====\n' "$*"
}

step "tier-1 build (${build})"
cmake -B "$root/$build" -S "$root" > /dev/null
cmake --build "$root/$build" -j "$jobs"

step "tier-1 tests"
(cd "$root/$build" && ctest --output-on-failure -j "$jobs")

step "format check"
(cd "$root" && sh tools/check_format.sh)

step "corpus static analysis (rememberr check)"
"$root/$build/tools/rememberr_cli" check \
    --baseline="$root/tools/check.baseline" --threads=0
"$root/$build/tools/rememberr_cli" check \
    --baseline="$root/tools/check.baseline" --threads=0 \
    --format=sarif --out="$scratch/check.sarif"
"$root/$build/tools/jsonl_check" --single \
    --require '$schema',version,runs "$scratch/check.sarif"

step "snapshot determinism + --snapshot smoke"
snapdir="$scratch"
"$root/$build/tools/rememberr_cli" snapshot \
    --out="$snapdir/t1.snap" --threads=1
"$root/$build/tools/rememberr_cli" snapshot \
    --out="$snapdir/t8.snap" --threads=8
cmp "$snapdir/t1.snap" "$snapdir/t8.snap"
"$root/$build/tools/rememberr_cli" stats \
    --snapshot="$snapdir/t1.snap" > /dev/null
"$root/$build/tools/rememberr_cli" query \
    --snapshot="$snapdir/t1.snap" --vendor=amd --limit=1 > /dev/null

step "live observability (--metrics-interval, --log-json)"
"$root/$build/tools/rememberr_cli" stats \
    --seed=7 --metrics-interval=50 --log-json --verbose \
    --metrics-out="$snapdir/series.jsonl" \
    > /dev/null 2> "$snapdir/log.jsonl"
"$root/$build/tools/jsonl_check" \
    --require seq,elapsed_ms,counters,gauges,histograms,quantiles \
    "$snapdir/series.jsonl"
"$root/$build/tools/jsonl_check" \
    --require ts_us,level,thread,span,msg \
    "$snapdir/log.jsonl"
"$root/$build/tools/rememberr_cli" profile \
    --snapshot="$snapdir/t1.snap" > /dev/null

step "parse fast-path equivalence (bench_parse --smoke)"
"$root/$build/bench/bench_parse" --smoke

step "serve daemon (equivalence, schema, graceful shutdown)"
"$root/$build/tools/rememberr_cli" serve \
    --snapshot="$snapdir/t1.snap" --port=0 \
    --port-file="$snapdir/port" > "$snapdir/serve.log" 2>&1 &
serve_pid=$!
tries=0
while [ ! -f "$snapdir/port" ] && [ "$tries" -lt 100 ]; do
    sleep 0.1
    tries=$((tries + 1))
done
[ -f "$snapdir/port" ] || {
    echo "serve daemon never published its port" >&2
    cat "$snapdir/serve.log" >&2
    exit 1
}
(cd "$snapdir" && "$root/$build/bench/bench_serve" --smoke \
    --port "$(cat "$snapdir/port")")
"$root/$build/tools/jsonl_check" --single \
    --require schema,equivalent,qps,latency_us,queries,cache,elided \
    "$snapdir/BENCH_serve.json"
kill -TERM "$serve_pid"
wait "$serve_pid"
grep -q "^served " "$snapdir/serve.log"

step "clang-tidy"
cmake --build "$root/$build" --target check_tidy

step "thread-sanitizer build (${tsan_build})"
cmake -B "$root/$tsan_build" -S "$root" \
    -DREMEMBERR_SANITIZE=thread > /dev/null
# shellcheck disable=SC2086
cmake --build "$root/$tsan_build" -j "$jobs" --target $tsan_tests

step "thread-sanitizer tests"
for t in $tsan_tests; do
    "$root/$tsan_build/tests/$t"
done

step "undefined-behavior-sanitizer build (${ubsan_build})"
cmake -B "$root/$ubsan_build" -S "$root" \
    -DREMEMBERR_SANITIZE=undefined > /dev/null
# shellcheck disable=SC2086
cmake --build "$root/$ubsan_build" -j "$jobs" --target $ubsan_tests

step "undefined-behavior-sanitizer tests"
for t in $ubsan_tests; do
    UBSAN_OPTIONS=halt_on_error=1 \
        "$root/$ubsan_build/tests/$t"
done

step "all checks passed"
