/**
 * @file
 * Text-mode charts: horizontal bars, heatmaps and series dumps.
 *
 * The bench binaries print the reproduced figures as text; the SVG
 * writer (svg.hh) produces graphical versions of the same data.
 */

#ifndef REMEMBERR_REPORT_CHART_HH
#define REMEMBERR_REPORT_CHART_HH

#include <string>
#include <vector>

#include "analysis/timeline.hh"

namespace rememberr {

/** One bar of a horizontal bar chart. */
struct Bar
{
    std::string label;
    double value = 0.0;
    /** Optional annotation shown after the bar. */
    std::string annotation;
};

/** Render a horizontal bar chart scaled to width characters. */
std::string renderBarChart(const std::vector<Bar> &bars,
                           std::size_t width = 50);

/** Render paired bars (e.g. Intel vs AMD shares) per label. */
struct PairedBar
{
    std::string label;
    double first = 0.0;
    double second = 0.0;
};

std::string renderPairedBarChart(const std::vector<PairedBar> &bars,
                                 const std::string &first_name,
                                 const std::string &second_name,
                                 std::size_t width = 40);

/** Render a heatmap with shade characters (' ', '.', ':', '*', '#'). */
std::string
renderHeatmap(const std::vector<std::string> &row_labels,
              const std::vector<std::string> &column_labels,
              const std::vector<std::vector<std::size_t>> &cells);

/** Dump cumulative series as aligned yearly samples. */
std::string renderSeriesByYear(
    const std::vector<CumulativeSeries> &series, int first_year,
    int last_year);

} // namespace rememberr

#endif // REMEMBERR_REPORT_CHART_HH
