#include "table.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/strings.hh"

namespace rememberr {

void
AsciiTable::setColumns(std::vector<std::string> headers,
                       std::vector<Align> alignments)
{
    headers_ = std::move(headers);
    if (alignments.empty())
        alignments.assign(headers_.size(), Align::Left);
    if (alignments.size() != headers_.size())
        REMEMBERR_PANIC("AsciiTable: alignment count mismatch");
    alignments_ = std::move(alignments);
}

void
AsciiTable::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size())
        REMEMBERR_PANIC("AsciiTable: row width ", cells.size(),
                        " != column count ", headers_.size());
    rows_.push_back(std::move(cells));
}

void
AsciiTable::addSeparator()
{
    separators_.push_back(rows_.size());
}

std::string
AsciiTable::toString() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto renderRow = [&](const std::vector<std::string> &cells) {
        std::string line = "|";
        for (std::size_t c = 0; c < cells.size(); ++c) {
            line += ' ';
            line += alignments_[c] == Align::Left
                        ? strings::padRight(cells[c], widths[c])
                        : strings::padLeft(cells[c], widths[c]);
            line += " |";
        }
        line += '\n';
        return line;
    };
    auto rule = [&]() {
        std::string line = "+";
        for (std::size_t c = 0; c < widths.size(); ++c) {
            line += strings::repeat("-", widths[c] + 2);
            line += '+';
        }
        line += '\n';
        return line;
    };

    std::string out = rule();
    out += renderRow(headers_);
    out += rule();
    for (std::size_t r = 0; r < rows_.size(); ++r) {
        for (std::size_t sep : separators_) {
            if (sep == r)
                out += rule();
        }
        out += renderRow(rows_[r]);
    }
    out += rule();
    return out;
}

} // namespace rememberr
