/**
 * @file
 * Minimal SVG chart writer.
 *
 * Produces standalone SVG documents for the reproduced figures: line
 * charts over dates (Figures 2, 4 and 5), bar charts (Figures 6-11
 * and 13-19) and heatmaps (Figures 3 and 12).
 */

#ifndef REMEMBERR_REPORT_SVG_HH
#define REMEMBERR_REPORT_SVG_HH

#include <string>
#include <vector>

#include "analysis/timeline.hh"
#include "chart.hh"

namespace rememberr {

/** Chart geometry. */
struct SvgOptions
{
    int width = 800;
    int height = 420;
    int marginLeft = 70;
    int marginRight = 20;
    int marginTop = 30;
    int marginBottom = 50;
    std::string title;
};

/** Cumulative line chart over dates, one polyline per series. */
std::string svgLineChart(const std::vector<CumulativeSeries> &series,
                         const SvgOptions &options = {});

/** Horizontal bar chart. */
std::string svgBarChart(const std::vector<Bar> &bars,
                        const SvgOptions &options = {});

/** Heatmap with a blue intensity ramp. */
std::string
svgHeatmap(const std::vector<std::string> &row_labels,
           const std::vector<std::string> &column_labels,
           const std::vector<std::vector<std::size_t>> &cells,
           const SvgOptions &options = {});

} // namespace rememberr

#endif // REMEMBERR_REPORT_SVG_HH
