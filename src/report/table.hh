/**
 * @file
 * ASCII table rendering for the bench harness output.
 */

#ifndef REMEMBERR_REPORT_TABLE_HH
#define REMEMBERR_REPORT_TABLE_HH

#include <string>
#include <vector>

namespace rememberr {

/** Column alignment. */
enum class Align { Left, Right };

/** A simple monospace table. */
class AsciiTable
{
  public:
    /** Define the columns; call before adding rows. */
    void setColumns(std::vector<std::string> headers,
                    std::vector<Align> alignments = {});

    void addRow(std::vector<std::string> cells);

    /** Insert a horizontal separator after the current last row. */
    void addSeparator();

    std::size_t rowCount() const { return rows_.size(); }

    /** Render with column separators and a header rule. */
    std::string toString() const;

  private:
    std::vector<std::string> headers_;
    std::vector<Align> alignments_;
    std::vector<std::vector<std::string>> rows_;
    std::vector<std::size_t> separators_;
};

} // namespace rememberr

#endif // REMEMBERR_REPORT_TABLE_HH
