#include "svg.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/strings.hh"

namespace rememberr {

namespace {

const char *const palette[] = {
    "#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd",
    "#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf",
    "#aec7e8", "#ffbb78", "#98df8a", "#ff9896", "#c5b0d5",
    "#c49c94",
};

std::string
attr(double value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f", value);
    return buf;
}

std::string
escapeXml(const std::string &text)
{
    std::string out;
    for (char c : text) {
        switch (c) {
          case '<': out += "&lt;"; break;
          case '>': out += "&gt;"; break;
          case '&': out += "&amp;"; break;
          case '"': out += "&quot;"; break;
          default: out += c;
        }
    }
    return out;
}

std::string
svgHeader(const SvgOptions &options)
{
    std::string out = "<svg xmlns=\"http://www.w3.org/2000/svg\" "
                      "width=\"" +
                      std::to_string(options.width) + "\" height=\"" +
                      std::to_string(options.height) + "\">\n";
    out += "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
    if (!options.title.empty()) {
        out += "<text x=\"" + std::to_string(options.width / 2) +
               "\" y=\"18\" text-anchor=\"middle\" "
               "font-family=\"sans-serif\" font-size=\"14\">" +
               escapeXml(options.title) + "</text>\n";
    }
    return out;
}

std::string
text(double x, double y, const std::string &content,
     const char *anchor = "start", int size = 10)
{
    return "<text x=\"" + attr(x) + "\" y=\"" + attr(y) +
           "\" text-anchor=\"" + anchor +
           "\" font-family=\"sans-serif\" font-size=\"" +
           std::to_string(size) + "\">" + escapeXml(content) +
           "</text>\n";
}

} // namespace

std::string
svgLineChart(const std::vector<CumulativeSeries> &series,
             const SvgOptions &options)
{
    // Data extents.
    std::int64_t minDay = 0, maxDay = 1;
    std::size_t maxCount = 1;
    bool first = true;
    for (const CumulativeSeries &s : series) {
        for (const auto &[date, count] : s.points) {
            if (first) {
                minDay = maxDay = date.serial();
                first = false;
            }
            minDay = std::min(minDay, date.serial());
            maxDay = std::max(maxDay, date.serial());
            maxCount = std::max(maxCount, count);
        }
    }
    if (maxDay == minDay)
        maxDay = minDay + 1;

    const double plotW = options.width - options.marginLeft -
                         options.marginRight;
    const double plotH = options.height - options.marginTop -
                         options.marginBottom;
    auto xOf = [&](Date date) {
        return options.marginLeft +
               plotW *
                   static_cast<double>(date.serial() - minDay) /
                   static_cast<double>(maxDay - minDay);
    };
    auto yOf = [&](std::size_t count) {
        return options.marginTop +
               plotH * (1.0 - static_cast<double>(count) /
                                  static_cast<double>(maxCount));
    };

    std::string out = svgHeader(options);
    // Axes.
    out += "<line x1=\"" + attr(options.marginLeft) + "\" y1=\"" +
           attr(options.marginTop) + "\" x2=\"" +
           attr(options.marginLeft) + "\" y2=\"" +
           attr(options.marginTop + plotH) +
           "\" stroke=\"black\"/>\n";
    out += "<line x1=\"" + attr(options.marginLeft) + "\" y1=\"" +
           attr(options.marginTop + plotH) + "\" x2=\"" +
           attr(options.marginLeft + plotW) + "\" y2=\"" +
           attr(options.marginTop + plotH) +
           "\" stroke=\"black\"/>\n";

    // Year ticks.
    int firstYear = Date::fromSerial(minDay).year();
    int lastYear = Date::fromSerial(maxDay).year();
    for (int year = firstYear; year <= lastYear; ++year) {
        Date tick(year, 1, 1);
        if (tick.serial() < minDay || tick.serial() > maxDay)
            continue;
        double x = xOf(tick);
        out += "<line x1=\"" + attr(x) + "\" y1=\"" +
               attr(options.marginTop + plotH) + "\" x2=\"" +
               attr(x) + "\" y2=\"" +
               attr(options.marginTop + plotH + 4) +
               "\" stroke=\"black\"/>\n";
        out += text(x, options.marginTop + plotH + 16,
                    std::to_string(year), "middle");
    }
    // Count ticks.
    for (int t = 0; t <= 4; ++t) {
        std::size_t value = maxCount * t / 4;
        double y = yOf(value);
        out += text(options.marginLeft - 6, y + 3,
                    std::to_string(value), "end");
    }

    // Series polylines and legend.
    for (std::size_t s = 0; s < series.size(); ++s) {
        if (series[s].points.empty())
            continue;
        std::string points;
        // Step-style: carry the previous count to the next date.
        std::size_t previous = 0;
        bool began = false;
        for (const auto &[date, count] : series[s].points) {
            if (began) {
                points += attr(xOf(date)) + "," +
                          attr(yOf(previous)) + " ";
            }
            points += attr(xOf(date)) + "," + attr(yOf(count)) + " ";
            previous = count;
            began = true;
        }
        const char *color = palette[s % 16];
        out += "<polyline fill=\"none\" stroke=\"";
        out += color;
        out += "\" stroke-width=\"1.5\" points=\"" + points +
               "\"/>\n";
        double ly = options.marginTop + 12.0 * (s + 1);
        double lx = options.marginLeft + plotW - 150;
        out += "<rect x=\"" + attr(lx) + "\" y=\"" + attr(ly - 8) +
               "\" width=\"10\" height=\"10\" fill=\"";
        out += color;
        out += "\"/>\n";
        out += text(lx + 14, ly, series[s].label);
    }
    out += "</svg>\n";
    return out;
}

std::string
svgBarChart(const std::vector<Bar> &bars, const SvgOptions &options)
{
    double maxValue = 1e-9;
    for (const Bar &bar : bars)
        maxValue = std::max(maxValue, bar.value);

    const double plotW = options.width - options.marginLeft -
                         options.marginRight - 120;
    const double rowH = bars.empty()
                            ? 10.0
                            : (options.height - options.marginTop -
                               options.marginBottom) /
                                  static_cast<double>(bars.size());

    std::string out = svgHeader(options);
    for (std::size_t i = 0; i < bars.size(); ++i) {
        double y = options.marginTop + rowH * i;
        double w = plotW * bars[i].value / maxValue;
        out += "<rect x=\"" + attr(options.marginLeft + 110) +
               "\" y=\"" + attr(y + 2) + "\" width=\"" + attr(w) +
               "\" height=\"" + attr(std::max(rowH - 4, 2.0)) +
               "\" fill=\"";
        out += palette[i % 16];
        out += "\"/>\n";
        out += text(options.marginLeft + 104, y + rowH / 2 + 3,
                    bars[i].label, "end");
        out += text(options.marginLeft + 114 + w, y + rowH / 2 + 3,
                    bars[i].annotation.empty()
                        ? strings::formatDouble(bars[i].value, 1)
                        : bars[i].annotation);
    }
    out += "</svg>\n";
    return out;
}

std::string
svgHeatmap(const std::vector<std::string> &row_labels,
           const std::vector<std::string> &column_labels,
           const std::vector<std::vector<std::size_t>> &cells,
           const SvgOptions &options)
{
    std::size_t maxValue = 1;
    for (const auto &row : cells) {
        for (std::size_t value : row)
            maxValue = std::max(maxValue, value);
    }
    const std::size_t rows = cells.size();
    const std::size_t cols = rows == 0 ? 0 : cells[0].size();
    const double plotW = options.width - options.marginLeft -
                         options.marginRight;
    const double plotH = options.height - options.marginTop -
                         options.marginBottom;
    const double cellW = cols == 0 ? 1 : plotW / cols;
    const double cellH = rows == 0 ? 1 : plotH / rows;

    std::string out = svgHeader(options);
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
            double intensity =
                static_cast<double>(cells[r][c]) /
                static_cast<double>(maxValue);
            int blue = 255;
            int other = static_cast<int>(
                std::lround(255.0 * (1.0 - intensity)));
            char color[16];
            std::snprintf(color, sizeof(color), "#%02x%02x%02x",
                          other, other, blue);
            out += "<rect x=\"" +
                   attr(options.marginLeft + cellW * c) + "\" y=\"" +
                   attr(options.marginTop + cellH * r) +
                   "\" width=\"" + attr(cellW) + "\" height=\"" +
                   attr(cellH) + "\" fill=\"";
            out += color;
            out += "\" stroke=\"#ddd\" stroke-width=\"0.3\"/>\n";
        }
        if (r < row_labels.size()) {
            out += text(options.marginLeft - 4,
                        options.marginTop + cellH * r +
                            cellH / 2 + 3,
                        row_labels[r], "end", 8);
        }
    }
    for (std::size_t c = 0; c < column_labels.size() && c < cols;
         ++c) {
        out += "<g transform=\"translate(" +
               attr(options.marginLeft + cellW * c + cellW / 2) +
               "," + attr(options.marginTop + plotH + 8) +
               ") rotate(45)\">" +
               text(0, 0, column_labels[c], "start", 7) + "</g>\n";
    }
    out += "</svg>\n";
    return out;
}

} // namespace rememberr
