#include "chart.hh"

#include <algorithm>
#include <cmath>

#include "util/strings.hh"

namespace rememberr {

std::string
renderBarChart(const std::vector<Bar> &bars, std::size_t width)
{
    double maxValue = 0.0;
    std::size_t labelWidth = 0;
    for (const Bar &bar : bars) {
        maxValue = std::max(maxValue, bar.value);
        labelWidth = std::max(labelWidth, bar.label.size());
    }
    if (maxValue <= 0.0)
        maxValue = 1.0;

    std::string out;
    for (const Bar &bar : bars) {
        std::size_t filled = static_cast<std::size_t>(
            std::lround(bar.value / maxValue *
                        static_cast<double>(width)));
        out += strings::padRight(bar.label, labelWidth);
        out += " | ";
        out += strings::repeat("#", filled);
        if (!bar.annotation.empty()) {
            out += ' ';
            out += bar.annotation;
        }
        out += '\n';
    }
    return out;
}

std::string
renderPairedBarChart(const std::vector<PairedBar> &bars,
                     const std::string &first_name,
                     const std::string &second_name,
                     std::size_t width)
{
    double maxValue = 0.0;
    std::size_t labelWidth =
        std::max(first_name.size(), second_name.size());
    for (const PairedBar &bar : bars) {
        maxValue = std::max({maxValue, bar.first, bar.second});
        labelWidth = std::max(labelWidth, bar.label.size());
    }
    if (maxValue <= 0.0)
        maxValue = 1.0;

    std::string out;
    for (const PairedBar &bar : bars) {
        auto renderOne = [&](const std::string &name, double value,
                             char mark) {
            std::size_t filled = static_cast<std::size_t>(
                std::lround(value / maxValue *
                            static_cast<double>(width)));
            out += strings::padRight(bar.label, labelWidth);
            out += ' ';
            out += strings::padRight(name, 6);
            out += "| ";
            out += strings::repeat(std::string(1, mark), filled);
            out += ' ';
            out += strings::formatPercent(value, 1);
            out += '\n';
        };
        renderOne(first_name, bar.first, '#');
        renderOne(second_name, bar.second, '=');
    }
    return out;
}

std::string
renderHeatmap(const std::vector<std::string> &row_labels,
              const std::vector<std::string> &column_labels,
              const std::vector<std::vector<std::size_t>> &cells)
{
    std::size_t maxValue = 0;
    for (const auto &row : cells) {
        for (std::size_t value : row)
            maxValue = std::max(maxValue, value);
    }
    static const char shades[] = {' ', '.', ':', '*', '#'};

    std::size_t labelWidth = 0;
    for (const auto &label : row_labels)
        labelWidth = std::max(labelWidth, label.size());

    std::string out;
    // Column header: first character of each column label, plus a
    // legend below.
    out += strings::repeat(" ", labelWidth + 1);
    for (std::size_t c = 0; c < column_labels.size(); ++c)
        out += std::to_string(c % 10);
    out += '\n';
    for (std::size_t r = 0; r < cells.size(); ++r) {
        out += strings::padRight(
            r < row_labels.size() ? row_labels[r] : "", labelWidth);
        out += ' ';
        for (std::size_t value : cells[r]) {
            std::size_t shade =
                maxValue == 0
                    ? 0
                    : (value * 4 + maxValue - 1) / maxValue;
            shade = std::min<std::size_t>(shade, 4);
            out += shades[shade];
        }
        out += '\n';
    }
    out += "legend: ' '=0 '.'<=25% ':'<=50% '*'<=75% '#'<=100% of max ";
    out += std::to_string(maxValue);
    out += "\ncolumns:\n";
    for (std::size_t c = 0; c < column_labels.size(); ++c) {
        out += "  " + std::to_string(c) + " (" +
               std::to_string(c % 10) + "): " + column_labels[c] +
               '\n';
    }
    return out;
}

std::string
renderSeriesByYear(const std::vector<CumulativeSeries> &series,
                   int first_year, int last_year)
{
    std::size_t labelWidth = 4;
    for (const CumulativeSeries &s : series)
        labelWidth = std::max(labelWidth, s.label.size());

    std::string out = strings::padRight("", labelWidth);
    for (int year = first_year; year <= last_year; ++year) {
        out += ' ';
        out += strings::padLeft(std::to_string(year % 100), 5);
    }
    out += '\n';
    for (const CumulativeSeries &s : series) {
        out += strings::padRight(s.label, labelWidth);
        for (int year = first_year; year <= last_year; ++year) {
            Date end(year, 12, 31);
            std::size_t count = s.countAt(end);
            out += ' ';
            out += strings::padLeft(
                count == 0 && (s.points.empty() ||
                               end < s.points.front().first)
                    ? "-"
                    : std::to_string(count),
                5);
        }
        out += '\n';
    }
    return out;
}

} // namespace rememberr
