/**
 * @file
 * Minimal blocking line-protocol client for the query daemon.
 *
 * Used by `bench_serve`, `tests/test_serve.cc` and anyone scripting
 * against a running `rememberr serve`: connect, write JSON request
 * lines, read JSON response lines back in order. The client buffers
 * reads, so pipelined responses are split correctly.
 */

#ifndef REMEMBERR_SERVE_CLIENT_HH
#define REMEMBERR_SERVE_CLIENT_HH

#include <string>

#include "util/expected.hh"

namespace rememberr {
namespace serve {

class Client
{
  public:
    /** Connect to host:port; fails fast (no retry loop). */
    static Expected<Client> connect(const std::string &host,
                                    int port);

    Client(Client &&other) noexcept;
    Client &operator=(Client &&other) noexcept;
    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;
    ~Client();

    /** Send one request line (a '\n' is appended). */
    Expected<bool> sendLine(const std::string &line);

    /** Send raw bytes verbatim (for malformed-input tests). */
    Expected<bool> sendText(const std::string &text);

    /**
     * Read the next response line (without its '\n').
     * Errors on timeout, connection close, or socket failure.
     */
    Expected<std::string> readLine(int timeoutMs = 30000);

    /** Half-close the write side; the daemon sees end-of-stream. */
    void closeWrite();

    void close();
    bool connected() const { return fd_ >= 0; }

  private:
    explicit Client(int fd) : fd_(fd) {}

    int fd_ = -1;
    std::string inbuf_;
};

} // namespace serve
} // namespace rememberr

#endif // REMEMBERR_SERVE_CLIENT_HH
