/**
 * @file
 * The long-lived query daemon: `rememberr serve`.
 *
 * A `Server` listens on a TCP socket and answers the database query
 * operations over a line-delimited JSON protocol: every request is
 * one JSON object on one line, every response is one JSON object on
 * one line, in request order, so clients may pipeline freely.
 *
 * Protocol grammar (DESIGN.md §16):
 *
 *   request  := object "\n"
 *   object   := {"op": "ping" | "count" | "run" | "group" | "stats",
 *                <filter/parameter fields per QuerySpec>}
 *   response := {"ok": true, ...payload} "\n"
 *             | {"error": "...", "ok": false} "\n"
 *
 * Architecture: one shared immutable `Database` (typically
 * materialized from the mmap snapshot), an accept thread feeding a
 * bounded queue, and a fixed pool of worker threads each owning one
 * connection at a time with per-connection scratch buffers — the
 * read-mostly analogue of `util/parallel`'s claim-by-atomic worker
 * loop. Responses for deterministic operations are cached in a
 * sharded LRU keyed on the canonical query string, so repeated
 * queries cost one hash lookup instead of a database scan.
 *
 * Shutdown is graceful: `stop()` (the CLI calls it on
 * SIGINT/SIGTERM) closes the listening socket, lets every worker
 * answer the requests already buffered on its connection, then
 * closes all connections and joins the threads.
 */

#ifndef REMEMBERR_SERVE_SERVER_HH
#define REMEMBERR_SERVE_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "db/database.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "serve/cache.hh"
#include "util/expected.hh"

namespace rememberr {
namespace serve {

/** Daemon configuration; instruments may be null. */
struct ServeOptions
{
    /** Bind address; the daemon is loopback-only by default. */
    std::string host = "127.0.0.1";
    /** TCP port; 0 binds an ephemeral port (see Server::port()). */
    int port = 0;
    /** Worker threads (0 = all hardware threads). */
    std::size_t workers = 0;
    /** Concurrent connections (active + queued) before rejecting. */
    std::size_t maxConnections = 64;
    /** Total cached responses across shards; 0 disables caching. */
    std::size_t cacheCapacity = 1024;
    /** Reject request lines longer than this (protocol abuse). */
    std::size_t maxLineBytes = 64 * 1024;
    MetricsRegistry *metrics = nullptr;
    TraceRecorder *trace = nullptr;
};

/** Aggregate daemon counters (also mirrored into `serve.*`). */
struct ServerStats
{
    std::uint64_t requests = 0;
    std::uint64_t errors = 0;
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t bytesIn = 0;
    std::uint64_t bytesOut = 0;
    /** Queries answered from the static empty-result lint alone. */
    std::uint64_t elided = 0;
};

class Server
{
  public:
    /** The database must outlive the server. */
    Server(const Database &db, ServeOptions options);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind, listen and spawn the accept/worker threads. */
    Expected<bool> start();

    /** The bound port (resolves port 0 after start()). */
    int port() const { return port_; }

    bool running() const
    {
        return started_ && !stop_.load(std::memory_order_acquire);
    }

    /**
     * Graceful shutdown: stop accepting, answer what is already
     * buffered, close every connection, join all threads.
     * Idempotent; also invoked by the destructor.
     */
    void stop();

    ServerStats stats() const;
    const ShardedLruCache &cache() const { return cache_; }

  private:
    void acceptLoop();
    void workerLoop();
    void handleConnection(int fd);

    /** Process one request line into one response line (no '\n'). */
    ShardedLruCache::Value handleLine(const std::string &line);
    ShardedLruCache::Value statsResponse() const;

    bool sendAll(int fd, const char *data, std::size_t size);

    const Database &db_;
    ServeOptions options_;
    ShardedLruCache cache_;

    int listenFd_ = -1;
    int port_ = 0;
    bool started_ = false;
    std::atomic<bool> stop_{false};

    std::thread acceptThread_;
    std::vector<std::thread> workers_;

    std::mutex queueMutex_;
    std::condition_variable queueReady_;
    std::deque<int> pending_;
    /** Connections accepted and not yet closed (active + queued). */
    std::atomic<std::size_t> openConnections_{0};

    std::atomic<std::uint64_t> requests_{0};
    std::atomic<std::uint64_t> errors_{0};
    std::atomic<std::uint64_t> accepted_{0};
    std::atomic<std::uint64_t> rejected_{0};
    std::atomic<std::uint64_t> bytesIn_{0};
    std::atomic<std::uint64_t> bytesOut_{0};
    std::atomic<std::uint64_t> elided_{0};
};

} // namespace serve
} // namespace rememberr

#endif // REMEMBERR_SERVE_SERVER_HH
