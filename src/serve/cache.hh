/**
 * @file
 * Sharded LRU result cache for the query daemon.
 *
 * Keys are canonical query strings (see `QuerySpec::canonical()`),
 * values are fully rendered response lines shared as
 * `std::shared_ptr<const std::string>` so a hit hands out the bytes
 * without copying and an eviction never invalidates a response a
 * connection is still writing.
 *
 * Concurrency model: the key's hash picks one of a small fixed set
 * of shards; each shard is an independent mutex + LRU list + index,
 * so concurrent lookups for different queries almost never contend
 * and a shard critical section is a few pointer moves. Capacity is
 * enforced per shard (total capacity / shards, at least one entry),
 * which bounds memory exactly while keeping eviction local.
 */

#ifndef REMEMBERR_SERVE_CACHE_HH
#define REMEMBERR_SERVE_CACHE_HH

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace rememberr {
namespace serve {

class ShardedLruCache
{
  public:
    using Value = std::shared_ptr<const std::string>;

    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;
    };

    /**
     * @param capacity total cached responses across shards;
     *        0 disables the cache (get always misses, put drops).
     * @param shards number of independent LRU shards.
     */
    explicit ShardedLruCache(std::size_t capacity,
                             std::size_t shards = 8);

    /** Lookup; bumps the entry to most-recently-used on hit. */
    Value get(const std::string &key);

    /** Insert or refresh; evicts the shard's LRU tail as needed. */
    void put(const std::string &key, Value value);

    /** Aggregate hit/miss/eviction counts over all shards. */
    Stats stats() const;

    /** Entries currently cached (sum over shards). */
    std::size_t size() const;

    std::size_t capacity() const { return capacity_; }
    bool enabled() const { return capacity_ > 0; }

  private:
    struct Entry
    {
        std::string key;
        Value value;
    };

    struct Shard
    {
        mutable std::mutex mutex;
        /** Front = most recently used. */
        std::list<Entry> order;
        std::unordered_map<std::string, std::list<Entry>::iterator>
            index;
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;
    };

    Shard &shardFor(const std::string &key);

    std::size_t capacity_ = 0;
    std::size_t perShard_ = 0;
    std::vector<std::unique_ptr<Shard>> shards_;
};

} // namespace serve
} // namespace rememberr

#endif // REMEMBERR_SERVE_CACHE_HH
