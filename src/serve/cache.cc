#include "cache.hh"

namespace rememberr {
namespace serve {

ShardedLruCache::ShardedLruCache(std::size_t capacity,
                                 std::size_t shards)
    : capacity_(capacity)
{
    if (shards == 0)
        shards = 1;
    if (capacity_ > 0) {
        perShard_ = capacity_ / shards;
        if (perShard_ == 0) {
            // Fewer entries than shards: collapse to one shard so
            // the total capacity stays exact.
            shards = 1;
            perShard_ = capacity_;
        }
        shards_.reserve(shards);
        for (std::size_t i = 0; i < shards; ++i)
            shards_.push_back(std::make_unique<Shard>());
    }
}

ShardedLruCache::Shard &
ShardedLruCache::shardFor(const std::string &key)
{
    return *shards_[std::hash<std::string>{}(key) %
                    shards_.size()];
}

ShardedLruCache::Value
ShardedLruCache::get(const std::string &key)
{
    if (!enabled())
        return nullptr;
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) {
        ++shard.misses;
        return nullptr;
    }
    ++shard.hits;
    // Bump to most-recently-used; splice relinks in place, so the
    // index iterator stays valid.
    shard.order.splice(shard.order.begin(), shard.order,
                       it->second);
    return it->second->value;
}

void
ShardedLruCache::put(const std::string &key, Value value)
{
    if (!enabled())
        return;
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
        it->second->value = std::move(value);
        shard.order.splice(shard.order.begin(), shard.order,
                           it->second);
        return;
    }
    shard.order.push_front(Entry{key, std::move(value)});
    shard.index.emplace(key, shard.order.begin());
    while (shard.order.size() > perShard_) {
        shard.index.erase(shard.order.back().key);
        shard.order.pop_back();
        ++shard.evictions;
    }
}

ShardedLruCache::Stats
ShardedLruCache::stats() const
{
    Stats total;
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        total.hits += shard->hits;
        total.misses += shard->misses;
        total.evictions += shard->evictions;
    }
    return total;
}

std::size_t
ShardedLruCache::size() const
{
    std::size_t total = 0;
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        total += shard->order.size();
    }
    return total;
}

} // namespace serve
} // namespace rememberr
