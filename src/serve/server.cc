#include "server.hh"

#include <chrono>

#include "db/query_spec.hh"
#include "util/json.hh"
#include "util/parallel.hh"

#if defined(__unix__) || defined(__APPLE__)
#define REMEMBERR_SERVE_POSIX 1
#include <arpa/inet.h>
#include <cerrno>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif
#endif

namespace rememberr {
namespace serve {

namespace {

/** Render a protocol error line (no trailing newline). */
std::string
errorLine(const std::string &message)
{
    JsonValue response = JsonValue::makeObject();
    response["ok"] = JsonValue(false);
    response["error"] = JsonValue(message);
    return response.dump();
}

} // namespace

Server::Server(const Database &db, ServeOptions options)
    : db_(db), options_(std::move(options)),
      cache_(options_.cacheCapacity)
{
}

Server::~Server()
{
    stop();
}

Expected<bool>
Server::start()
{
#ifndef REMEMBERR_SERVE_POSIX
    return makeError("serve requires POSIX sockets");
#else
    if (started_)
        return makeError("server already started");
    if (options_.port < 0 || options_.port > 65535)
        return makeError("port must be in [0, 65535]");
    if (options_.maxConnections == 0)
        return makeError("max connections must be at least 1");

    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        return makeError("cannot create socket");
    int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port =
        htons(static_cast<std::uint16_t>(options_.port));
    if (::inet_pton(AF_INET, options_.host.c_str(),
                    &addr.sin_addr) != 1) {
        ::close(listenFd_);
        listenFd_ = -1;
        return makeError("bad bind address '" + options_.host +
                         "'");
    }
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        ::close(listenFd_);
        listenFd_ = -1;
        return makeError("cannot bind " + options_.host + ":" +
                         std::to_string(options_.port));
    }
    if (::listen(listenFd_, 128) != 0) {
        ::close(listenFd_);
        listenFd_ = -1;
        return makeError("cannot listen on port " +
                         std::to_string(options_.port));
    }
    sockaddr_in bound{};
    socklen_t boundLen = sizeof(bound);
    if (::getsockname(listenFd_,
                      reinterpret_cast<sockaddr *>(&bound),
                      &boundLen) == 0)
        port_ = static_cast<int>(ntohs(bound.sin_port));

    started_ = true;
    acceptThread_ = std::thread([this] { acceptLoop(); });
    std::size_t workers = resolveThreadCount(options_.workers);
    workers_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
    return true;
#endif
}

void
Server::stop()
{
#ifdef REMEMBERR_SERVE_POSIX
    if (!started_)
        return;
    stop_.store(true, std::memory_order_release);
    queueReady_.notify_all();
    if (acceptThread_.joinable())
        acceptThread_.join();
    for (std::thread &worker : workers_) {
        if (worker.joinable())
            worker.join();
    }
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
    // Workers drain the queue on shutdown; this is a backstop for
    // connections accepted after the last worker exited.
    std::lock_guard<std::mutex> lock(queueMutex_);
    for (int fd : pending_)
        ::close(fd);
    pending_.clear();
#endif
}

ServerStats
Server::stats() const
{
    ServerStats out;
    out.requests = requests_.load(std::memory_order_relaxed);
    out.errors = errors_.load(std::memory_order_relaxed);
    out.accepted = accepted_.load(std::memory_order_relaxed);
    out.rejected = rejected_.load(std::memory_order_relaxed);
    out.bytesIn = bytesIn_.load(std::memory_order_relaxed);
    out.bytesOut = bytesOut_.load(std::memory_order_relaxed);
    out.elided = elided_.load(std::memory_order_relaxed);
    return out;
}

#ifdef REMEMBERR_SERVE_POSIX

void
Server::acceptLoop()
{
    const std::string busy =
        errorLine("server busy: connection limit reached") + "\n";
    for (;;) {
        pollfd waiter{listenFd_, POLLIN, 0};
        int ready = ::poll(&waiter, 1, 100);
        if (stop_.load(std::memory_order_acquire))
            break;
        if (ready <= 0)
            continue;
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        // Request/response lines are tiny; Nagle+delayed-ACK would
        // dominate per-request latency without this.
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                     sizeof(one));
        accepted_.fetch_add(1, std::memory_order_relaxed);
        if (options_.metrics)
            options_.metrics->counter("serve.connections").add();
        if (openConnections_.load(std::memory_order_relaxed) >=
            options_.maxConnections) {
            sendAll(fd, busy.data(), busy.size());
            ::close(fd);
            rejected_.fetch_add(1, std::memory_order_relaxed);
            if (options_.metrics)
                options_.metrics->counter("serve.rejected").add();
            continue;
        }
        openConnections_.fetch_add(1, std::memory_order_relaxed);
        {
            std::lock_guard<std::mutex> lock(queueMutex_);
            pending_.push_back(fd);
        }
        queueReady_.notify_one();
    }
}

void
Server::workerLoop()
{
    for (;;) {
        int fd = -1;
        {
            std::unique_lock<std::mutex> lock(queueMutex_);
            queueReady_.wait(lock, [this] {
                return stop_.load(std::memory_order_acquire) ||
                       !pending_.empty();
            });
            if (pending_.empty()) {
                // stop_ is set and nothing is queued.
                return;
            }
            fd = pending_.front();
            pending_.pop_front();
        }
        // On shutdown this still answers whatever the connection
        // already sent (handleConnection's drain pass), so queued
        // connections are drained, not dropped.
        handleConnection(fd);
    }
}

void
Server::handleConnection(int fd)
{
    // Per-connection scratch, reused across requests: no allocation
    // churn on the pipelined fast path.
    std::string inbuf;
    std::string outbuf;
    char chunk[16384];
    bool alive = true;

    // Consume every complete line in `inbuf`, appending one response
    // line each to `outbuf`, and flush in one write (pipelining).
    auto processBuffered = [&]() -> bool {
        std::size_t start = 0;
        outbuf.clear();
        for (;;) {
            std::size_t newline = inbuf.find('\n', start);
            if (newline == std::string::npos)
                break;
            std::string line =
                inbuf.substr(start, newline - start);
            start = newline + 1;
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            if (line.empty())
                continue;
            if (line.size() > options_.maxLineBytes) {
                errors_.fetch_add(1, std::memory_order_relaxed);
                outbuf += errorLine("request line exceeds " +
                                    std::to_string(
                                        options_.maxLineBytes) +
                                    " bytes");
                outbuf += '\n';
                continue;
            }
            ShardedLruCache::Value response = handleLine(line);
            outbuf += *response;
            outbuf += '\n';
        }
        inbuf.erase(0, start);
        if (!outbuf.empty()) {
            if (!sendAll(fd, outbuf.data(), outbuf.size()))
                return false;
            bytesOut_.fetch_add(outbuf.size(),
                                std::memory_order_relaxed);
            if (options_.metrics)
                options_.metrics->counter("serve.bytes_out")
                    .add(outbuf.size());
        }
        if (inbuf.size() > options_.maxLineBytes) {
            // An unterminated line has outgrown the limit: answer
            // once, then drop the connection (the stream can never
            // resynchronize).
            errors_.fetch_add(1, std::memory_order_relaxed);
            std::string refusal =
                errorLine("request line exceeds " +
                          std::to_string(options_.maxLineBytes) +
                          " bytes") +
                "\n";
            sendAll(fd, refusal.data(), refusal.size());
            return false;
        }
        return true;
    };

    while (alive) {
        if (!processBuffered())
            break;
        if (stop_.load(std::memory_order_acquire)) {
            // Graceful drain: answer the bytes the kernel already
            // has, then close.
            ssize_t got;
            while ((got = ::recv(fd, chunk, sizeof(chunk),
                                 MSG_DONTWAIT)) > 0) {
                inbuf.append(chunk, static_cast<std::size_t>(got));
                bytesIn_.fetch_add(static_cast<std::size_t>(got),
                                   std::memory_order_relaxed);
            }
            processBuffered();
            break;
        }
        pollfd waiter{fd, POLLIN, 0};
        int ready = ::poll(&waiter, 1, 100);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (ready == 0)
            continue;
        ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
        if (got == 0)
            break; // client closed
        if (got < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        inbuf.append(chunk, static_cast<std::size_t>(got));
        bytesIn_.fetch_add(static_cast<std::size_t>(got),
                           std::memory_order_relaxed);
        if (options_.metrics)
            options_.metrics->counter("serve.bytes_in")
                .add(static_cast<std::uint64_t>(got));
    }
    ::close(fd);
    openConnections_.fetch_sub(1, std::memory_order_relaxed);
}

bool
Server::sendAll(int fd, const char *data, std::size_t size)
{
    std::size_t sent = 0;
    while (sent < size) {
        ssize_t wrote = ::send(fd, data + sent, size - sent,
                               MSG_NOSIGNAL);
        if (wrote < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<std::size_t>(wrote);
    }
    return true;
}

#else // !REMEMBERR_SERVE_POSIX

void
Server::acceptLoop()
{
}
void
Server::workerLoop()
{
}
void
Server::handleConnection(int)
{
}
bool
Server::sendAll(int, const char *, std::size_t)
{
    return false;
}

#endif

ShardedLruCache::Value
Server::handleLine(const std::string &line)
{
    auto begin = std::chrono::steady_clock::now();
    ScopedSpan span(options_.trace, "serve.request");
    requests_.fetch_add(1, std::memory_order_relaxed);
    MetricsRegistry *metrics = options_.metrics;
    if (metrics)
        metrics->counter("serve.requests").add();

    auto finish = [&](ShardedLruCache::Value response,
                      bool failed =
                          false) -> ShardedLruCache::Value {
        if (failed) {
            errors_.fetch_add(1, std::memory_order_relaxed);
            if (metrics)
                metrics->counter("serve.errors").add();
        }
        if (metrics) {
            auto elapsed =
                std::chrono::duration_cast<
                    std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - begin)
                    .count();
            metrics->quantile("serve.request_us")
                .observe(static_cast<double>(elapsed));
        }
        return response;
    };
    auto fail = [&](const std::string &message) {
        return finish(std::make_shared<const std::string>(
                          errorLine(message)),
                      true);
    };

    auto parsed = parseJson(line);
    if (!parsed)
        return fail("parse: " + parsed.error().message);
    const JsonValue &request = parsed.value();
    if (request.isObject() && request.contains("op") &&
        request.at("op").isString() &&
        request.at("op").asString() == "stats") {
        return finish(statsResponse());
    }

    auto spec = QuerySpec::fromJson(request);
    if (!spec)
        return fail(spec.error().message);

    if (spec.value().op == QuerySpec::Op::Ping) {
        return finish(std::make_shared<const std::string>(
            spec.value().execute(db_).dump()));
    }

    // Provably-empty filter conjunctions never touch the database:
    // the static lint proves the result set empty on *any* database,
    // so the response is rendered from the spec alone (executeEmpty
    // is bit-identical to execute — pinned in tests/test_serve.cc).
    std::optional<std::string> emptyReason =
        spec.value().emptyReason();
    if (emptyReason) {
        elided_.fetch_add(1, std::memory_order_relaxed);
        if (metrics)
            metrics->counter("serve.query.elided").add();
    }

    std::string key = spec.value().canonical();
    if (ShardedLruCache::Value hit = cache_.get(key)) {
        if (metrics)
            metrics->counter("serve.cache.hit").add();
        return finish(std::move(hit));
    }
    if (metrics && cache_.enabled())
        metrics->counter("serve.cache.miss").add();
    auto response = std::make_shared<const std::string>(
        emptyReason ? spec.value().executeEmpty().dump()
                    : spec.value().execute(db_).dump());
    cache_.put(key, response);
    return finish(std::move(response));
}

ShardedLruCache::Value
Server::statsResponse() const
{
    ServerStats counts = stats();
    ShardedLruCache::Stats cacheStats = cache_.stats();
    JsonValue response = JsonValue::makeObject();
    response["ok"] = JsonValue(true);
    response["op"] = JsonValue("stats");
    response["entries"] = JsonValue(db_.entries().size());
    response["documents"] = JsonValue(db_.documentCount());
    response["requests"] =
        JsonValue(static_cast<std::size_t>(counts.requests));
    response["errors"] =
        JsonValue(static_cast<std::size_t>(counts.errors));
    response["rejected"] =
        JsonValue(static_cast<std::size_t>(counts.rejected));
    response["elided"] =
        JsonValue(static_cast<std::size_t>(counts.elided));
    JsonValue cacheJson = JsonValue::makeObject();
    cacheJson["capacity"] = JsonValue(cache_.capacity());
    cacheJson["size"] = JsonValue(cache_.size());
    cacheJson["hits"] =
        JsonValue(static_cast<std::size_t>(cacheStats.hits));
    cacheJson["misses"] =
        JsonValue(static_cast<std::size_t>(cacheStats.misses));
    cacheJson["evictions"] =
        JsonValue(static_cast<std::size_t>(cacheStats.evictions));
    response["cache"] = std::move(cacheJson);
    return std::make_shared<const std::string>(response.dump());
}

} // namespace serve
} // namespace rememberr
