#include "client.hh"

#if defined(__unix__) || defined(__APPLE__)
#define REMEMBERR_SERVE_POSIX 1
#include <arpa/inet.h>
#include <cerrno>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif
#endif

namespace rememberr {
namespace serve {

Expected<Client>
Client::connect(const std::string &host, int port)
{
#ifndef REMEMBERR_SERVE_POSIX
    (void)host;
    (void)port;
    return makeError("serve client requires POSIX sockets");
#else
    if (port <= 0 || port > 65535)
        return makeError("port must be in [1, 65535]");
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return makeError("cannot create socket");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        return makeError("bad address '" + host + "'");
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return makeError("cannot connect to " + host + ":" +
                         std::to_string(port));
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return Client(fd);
#endif
}

Client::Client(Client &&other) noexcept
    : fd_(other.fd_), inbuf_(std::move(other.inbuf_))
{
    other.fd_ = -1;
}

Client &
Client::operator=(Client &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        inbuf_ = std::move(other.inbuf_);
        other.fd_ = -1;
    }
    return *this;
}

Client::~Client()
{
    close();
}

Expected<bool>
Client::sendLine(const std::string &line)
{
    return sendText(line + "\n");
}

Expected<bool>
Client::sendText(const std::string &text)
{
#ifndef REMEMBERR_SERVE_POSIX
    (void)text;
    return makeError("serve client requires POSIX sockets");
#else
    if (fd_ < 0)
        return makeError("client not connected");
    std::size_t sent = 0;
    while (sent < text.size()) {
        ssize_t wrote = ::send(fd_, text.data() + sent,
                               text.size() - sent, MSG_NOSIGNAL);
        if (wrote < 0) {
            if (errno == EINTR)
                continue;
            return makeError("send failed");
        }
        sent += static_cast<std::size_t>(wrote);
    }
    return true;
#endif
}

Expected<std::string>
Client::readLine(int timeoutMs)
{
#ifndef REMEMBERR_SERVE_POSIX
    (void)timeoutMs;
    return makeError("serve client requires POSIX sockets");
#else
    if (fd_ < 0)
        return makeError("client not connected");
    for (;;) {
        std::size_t newline = inbuf_.find('\n');
        if (newline != std::string::npos) {
            std::string line = inbuf_.substr(0, newline);
            inbuf_.erase(0, newline + 1);
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            return line;
        }
        pollfd waiter{fd_, POLLIN, 0};
        int ready = ::poll(&waiter, 1, timeoutMs);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            return makeError("poll failed");
        }
        if (ready == 0)
            return makeError("timed out waiting for response");
        char chunk[16384];
        ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (got == 0)
            return makeError("connection closed by server");
        if (got < 0) {
            if (errno == EINTR)
                continue;
            return makeError("recv failed");
        }
        inbuf_.append(chunk, static_cast<std::size_t>(got));
    }
#endif
}

void
Client::closeWrite()
{
#ifdef REMEMBERR_SERVE_POSIX
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_WR);
#endif
}

void
Client::close()
{
#ifdef REMEMBERR_SERVE_POSIX
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
#endif
}

} // namespace serve
} // namespace rememberr
