#include "view.hh"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <utility>

#include "format.hh"
#include "util/logging.hh"

namespace rememberr {
namespace snap {

namespace {

/** Bounds-checked sequential reader over one document payload. */
class Cursor
{
  public:
    Cursor(const unsigned char *data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    std::uint8_t
    u8()
    {
        need(1);
        return data_[pos_++];
    }

    std::uint16_t
    u16()
    {
        need(2);
        std::uint16_t v = loadU16(data_ + pos_);
        pos_ += 2;
        return v;
    }

    std::uint32_t
    u32()
    {
        need(4);
        std::uint32_t v = loadU32(data_ + pos_);
        pos_ += 4;
        return v;
    }

    std::int32_t i32() { return static_cast<std::int32_t>(u32()); }

    std::int64_t
    i64()
    {
        need(8);
        std::int64_t v = loadI64(data_ + pos_);
        pos_ += 8;
        return v;
    }

  private:
    void
    need(std::size_t n)
    {
        if (pos_ + n > size_)
            REMEMBERR_PANIC("snapshot: document payload overrun at ",
                            pos_, "+", n, " of ", size_);
    }

    const unsigned char *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

} // namespace

SnapshotView::SnapshotView(SnapshotView &&other) noexcept
{
    *this = std::move(other);
}

SnapshotView &
SnapshotView::operator=(SnapshotView &&other) noexcept
{
    if (this == &other)
        return *this;
    if (mapping_)
        ::munmap(mapping_, size_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    mapping_ = std::exchange(other.mapping_, nullptr);
    owned_ = std::move(other.owned_);
    options_ = other.options_;
    contentHash_ = other.contentHash_;
    strings_ = other.strings_;
    entries_ = other.entries_;
    occurrences_ = other.occurrences_;
    msrs_ = other.msrs_;
    documents_ = other.documents_;
    stringCount_ = other.stringCount_;
    stringOffsets_ = other.stringOffsets_;
    stringBlob_ = other.stringBlob_;
    stringBlobSize_ = other.stringBlobSize_;
    entryCount_ = other.entryCount_;
    entryRecords_ = other.entryRecords_;
    occurrenceCount_ = other.occurrenceCount_;
    occurrenceRecords_ = other.occurrenceRecords_;
    msrCount_ = other.msrCount_;
    msrRecords_ = other.msrRecords_;
    documentCount_ = other.documentCount_;
    documentOffsets_ = other.documentOffsets_;
    documentBlob_ = other.documentBlob_;
    documentBlobSize_ = other.documentBlobSize_;
    // If the moved-from view pointed into its own string, our
    // pointers must be rebased onto the string we now own.
    if (!owned_.empty() && data_ != nullptr && mapping_ == nullptr) {
        const unsigned char *base =
            reinterpret_cast<const unsigned char *>(owned_.data());
        if (base != data_) {
            auto rebase = [&](const unsigned char *&p) {
                if (p)
                    p = base + (p - data_);
            };
            auto rebaseRef = [&](SectionRef &ref) {
                rebase(ref.data);
            };
            rebaseRef(strings_);
            rebaseRef(entries_);
            rebaseRef(occurrences_);
            rebaseRef(msrs_);
            rebaseRef(documents_);
            rebase(stringOffsets_);
            rebase(stringBlob_);
            rebase(entryRecords_);
            rebase(occurrenceRecords_);
            rebase(msrRecords_);
            rebase(documentOffsets_);
            rebase(documentBlob_);
            data_ = base;
        }
    }
    return *this;
}

SnapshotView::~SnapshotView()
{
    if (mapping_)
        ::munmap(mapping_, size_);
}

Expected<SnapshotView>
SnapshotView::open(const std::string &path,
                   const LoadOptions &options)
{
    ScopedSpan span(options.trace, "snap.load.open");
    auto begin = std::chrono::steady_clock::now();

    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return makeError("cannot open snapshot " + path);
    struct stat st;
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
        ::close(fd);
        return makeError("cannot stat snapshot " + path);
    }
    const std::size_t size = static_cast<std::size_t>(st.st_size);
    if (size == 0) {
        ::close(fd);
        return makeError("snapshot " + path + " is empty");
    }
    void *mapping =
        ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (mapping == MAP_FAILED)
        return makeError("cannot mmap snapshot " + path);

    SnapshotView view;
    view.mapping_ = mapping;
    view.data_ = static_cast<const unsigned char *>(mapping);
    view.size_ = size;
    view.options_ = options;
    auto valid = view.validate();
    if (!valid)
        return valid.error();

    if (options.metrics) {
        options.metrics->counter("snap.load.bytes").add(size);
        auto elapsed =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - begin)
                .count();
        options.metrics->gauge("snap.load.open_us")
            .set(static_cast<std::int64_t>(elapsed));
    }
    return view;
}

Expected<SnapshotView>
SnapshotView::fromBytes(std::string bytes,
                        const LoadOptions &options)
{
    SnapshotView view;
    view.owned_ = std::move(bytes);
    view.data_ =
        reinterpret_cast<const unsigned char *>(view.owned_.data());
    view.size_ = view.owned_.size();
    view.options_ = options;
    auto valid = view.validate();
    if (!valid)
        return valid.error();
    return view;
}

Expected<bool>
SnapshotView::validate()
{
    if (size_ < kHeaderSize)
        return makeError("snapshot truncated: " +
                         std::to_string(size_) +
                         " bytes is smaller than the header");
    if (std::memcmp(data_, kMagic, sizeof(kMagic)) != 0)
        return makeError("not a rememberr snapshot (bad magic)");
    const std::uint32_t version = loadU32(data_ + 8);
    if (version != kVersion)
        return makeError("unsupported snapshot version " +
                         std::to_string(version) + " (expected " +
                         std::to_string(kVersion) + ")");
    if (loadU32(data_ + 12) != kEndianTag)
        return makeError(
            "snapshot endianness does not match this host");
    const std::uint32_t sectionCount = loadU32(data_ + 16);
    if (loadU32(data_ + 20) != kHeaderSize)
        return makeError("snapshot header size mismatch");
    contentHash_ = loadU64(data_ + 24);
    const std::uint64_t fileSize = loadU64(data_ + 32);
    if (fileSize != size_)
        return makeError(
            "snapshot truncated: header declares " +
            std::to_string(fileSize) + " bytes, file has " +
            std::to_string(size_));
    if (sectionCount > 64)
        return makeError("implausible snapshot section count " +
                         std::to_string(sectionCount));
    const std::size_t tableEnd =
        kHeaderSize + sectionCount * kSectionRecordSize;
    if (tableEnd > size_)
        return makeError(
            "snapshot truncated inside the section table");

    for (std::uint32_t s = 0; s < sectionCount; ++s) {
        const unsigned char *record =
            data_ + kHeaderSize + s * kSectionRecordSize;
        const std::uint32_t id = loadU32(record);
        const std::uint64_t offset = loadU64(record + 8);
        const std::uint64_t length = loadU64(record + 16);
        if (offset < tableEnd || offset > size_ ||
            length > size_ - offset) {
            return makeError("snapshot section " +
                             std::to_string(id) +
                             " lies outside the file");
        }
        SectionRef ref{data_ + offset,
                       static_cast<std::size_t>(length)};
        switch (static_cast<SectionId>(id)) {
          case SectionId::Strings: strings_ = ref; break;
          case SectionId::Entries: entries_ = ref; break;
          case SectionId::Occurrences: occurrences_ = ref; break;
          case SectionId::Msrs: msrs_ = ref; break;
          case SectionId::Documents: documents_ = ref; break;
          default: break; // unknown sections are skippable by design
        }
    }
    if (!strings_.data || !entries_.data || !occurrences_.data ||
        !msrs_.data || !documents_.data) {
        return makeError("snapshot is missing a required section");
    }

    // Strings: count, pad, offsets[count+1], blob.
    if (strings_.size < 8)
        return makeError("snapshot string table too small");
    stringCount_ = loadU32(strings_.data);
    const std::size_t offsetsBytes =
        (static_cast<std::size_t>(stringCount_) + 1) * 4;
    if (8 + offsetsBytes > strings_.size)
        return makeError(
            "snapshot string table truncated: offsets for " +
            std::to_string(stringCount_) + " strings do not fit");
    stringOffsets_ = strings_.data + 8;
    stringBlob_ = strings_.data + 8 + offsetsBytes;
    stringBlobSize_ = strings_.size - 8 - offsetsBytes;
    if (loadU32(stringOffsets_ + 4 * stringCount_) !=
        stringBlobSize_) {
        return makeError(
            "snapshot string table blob length mismatch");
    }

    // Entries: count, pad, fixed records.
    if (entries_.size < 8)
        return makeError("snapshot entry table too small");
    entryCount_ = loadU32(entries_.data);
    entryRecords_ = entries_.data + 8;
    if (8 + static_cast<std::size_t>(entryCount_) *
                kEntryRecordSize !=
        entries_.size) {
        return makeError(
            "snapshot entry table length mismatch: " +
            std::to_string(entryCount_) + " entries declared");
    }

    if (occurrences_.size < 8)
        return makeError("snapshot occurrence table too small");
    occurrenceCount_ = loadU32(occurrences_.data);
    occurrenceRecords_ = occurrences_.data + 8;
    if (8 + static_cast<std::size_t>(occurrenceCount_) *
                kOccurrenceRecordSize !=
        occurrences_.size) {
        return makeError(
            "snapshot occurrence table length mismatch");
    }

    if (msrs_.size < 8)
        return makeError("snapshot MSR table too small");
    msrCount_ = loadU32(msrs_.data);
    msrRecords_ = msrs_.data + 8;
    if (8 + static_cast<std::size_t>(msrCount_) * kMsrRecordSize !=
        msrs_.size) {
        return makeError("snapshot MSR table length mismatch");
    }

    // Documents: count, pad, offsets[count+1] (u64), payload blob.
    if (documents_.size < 8)
        return makeError("snapshot document table too small");
    documentCount_ = loadU32(documents_.data);
    const std::size_t docOffsetsBytes =
        (static_cast<std::size_t>(documentCount_) + 1) * 8;
    if (8 + docOffsetsBytes > documents_.size)
        return makeError("snapshot document offsets truncated");
    documentOffsets_ = documents_.data + 8;
    documentBlob_ = documents_.data + 8 + docOffsetsBytes;
    documentBlobSize_ = documents_.size - 8 - docOffsetsBytes;
    if (loadU64(documentOffsets_ + 8 * documentCount_) !=
        documentBlobSize_) {
        return makeError(
            "snapshot document blob length mismatch");
    }

    if (options_.verifyHash) {
        const std::size_t tableEndAligned = tableEnd;
        const std::uint64_t computed = fnv1a64(
            data_ + tableEndAligned, size_ - tableEndAligned);
        if (computed != contentHash_) {
            return makeError(
                "snapshot content hash mismatch: header says " +
                hashHex(contentHash_) + ", payload hashes to " +
                hashHex(computed));
        }
    }
    return true;
}

// ---- zero-copy accessors ------------------------------------------------

namespace {

/** Entry record field offsets (see writer.cc). */
constexpr std::size_t kEntryKey = 0;
constexpr std::size_t kEntryVendor = 4;
constexpr std::size_t kEntryWorkaroundClass = 5;
constexpr std::size_t kEntryStatus = 6;
constexpr std::size_t kEntryFlags = 7;
constexpr std::size_t kEntryTriggers = 8;
constexpr std::size_t kEntryContexts = 16;
constexpr std::size_t kEntryEffects = 24;
constexpr std::size_t kEntryTitle = 32;
constexpr std::size_t kEntryDescription = 36;
constexpr std::size_t kEntryImplications = 40;
constexpr std::size_t kEntryWorkaroundText = 44;
constexpr std::size_t kEntryRootCause = 48;
constexpr std::size_t kEntryMsrOff = 52;
constexpr std::size_t kEntryMsrCount = 56;
constexpr std::size_t kEntryOccOff = 60;
constexpr std::size_t kEntryOccCount = 64;

} // namespace

const unsigned char *
entryRecord(const unsigned char *records, std::size_t count,
            std::size_t i)
{
    if (i >= count)
        REMEMBERR_PANIC("snapshot: entry index ", i, " of ", count);
    return records + i * kEntryRecordSize;
}

std::uint32_t
SnapshotView::entryKey(std::size_t i) const
{
    return loadU32(entryRecord(entryRecords_, entryCount_, i) +
                   kEntryKey);
}

Vendor
SnapshotView::entryVendor(std::size_t i) const
{
    return static_cast<Vendor>(
        entryRecord(entryRecords_, entryCount_, i)[kEntryVendor]);
}

WorkaroundClass
SnapshotView::entryWorkaroundClass(std::size_t i) const
{
    return static_cast<WorkaroundClass>(entryRecord(
        entryRecords_, entryCount_, i)[kEntryWorkaroundClass]);
}

FixStatus
SnapshotView::entryStatus(std::size_t i) const
{
    return static_cast<FixStatus>(
        entryRecord(entryRecords_, entryCount_, i)[kEntryStatus]);
}

CategorySet
SnapshotView::entryTriggers(std::size_t i) const
{
    return CategorySet::fromMask(loadU64(
        entryRecord(entryRecords_, entryCount_, i) + kEntryTriggers));
}

CategorySet
SnapshotView::entryContexts(std::size_t i) const
{
    return CategorySet::fromMask(loadU64(
        entryRecord(entryRecords_, entryCount_, i) + kEntryContexts));
}

CategorySet
SnapshotView::entryEffects(std::size_t i) const
{
    return CategorySet::fromMask(loadU64(
        entryRecord(entryRecords_, entryCount_, i) + kEntryEffects));
}

std::size_t
SnapshotView::entryOccurrenceCount(std::size_t i) const
{
    return loadU32(entryRecord(entryRecords_, entryCount_, i) +
                   kEntryOccCount);
}

std::string_view
SnapshotView::entryTitle(std::size_t i) const
{
    return string(loadU32(
        entryRecord(entryRecords_, entryCount_, i) + kEntryTitle));
}

std::string_view
SnapshotView::string(std::uint32_t id) const
{
    if (id >= stringCount_)
        REMEMBERR_PANIC("snapshot: string id ", id, " of ",
                        stringCount_);
    const std::uint32_t from = loadU32(stringOffsets_ + 4 * id);
    const std::uint32_t to = loadU32(stringOffsets_ + 4 * (id + 1));
    if (from > to || to > stringBlobSize_)
        REMEMBERR_PANIC("snapshot: corrupt string bounds for id ",
                        id);
    return std::string_view(
        reinterpret_cast<const char *>(stringBlob_) + from,
        to - from);
}

std::size_t
SnapshotView::uniqueCount(Vendor vendor) const
{
    std::size_t count = 0;
    for (std::size_t i = 0; i < entryCount_; ++i) {
        if (entryVendor(i) == vendor)
            ++count;
    }
    return count;
}

std::size_t
SnapshotView::rowCount(Vendor vendor) const
{
    std::size_t count = 0;
    for (std::size_t i = 0; i < entryCount_; ++i) {
        if (entryVendor(i) == vendor)
            count += entryOccurrenceCount(i);
    }
    return count;
}

// ---- materialization ----------------------------------------------------

DbEntry
SnapshotView::entry(std::size_t i) const
{
    const unsigned char *record =
        entryRecord(entryRecords_, entryCount_, i);
    DbEntry entry;
    entry.key = loadU32(record + kEntryKey);
    entry.vendor = static_cast<Vendor>(record[kEntryVendor]);
    entry.workaroundClass = static_cast<WorkaroundClass>(
        record[kEntryWorkaroundClass]);
    entry.status = static_cast<FixStatus>(record[kEntryStatus]);
    const std::uint8_t flags = record[kEntryFlags];
    entry.complexConditions = (flags & kFlagComplexConditions) != 0;
    entry.simulationOnly = (flags & kFlagSimulationOnly) != 0;
    entry.triggers =
        CategorySet::fromMask(loadU64(record + kEntryTriggers));
    entry.contexts =
        CategorySet::fromMask(loadU64(record + kEntryContexts));
    entry.effects =
        CategorySet::fromMask(loadU64(record + kEntryEffects));
    entry.title = std::string(string(loadU32(record + kEntryTitle)));
    entry.description =
        std::string(string(loadU32(record + kEntryDescription)));
    entry.implications =
        std::string(string(loadU32(record + kEntryImplications)));
    entry.workaroundText =
        std::string(string(loadU32(record + kEntryWorkaroundText)));
    entry.rootCause =
        std::string(string(loadU32(record + kEntryRootCause)));

    const std::uint32_t msrOff = loadU32(record + kEntryMsrOff);
    const std::uint32_t msrCount = loadU32(record + kEntryMsrCount);
    if (msrOff > msrCount_ || msrCount > msrCount_ - msrOff)
        REMEMBERR_PANIC("snapshot: MSR run of entry ", i,
                        " out of bounds");
    entry.msrs.reserve(msrCount);
    for (std::uint32_t m = 0; m < msrCount; ++m) {
        const unsigned char *row =
            msrRecords_ + (msrOff + m) * kMsrRecordSize;
        MsrRef msr;
        msr.name = std::string(string(loadU32(row)));
        msr.number = loadU32(row + 4);
        entry.msrs.push_back(std::move(msr));
    }

    const std::uint32_t occOff = loadU32(record + kEntryOccOff);
    const std::uint32_t occCount = loadU32(record + kEntryOccCount);
    if (occOff > occurrenceCount_ ||
        occCount > occurrenceCount_ - occOff) {
        REMEMBERR_PANIC("snapshot: occurrence run of entry ", i,
                        " out of bounds");
    }
    entry.occurrences.reserve(occCount);
    for (std::uint32_t o = 0; o < occCount; ++o) {
        const unsigned char *row =
            occurrenceRecords_ +
            (occOff + o) * kOccurrenceRecordSize;
        Occurrence occurrence;
        occurrence.docIndex = static_cast<int>(loadU32(row));
        occurrence.localId = std::string(string(loadU32(row + 4)));
        occurrence.disclosed = Date::fromSerial(loadI64(row + 8));
        entry.occurrences.push_back(std::move(occurrence));
    }
    return entry;
}

ErrataDocument
SnapshotView::document(std::size_t i) const
{
    if (i >= documentCount_)
        REMEMBERR_PANIC("snapshot: document index ", i, " of ",
                        documentCount_);
    const std::uint64_t from = loadU64(documentOffsets_ + 8 * i);
    const std::uint64_t to = loadU64(documentOffsets_ + 8 * (i + 1));
    if (from > to || to > documentBlobSize_)
        REMEMBERR_PANIC("snapshot: corrupt document bounds for ", i);
    Cursor cursor(documentBlob_ + from,
                  static_cast<std::size_t>(to - from));

    ErrataDocument doc;
    doc.design.vendor = static_cast<Vendor>(cursor.u8());
    doc.design.variant = static_cast<DesignVariant>(cursor.u8());
    cursor.u16(); // pad
    doc.design.generation = cursor.i32();
    doc.design.releaseDate = Date::fromSerial(cursor.i64());
    doc.design.name = std::string(string(cursor.u32()));
    doc.design.reference = std::string(string(cursor.u32()));
    doc.sourcePath = std::string(string(cursor.u32()));
    const std::uint32_t revisionCount = cursor.u32();
    const std::uint32_t erratumCount = cursor.u32();
    const std::uint32_t hiddenCount = cursor.u32();

    doc.revisions.reserve(revisionCount);
    for (std::uint32_t r = 0; r < revisionCount; ++r) {
        Revision revision;
        revision.number = cursor.i32();
        revision.sourceLine = cursor.i32();
        revision.date = Date::fromSerial(cursor.i64());
        revision.note = std::string(string(cursor.u32()));
        const std::uint32_t addedCount = cursor.u32();
        revision.addedIds.reserve(addedCount);
        for (std::uint32_t a = 0; a < addedCount; ++a)
            revision.addedIds.push_back(
                std::string(string(cursor.u32())));
        doc.revisions.push_back(std::move(revision));
    }
    doc.hiddenErrata.reserve(hiddenCount);
    for (std::uint32_t h = 0; h < hiddenCount; ++h)
        doc.hiddenErrata.push_back(
            std::string(string(cursor.u32())));

    doc.errata.reserve(erratumCount);
    for (std::uint32_t e = 0; e < erratumCount; ++e) {
        Erratum erratum;
        erratum.localId = std::string(string(cursor.u32()));
        erratum.title = std::string(string(cursor.u32()));
        erratum.description = std::string(string(cursor.u32()));
        erratum.implications = std::string(string(cursor.u32()));
        erratum.workaroundText = std::string(string(cursor.u32()));
        erratum.workaroundClass =
            static_cast<WorkaroundClass>(cursor.u8());
        erratum.status = static_cast<FixStatus>(cursor.u8());
        cursor.u16(); // pad
        erratum.addedInRevision = cursor.i32();
        erratum.sourceLine = cursor.i32();
        const std::uint32_t msrCount = cursor.u32();
        erratum.msrs.reserve(msrCount);
        for (std::uint32_t m = 0; m < msrCount; ++m) {
            MsrRef msr;
            msr.name = std::string(string(cursor.u32()));
            msr.number = cursor.u32();
            erratum.msrs.push_back(std::move(msr));
        }
        const std::uint32_t fieldLineCount = cursor.u32();
        for (std::uint32_t f = 0; f < fieldLineCount; ++f) {
            std::string field = std::string(string(cursor.u32()));
            erratum.fieldLines[std::move(field)] = cursor.i32();
        }
        doc.errata.push_back(std::move(erratum));
    }
    return doc;
}

Database
SnapshotView::database() const
{
    ScopedSpan span(options_.trace, "snap.load.materialize");
    auto begin = std::chrono::steady_clock::now();

    std::vector<DbEntry> entries;
    entries.reserve(entryCount_);
    for (std::size_t i = 0; i < entryCount_; ++i)
        entries.push_back(entry(i));
    std::vector<ErrataDocument> documents;
    documents.reserve(documentCount_);
    for (std::size_t i = 0; i < documentCount_; ++i)
        documents.push_back(document(i));

    if (options_.metrics) {
        options_.metrics->counter("snap.load.entries")
            .add(entries.size());
        options_.metrics->counter("snap.load.documents")
            .add(documents.size());
        auto elapsed =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - begin)
                .count();
        options_.metrics->gauge("snap.load.materialize_us")
            .set(static_cast<std::int64_t>(elapsed));
    }
    return Database::restore(std::move(entries),
                             std::move(documents));
}

} // namespace snap
} // namespace rememberr
