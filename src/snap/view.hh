/**
 * @file
 * Zero-copy snapshot reader.
 *
 * `SnapshotView::open` memory-maps a snapshot file and validates its
 * framing in O(1) — header, endianness, section table, per-section
 * count/length consistency — without touching the payload bytes.
 * After open the view answers scalar queries (keys, vendors,
 * category masks, counts) straight from the mapped records and hands
 * out `std::string_view`s into the mapped string table; nothing is
 * deserialized until a caller materializes an entry, a document or
 * the whole `Database`.
 *
 * Corruption is caught at two levels: the structural checks on open
 * reject truncated or mis-framed files with a structured error, and
 * `LoadOptions::verifyHash` (on by default) recomputes the header's
 * FNV-1a content hash over the section bytes — one linear pass, no
 * allocation — so bit rot inside a well-framed file is also
 * rejected at open rather than surfacing as garbage query results.
 */

#ifndef REMEMBERR_SNAP_VIEW_HH
#define REMEMBERR_SNAP_VIEW_HH

#include <cstdint>
#include <string>
#include <string_view>

#include "db/database.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "util/expected.hh"

namespace rememberr {
namespace snap {

/** Options for opening a snapshot; both instruments may be null. */
struct LoadOptions
{
    /** Recompute and check the content hash on open. */
    bool verifyHash = true;
    MetricsRegistry *metrics = nullptr;
    TraceRecorder *trace = nullptr;
};

/** A validated, memory-mapped (or memory-backed) snapshot. */
class SnapshotView
{
  public:
    /** Map a snapshot file. */
    static Expected<SnapshotView> open(const std::string &path,
                                       const LoadOptions &options = {});

    /** Adopt an in-memory snapshot (tests, pipelines). */
    static Expected<SnapshotView> fromBytes(std::string bytes,
                                            const LoadOptions &options = {});

    SnapshotView(SnapshotView &&other) noexcept;
    SnapshotView &operator=(SnapshotView &&other) noexcept;
    SnapshotView(const SnapshotView &) = delete;
    SnapshotView &operator=(const SnapshotView &) = delete;
    ~SnapshotView();

    std::size_t sizeBytes() const { return size_; }
    std::uint64_t contentHash() const { return contentHash_; }

    std::size_t entryCount() const { return entryCount_; }
    std::size_t documentCount() const { return documentCount_; }
    std::size_t stringCount() const { return stringCount_; }

    // ---- zero-copy scalar access (no allocation, no decode) ------

    std::uint32_t entryKey(std::size_t i) const;
    Vendor entryVendor(std::size_t i) const;
    WorkaroundClass entryWorkaroundClass(std::size_t i) const;
    FixStatus entryStatus(std::size_t i) const;
    CategorySet entryTriggers(std::size_t i) const;
    CategorySet entryContexts(std::size_t i) const;
    CategorySet entryEffects(std::size_t i) const;
    std::size_t entryOccurrenceCount(std::size_t i) const;
    std::string_view entryTitle(std::size_t i) const;

    /** String by interned id; a view into the mapped bytes. */
    std::string_view string(std::uint32_t id) const;

    /** Unique errata of a vendor, scanning only fixed records. */
    std::size_t uniqueCount(Vendor vendor) const;
    /** Collected rows of a vendor, scanning only fixed records. */
    std::size_t rowCount(Vendor vendor) const;

    // ---- materialization -----------------------------------------

    /** Deserialize one entry (with occurrences and MSRs). */
    DbEntry entry(std::size_t i) const;

    /** Deserialize one source document. */
    ErrataDocument document(std::size_t i) const;

    /**
     * Deserialize everything into a Database equal to the one the
     * snapshot was written from (the `--snapshot` fast path for
     * commands that want the full read API).
     */
    Database database() const;

  private:
    SnapshotView() = default;

    /** Validate framing over [data_, size_); fills the refs. */
    Expected<bool> validate();

    const unsigned char *data_ = nullptr;
    std::size_t size_ = 0;
    /** Non-null when the bytes are mmap-ed (owned mapping). */
    void *mapping_ = nullptr;
    /** Backing store when constructed from bytes. */
    std::string owned_;

    LoadOptions options_;
    std::uint64_t contentHash_ = 0;

    struct SectionRef
    {
        const unsigned char *data = nullptr;
        std::size_t size = 0;
    };
    SectionRef strings_;
    SectionRef entries_;
    SectionRef occurrences_;
    SectionRef msrs_;
    SectionRef documents_;

    std::uint32_t stringCount_ = 0;
    const unsigned char *stringOffsets_ = nullptr;
    const unsigned char *stringBlob_ = nullptr;
    std::size_t stringBlobSize_ = 0;

    std::uint32_t entryCount_ = 0;
    const unsigned char *entryRecords_ = nullptr;

    std::uint32_t occurrenceCount_ = 0;
    const unsigned char *occurrenceRecords_ = nullptr;

    std::uint32_t msrCount_ = 0;
    const unsigned char *msrRecords_ = nullptr;

    std::uint32_t documentCount_ = 0;
    const unsigned char *documentOffsets_ = nullptr;
    const unsigned char *documentBlob_ = nullptr;
    std::size_t documentBlobSize_ = 0;
};

} // namespace snap
} // namespace rememberr

#endif // REMEMBERR_SNAP_VIEW_HH
