#include "writer.hh"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <unordered_map>
#include <vector>

#include "format.hh"

namespace rememberr {
namespace snap {

std::string
hashHex(std::uint64_t value)
{
    char buffer[17];
    std::snprintf(buffer, sizeof(buffer), "%016llx",
                  static_cast<unsigned long long>(value));
    return buffer;
}

namespace {

/** Deduplicating string table builder. Id 0 is the empty string. */
class StringTable
{
  public:
    StringTable() { intern(std::string()); }

    std::uint32_t
    intern(const std::string &text)
    {
        auto [it, inserted] = ids_.emplace(
            text, static_cast<std::uint32_t>(strings_.size()));
        if (inserted)
            strings_.push_back(text);
        return it->second;
    }

    /** Serialize: count, offsets[count+1], blob. */
    std::string
    serialize() const
    {
        std::string out;
        storeU32(out, static_cast<std::uint32_t>(strings_.size()));
        storeU32(out, 0); // pad to 8
        std::uint32_t offset = 0;
        for (const std::string &s : strings_) {
            storeU32(out, offset);
            offset += static_cast<std::uint32_t>(s.size());
        }
        storeU32(out, offset);
        for (const std::string &s : strings_)
            out += s;
        return out;
    }

    std::size_t count() const { return strings_.size(); }

  private:
    std::unordered_map<std::string, std::uint32_t> ids_;
    std::vector<std::string> strings_;
};

void
storeMsrs(std::string &out, StringTable &strings,
          const std::vector<MsrRef> &msrs)
{
    for (const MsrRef &msr : msrs) {
        storeU32(out, strings.intern(msr.name));
        storeU32(out, msr.number);
    }
}

/**
 * One document payload. Field order must match
 * SnapshotView::materializeDocument exactly.
 */
std::string
serializeDocument(const ErrataDocument &doc, StringTable &strings)
{
    std::string out;
    out.push_back(static_cast<char>(doc.design.vendor));
    out.push_back(static_cast<char>(doc.design.variant));
    storeU16(out, 0);
    storeI32(out, doc.design.generation);
    storeI64(out, doc.design.releaseDate.serial());
    storeU32(out, strings.intern(doc.design.name));
    storeU32(out, strings.intern(doc.design.reference));
    storeU32(out, strings.intern(doc.sourcePath));
    storeU32(out, static_cast<std::uint32_t>(doc.revisions.size()));
    storeU32(out, static_cast<std::uint32_t>(doc.errata.size()));
    storeU32(out,
             static_cast<std::uint32_t>(doc.hiddenErrata.size()));

    for (const Revision &revision : doc.revisions) {
        storeI32(out, revision.number);
        storeI32(out, revision.sourceLine);
        storeI64(out, revision.date.serial());
        storeU32(out, strings.intern(revision.note));
        storeU32(out,
                 static_cast<std::uint32_t>(revision.addedIds.size()));
        for (const std::string &id : revision.addedIds)
            storeU32(out, strings.intern(id));
    }
    for (const std::string &id : doc.hiddenErrata)
        storeU32(out, strings.intern(id));

    for (const Erratum &erratum : doc.errata) {
        storeU32(out, strings.intern(erratum.localId));
        storeU32(out, strings.intern(erratum.title));
        storeU32(out, strings.intern(erratum.description));
        storeU32(out, strings.intern(erratum.implications));
        storeU32(out, strings.intern(erratum.workaroundText));
        out.push_back(static_cast<char>(erratum.workaroundClass));
        out.push_back(static_cast<char>(erratum.status));
        storeU16(out, 0);
        storeI32(out, erratum.addedInRevision);
        storeI32(out, erratum.sourceLine);
        storeU32(out,
                 static_cast<std::uint32_t>(erratum.msrs.size()));
        storeMsrs(out, strings, erratum.msrs);
        storeU32(out, static_cast<std::uint32_t>(
                          erratum.fieldLines.size()));
        // std::map iterates in key order, keeping output canonical.
        for (const auto &[field, line] : erratum.fieldLines) {
            storeU32(out, strings.intern(field));
            storeI32(out, line);
        }
    }
    return out;
}

void
padTo(std::string &out, std::size_t alignment)
{
    while (out.size() % alignment != 0)
        out.push_back('\0');
}

} // namespace

std::string
writeSnapshot(const Database &db, const WriteOptions &options)
{
    ScopedSpan span(options.trace, "snap.write");
    auto begin = std::chrono::steady_clock::now();

    StringTable strings;
    std::string entries;
    std::string occurrences;
    std::string msrs;
    std::uint32_t occurrenceCount = 0;
    std::uint32_t msrCount = 0;

    // Entries are laid out first so their string ids come before the
    // (many) document-only strings, but the string table itself is
    // serialized after everything interned into it.
    std::string entryRecords;
    for (const DbEntry &entry : db.entries()) {
        std::string &out = entryRecords;
        storeU32(out, entry.key);
        out.push_back(static_cast<char>(entry.vendor));
        out.push_back(static_cast<char>(entry.workaroundClass));
        out.push_back(static_cast<char>(entry.status));
        std::uint8_t flags = 0;
        if (entry.complexConditions)
            flags |= kFlagComplexConditions;
        if (entry.simulationOnly)
            flags |= kFlagSimulationOnly;
        out.push_back(static_cast<char>(flags));
        storeU64(out, entry.triggers.mask());
        storeU64(out, entry.contexts.mask());
        storeU64(out, entry.effects.mask());
        storeU32(out, strings.intern(entry.title));
        storeU32(out, strings.intern(entry.description));
        storeU32(out, strings.intern(entry.implications));
        storeU32(out, strings.intern(entry.workaroundText));
        storeU32(out, strings.intern(entry.rootCause));
        storeU32(out, msrCount);
        storeU32(out,
                 static_cast<std::uint32_t>(entry.msrs.size()));
        storeU32(out, occurrenceCount);
        storeU32(out, static_cast<std::uint32_t>(
                          entry.occurrences.size()));
        storeU32(out, 0); // pad to 72

        storeMsrs(msrs, strings, entry.msrs);
        msrCount += static_cast<std::uint32_t>(entry.msrs.size());
        for (const Occurrence &occurrence : entry.occurrences) {
            storeU32(occurrences,
                     static_cast<std::uint32_t>(
                         occurrence.docIndex));
            storeU32(occurrences,
                     strings.intern(occurrence.localId));
            storeI64(occurrences, occurrence.disclosed.serial());
        }
        occurrenceCount += static_cast<std::uint32_t>(
            entry.occurrences.size());
    }
    storeU32(entries,
             static_cast<std::uint32_t>(db.entries().size()));
    storeU32(entries, 0); // pad to 8
    entries += entryRecords;

    std::string occurrenceSection;
    storeU32(occurrenceSection, occurrenceCount);
    storeU32(occurrenceSection, 0);
    occurrenceSection += occurrences;

    std::string msrSection;
    storeU32(msrSection, msrCount);
    storeU32(msrSection, 0);
    msrSection += msrs;

    // Documents: framed payloads behind an offset table so a reader
    // can materialize one document without touching the others.
    std::string documentSection;
    {
        std::vector<std::string> payloads;
        payloads.reserve(db.documents().size());
        for (const ErrataDocument &doc : db.documents())
            payloads.push_back(serializeDocument(doc, strings));

        storeU32(documentSection, static_cast<std::uint32_t>(
                                      payloads.size()));
        storeU32(documentSection, 0);
        std::uint64_t offset = 0;
        for (const std::string &payload : payloads) {
            storeU64(documentSection, offset);
            offset += payload.size();
        }
        storeU64(documentSection, offset);
        for (const std::string &payload : payloads)
            documentSection += payload;
    }

    // Strings serialize last (every intern has happened), but land
    // first in the file so ids can be resolved while scanning.
    std::string stringSection = strings.serialize();

    struct Section
    {
        SectionId id;
        const std::string *payload;
    };
    const Section sections[] = {
        {SectionId::Strings, &stringSection},
        {SectionId::Entries, &entries},
        {SectionId::Occurrences, &occurrenceSection},
        {SectionId::Msrs, &msrSection},
        {SectionId::Documents, &documentSection},
    };
    constexpr std::size_t sectionCount =
        sizeof(sections) / sizeof(sections[0]);

    std::string file;
    file.append(reinterpret_cast<const char *>(kMagic), 8);
    storeU32(file, kVersion);
    storeU32(file, kEndianTag);
    storeU32(file, sectionCount);
    storeU32(file, static_cast<std::uint32_t>(kHeaderSize));
    const std::size_t hashAt = file.size();
    storeU64(file, 0); // content hash, patched below
    const std::size_t sizeAt = file.size();
    storeU64(file, 0); // file size, patched below

    // Section table with offsets computed by walking the payloads in
    // file order, each aligned to 8 bytes.
    std::size_t offset = kHeaderSize +
                         sectionCount * kSectionRecordSize;
    for (const Section &section : sections) {
        offset = (offset + kSectionAlignment - 1) &
                 ~(kSectionAlignment - 1);
        storeU32(file, static_cast<std::uint32_t>(section.id));
        storeU32(file, 0);
        storeU64(file, offset);
        storeU64(file, section.payload->size());
        offset += section.payload->size();
    }
    for (const Section &section : sections) {
        padTo(file, kSectionAlignment);
        file += *section.payload;
    }

    const std::size_t bodyAt = kHeaderSize +
                               sectionCount * kSectionRecordSize;
    std::uint64_t hash = fnv1a64(
        reinterpret_cast<const unsigned char *>(file.data()) + bodyAt,
        file.size() - bodyAt);
    patchU64(file, hashAt, hash);
    patchU64(file, sizeAt, file.size());

    if (options.metrics) {
        options.metrics->counter("snap.write.bytes")
            .add(file.size());
        options.metrics->counter("snap.write.entries")
            .add(db.entries().size());
        options.metrics->counter("snap.write.documents")
            .add(db.documents().size());
        options.metrics->counter("snap.write.strings")
            .add(strings.count());
        auto elapsed =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - begin)
                .count();
        options.metrics->gauge("snap.write.us")
            .set(static_cast<std::int64_t>(elapsed));
    }
    return file;
}

Expected<std::size_t>
writeSnapshotFile(const std::string &path, const Database &db,
                  const WriteOptions &options)
{
    std::string bytes = writeSnapshot(db, options);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out)
        return makeError("cannot write snapshot to " + path);
    return bytes.size();
}

std::uint64_t
snapshotContentHash(const std::string &bytes)
{
    constexpr std::size_t hashAt = 24;
    if (bytes.size() < kHeaderSize)
        return 0;
    return loadU64(reinterpret_cast<const unsigned char *>(
                       bytes.data()) +
                   hashAt);
}

} // namespace snap
} // namespace rememberr
