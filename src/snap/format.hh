/**
 * @file
 * Wire format of the binary database snapshot.
 *
 * A snapshot is a single little-endian file laid out for mmap-and-go
 * reading (see DESIGN.md §13):
 *
 *   header          fixed 40 bytes: magic, version, endian tag,
 *                   section count, content hash, file size
 *   section table   one 24-byte record per section: id, offset,
 *                   length — readers locate sections by id and skip
 *                   ids they do not understand
 *   sections        8-byte-aligned framed payloads
 *
 * Sections:
 *   Strings      every string in the database, deduplicated, as a
 *                (count, offsets[count+1], blob) table; all other
 *                sections refer to strings by u32 id
 *   Entries      fixed 72-byte records, one per unique erratum:
 *                scalar fields inline, strings as ids, occurrence
 *                and MSR runs as (offset, count) into the tables
 *   Occurrences  fixed 16-byte records, grouped per entry
 *   Msrs         fixed 8-byte records, grouped per entry/erratum
 *   Documents    (count, offsets[count+1], payloads): the complete
 *                source documents, framed per document so a reader
 *                touches only the documents it materializes
 *
 * Everything multi-byte is little-endian and accessed through the
 * memcpy load/store helpers below, so the format is well-defined on
 * any host and the reads are alignment-safe.
 */

#ifndef REMEMBERR_SNAP_FORMAT_HH
#define REMEMBERR_SNAP_FORMAT_HH

#include <cstdint>
#include <cstring>
#include <string>

namespace rememberr {
namespace snap {

/** File magic: "RMBRSNAP" as raw bytes. */
constexpr unsigned char kMagic[8] = {'R', 'M', 'B', 'R',
                                     'S', 'N', 'A', 'P'};

/** Current format version; readers reject anything else. */
constexpr std::uint32_t kVersion = 1;

/**
 * Endianness probe. A reader on a byte-swapped host would see
 * 0x4D3C2B1A and must reject the file instead of mis-decoding it.
 */
constexpr std::uint32_t kEndianTag = 0x1A2B3C4D;

constexpr std::size_t kHeaderSize = 40;
constexpr std::size_t kSectionRecordSize = 24;
constexpr std::size_t kSectionAlignment = 8;

/** Section identifiers. */
enum class SectionId : std::uint32_t
{
    Strings = 1,
    Entries = 2,
    Occurrences = 3,
    Msrs = 4,
    Documents = 5,
};

/** Fixed record sizes (documented layout; see writer.cc/view.cc). */
constexpr std::size_t kEntryRecordSize = 72;
constexpr std::size_t kOccurrenceRecordSize = 16;
constexpr std::size_t kMsrRecordSize = 8;

/** Entry record flag bits. */
constexpr std::uint8_t kFlagComplexConditions = 1u << 0;
constexpr std::uint8_t kFlagSimulationOnly = 1u << 1;

// ---- alignment-safe little-endian accessors ----------------------------

inline void
storeU16(std::string &out, std::uint16_t value)
{
    unsigned char bytes[2] = {
        static_cast<unsigned char>(value & 0xff),
        static_cast<unsigned char>(value >> 8),
    };
    out.append(reinterpret_cast<const char *>(bytes), 2);
}

inline void
storeU32(std::string &out, std::uint32_t value)
{
    unsigned char bytes[4];
    for (int i = 0; i < 4; ++i)
        bytes[i] = static_cast<unsigned char>(value >> (8 * i));
    out.append(reinterpret_cast<const char *>(bytes), 4);
}

inline void
storeU64(std::string &out, std::uint64_t value)
{
    unsigned char bytes[8];
    for (int i = 0; i < 8; ++i)
        bytes[i] = static_cast<unsigned char>(value >> (8 * i));
    out.append(reinterpret_cast<const char *>(bytes), 8);
}

inline void
storeI32(std::string &out, std::int32_t value)
{
    storeU32(out, static_cast<std::uint32_t>(value));
}

inline void
storeI64(std::string &out, std::int64_t value)
{
    storeU64(out, static_cast<std::uint64_t>(value));
}

/** Overwrite 8 bytes in place (for patching the header hash). */
inline void
patchU64(std::string &out, std::size_t at, std::uint64_t value)
{
    for (int i = 0; i < 8; ++i)
        out[at + i] = static_cast<char>(
            static_cast<unsigned char>(value >> (8 * i)));
}

inline std::uint16_t
loadU16(const unsigned char *p)
{
    return static_cast<std::uint16_t>(p[0] |
                                      (std::uint16_t{p[1]} << 8));
}

inline std::uint32_t
loadU32(const unsigned char *p)
{
    return p[0] | (std::uint32_t{p[1]} << 8) |
           (std::uint32_t{p[2]} << 16) | (std::uint32_t{p[3]} << 24);
}

inline std::uint64_t
loadU64(const unsigned char *p)
{
    return loadU32(p) | (std::uint64_t{loadU32(p + 4)} << 32);
}

inline std::int32_t
loadI32(const unsigned char *p)
{
    return static_cast<std::int32_t>(loadU32(p));
}

inline std::int64_t
loadI64(const unsigned char *p)
{
    return static_cast<std::int64_t>(loadU64(p));
}

/** FNV-1a 64-bit over a byte range (the snapshot content hash). */
inline std::uint64_t
fnv1a64(const unsigned char *data, std::size_t size,
        std::uint64_t state = 1469598103934665603ULL)
{
    for (std::size_t i = 0; i < size; ++i) {
        state ^= data[i];
        state *= 1099511628211ULL;
    }
    return state;
}

/** Render a 64-bit hash as 16 lower-case hex digits. */
std::string hashHex(std::uint64_t value);

} // namespace snap
} // namespace rememberr

#endif // REMEMBERR_SNAP_FORMAT_HH
