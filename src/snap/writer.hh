/**
 * @file
 * Snapshot writer: serialize a Database into the binary format of
 * format.hh.
 *
 * The writer interns every string once, lays the entries,
 * occurrences and MSR references out as fixed-width tables and
 * frames each source document separately, then stamps the header
 * with an FNV-1a content hash over all section bytes. The output is
 * a pure function of the database — bit-identical for bit-identical
 * inputs, independent of thread counts or pointer values — so the
 * hash doubles as a golden fingerprint for round-trip tests and CI.
 */

#ifndef REMEMBERR_SNAP_WRITER_HH
#define REMEMBERR_SNAP_WRITER_HH

#include <string>

#include "db/database.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "util/expected.hh"

namespace rememberr {
namespace snap {

/** Observability targets for a write; both may be null. */
struct WriteOptions
{
    MetricsRegistry *metrics = nullptr;
    TraceRecorder *trace = nullptr;
};

/** Serialize the database into snapshot bytes. */
std::string writeSnapshot(const Database &db,
                          const WriteOptions &options = {});

/**
 * Serialize and write to a file. Returns the byte count written on
 * success.
 */
Expected<std::size_t> writeSnapshotFile(const std::string &path,
                                        const Database &db,
                                        const WriteOptions &options = {});

/** The content hash stamped in a snapshot's header. */
std::uint64_t snapshotContentHash(const std::string &bytes);

} // namespace snap
} // namespace rememberr

#endif // REMEMBERR_SNAP_WRITER_HH
