/**
 * @file
 * The calibrated corpus generator.
 *
 * Produces the full set of 28 specification-update documents with
 * 2,563 collected errata rows (2,057 Intel / 506 AMD; 743 / 385
 * unique), labelled per the calibration tables and with the paper's
 * "errata in errata" defects injected. Fully deterministic for a
 * given seed.
 */

#ifndef REMEMBERR_CORPUS_GENERATOR_HH
#define REMEMBERR_CORPUS_GENERATOR_HH

#include <cstdint>

#include "corpus.hh"
#include "util/rng.hh"

namespace rememberr {

/** Generator tuning knobs beyond the calibrated distributions. */
struct GeneratorOptions
{
    std::uint64_t seed = 0x4e4e7e44c0ffeeULL;
    /** Mean days from design release to a bug's first report. */
    double discoveryMeanDays = 420.0;
    /** Probability that a bug is already reported at release. */
    double presentAtReleaseProbability = 0.28;
    /** Base probability of a backward-latent discovery order. */
    double backwardLatentProbability = 0.08;
    /** Extra backward-latent probability for discoveries falling in
     * 2014-2016 (the salient region of Figure 5). */
    double backwardLatentBoost2015 = 0.22;
    /** Mean days for a known bug to propagate to another document. */
    double propagationMeanDays = 150.0;
    /** Number of Intel duplicate pairs whose titles get a minor
     * phrasing variation (the 29 manually-confirmed pairs). */
    int titleVariantPairs = 29;
};

/** Generates a Corpus from the calibration plan. */
class CorpusGenerator
{
  public:
    explicit CorpusGenerator(GeneratorOptions options = {});

    /** Build the complete corpus. Deterministic per options.seed. */
    Corpus generate();

  private:
    void buildBugSkeletons(Corpus &corpus);
    void assignLabels(Corpus &corpus);
    void assignText(Corpus &corpus);
    void assignDates(Corpus &corpus);
    void assembleDocuments(Corpus &corpus);
    void injectDefects(Corpus &corpus);

    GeneratorOptions options_;
    Rng rng_;
};

/** Canonical register number for a generated MSR name. */
std::uint32_t canonicalMsrNumber(const std::string &name);

/** Convenience: generate with default options. */
Corpus generateDefaultCorpus(std::uint64_t seed = 0);

} // namespace rememberr

#endif // REMEMBERR_CORPUS_GENERATOR_HH
