#include "calibration.hh"

#include "util/logging.hh"

namespace rememberr {

namespace {

DocumentSpec
makeDoc(Vendor vendor, int generation, DesignVariant variant,
        const char *name, const char *reference, Date release,
        int interval_days)
{
    DocumentSpec spec;
    spec.design.vendor = vendor;
    spec.design.generation = generation;
    spec.design.variant = variant;
    spec.design.name = name;
    spec.design.reference = reference;
    spec.design.releaseDate = release;
    spec.revisionIntervalDays = interval_days;
    return spec;
}

} // namespace

const std::vector<DocumentSpec> &
documentInventory()
{
    static const std::vector<DocumentSpec> inventory = [] {
        std::vector<DocumentSpec> docs;
        const Vendor I = Vendor::Intel;
        const Vendor A = Vendor::Amd;
        const DesignVariant D = DesignVariant::Desktop;
        const DesignVariant M = DesignVariant::Mobile;
        const DesignVariant U = DesignVariant::Unified;

        // Intel Core generations (Table III, left column).
        docs.push_back(makeDoc(I, 1, D, "Core 1 (D)", "320836-037US",
                               Date(2008, 11, 17), 75));
        docs.push_back(makeDoc(I, 1, M, "Core 1 (M)", "322814-024US",
                               Date(2009, 9, 8), 85));
        docs.push_back(makeDoc(I, 2, D, "Core 2 (D)", "324643-037US",
                               Date(2011, 1, 9), 75));
        docs.push_back(makeDoc(I, 2, M, "Core 2 (M)", "324827-034US",
                               Date(2011, 1, 9), 80));
        docs.push_back(makeDoc(I, 3, D, "Core 3 (D)", "326766-022US",
                               Date(2012, 4, 29), 90));
        docs.push_back(makeDoc(I, 3, M, "Core 3 (M)", "326770-022US",
                               Date(2012, 4, 29), 90));
        docs.push_back(makeDoc(I, 4, D, "Core 4 (D)", "328899-039US",
                               Date(2013, 6, 4), 75));
        docs.push_back(makeDoc(I, 4, M, "Core 4 (M)", "328903-038US",
                               Date(2013, 6, 4), 78));
        docs.push_back(makeDoc(I, 5, D, "Core 5 (D)", "332381-023US",
                               Date(2015, 6, 1), 95));
        docs.push_back(makeDoc(I, 5, M, "Core 5 (M)", "330836-031US",
                               Date(2014, 10, 27), 85));
        docs.push_back(makeDoc(I, 6, U, "Core 6", "332689-028US",
                               Date(2015, 8, 5), 80));
        docs.push_back(makeDoc(I, 7, U, "Core 7/8", "334663-013US",
                               Date(2016, 8, 30), 110));
        docs.push_back(makeDoc(I, 8, U, "Core 8/9", "337346-002US",
                               Date(2017, 10, 5), 120));
        docs.push_back(makeDoc(I, 10, U, "Core 10", "615213-010US",
                               Date(2019, 8, 1), 100));
        docs.push_back(makeDoc(I, 11, U, "Core 11", "634808-008US",
                               Date(2020, 9, 2), 80));
        docs.push_back(makeDoc(I, 12, U, "Core 12", "682436-004US",
                               Date(2021, 11, 4), 60));

        // AMD families (Table III, right column).
        docs.push_back(makeDoc(A, 1, U, "Fam 10h 00-0F", "41322-3.84",
                               Date(2008, 4, 1), 240));
        docs.push_back(makeDoc(A, 2, U, "Fam 11h 00-0F", "41788-3.00",
                               Date(2008, 6, 4), 300));
        docs.push_back(makeDoc(A, 3, U, "Fam 12h 00-0F", "44739-3.10",
                               Date(2011, 6, 14), 300));
        docs.push_back(makeDoc(A, 4, U, "Fam 14h 00-0F", "47534-3.18",
                               Date(2011, 1, 4), 280));
        docs.push_back(makeDoc(A, 5, U, "Fam 15h 00-0F", "48063-3.24",
                               Date(2011, 10, 12), 260));
        docs.push_back(makeDoc(A, 6, U, "Fam 15h 10-1F", "48931-3.08",
                               Date(2012, 10, 2), 280));
        docs.push_back(makeDoc(A, 7, U, "Fam 15h 30-3F", "51603-1.06",
                               Date(2014, 1, 14), 300));
        docs.push_back(makeDoc(A, 8, U, "Fam 15h 70-7F", "55370-3.00",
                               Date(2015, 6, 1), 320));
        docs.push_back(makeDoc(A, 9, U, "Fam 16h 00-0F", "51810-3.06",
                               Date(2013, 5, 23), 300));
        docs.push_back(makeDoc(A, 10, U, "Fam 17h 00-0F", "55449-1.12",
                               Date(2017, 3, 2), 200));
        docs.push_back(makeDoc(A, 11, U, "Fam 17h 30-3F", "56323-0.78",
                               Date(2019, 7, 7), 200));
        docs.push_back(makeDoc(A, 12, U, "Fam 19h 00-0F", "56683-1.04",
                               Date(2020, 11, 5), 180));

        if (docs.size() != 28)
            REMEMBERR_PANIC("documentInventory: expected 28 docs");
        if (docs[firstAmdDocIndex].design.vendor != Vendor::Amd)
            REMEMBERR_PANIC("documentInventory: AMD offset wrong");
        return docs;
    }();
    return inventory;
}

Date
studyCutoffDate()
{
    return Date(2022, 6, 1);
}

namespace {

HeredityGroup
makeGroup(Vendor vendor, int count, const char *tag,
          std::vector<std::vector<int>> sets)
{
    HeredityGroup group;
    group.vendor = vendor;
    group.bugCount = count;
    group.tag = tag;
    group.docSets = std::move(sets);
    return group;
}

} // namespace

const std::vector<HeredityGroup> &
heredityPlan()
{
    static const std::vector<HeredityGroup> plan = [] {
        std::vector<HeredityGroup> groups;
        const Vendor I = Vendor::Intel;
        const Vendor A = Vendor::Amd;

        // Intel document indices:
        //   0:1D 1:1M 2:2D 3:2M 4:3D 5:3M 6:4D 7:4M 8:5D 9:5M
        //   10:Core6 11:Core7/8 12:Core8/9 13:Core10 14:Core11
        //   15:Core12

        // The single erratum first seen in Core 2 and identified 11
        // generations later (Core 12).
        groups.push_back(makeGroup(
            I, 1, "intel-gen2-to-12",
            {{2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}}));

        // The 6 bugs that stayed from Core 1 to Core 10.
        groups.push_back(makeGroup(
            I, 6, "intel-gen1-to-10",
            {{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13}}));

        // Together with the 7 bugs above, these make the 104 bugs
        // shared by ALL generations 6 to 10 (Figure 4).
        groups.push_back(makeGroup(I, 97, "intel-gen6-to-10",
                                   {{10, 11, 12, 13}}));

        // Three adjacent early generations, both variants (6 docs).
        groups.push_back(makeGroup(I, 50, "intel-6doc",
                                   {{0, 1, 2, 3, 4, 5},
                                    {2, 3, 4, 5, 6, 7},
                                    {4, 5, 6, 7, 8, 9}}));

        // Two adjacent early generations (both variants) or four
        // adjacent unified documents, avoiding a superset of the
        // exact 6..10 span.
        groups.push_back(makeGroup(I, 110, "intel-4doc",
                                   {{0, 1, 2, 3},
                                    {2, 3, 4, 5},
                                    {4, 5, 6, 7},
                                    {6, 7, 8, 9},
                                    {11, 12, 13, 14},
                                    {12, 13, 14, 15}}));

        groups.push_back(makeGroup(I, 85, "intel-3doc",
                                   {{8, 9, 10},
                                    {10, 11, 12},
                                    {11, 12, 13},
                                    {13, 14, 15}}));

        // Mostly same-generation Desktop/Mobile pairs ("Desktop and
        // mobile processors share the vast majority of bugs").
        groups.push_back(makeGroup(I, 171, "intel-2doc",
                                   {{0, 1},
                                    {2, 3},
                                    {4, 5},
                                    {6, 7},
                                    {8, 9},
                                    {0, 1},
                                    {2, 3},
                                    {4, 5},
                                    {6, 7},
                                    {8, 9},
                                    {10, 11},
                                    {11, 12},
                                    {13, 14},
                                    {14, 15}}));

        groups.push_back(makeGroup(I, 223, "intel-1doc",
                                   {{0}, {1}, {2}, {3}, {4}, {5},
                                    {6}, {7}, {8}, {9}, {10}, {11},
                                    {12}, {13}, {14}, {15}}));

        // AMD document indices are relative to firstAmdDocIndex:
        //   0:10h 1:11h 2:12h 3:14h 4:15h00 5:15h10 6:15h30 7:15h70
        //   8:16h 9:17h00 10:17h30 11:19h
        auto amdSet = [](std::vector<int> rel) {
            for (int &idx : rel)
                idx += static_cast<int>(firstAmdDocIndex);
            return rel;
        };

        groups.push_back(makeGroup(A, 20, "amd-3doc",
                                   {amdSet({4, 5, 6}),
                                    amdSet({5, 6, 7}),
                                    amdSet({9, 10, 11})}));

        groups.push_back(makeGroup(A, 81, "amd-2doc",
                                   {amdSet({4, 5}),
                                    amdSet({5, 6}),
                                    amdSet({6, 7}),
                                    amdSet({9, 10}),
                                    amdSet({10, 11}),
                                    amdSet({0, 1}),
                                    amdSet({2, 3})}));

        groups.push_back(makeGroup(A, 284, "amd-1doc",
                                   {amdSet({0}), amdSet({1}),
                                    amdSet({2}), amdSet({3}),
                                    amdSet({4}), amdSet({5}),
                                    amdSet({6}), amdSet({7}),
                                    amdSet({8}), amdSet({9}),
                                    amdSet({10}), amdSet({11})}));
        return groups;
    }();
    return plan;
}

CorpusTotals
planTotals()
{
    CorpusTotals totals;
    for (const HeredityGroup &group : heredityPlan()) {
        // Appearances: bugs are assigned doc sets round-robin.
        int appearances = 0;
        for (int i = 0; i < group.bugCount; ++i) {
            const auto &set =
                group.docSets[static_cast<std::size_t>(i) %
                              group.docSets.size()];
            appearances += static_cast<int>(set.size());
        }
        if (group.vendor == Vendor::Intel) {
            totals.intelUnique += group.bugCount;
            totals.intelAppearances += appearances;
        } else {
            totals.amdUnique += group.bugCount;
            totals.amdAppearances += appearances;
        }
    }
    return totals;
}

const LabelModel &
labelModel()
{
    static const LabelModel model;
    return model;
}

namespace {

/**
 * Base weights per abstract category, shared by both vendors. The
 * ranking encodes Figure 10 (trg_CFG_wrg, trg_POW_tht and
 * trg_POW_pwc on top), Figure 17 (ctx_PRV_vmg dominating) and
 * Figure 18 (eff_CRP_reg, eff_HNG_hng, eff_HNG_unp on top).
 */
double
baseWeight(const AbstractCategory &cat)
{
    const std::string &code = cat.code;
    // Triggers.
    if (code == "Trg_CFG_wrg") return 10.0;
    if (code == "Trg_POW_tht") return 8.5;
    if (code == "Trg_POW_pwc") return 8.0;
    if (code == "Trg_PRV_vmt") return 5.0;
    if (code == "Trg_FEA_dbg") return 4.5;
    if (code == "Trg_CFG_vmc") return 4.0;
    if (code == "Trg_EXT_pci") return 4.0;
    if (code == "Trg_FEA_cus") return 3.5;
    if (code == "Trg_EXT_ram") return 3.0;
    if (code == "Trg_MOP_mmp") return 3.0;
    if (code == "Trg_EXC_mca") return 2.5;
    if (code == "Trg_FEA_tra") return 2.5;
    if (code == "Trg_MOP_ptw") return 2.5;
    if (code == "Trg_EXT_rst") return 2.5;
    if (code == "Trg_FEA_fpu") return 2.0;
    if (code == "Trg_PRV_ret") return 2.0;
    if (code == "Trg_CFG_pag") return 2.0;
    if (code == "Trg_MOP_atp") return 1.8;
    if (code == "Trg_MOP_flc") return 1.8;
    if (code == "Trg_EXT_bus") return 1.6;
    if (code == "Trg_FEA_mon") return 1.5;
    if (code == "Trg_EXC_ovf") return 1.5;
    if (code == "Trg_MOP_spe") return 1.4;
    if (code == "Trg_EXT_iom") return 1.4;
    if (code == "Trg_MOP_fen") return 1.2;
    if (code == "Trg_MOP_seg") return 1.2;
    if (code == "Trg_MOP_nst") return 1.2;
    if (code == "Trg_EXC_tmr") return 1.2;
    if (code == "Trg_EXC_ill") return 1.0;
    if (code == "Trg_EXT_usb") return 1.0;
    if (code == "Trg_FEA_cid") return 1.0;
    if (code == "Trg_MBR_pgb") return 1.2;
    if (code == "Trg_MBR_cbr") return 1.0;
    if (code == "Trg_MBR_mbr") return 0.6;

    // Contexts.
    if (code == "Ctx_PRV_vmg") return 10.0;
    if (code == "Ctx_PRV_smm") return 4.0;
    if (code == "Ctx_PRV_vmh") return 3.5;
    if (code == "Ctx_PRV_boo") return 3.0;
    if (code == "Ctx_PRV_rea") return 2.0;
    if (code == "Ctx_FEA_sec") return 2.0;
    if (code == "Ctx_FEA_sgc") return 1.0;
    if (code == "Ctx_PHY_pkg") return 1.0;
    if (code == "Ctx_PHY_tmp") return 0.8;
    if (code == "Ctx_PHY_vol") return 0.7;

    // Effects.
    if (code == "Eff_CRP_reg") return 10.0;
    if (code == "Eff_HNG_hng") return 9.0;
    if (code == "Eff_HNG_unp") return 8.5;
    if (code == "Eff_FLT_mca") return 5.0;
    if (code == "Eff_HNG_crh") return 4.0;
    if (code == "Eff_FLT_fsp") return 3.5;
    if (code == "Eff_CRP_prf") return 3.5;
    if (code == "Eff_FLT_fms") return 2.5;
    if (code == "Eff_FLT_unc") return 2.0;
    if (code == "Eff_FLT_fid") return 1.8;
    if (code == "Eff_HNG_boo") return 1.5;
    if (code == "Eff_EXT_pci") return 1.5;
    if (code == "Eff_EXT_ram") return 1.2;
    if (code == "Eff_EXT_pow") return 1.0;
    if (code == "Eff_EXT_mmd") return 0.9;
    if (code == "Eff_EXT_usb") return 0.7;

    REMEMBERR_PANIC("baseWeight: unhandled category ", code);
}

} // namespace

double
categoryWeight(CategoryId id, Vendor vendor, int generation)
{
    const Taxonomy &taxonomy = Taxonomy::instance();
    const AbstractCategory &cat = taxonomy.categoryById(id);
    double weight = baseWeight(cat);
    const std::string &code = cat.code;
    const CategoryClass &cls = taxonomy.classById(cat.classId);

    if (vendor == Vendor::Intel) {
        // Figure 16: custom and tracing features clearly
        // over-represented at Intel.
        if (code == "Trg_FEA_cus")
            weight *= 2.2;
        if (code == "Trg_FEA_tra")
            weight *= 2.5;
        // Figure 15: Intel external stimuli lean to PCIe/USB/bus.
        if (code == "Trg_EXT_usb")
            weight *= 1.8;
        if (code == "Trg_EXT_pci")
            weight *= 1.3;

        // Figure 13: no memory-boundary triggers in the two latest
        // generations.
        if (cls.axis == Axis::Trigger && cls.suffix == "MBR" &&
            generation >= 11) {
            weight = 0.0;
        }
        // Feature triggers grow with generation, except the two
        // latest (documents still too young).
        if (cls.axis == Axis::Trigger && cls.suffix == "FEA") {
            if (generation <= 10)
                weight *= 1.0 + 0.08 * generation;
            else
                weight *= 0.8;
        }
        // Privilege-transition triggers gain importance in the
        // latest generation.
        if (cls.axis == Axis::Trigger && cls.suffix == "PRV" &&
            generation >= 12) {
            weight *= 2.0;
        }
    } else {
        // Figure 15: AMD external stimuli lean to DRAM/IOMMU/bus
        // (HyperTransport).
        if (code == "Trg_EXT_ram")
            weight *= 1.8;
        if (code == "Trg_EXT_iom")
            weight *= 2.0;
        if (code == "Trg_EXT_bus")
            weight *= 1.8;
        if (code == "Trg_EXT_usb")
            weight *= 0.5;
        // Figure 16: fewer custom/tracing feature triggers at AMD.
        if (code == "Trg_FEA_cus")
            weight *= 0.6;
        if (code == "Trg_FEA_tra")
            weight *= 0.35;
        // AMD's IBS makes counter effects a bit more prominent.
        if (code == "Eff_CRP_prf")
            weight *= 1.3;
    }
    return weight;
}

double
pairBoost(CategoryId a, CategoryId b)
{
    const Taxonomy &taxonomy = Taxonomy::instance();
    const std::string &ca = taxonomy.categoryById(a).code;
    const std::string &cb = taxonomy.categoryById(b).code;
    auto pairIs = [&](const char *x, const char *y) {
        return (ca == x && cb == y) || (ca == y && cb == x);
    };
    // Figure 12's salient intersections.
    if (pairIs("Trg_FEA_dbg", "Trg_PRV_vmt"))
        return 8.0;
    if (pairIs("Trg_EXT_ram", "Trg_POW_pwc"))
        return 5.0;
    if (pairIs("Trg_EXT_pci", "Trg_POW_pwc"))
        return 5.0;
    if (pairIs("Trg_CFG_wrg", "Trg_POW_tht"))
        return 3.0;
    if (pairIs("Trg_CFG_wrg", "Trg_POW_pwc"))
        return 2.5;
    if (pairIs("Trg_CFG_vmc", "Trg_PRV_vmt"))
        return 4.0;
    if (pairIs("Trg_CFG_wrg", "Trg_FEA_cus"))
        return 2.0;
    if (pairIs("Trg_MOP_ptw", "Trg_MOP_nst"))
        return 3.0;
    if (pairIs("Trg_EXT_rst", "Trg_EXT_pci"))
        return 2.5;
    return 1.0;
}

std::vector<double>
workaroundWeights(Vendor vendor)
{
    // Order follows the WorkaroundClass enum:
    //   None, Bios, Software, Peripherals, Absent, DocumentationFix.
    if (vendor == Vendor::Intel) {
        // None pinned at 35.9% of unique errata.
        return {35.9, 24.0, 20.0, 4.6, 15.0, 0.5};
    }
    // AMD: None pinned at 28.9%.
    return {28.9, 31.0, 26.0, 3.6, 10.0, 0.5};
}

double
fixProbability(Vendor vendor, int generation)
{
    // Figure 7: the vast majority of bugs are never fixed; Intel
    // shows a weak increasing trend in the latest generations.
    if (vendor == Vendor::Intel)
        return generation >= 10 ? 0.18 : 0.07;
    return 0.06;
}

const DefectCounts &
defectCounts()
{
    static const DefectCounts counts;
    return counts;
}

} // namespace rememberr
