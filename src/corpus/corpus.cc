#include "corpus.hh"

#include "util/logging.hh"

namespace rememberr {

std::string_view
defectKindName(DefectKind kind)
{
    switch (kind) {
      case DefectKind::DuplicateRevisionClaim:
        return "DuplicateRevisionClaim";
      case DefectKind::MissingFromNotes:
        return "MissingFromNotes";
      case DefectKind::ReusedName:
        return "ReusedName";
      case DefectKind::MissingField:
        return "MissingField";
      case DefectKind::DuplicateField:
        return "DuplicateField";
      case DefectKind::WrongMsrNumber:
        return "WrongMsrNumber";
      case DefectKind::IntraDocDuplicate:
        return "IntraDocDuplicate";
      case DefectKind::StatusRegression:
        return "StatusRegression";
      case DefectKind::DivergentWorkaround:
        return "DivergentWorkaround";
      case DefectKind::DanglingReference:
        return "DanglingReference";
    }
    REMEMBERR_PANIC("defectKindName: bad kind");
}

std::uint32_t
Corpus::bugOfRow(int doc_index, int position) const
{
    auto it = rowToBug.find({doc_index, position});
    if (it == rowToBug.end())
        REMEMBERR_PANIC("bugOfRow: unknown row ", doc_index, ":",
                        position);
    return it->second;
}

std::size_t
Corpus::totalRows(Vendor vendor) const
{
    std::size_t rows = 0;
    for (const ErrataDocument &doc : documents) {
        if (doc.design.vendor == vendor)
            rows += doc.errata.size();
    }
    return rows;
}

std::size_t
Corpus::uniqueBugs(Vendor vendor) const
{
    std::size_t count = 0;
    for (const BugSpec &bug : bugs) {
        if (bug.vendor == vendor)
            ++count;
    }
    return count;
}

} // namespace rememberr
