/**
 * @file
 * The generated corpus: documents plus ground truth.
 *
 * The ground truth (bug identities, category labels, injected
 * defects) is what the paper's authors reconstructed by hand from the
 * vendor PDFs; here it is available directly so the pipeline stages
 * (dedup, classification, lint) can be evaluated against it.
 */

#ifndef REMEMBERR_CORPUS_CORPUS_HH
#define REMEMBERR_CORPUS_CORPUS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "model/erratum.hh"
#include "model/types.hh"
#include "taxonomy/taxonomy.hh"
#include "util/date.hh"

namespace rememberr {

/** Ground-truth description of one unique bug. */
struct BugSpec
{
    /** Unique bug identity; duplicates share it. */
    std::uint32_t bugKey = 0;
    Vendor vendor = Vendor::Intel;
    /** Affected document indices (into documentInventory()). */
    std::vector<int> docIndices;
    /** Conjunctive triggers; empty = "no clear trigger" (14.4%). */
    CategorySet triggers;
    /** Disjunctive contexts; may be empty. */
    CategorySet contexts;
    /** Disjunctive observable effects; at least one. */
    CategorySet effects;
    bool complexConditions = false;
    bool simulationOnly = false;
    WorkaroundClass workaroundClass = WorkaroundClass::None;
    FixStatus fixStatus = FixStatus::NoFix;
    std::vector<MsrRef> msrs;
    std::string title;
    std::string description;
    std::string implications;
    std::string workaroundText;
    /** First report date anywhere. */
    Date discoveryDate;
    /** Report date per affected document index. */
    std::map<int, Date> reportDates;
    /** Heredity-plan group tag (diagnostics). */
    std::string groupTag;
    /** True when the discovery happened on the newest affected
     * design first (backward-latent seed). */
    bool discoveredOnNewest = false;
};

/**
 * Kinds of injected document defects ("errata in errata"). The first
 * seven are per-document; the remaining kinds are cross-document and
 * only detectable with the whole corpus (and its dedup clusters) in
 * hand.
 */
enum class DefectKind : std::uint8_t
{
    DuplicateRevisionClaim, ///< two revisions claim the same erratum
    MissingFromNotes,       ///< erratum absent from revision notes
    ReusedName,             ///< one name refers to two errata
    MissingField,           ///< a mandatory field is empty
    DuplicateField,         ///< a field duplicates another verbatim
    WrongMsrNumber,         ///< MSR number contradicts its name
    IntraDocDuplicate,      ///< same erratum twice in one document
    StatusRegression,       ///< a duplicate regresses Fixed -> NoFix
    DivergentWorkaround,    ///< duplicates disagree on the workaround
    DanglingReference,      ///< notes reference a nonexistent erratum
};

/**
 * Number of DefectKind values. Tables indexed by DefectKind size
 * themselves with this so a new kind cannot silently fall outside
 * any counter.
 */
constexpr std::size_t kDefectKindCount = 10;

std::string_view defectKindName(DefectKind kind);

/** Ledger entry for one injected defect. */
struct DefectRecord
{
    DefectKind kind = DefectKind::MissingFromNotes;
    int docIndex = 0;
    /** Local ids involved (one or two, depending on the kind). */
    std::vector<std::string> localIds;
};

/** The complete generated corpus. */
struct Corpus
{
    /** Documents, aligned with documentInventory() indices. */
    std::vector<ErrataDocument> documents;
    /** Ground-truth unique bugs, indexed by bugKey. */
    std::vector<BugSpec> bugs;
    /**
     * Ground truth: (document index, row position) -> bug index.
     * Positions key the map because local ids are not unique under
     * the ReusedName defect.
     */
    std::map<std::pair<int, int>, std::uint32_t> rowToBug;

    /** Bug index of one row; panics on unknown rows. */
    std::uint32_t bugOfRow(int doc_index, int position) const;
    /** Injected defects, for evaluating the linter. */
    std::vector<DefectRecord> defects;

    /** Total collected rows (duplicates counted individually). */
    std::size_t totalRows(Vendor vendor) const;
    /** Number of unique bugs of a vendor. */
    std::size_t uniqueBugs(Vendor vendor) const;
};

} // namespace rememberr

#endif // REMEMBERR_CORPUS_CORPUS_HH
