#include "phrasebank.hh"

#include "util/logging.hh"

namespace rememberr {

const PhraseBank &
PhraseBank::instance()
{
    static const PhraseBank bank;
    return bank;
}

const std::vector<ConcretePhrase> &
PhraseBank::phrasesFor(CategoryId id) const
{
    if (id >= phrases_.size())
        REMEMBERR_PANIC("PhraseBank: bad category id ", id);
    return phrases_[id];
}

const std::vector<std::string> &
PhraseBank::subjectNouns() const
{
    return subjectNouns_;
}

const std::vector<std::string> &
PhraseBank::defectClauses() const
{
    return defectClauses_;
}

const std::vector<std::string> &
PhraseBank::machineCheckMsrs() const
{
    return machineCheckMsrs_;
}

const std::vector<std::string> &
PhraseBank::ibsMsrs() const
{
    return ibsMsrs_;
}

const std::vector<std::string> &
PhraseBank::performanceMsrs() const
{
    return performanceMsrs_;
}

const std::vector<std::string> &
PhraseBank::configMsrs() const
{
    return configMsrs_;
}

PhraseBank::PhraseBank()
{
    const Taxonomy &taxonomy = Taxonomy::instance();
    phrases_.resize(taxonomy.categoryCount());

    auto add = [&](const char *code, const char *text,
                   const char *title, bool explicit_phrase = true) {
        auto id = taxonomy.parseCategory(code);
        if (!id)
            REMEMBERR_PANIC("PhraseBank: unknown category ", code);
        phrases_[*id].push_back(
            ConcretePhrase{text, title, explicit_phrase});
    };

    // ---- Trigger phrases (Table IV) --------------------------------

    add("Trg_MBR_cbr",
        "a load operation crosses a cache line boundary",
        "Cache Line Split Access");
    add("Trg_MBR_cbr",
        "a misaligned store spans two cache lines",
        "Misaligned Store Across Cache Lines");
    add("Trg_MBR_cbr",
        "a locked access straddles a cache line boundary",
        "Split Lock Operation", false);

    add("Trg_MBR_pgb",
        "a memory access crosses a page boundary",
        "Page Boundary Crossing Access");
    add("Trg_MBR_pgb",
        "an instruction fetch wraps across a 4-KByte page boundary",
        "Instruction Fetch at Page Boundary");
    add("Trg_MBR_pgb",
        "a data access ends on the last byte of a page",
        "Access at Page End", false);

    add("Trg_MBR_mbr",
        "a memory reference targets the canonical address boundary",
        "Canonical Address Boundary Access");
    add("Trg_MBR_mbr",
        "an access wraps around the memory map limit",
        "Address Wrap at Memory Map Boundary");

    add("Trg_MOP_mmp",
        "software accesses a memory-mapped APIC register",
        "Memory-Mapped APIC Access");
    add("Trg_MOP_mmp",
        "a write targets a memory-mapped I/O range",
        "Memory-Mapped I/O Write");
    add("Trg_MOP_mmp",
        "a read from an uncacheable memory-mapped device region "
        "is outstanding",
        "Uncacheable Device Read", false);

    add("Trg_MOP_atp",
        "a locked read-modify-write operation executes",
        "Locked Atomic Operation");
    add("Trg_MOP_atp",
        "a transactional memory region aborts",
        "Transactional Abort");
    add("Trg_MOP_atp",
        "an atomic compare-and-exchange targets write-back memory",
        "Atomic Compare-Exchange", false);

    add("Trg_MOP_fen",
        "a memory fence instruction retires",
        "Memory Fence Retirement");
    add("Trg_MOP_fen",
        "a serializing instruction executes between the two accesses",
        "Serializing Instruction Sequence");

    add("Trg_MOP_seg",
        "a segment register is loaded with a null selector",
        "Null Segment Selector Load");
    add("Trg_MOP_seg",
        "code executes with a 16-bit segment mode",
        "16-Bit Segment Operation", false);

    add("Trg_MOP_ptw",
        "the core performs a page table walk",
        "Page Table Walk");
    add("Trg_MOP_ptw",
        "a page table walk sets the accessed bit",
        "Accessed Bit Update During Walk");
    add("Trg_MOP_ptw",
        "a walk encounters a not-present page directory entry",
        "Not-Present PDE During Walk", false);

    add("Trg_MOP_nst",
        "an address is translated through nested page tables",
        "Nested Page Table Translation");
    add("Trg_MOP_nst",
        "a guest access requires a nested table walk",
        "Nested Walk for Guest Access");

    add("Trg_MOP_flc",
        "a cache line is flushed with CLFLUSH",
        "Cache Line Flush");
    add("Trg_MOP_flc",
        "a TLB invalidation executes on another logical processor",
        "Remote TLB Invalidation");
    add("Trg_MOP_flc",
        "the entire cache hierarchy is flushed with WBINVD",
        "Cache Writeback and Invalidate", false);

    add("Trg_MOP_spe",
        "a speculative load executes past a mispredicted branch",
        "Speculative Load Execution");
    add("Trg_MOP_spe",
        "a speculatively executed memory operation is cancelled",
        "Cancelled Speculative Access");

    add("Trg_EXC_ovf",
        "a performance counter overflows",
        "Performance Counter Overflow");
    add("Trg_EXC_ovf",
        "the fixed-function counter wraps around",
        "Fixed Counter Wraparound", false);

    add("Trg_EXC_tmr",
        "the APIC timer fires in one-shot mode",
        "APIC Timer Expiration");
    add("Trg_EXC_tmr",
        "a timer event arrives during the window",
        "Timer Event Arrival", false);

    add("Trg_EXC_mca",
        "a machine check exception is signalled",
        "Machine Check Signalling");
    add("Trg_EXC_mca",
        "a corrected error triggers a machine check event",
        "Corrected Machine Check Event");

    add("Trg_EXC_ill",
        "an illegal instruction raises an undefined opcode fault",
        "Illegal Opcode Execution");
    add("Trg_EXC_ill",
        "an undefined opcode is fetched behind the faulting "
        "instruction",
        "Undefined Opcode Fetch", false);

    add("Trg_PRV_ret",
        "the processor resumes from System Management Mode via RSM",
        "SMM Resume");
    add("Trg_PRV_ret",
        "a return to the operating system follows an SMI handler",
        "Return From SMI Handler", false);

    add("Trg_PRV_vmt",
        "a VM exit transfers control to the hypervisor",
        "VM Exit Transition");
    add("Trg_PRV_vmt",
        "a VM entry to the guest completes",
        "VM Entry Transition");
    add("Trg_PRV_vmt",
        "a world switch between host and guest occurs",
        "World Switch", false);

    add("Trg_CFG_pag",
        "software changes the paging mode by writing CR0 or CR4",
        "Paging Mode Change");
    add("Trg_CFG_pag",
        "a global page mapping is modified",
        "Global Page Remapping", false);

    add("Trg_CFG_vmc",
        "the virtual machine control structure is reconfigured",
        "VMCS Field Reconfiguration");
    add("Trg_CFG_vmc",
        "the hypervisor modifies an intercept control while the "
        "guest is running",
        "Intercept Control Update", false);

    add("Trg_CFG_wrg",
        "software writes a model specific register with a reserved "
        "encoding",
        "Reserved MSR Encoding Write");
    add("Trg_CFG_wrg",
        "a configuration register is programmed to a non-default "
        "value",
        "Non-Default Configuration Register");
    add("Trg_CFG_wrg",
        "WRMSR updates the control register while the feature is "
        "active",
        "MSR Update While Active");

    add("Trg_POW_pwc",
        "the core resumes from the C6 power state",
        "C6 Power State Exit");
    add("Trg_POW_pwc",
        "a package C-state transition is in progress",
        "Package C-State Transition");
    add("Trg_POW_pwc",
        "the processor enters a deep sleep state",
        "Deep Sleep Entry", false);

    add("Trg_POW_tht",
        "thermal throttling engages under sustained load",
        "Thermal Throttling Engagement");
    add("Trg_POW_tht",
        "the supply voltage droops below the specified threshold",
        "Voltage Droop Condition");
    add("Trg_POW_tht",
        "the power limit is exceeded and frequency is reduced",
        "Power Limit Throttling", false);

    add("Trg_EXT_rst",
        "a warm reset is applied to the processor",
        "Warm Reset Application");
    add("Trg_EXT_rst",
        "a cold reset occurs while the link is training",
        "Cold Reset During Link Training");

    add("Trg_EXT_pci",
        "a PCIe device issues a posted write upstream",
        "PCIe Posted Write");
    add("Trg_EXT_pci",
        "ongoing PCIe traffic saturates the link",
        "Saturated PCIe Link");
    add("Trg_EXT_pci",
        "a PCIe hot-plug event is signalled",
        "PCIe Hot-Plug Event", false);

    add("Trg_EXT_usb",
        "a USB controller schedules an isochronous transfer",
        "USB Isochronous Transfer");
    add("Trg_EXT_usb",
        "USB traffic resumes from a suspended port",
        "USB Port Resume", false);

    add("Trg_EXT_ram",
        "the DRAM is configured with a non-power-of-two rank count",
        "Unusual DRAM Rank Configuration");
    add("Trg_EXT_ram",
        "DDR refresh commands coincide with the access burst",
        "Refresh Collision With Burst");

    add("Trg_EXT_iom",
        "a device access is remapped through the IOMMU",
        "IOMMU Remapped Access");
    add("Trg_EXT_iom",
        "an IOMMU translation fault is reported",
        "IOMMU Translation Fault", false);

    add("Trg_EXT_bus",
        "a system bus transaction is retried on the coherent fabric",
        "Coherent Fabric Retry");
    add("Trg_EXT_bus",
        "a HyperTransport probe races with the local access",
        "HyperTransport Probe Race");

    add("Trg_FEA_fpu",
        "execution of the FSAVE, FNSAVE, FSTENV, or FNSTENV "
        "instructions",
        "x87 State Save Instruction");
    add("Trg_FEA_fpu",
        "a floating-point instruction incurs an unmasked exception",
        "Unmasked Floating-Point Exception");
    add("Trg_FEA_fpu",
        "an x87 non-control instruction updates the FPU data pointer",
        "FPU Data Pointer Update", false);

    add("Trg_FEA_dbg",
        "a hardware breakpoint matches on the instruction",
        "Hardware Breakpoint Match");
    add("Trg_FEA_dbg",
        "single-step debugging is enabled via the trap flag",
        "Single-Step Debug Operation");
    add("Trg_FEA_dbg",
        "a debug register is reprogrammed inside the handler",
        "Debug Register Reprogramming", false);

    add("Trg_FEA_cid",
        "software queries the CPUID leaf for topology information",
        "CPUID Topology Query");
    add("Trg_FEA_cid",
        "the CPUID instruction reports the extended feature flags",
        "CPUID Feature Report", false);

    add("Trg_FEA_mon",
        "a MONITOR/MWAIT pair arms the address monitor",
        "MONITOR/MWAIT Arming");
    add("Trg_FEA_mon",
        "MWAIT enters an implementation-specific optimized state",
        "MWAIT Optimized State", false);

    add("Trg_FEA_tra",
        "processor trace packets are generated for the region",
        "Processor Trace Generation");
    add("Trg_FEA_tra",
        "branch trace messages are enabled",
        "Branch Trace Messaging", false);

    add("Trg_FEA_cus",
        "an SSE shuffle instruction executes with a memory operand",
        "SSE Shuffle With Memory Operand");
    add("Trg_FEA_cus",
        "an MMX instruction follows the x87 state transition",
        "MMX After x87 Transition");
    add("Trg_FEA_cus",
        "the custom accelerator feature processes a descriptor",
        "Accelerator Descriptor Processing", false);

    // ---- Context phrases (Table V) ---------------------------------

    add("Ctx_PRV_boo",
        "during BIOS initialization before memory training completes",
        "Early BIOS Initialization");
    add("Ctx_PRV_boo",
        "while the platform is booting",
        "Platform Boot", false);

    add("Ctx_PRV_vmg",
        "while operating as a virtual machine guest",
        "Virtual Machine Guest Operation");
    add("Ctx_PRV_vmg",
        "when executed inside a virtualized environment",
        "Virtualized Execution");

    add("Ctx_PRV_rea",
        "in real-address mode or virtual-8086 mode",
        "Real-Address Mode Operation");
    add("Ctx_PRV_rea",
        "while the processor operates in real mode",
        "Real Mode Operation");

    add("Ctx_PRV_vmh",
        "while operating as a hypervisor with virtualization "
        "extensions enabled",
        "Hypervisor Operation");
    add("Ctx_PRV_vmh",
        "when host software manages guest state",
        "Host-Mode Management", false);

    add("Ctx_PRV_smm",
        "while the processor is in System Management Mode",
        "System Management Mode");
    add("Ctx_PRV_smm",
        "inside the SMM handler",
        "SMM Handler Execution", false);

    add("Ctx_FEA_sec",
        "with the memory encryption security feature enabled",
        "Memory Encryption Enabled");
    add("Ctx_FEA_sec",
        "when a secure enclave is active",
        "Active Secure Enclave");

    add("Ctx_FEA_sgc",
        "in a single-core configuration with other cores disabled",
        "Single-Core Configuration");
    add("Ctx_FEA_sgc",
        "when only one core is enabled by fuse or BIOS",
        "One Active Core", false);

    add("Ctx_PHY_pkg",
        "on packages with the specific land grid array",
        "Package-Specific Condition");
    add("Ctx_PHY_pkg",
        "only for the embedded package variant",
        "Embedded Package Variant", false);

    add("Ctx_PHY_tmp",
        "at operating temperatures near the specification limit",
        "Near-Limit Temperature");
    add("Ctx_PHY_tmp",
        "under specific temperature conditions",
        "Specific Temperature Conditions", false);

    add("Ctx_PHY_vol",
        "at the minimum specified operating voltage",
        "Minimum Operating Voltage");
    add("Ctx_PHY_vol",
        "under specific voltage conditions",
        "Specific Voltage Conditions", false);

    // ---- Effect phrases (Table VI) ---------------------------------

    add("Eff_HNG_unp",
        "unpredictable system behavior may occur",
        "Unpredictable Behavior");
    add("Eff_HNG_unp",
        "the processor may operate with incorrect data",
        "Incorrect Operation", false);

    add("Eff_HNG_hng",
        "the processor may hang",
        "Processor Hang");
    add("Eff_HNG_hng",
        "the system may stop responding",
        "System Unresponsive");

    add("Eff_HNG_crh",
        "the system may crash or reset",
        "System Crash");
    add("Eff_HNG_crh",
        "an unexpected shutdown may result",
        "Unexpected Shutdown", false);

    add("Eff_HNG_boo",
        "the platform may fail to boot",
        "Boot Failure");
    add("Eff_HNG_boo",
        "the system may not complete its power-on sequence",
        "Power-On Sequence Failure", false);

    add("Eff_FLT_mca",
        "a machine check exception may be generated",
        "Machine Check Exception");
    add("Eff_FLT_mca",
        "an MCE with an incorrect error code may be logged",
        "MCE With Incorrect Code");

    add("Eff_FLT_unc",
        "an uncorrectable error may be reported",
        "Uncorrectable Error Report");
    add("Eff_FLT_unc",
        "data may be marked as uncorrectable",
        "Uncorrectable Data Marking", false);

    add("Eff_FLT_fsp",
        "a spurious page fault may be reported",
        "Spurious Page Fault");
    add("Eff_FLT_fsp",
        "an unexpected general protection fault may be raised",
        "Unexpected General Protection Fault");

    add("Eff_FLT_fms",
        "an expected fault may not be delivered",
        "Missing Fault Delivery");
    add("Eff_FLT_fms",
        "the debug exception may be lost",
        "Lost Debug Exception", false);

    add("Eff_FLT_fid",
        "the fault may be reported with a wrong error code",
        "Wrong Fault Error Code");
    add("Eff_FLT_fid",
        "exceptions may be delivered out of order",
        "Out-of-Order Exception Delivery", false);

    add("Eff_CRP_prf",
        "the performance counter may contain a wrong count",
        "Wrong Performance Count");
    add("Eff_CRP_prf",
        "performance monitoring events may be over-counted",
        "Performance Event Overcount");

    add("Eff_CRP_reg",
        "the model specific register may hold an incorrect value",
        "Incorrect MSR Value");
    add("Eff_CRP_reg",
        "a stale value may be saved into the status register",
        "Stale Status Register Value");
    add("Eff_CRP_reg",
        "may save an incorrect value for the x87 FDP",
        "Incorrect x87 FDP Save", false);

    add("Eff_EXT_pci",
        "a malformed transaction may be observed on the PCIe link",
        "Malformed PCIe Transaction");
    add("Eff_EXT_pci",
        "the PCIe link may retrain unexpectedly",
        "Unexpected PCIe Link Retrain", false);

    add("Eff_EXT_usb",
        "USB devices may disconnect unexpectedly",
        "Unexpected USB Disconnect");
    add("Eff_EXT_usb",
        "the USB controller may drop the transfer",
        "Dropped USB Transfer", false);

    add("Eff_EXT_mmd",
        "audio or graphics corruption may be visible",
        "Multimedia Corruption");
    add("Eff_EXT_mmd",
        "display artifacts may appear",
        "Display Artifacts", false);

    add("Eff_EXT_ram",
        "abnormal DRAM traffic may be issued",
        "Abnormal DRAM Traffic");
    add("Eff_EXT_ram",
        "memory may be written with incorrect ECC",
        "Incorrect ECC Write", false);

    add("Eff_EXT_pow",
        "power consumption may exceed the specified envelope",
        "Excess Power Consumption");
    add("Eff_EXT_pow",
        "the package may fail to reach the low-power state",
        "Low-Power State Not Reached", false);

    // Every category must have at least one explicit phrase.
    for (CategoryId id = 0; id < taxonomy.categoryCount(); ++id) {
        bool explicitFound = false;
        for (const auto &phrase : phrases_[id])
            explicitFound |= phrase.explicitPhrase;
        if (!explicitFound)
            REMEMBERR_PANIC("PhraseBank: no explicit phrase for ",
                            taxonomy.categoryById(id).code);
    }

    subjectNouns_ = {
        "Instruction Fetch", "Data Cache", "Store Buffer",
        "Translation Lookaside Buffer", "Branch Predictor",
        "Interrupt Controller", "Memory Controller", "Core Clock",
        "Retirement Unit", "Load Queue", "Prefetcher",
        "Last Level Cache", "Integrated Graphics", "Voltage Regulator",
        "Microcode Sequencer", "Op Cache", "Instruction Cache",
        "Write Combining Buffer", "Snoop Filter", "Power Control Unit",
    };

    defectClauses_ = {
        "May Be Corrupted", "May Cause Unexpected Results",
        "May Hang the Processor", "May Report Incorrect Values",
        "May Not Operate as Expected", "May Lead to a System Reset",
        "May Be Saved Incorrectly", "May Signal a Spurious Fault",
        "May Miss an Expected Event", "May Violate Ordering Rules",
    };

    machineCheckMsrs_ = {
        "MC0_STATUS", "MC1_STATUS", "MC2_STATUS", "MC3_STATUS",
        "MC4_STATUS", "MC0_ADDR",   "MC1_ADDR",   "MC4_ADDR",
    };

    ibsMsrs_ = {
        "IBS_FETCH_CTL", "IBS_FETCH_LINADDR", "IBS_OP_CTL",
        "IBS_OP_DATA",
    };

    performanceMsrs_ = {
        "PERF_CTR0", "PERF_CTR1", "FIXED_CTR0", "PERF_GLOBAL_STATUS",
    };

    configMsrs_ = {
        "MISC_ENABLE", "PLATFORM_INFO", "TURBO_RATIO_LIMIT",
        "PKG_CST_CONFIG", "SMM_BASE", "EFER", "PAT", "MTRR_DEF_TYPE",
    };
}

} // namespace rememberr
