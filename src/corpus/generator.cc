#include "generator.hh"

#include <algorithm>
#include <cmath>
#include <set>

#include "calibration.hh"
#include "phrasebank.hh"
#include "util/logging.hh"
#include "util/strings.hh"

namespace rememberr {

namespace {

/** Intel document-local erratum id prefixes, one per Intel doc. */
const char *const intelPrefixes[16] = {
    "AAJ", "AAT", "BJ",  "BK",  "BV",  "BW",  "HSD", "HSM",
    "BDD", "BDM", "SKL", "KBL", "CFL", "CML", "TGL", "ADL",
};

/** Exponential deviate with the given mean. */
double
nextExponential(Rng &rng, double mean)
{
    double u;
    do {
        u = rng.nextDouble();
    } while (u <= 0.0);
    return -mean * std::log(u);
}

/** Sample k distinct categories from an axis using the calibrated
 * marginal weights, applying pair boosts to already-picked ones. */
CategorySet
sampleCategories(Rng &rng, Axis axis, Vendor vendor, int generation,
                 std::size_t k, bool apply_boost)
{
    const Taxonomy &taxonomy = Taxonomy::instance();
    std::vector<CategoryId> ids = taxonomy.categoriesOfAxis(axis);
    CategorySet picked;
    for (std::size_t round = 0; round < k; ++round) {
        std::vector<double> weights(ids.size(), 0.0);
        double total = 0.0;
        for (std::size_t i = 0; i < ids.size(); ++i) {
            if (picked.contains(ids[i]))
                continue;
            double w = categoryWeight(ids[i], vendor, generation);
            if (apply_boost) {
                for (CategoryId prev : picked.toVector())
                    w *= pairBoost(prev, ids[i]);
            }
            weights[i] = w;
            total += w;
        }
        if (total <= 0.0)
            break;
        picked.insert(ids[rng.nextWeighted(weights)]);
    }
    return picked;
}

std::string
hexMsrNumber(std::uint32_t number)
{
    char buf[16];
    std::snprintf(buf, sizeof(buf), "0x%X", number);
    return buf;
}

/** Produce a near-identical phrasing variant of a title. */
std::string
variantTitle(const std::string &title)
{
    if (title.find("May ") != std::string::npos)
        return strings::replaceAll(title, "May ", "Might ");
    return title + " in Specific Cases";
}

} // namespace

std::uint32_t
canonicalMsrNumber(const std::string &name)
{
    // FNV-1a over the name, folded into a plausible MSR range.
    std::uint32_t hash = 2166136261u;
    for (char c : name) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 16777619u;
    }
    return 0x400u + (hash & 0xFFFu);
}

CorpusGenerator::CorpusGenerator(GeneratorOptions options)
    : options_(options), rng_(options.seed)
{
}

Corpus
CorpusGenerator::generate()
{
    Corpus corpus;
    buildBugSkeletons(corpus);
    assignLabels(corpus);
    assignText(corpus);
    assignDates(corpus);
    assembleDocuments(corpus);
    injectDefects(corpus);
    return corpus;
}

void
CorpusGenerator::buildBugSkeletons(Corpus &corpus)
{
    const auto &inventory = documentInventory();
    for (const HeredityGroup &group : heredityPlan()) {
        for (int i = 0; i < group.bugCount; ++i) {
            BugSpec bug;
            bug.bugKey = static_cast<std::uint32_t>(corpus.bugs.size());
            bug.vendor = group.vendor;
            bug.groupTag = group.tag;
            bug.docIndices =
                group.docSets[static_cast<std::size_t>(i) %
                              group.docSets.size()];
            // Order affected documents chronologically.
            std::sort(bug.docIndices.begin(), bug.docIndices.end(),
                      [&](int a, int b) {
                          const Date da = inventory[a]
                                              .design.releaseDate;
                          const Date db = inventory[b]
                                              .design.releaseDate;
                          if (da != db)
                              return da < db;
                          return a < b;
                      });
            corpus.bugs.push_back(std::move(bug));
        }
    }
}

void
CorpusGenerator::assignLabels(Corpus &corpus)
{
    const auto &inventory = documentInventory();
    const LabelModel &model = labelModel();
    int simulationOnlyLeftIntel = model.simulationOnlyIntel;
    int simulationOnlyLeftAmd = model.simulationOnlyAmd;

    for (BugSpec &bug : corpus.bugs) {
        const Vendor vendor = bug.vendor;
        // Trigger sampling uses the *latest* affected generation:
        // Figure 13 counts a document's errata including inherited
        // ones, so a bug reaching the latest generations must obey
        // their constraints (e.g. no Trg_MBR in Core 11/12).
        int generation = 0;
        for (int doc : bug.docIndices) {
            generation = std::max(generation,
                                  inventory[doc].design.generation);
        }
        Rng rng = rng_.fork();

        // Triggers: conjunctive; 14.4% have no clear trigger.
        if (!rng.nextBool(model.noTriggerFraction)) {
            std::size_t count =
                1 + rng.nextWeighted(model.triggerCountWeights);
            bug.triggers = sampleCategories(rng, Axis::Trigger, vendor,
                                            generation, count, true);
        }

        // Contexts: disjunctive, often absent.
        if (rng.nextBool(model.contextFraction)) {
            std::size_t count =
                1 + rng.nextWeighted(model.contextCountWeights);
            bug.contexts = sampleCategories(rng, Axis::Context, vendor,
                                            generation, count, false);
        }

        // Effects: disjunctive, at least one.
        {
            std::size_t count =
                1 + rng.nextWeighted(model.effectCountWeights);
            bug.effects = sampleCategories(rng, Axis::Effect, vendor,
                                           generation, count, false);
        }

        double complexFraction = vendor == Vendor::Intel
                                     ? model.complexConditionsIntel
                                     : model.complexConditionsAmd;
        bug.complexConditions = rng.nextBool(complexFraction);

        int &simLeft = vendor == Vendor::Intel ? simulationOnlyLeftIntel
                                               : simulationOnlyLeftAmd;
        if (simLeft > 0 && bug.bugKey % 37 == 5) {
            bug.simulationOnly = true;
            --simLeft;
        }

        bug.workaroundClass = static_cast<WorkaroundClass>(
            rng.nextWeighted(workaroundWeights(vendor)));

        if (rng.nextBool(fixProbability(vendor, generation))) {
            bug.fixStatus = rng.nextBool(0.8) ? FixStatus::Fixed
                                              : FixStatus::Planned;
        }

        // MSR references witnessing effects (Figure 19).
        const Taxonomy &taxonomy = Taxonomy::instance();
        const PhraseBank &bank = PhraseBank::instance();
        auto has = [&](const char *code) {
            auto id = taxonomy.parseCategory(code);
            return id && bug.effects.contains(*id);
        };
        auto hasTrigger = [&](const char *code) {
            auto id = taxonomy.parseCategory(code);
            return id && bug.triggers.contains(*id);
        };
        auto attach = [&](const std::vector<std::string> &pool) {
            const std::string &name =
                pool[rng.nextBelow(pool.size())];
            for (const MsrRef &existing : bug.msrs) {
                if (existing.name == name)
                    return;
            }
            bug.msrs.push_back(
                MsrRef{name, canonicalMsrNumber(name)});
        };
        // Attach probabilities are tuned so MCx_STATUS witnesses
        // 7.1%-8.5% of unique errata (Observation O13), ahead of
        // IBS registers and performance counters (Figure 19).
        if ((has("Eff_FLT_mca") || has("Eff_FLT_unc")) &&
            rng.nextBool(vendor == Vendor::Amd ? 0.62 : 0.5)) {
            attach(bank.machineCheckMsrs());
        }
        if (has("Eff_CRP_prf") && rng.nextBool(0.7)) {
            if (vendor == Vendor::Amd && rng.nextBool(0.55))
                attach(bank.ibsMsrs());
            else
                attach(bank.performanceMsrs());
        }
        if (has("Eff_CRP_reg")) {
            if (rng.nextBool(0.12))
                attach(bank.machineCheckMsrs());
            else if (vendor == Vendor::Amd && rng.nextBool(0.25))
                attach(bank.ibsMsrs());
            else if (rng.nextBool(0.75))
                attach(bank.configMsrs());
        }
        if (hasTrigger("Trg_CFG_wrg") && rng.nextBool(0.5))
            attach(bank.configMsrs());
    }
}

void
CorpusGenerator::assignText(Corpus &corpus)
{
    const PhraseBank &bank = PhraseBank::instance();
    const Taxonomy &taxonomy = Taxonomy::instance();
    std::set<std::string> usedTitles;

    for (BugSpec &bug : corpus.bugs) {
        Rng rng = rng_.fork();

        // Pick one concrete phrase per category.
        std::vector<const ConcretePhrase *> triggerPhrases;
        std::vector<const ConcretePhrase *> contextPhrases;
        std::vector<const ConcretePhrase *> effectPhrases;
        auto pickPhrases = [&](const CategorySet &set,
                               std::vector<const ConcretePhrase *>
                                   &out) {
            for (CategoryId id : set.toVector()) {
                const auto &pool = bank.phrasesFor(id);
                out.push_back(&pool[rng.nextBelow(pool.size())]);
            }
        };
        pickPhrases(bug.triggers, triggerPhrases);
        pickPhrases(bug.contexts, contextPhrases);
        pickPhrases(bug.effects, effectPhrases);

        // ---- Title ---------------------------------------------
        const auto &nouns = bank.subjectNouns();
        const auto &clauses = bank.defectClauses();
        std::string title;
        std::string subjectNoun;
        for (int attempt = 0; attempt < 64; ++attempt) {
            std::string candidate;
            const std::string &noun =
                nouns[rng.nextBelow(nouns.size())];
            if (!triggerPhrases.empty() && rng.nextBool(0.6)) {
                candidate = noun;
                candidate += ' ';
                candidate += clauses[rng.nextBelow(clauses.size())];
                candidate += " When ";
                candidate += triggerPhrases.front()->titleFragment;
                candidate += " Occurs";
            } else {
                candidate = noun;
                candidate += ' ';
                candidate += clauses[rng.nextBelow(clauses.size())];
                if (!effectPhrases.empty() && rng.nextBool(0.5)) {
                    candidate += " Leading to ";
                    candidate += effectPhrases.front()->titleFragment;
                }
            }
            if (usedTitles.insert(strings::canonicalize(candidate))
                    .second) {
                title = candidate;
                subjectNoun = noun;
                break;
            }
        }
        if (title.empty())
            REMEMBERR_PANIC("assignText: could not find unique title "
                            "for bug ", bug.bugKey);
        bug.title = title;

        // ---- Description ---------------------------------------
        std::string desc;
        if (bug.complexConditions) {
            desc += "Under a highly specific and detailed set of "
                    "internal timing conditions, ";
        }
        if (!triggerPhrases.empty()) {
            desc += bug.complexConditions ? "if " : "If ";
            for (std::size_t i = 0; i < triggerPhrases.size(); ++i) {
                if (i > 0) {
                    desc += i + 1 == triggerPhrases.size()
                                ? " and at the same time "
                                : ", ";
                }
                desc += triggerPhrases[i]->text;
            }
        } else {
            desc += bug.complexConditions ? "during "
                                          : "During ";
            desc += "normal load and store operations under an "
                    "intense workload";
        }
        if (!contextPhrases.empty()) {
            desc += ' ';
            desc += contextPhrases.front()->text;
            for (std::size_t i = 1; i < contextPhrases.size(); ++i) {
                desc += ", or ";
                desc += contextPhrases[i]->text;
            }
        }
        desc += ", then ";
        for (std::size_t i = 0; i < effectPhrases.size(); ++i) {
            if (i > 0)
                desc += ", or ";
            desc += effectPhrases[i]->text;
        }
        desc += '.';
        for (const MsrRef &msr : bug.msrs) {
            desc += " In this case, the ";
            desc += msr.name;
            desc += " register (MSR ";
            desc += hexMsrNumber(msr.number);
            desc += ") may contain an unexpected value.";
        }
        // Naming the affected unit keeps descriptions of distinct
        // bugs textually distinct, as real erratum prose is.
        desc += " The failure originates in the ";
        desc += strings::toLower(subjectNoun);
        desc += " logic.";
        if (bug.simulationOnly) {
            desc += " This erratum has only been observed in "
                    "simulation environments.";
        }
        bug.description = desc;

        // ---- Implications ---------------------------------------
        std::string impl = "Software relying on the affected "
                           "functionality may not operate properly";
        if (!effectPhrases.empty()) {
            impl += "; ";
            impl += effectPhrases.front()->text;
        }
        impl += '.';
        if (rng.nextBool(0.4)) {
            impl += ' ';
            impl += vendorName(bug.vendor);
            impl += " has not observed this erratum in any "
                    "commercially available software.";
        }
        bug.implications = impl;

        // ---- Workaround -----------------------------------------
        switch (bug.workaroundClass) {
          case WorkaroundClass::None:
            bug.workaroundText = "None identified.";
            break;
          case WorkaroundClass::Bios:
            bug.workaroundText =
                "A BIOS code change has been identified and may be "
                "implemented as a workaround for this erratum.";
            break;
          case WorkaroundClass::Software:
            bug.workaroundText =
                "System software may contain the workaround for "
                "this erratum.";
            break;
          case WorkaroundClass::Peripherals:
            bug.workaroundText =
                "Peripheral devices should avoid the described "
                "transaction sequence as a workaround.";
            break;
          case WorkaroundClass::Absent:
            bug.workaroundText =
                "Contact your vendor representative for information "
                "on a BIOS update that addresses this erratum.";
            break;
          case WorkaroundClass::DocumentationFix:
            bug.workaroundText =
                "The documentation will be updated to describe the "
                "intended behavior.";
            break;
        }
        (void)taxonomy;
    }

    // The paper's errata-1327/1329 case: two AMD errata in the same
    // family document that are indistinguishable except for their
    // suggested workaround and may originate from distinct root
    // causes. Clone one AMD bug's prose and labels onto another bug
    // of the same document with a different workaround class.
    BugSpec *first = nullptr;
    for (BugSpec &bug : corpus.bugs) {
        if (bug.vendor != Vendor::Amd || bug.docIndices.size() != 1)
            continue;
        if (!first) {
            first = &bug;
            continue;
        }
        if (bug.docIndices == first->docIndices &&
            bug.workaroundClass != first->workaroundClass) {
            bug.title = first->title;
            bug.description = first->description;
            bug.implications = first->implications;
            bug.triggers = first->triggers;
            bug.contexts = first->contexts;
            bug.effects = first->effects;
            bug.msrs = first->msrs;
            bug.complexConditions = first->complexConditions;
            bug.simulationOnly = first->simulationOnly;
            break;
        }
    }
}

void
CorpusGenerator::assignDates(Corpus &corpus)
{
    const auto &inventory = documentInventory();
    const Date cutoff = studyCutoffDate();

    for (BugSpec &bug : corpus.bugs) {
        Rng rng = rng_.fork();
        const int earliestDoc = bug.docIndices.front();
        const int latestDoc = bug.docIndices.back();
        const Date earliestRelease =
            inventory[earliestDoc].design.releaseDate;
        const Date latestRelease =
            inventory[latestDoc].design.releaseDate;

        // Tentative forward discovery on the earliest design.
        double offset =
            rng.nextBool(options_.presentAtReleaseProbability)
                ? 0.0
                : nextExponential(rng_, options_.discoveryMeanDays);
        Date tentative = earliestRelease.addDays(
            static_cast<std::int64_t>(offset));
        if (tentative > cutoff.addDays(-30))
            tentative = cutoff.addDays(-30);

        bool backward = false;
        if (bug.docIndices.size() > 1) {
            double p = options_.backwardLatentProbability;
            int year = latestRelease.year();
            if (year >= 2014 && year <= 2016)
                p += options_.backwardLatentBoost2015;
            backward = rng.nextBool(p);
        }

        bug.discoveredOnNewest = backward;
        if (!backward) {
            bug.discoveryDate = tentative;
            bug.reportDates[earliestDoc] = tentative;
            for (std::size_t i = 1; i < bug.docIndices.size(); ++i) {
                int doc = bug.docIndices[i];
                Date release = inventory[doc].design.releaseDate;
                Date propagated = bug.discoveryDate.addDays(
                    static_cast<std::int64_t>(nextExponential(
                        rng, options_.propagationMeanDays)));
                Date report = std::max(release, propagated);
                if (report > cutoff)
                    report = cutoff;
                bug.reportDates[doc] = report;
            }
        } else {
            // Backward-latent: first reported on the newest design,
            // then confirmed on the older ones.
            double newOffset = nextExponential(
                rng, options_.discoveryMeanDays / 2.0);
            Date discovery = latestRelease.addDays(
                static_cast<std::int64_t>(newOffset));
            if (discovery > cutoff.addDays(-30))
                discovery = cutoff.addDays(-30);
            bug.discoveryDate = discovery;
            bug.reportDates[latestDoc] = discovery;
            for (std::size_t i = 0; i + 1 < bug.docIndices.size();
                 ++i) {
                int doc = bug.docIndices[i];
                Date propagated = discovery.addDays(
                    static_cast<std::int64_t>(nextExponential(
                        rng, options_.propagationMeanDays)));
                Date report = std::min(propagated, cutoff);
                bug.reportDates[doc] = report;
            }
        }
    }
}

void
CorpusGenerator::assembleDocuments(Corpus &corpus)
{
    const auto &inventory = documentInventory();
    const Date cutoff = studyCutoffDate();
    corpus.documents.resize(inventory.size());

    // AMD errata share a numeric identifier across families; assign
    // one number per unique AMD bug in discovery order.
    std::vector<std::uint32_t> amdBugs;
    for (const BugSpec &bug : corpus.bugs) {
        if (bug.vendor == Vendor::Amd)
            amdBugs.push_back(bug.bugKey);
    }
    std::sort(amdBugs.begin(), amdBugs.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                  const Date da = corpus.bugs[a].discoveryDate;
                  const Date db = corpus.bugs[b].discoveryDate;
                  if (da != db)
                      return da < db;
                  return a < b;
              });
    std::map<std::uint32_t, int> amdNumbers;
    int nextAmdNumber = 600;
    for (std::uint32_t key : amdBugs)
        amdNumbers[key] = nextAmdNumber++;

    // Pre-select the Intel duplicate pairs whose titles get a minor
    // phrasing variation (the 29 manually-confirmed pairs).
    std::set<std::uint32_t> titleVariantBugs;
    for (const BugSpec &bug : corpus.bugs) {
        if (static_cast<int>(titleVariantBugs.size()) >=
            options_.titleVariantPairs) {
            break;
        }
        if (bug.vendor == Vendor::Intel &&
            bug.docIndices.size() == 2 && bug.bugKey % 5 == 3) {
            titleVariantBugs.insert(bug.bugKey);
        }
    }

    for (std::size_t docIdx = 0; docIdx < inventory.size(); ++docIdx) {
        const DocumentSpec &spec = inventory[docIdx];
        ErrataDocument &doc = corpus.documents[docIdx];
        doc.design = spec.design;
        doc.sourcePath = "corpus:" + spec.design.key();

        // Revision schedule: release date, then jittered intervals.
        Rng rng = rng_.fork();
        Date when = spec.design.releaseDate;
        int number = 1;
        while (when <= cutoff) {
            Revision revision;
            revision.number = number++;
            revision.date = when;
            revision.note = number == 2
                                ? "Initial release."
                                : "Added and updated errata.";
            doc.revisions.push_back(revision);
            double jitter = 0.6 + 0.8 * rng.nextDouble();
            when = when.addDays(static_cast<std::int64_t>(
                spec.revisionIntervalDays * jitter));
        }

        // Rows reported in this document, in disclosure order.
        struct Row
        {
            std::uint32_t bugKey;
            Date report;
        };
        std::vector<Row> rows;
        for (const BugSpec &bug : corpus.bugs) {
            auto it = bug.reportDates.find(static_cast<int>(docIdx));
            if (it != bug.reportDates.end())
                rows.push_back(Row{bug.bugKey, it->second});
        }
        std::sort(rows.begin(), rows.end(),
                  [](const Row &a, const Row &b) {
                      if (a.report != b.report)
                          return a.report < b.report;
                      return a.bugKey < b.bugKey;
                  });

        int sequence = 1;
        for (const Row &row : rows) {
            const BugSpec &bug = corpus.bugs[row.bugKey];
            Erratum erratum;
            if (spec.design.vendor == Vendor::Intel) {
                char buf[16];
                std::snprintf(buf, sizeof(buf), "%s%03d",
                              intelPrefixes[docIdx], sequence);
                erratum.localId = buf;
            } else {
                erratum.localId =
                    std::to_string(amdNumbers.at(row.bugKey));
            }
            ++sequence;
            erratum.title = bug.title;
            if (titleVariantBugs.count(row.bugKey) &&
                static_cast<int>(docIdx) == bug.docIndices.back()) {
                erratum.title = variantTitle(bug.title);
            }
            erratum.description = bug.description;
            erratum.implications = bug.implications;
            erratum.workaroundText = bug.workaroundText;
            erratum.workaroundClass = bug.workaroundClass;
            erratum.status = bug.fixStatus;
            erratum.msrs = bug.msrs;

            // Assign to the first revision at or after the report.
            int revNumber = doc.revisions.front().number;
            for (const Revision &revision : doc.revisions) {
                revNumber = revision.number;
                if (revision.date >= row.report)
                    break;
            }
            erratum.addedInRevision = revNumber;
            doc.revisions[static_cast<std::size_t>(revNumber - 1)]
                .addedIds.push_back(erratum.localId);

            corpus.rowToBug[{static_cast<int>(docIdx),
                             static_cast<int>(doc.errata.size())}] =
                row.bugKey;
            doc.errata.push_back(std::move(erratum));
        }

        // About 2% of entries are only listed in the summary with
        // their details withheld (Section VII "Patchable errors") —
        // typically bugs fixed by a re-spin. They continue the id
        // sequence but never enter the database.
        std::size_t hiddenCount = (doc.errata.size() + 49) / 50;
        for (std::size_t h = 0; h < hiddenCount; ++h) {
            if (spec.design.vendor == Vendor::Intel) {
                char buf[16];
                std::snprintf(buf, sizeof(buf), "%s%03d",
                              intelPrefixes[docIdx], sequence);
                ++sequence;
                doc.hiddenErrata.emplace_back(buf);
            } else {
                doc.hiddenErrata.push_back(
                    std::to_string(nextAmdNumber++));
            }
        }
    }
}

void
CorpusGenerator::injectDefects(Corpus &corpus)
{
    const DefectCounts &counts = defectCounts();

    auto docAt = [&](int idx) -> ErrataDocument & {
        return corpus.documents[static_cast<std::size_t>(idx)];
    };

    // --- Two revisions pretending to have added the same erratum:
    //     8 errata across 3 documents.
    {
        const int docs[3] = {2, 4, 6};
        const int perDoc[3] = {3, 3, 2};
        int injected = 0;
        for (int d = 0; d < 3 && injected < counts.duplicateAddedErrata;
             ++d) {
            ErrataDocument &doc = docAt(docs[d]);
            for (int k = 0;
                 k < perDoc[d] &&
                 injected < counts.duplicateAddedErrata;
                 ++k) {
                std::size_t pos = 5 + static_cast<std::size_t>(k) * 9;
                if (pos >= doc.errata.size())
                    break;
                Erratum &erratum = doc.errata[pos];
                int rev = erratum.addedInRevision;
                if (rev <= 0 ||
                    rev >= static_cast<int>(doc.revisions.size())) {
                    continue;
                }
                doc.revisions[static_cast<std::size_t>(rev)]
                    .addedIds.push_back(erratum.localId);
                corpus.defects.push_back(
                    DefectRecord{DefectKind::DuplicateRevisionClaim,
                                 docs[d],
                                 {erratum.localId}});
                ++injected;
            }
        }
    }

    // --- Errata never mentioned in the revision notes: 12 errata
    //     across 2 documents.
    {
        const int docs[2] = {11, 12};
        const int perDoc[2] = {6, 6};
        for (int d = 0; d < 2; ++d) {
            ErrataDocument &doc = docAt(docs[d]);
            for (int k = 0; k < perDoc[d]; ++k) {
                std::size_t pos = 4 + static_cast<std::size_t>(k) * 7;
                if (pos + 1 >= doc.errata.size())
                    break;
                Erratum &erratum = doc.errata[pos];
                for (Revision &revision : doc.revisions) {
                    auto &ids = revision.addedIds;
                    ids.erase(std::remove(ids.begin(), ids.end(),
                                          erratum.localId),
                              ids.end());
                }
                erratum.addedInRevision = 0;
                corpus.defects.push_back(
                    DefectRecord{DefectKind::MissingFromNotes,
                                 docs[d],
                                 {erratum.localId}});
            }
        }
    }

    // --- The same name refers to two different errata (the AAJ143
    //     case): rename one erratum in the first Intel document to a
    //     name already in use.
    {
        ErrataDocument &doc = docAt(0);
        if (doc.errata.size() > 30) {
            const std::string reused = "AAJ143";
            std::size_t first = 12, second = 25;
            // Update the revision notes for both renamed entries;
            // the ground truth is keyed by position, so it is
            // unaffected by the rename.
            for (std::size_t pos : {first, second}) {
                Erratum &erratum = doc.errata[pos];
                std::string old = erratum.localId;
                for (Revision &revision : doc.revisions) {
                    for (std::string &id : revision.addedIds) {
                        if (id == old)
                            id = reused;
                    }
                }
                erratum.localId = reused;
            }
            corpus.defects.push_back(DefectRecord{
                DefectKind::ReusedName, 0, {reused, reused}});
        }
    }

    // --- Missing or duplicate fields: 7 errata across 4 documents.
    {
        const int docs[4] = {1, 3, 5, 7};
        const int perDoc[4] = {2, 2, 2, 1};
        int made = 0;
        for (int d = 0; d < 4; ++d) {
            ErrataDocument &doc = docAt(docs[d]);
            for (int k = 0; k < perDoc[d]; ++k) {
                std::size_t pos = 8 + static_cast<std::size_t>(k) * 11;
                if (pos >= doc.errata.size())
                    break;
                Erratum &erratum = doc.errata[pos];
                if (made % 2 == 0) {
                    erratum.implications.clear();
                    corpus.defects.push_back(
                        DefectRecord{DefectKind::MissingField,
                                     docs[d],
                                     {erratum.localId}});
                } else {
                    erratum.implications = erratum.description;
                    corpus.defects.push_back(
                        DefectRecord{DefectKind::DuplicateField,
                                     docs[d],
                                     {erratum.localId}});
                }
                ++made;
            }
        }
    }

    // --- Errors in MSR numbers: 3 errata across 3 documents.
    {
        const int docs[3] = {10, 13, 16};
        int made = 0;
        for (int d = 0; d < 3 && made < counts.wrongMsrErrata; ++d) {
            ErrataDocument &doc = docAt(docs[d]);
            for (Erratum &erratum : doc.errata) {
                if (erratum.msrs.empty())
                    continue;
                std::uint32_t wrong = erratum.msrs[0].number + 2;
                erratum.description = strings::replaceAll(
                    erratum.description,
                    hexMsrNumber(erratum.msrs[0].number),
                    hexMsrNumber(wrong));
                erratum.msrs[0].number = wrong;
                corpus.defects.push_back(
                    DefectRecord{DefectKind::WrongMsrNumber, docs[d],
                                 {erratum.localId}});
                ++made;
                break;
            }
        }
    }

    // --- Errata repeated inside the same document: 11 pairs across
    //     6 documents. These extra rows bring the Intel collected
    //     total from 2,046 to the paper's 2,057.
    {
        const int docs[6] = {0, 2, 4, 6, 8, 10};
        const int perDoc[6] = {2, 2, 2, 2, 2, 1};
        for (int d = 0; d < 6; ++d) {
            ErrataDocument &doc = docAt(docs[d]);
            for (int k = 0; k < perDoc[d]; ++k) {
                std::size_t pos = 20 + static_cast<std::size_t>(k) * 13;
                if (pos >= doc.errata.size())
                    break;
                Erratum copy = doc.errata[pos];
                std::string originalId = copy.localId;
                // New id continuing the document's sequence (past
                // the hidden-errata ids as well).
                char buf[16];
                std::snprintf(buf, sizeof(buf), "%s%03d",
                              intelPrefixes[docs[d]],
                              static_cast<int>(
                                  doc.errata.size() +
                                  doc.hiddenErrata.size()) + 1);
                copy.localId = buf;
                copy.addedInRevision =
                    doc.revisions.back().number;
                doc.revisions.back().addedIds.push_back(copy.localId);
                corpus.rowToBug[{docs[d],
                                 static_cast<int>(
                                     doc.errata.size())}] =
                    corpus.bugOfRow(docs[d],
                                    static_cast<int>(pos));
                corpus.defects.push_back(DefectRecord{
                    DefectKind::IntraDocDuplicate, docs[d],
                    {originalId, copy.localId}});
                doc.errata.push_back(std::move(copy));
            }
        }
    }

    // --- Cross-document defects. Only detectable with the whole
    //     corpus (and its dedup clusters) in hand; they target AMD
    //     bugs so they cannot interact with the Intel-only
    //     intra-document duplicates above. All rows of a shared AMD
    //     bug carry the same shared numeric id, and the database
    //     fills entries from the chronologically first row, so
    //     mutating the latest occurrence leaves the per-document
    //     ground truth and the database contents untouched.

    // Position of a bug's row inside one document; rowToBug is
    // ordered by (doc, position), so the first hit is the earliest
    // row (relevant only under IntraDocDuplicate, which never
    // touches AMD documents).
    auto rowPosition = [&](int docIdx,
                           std::uint32_t bugKey) -> int {
        for (const auto &[key, bug] : corpus.rowToBug) {
            if (key.first == docIdx && bug == bugKey)
                return key.second;
        }
        return -1;
    };

    // A duplicate whose status regresses from Fixed to NoFix in a
    // newer document: flip the latest occurrence of the first
    // multi-document Fixed AMD bug.
    {
        for (std::size_t b = 0; b < corpus.bugs.size(); ++b) {
            const BugSpec &bug = corpus.bugs[b];
            if (bug.vendor != Vendor::Amd ||
                bug.docIndices.size() < 2 ||
                bug.fixStatus != FixStatus::Fixed) {
                continue;
            }
            int latest = *std::max_element(bug.docIndices.begin(),
                                           bug.docIndices.end());
            int pos = rowPosition(latest,
                                  static_cast<std::uint32_t>(b));
            if (pos < 0)
                continue;
            Erratum &row =
                docAt(latest).errata[static_cast<std::size_t>(pos)];
            row.status = FixStatus::NoFix;
            corpus.defects.push_back(
                DefectRecord{DefectKind::StatusRegression, latest,
                             {row.localId}});
            break;
        }
    }

    // Duplicates that disagree on the workaround text: append a
    // neutral sentence to the latest occurrence of one shared AMD
    // bug. The sentence contains none of the workaround-class
    // keywords, so the classified WorkaroundClass is unchanged.
    {
        int statusDoc =
            corpus.defects.back().kind == DefectKind::StatusRegression
                ? corpus.defects.back().docIndex
                : -1;
        for (std::size_t b = 0; b < corpus.bugs.size(); ++b) {
            const BugSpec &bug = corpus.bugs[b];
            if (bug.vendor != Vendor::Amd ||
                bug.docIndices.size() < 2 ||
                bug.workaroundText.empty() ||
                bug.workaroundClass == WorkaroundClass::None) {
                continue;
            }
            int latest = *std::max_element(bug.docIndices.begin(),
                                           bug.docIndices.end());
            int pos = rowPosition(latest,
                                  static_cast<std::uint32_t>(b));
            if (pos < 0)
                continue;
            Erratum &row =
                docAt(latest).errata[static_cast<std::size_t>(pos)];
            if (latest == statusDoc &&
                row.status == FixStatus::NoFix &&
                bug.fixStatus == FixStatus::Fixed) {
                continue; // keep the two defects on distinct rows
            }
            row.workaroundText += " Refer to the latest revision "
                                  "guide for additional details.";
            corpus.defects.push_back(
                DefectRecord{DefectKind::DivergentWorkaround, latest,
                             {row.localId}});
            break;
        }
    }

    // A revision summary referencing an erratum the document never
    // defines: borrow an id from the next AMD document that is
    // absent from the first one.
    {
        const int amdDoc = static_cast<int>(firstAmdDocIndex);
        ErrataDocument &doc = docAt(amdDoc);
        const ErrataDocument &donor = docAt(amdDoc + 1);
        auto defines = [&](const std::string &id) {
            if (doc.findErratum(id) != nullptr)
                return true;
            return std::find(doc.hiddenErrata.begin(),
                             doc.hiddenErrata.end(),
                             id) != doc.hiddenErrata.end();
        };
        for (const Erratum &candidate : donor.errata) {
            if (defines(candidate.localId))
                continue;
            doc.revisions.back().addedIds.push_back(
                candidate.localId);
            corpus.defects.push_back(
                DefectRecord{DefectKind::DanglingReference, amdDoc,
                             {candidate.localId}});
            break;
        }
    }
}

Corpus
generateDefaultCorpus(std::uint64_t seed)
{
    GeneratorOptions options;
    if (seed != 0)
        options.seed = seed;
    return CorpusGenerator(options).generate();
}

} // namespace rememberr
