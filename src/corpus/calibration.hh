/**
 * @file
 * Calibration constants: every population statistic the paper reports.
 *
 * The synthetic corpus is not free-running: document inventory
 * (Table III), unique/duplicate bug counts (Section IV-A), the
 * heredity structure (Figures 3-5), label distributions
 * (Figures 6-19) and the "errata in errata" defect counts are all
 * pinned here so the reproduced figures match the published ones in
 * shape and, where the paper states them, in absolute numbers.
 */

#ifndef REMEMBERR_CORPUS_CALIBRATION_HH
#define REMEMBERR_CORPUS_CALIBRATION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "model/types.hh"
#include "taxonomy/taxonomy.hh"

namespace rememberr {

/** One examined document (a row of Table III) plus timeline model. */
struct DocumentSpec
{
    Design design;
    /** Mean days between successive document revisions. */
    int revisionIntervalDays = 90;
};

/**
 * The 28 inspected documents: 16 Intel (separate Desktop/Mobile up to
 * generation 5) and 12 AMD, in Table III order. Intel documents
 * occupy indices [0, 16), AMD documents [16, 28).
 */
const std::vector<DocumentSpec> &documentInventory();

/** Index of the first AMD document in documentInventory(). */
constexpr std::size_t firstAmdDocIndex = 16;

/** Study cutoff date: no revision is dated after this. */
Date studyCutoffDate();

/**
 * One group of unique bugs sharing the same heredity shape: bugCount
 * bugs, each affecting one of the listed document-index sets
 * (assigned round-robin for determinism).
 */
struct HeredityGroup
{
    Vendor vendor = Vendor::Intel;
    int bugCount = 0;
    std::vector<std::vector<int>> docSets;
    /** Human-readable tag for diagnostics. */
    std::string tag;
};

/**
 * The heredity plan. Its totals are exact:
 *   Intel: 743 unique bugs, 2,046 plan appearances — the 11
 *   injected intra-document duplicate rows bring the collected
 *   count to the paper's 2,057;
 *   AMD:   385 unique bugs,   506 appearances;
 * including the paper's named structures (104 bugs shared by all
 * Intel generations 6-10, 6 bugs spanning generations 1-10, one bug
 * spanning generations 2-12).
 */
const std::vector<HeredityGroup> &heredityPlan();

/** Aggregate totals implied by the heredity plan. */
struct CorpusTotals
{
    int intelUnique = 0;
    int intelAppearances = 0;
    int amdUnique = 0;
    int amdAppearances = 0;
};

/** Compute totals from the plan (tests assert the paper's numbers). */
CorpusTotals planTotals();

/** Label-distribution knobs. */
struct LabelModel
{
    /** Fraction of errata with no clear trigger (14.4%). */
    double noTriggerFraction = 0.144;
    /** P(k triggers | at least one), k = 1..4: 49% require >= 2. */
    std::vector<double> triggerCountWeights{0.51, 0.40, 0.075, 0.015};
    /** Fraction of errata specifying at least one context. */
    double contextFraction = 0.45;
    /** P(k contexts | at least one), k = 1..2. */
    std::vector<double> contextCountWeights{0.85, 0.15};
    /** P(k effects), k = 1..3. */
    std::vector<double> effectCountWeights{0.55, 0.35, 0.10};
    /** Fraction mentioning a "complex set of conditions". */
    double complexConditionsIntel = 0.087;
    double complexConditionsAmd = 0.208;
    /** Absolute unique-errata counts flagged simulation-only. */
    int simulationOnlyIntel = 1;
    int simulationOnlyAmd = 5;
};

const LabelModel &labelModel();

/**
 * Marginal sampling weight of a trigger/context/effect category for a
 * bug whose earliest affected design is the given one. Encodes the
 * frequency ranking of Figures 10/17/18, the vendor differences of
 * Figures 14-16 and the per-generation evolution of Figure 13
 * (no Trg_MBR in the two latest Intel generations, growing Trg_FEA,
 * Trg_PRV gaining in the last generation).
 */
double categoryWeight(CategoryId id, Vendor vendor, int generation);

/**
 * Multiplicative boost applied to category b's weight when category a
 * is already among the bug's triggers; encodes the salient pairwise
 * correlations of Figure 12 (debug+VM transitions, DDR/PCIe+power
 * state changes, MSR configuration+throttling).
 */
double pairBoost(CategoryId a, CategoryId b);

/** Workaround-category weights per vendor (Figure 6); the None
 * fractions (Intel 35.9%, AMD 28.9%) are pinned. */
std::vector<double> workaroundWeights(Vendor vendor);

/** Probability that a bug is fixed/planned (Figure 7): rare, with a
 * weak increasing trend for the latest Intel generations. */
double fixProbability(Vendor vendor, int generation);

/** The "errata in errata" injection counts (Section IV-A). */
struct DefectCounts
{
    int duplicateAddedErrata = 8;   ///< across 3 documents
    int duplicateAddedDocs = 3;
    int missingFromNotesErrata = 12; ///< across 2 documents
    int missingFromNotesDocs = 2;
    int reusedNameErrata = 1;        ///< the AAJ143 case
    int missingOrDupFieldErrata = 7; ///< across 4 documents
    int missingOrDupFieldDocs = 4;
    int wrongMsrErrata = 3;          ///< across 3 documents
    int wrongMsrDocs = 3;
    int intraDocDuplicatePairs = 11; ///< across 6 documents
    int intraDocDuplicateDocs = 6;
};

const DefectCounts &defectCounts();

} // namespace rememberr

#endif // REMEMBERR_CORPUS_CALIBRATION_HH
