/**
 * @file
 * Concrete-level phrase bank.
 *
 * The paper's *concrete* classification level is the exact action an
 * erratum describes ("the core resumes from the C6 power state").
 * The corpus generator composes erratum prose from this bank, one or
 * more phrases per ground-truth abstract category, and the
 * classification rule engine later has to recover the categories from
 * that prose. Phrases deliberately vary in explicitness: some name
 * the category's subject directly, some are oblique, which is what
 * makes automatic classification conservative and the four-eyes step
 * necessary.
 */

#ifndef REMEMBERR_CORPUS_PHRASEBANK_HH
#define REMEMBERR_CORPUS_PHRASEBANK_HH

#include <string>
#include <vector>

#include "taxonomy/taxonomy.hh"

namespace rememberr {

/** One concrete phrasing of an abstract category. */
struct ConcretePhrase
{
    /** Text fragment inserted into the erratum description. */
    std::string text;
    /** Short noun phrase usable inside a title. */
    std::string titleFragment;
    /**
     * Whether the fragment names the category explicitly enough for
     * the conservative regex prefilter to auto-accept it. Oblique
     * phrases force manual (four-eyes) decisions.
     */
    bool explicitPhrase = true;
};

/** Immutable registry of concrete phrases for all 60 categories. */
class PhraseBank
{
  public:
    static const PhraseBank &instance();

    /** Concrete phrases available for one abstract category. */
    const std::vector<ConcretePhrase> &
    phrasesFor(CategoryId id) const;

    /** Title noun pool for bug subjects ("Instruction Fetch", ...). */
    const std::vector<std::string> &subjectNouns() const;

    /** Title defect verb pool ("May Be Corrupted", ...). */
    const std::vector<std::string> &defectClauses() const;

    /** MSR names that witness machine-check effects. */
    const std::vector<std::string> &machineCheckMsrs() const;

    /** MSR names for Instruction Based Sampling (AMD). */
    const std::vector<std::string> &ibsMsrs() const;

    /** MSR names for performance counters. */
    const std::vector<std::string> &performanceMsrs() const;

    /** Miscellaneous configuration MSR names. */
    const std::vector<std::string> &configMsrs() const;

  private:
    PhraseBank();

    std::vector<std::vector<ConcretePhrase>> phrases_;
    std::vector<std::string> subjectNouns_;
    std::vector<std::string> defectClauses_;
    std::vector<std::string> machineCheckMsrs_;
    std::vector<std::string> ibsMsrs_;
    std::vector<std::string> performanceMsrs_;
    std::vector<std::string> configMsrs_;
};

} // namespace rememberr

#endif // REMEMBERR_CORPUS_PHRASEBANK_HH
