/**
 * @file
 * The diagnostics framework underlying `rememberr check`.
 *
 * Every static-analysis finding — the per-document "errata in
 * errata" of Section IV-A, cross-document contradictions only
 * visible with the dedup clusters in hand, and defects in the
 * classification rule tables themselves — is a Diagnostic: a stable
 * rule id, a severity, a message and a source location. A central
 * rule catalog documents every rule; a RuleConfig enables, disables
 * or re-severities rules per run.
 */

#ifndef REMEMBERR_DIAG_DIAGNOSTIC_HH
#define REMEMBERR_DIAG_DIAGNOSTIC_HH

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "corpus/corpus.hh"

namespace rememberr {

/** Diagnostic severity, ordered least to most severe. */
enum class Severity : std::uint8_t
{
    Note,    ///< informational; never fails a check run
    Warning, ///< likely defect; fails the run unless baselined
    Error,   ///< definite defect; fails the run unless baselined
};

std::string_view severityName(Severity severity);

/** Parse "note"/"warning"/"error"; nullopt otherwise. */
std::optional<Severity> parseSeverity(std::string_view name);

/** Where a diagnostic points. */
struct SourceLocation
{
    /**
     * Document origin: a file path for documents read from disk, a
     * "corpus:<design key>" pseudo-path for generated documents, a
     * "ruleset:<category code>" pseudo-path for rule-table findings.
     */
    std::string path;
    /** 1-based line in the source text; 0 = unknown. */
    int line = 0;
    /** Field the finding concerns ("Implications", ...); optional. */
    std::string field;

    bool operator==(const SourceLocation &other) const = default;
};

/** One static-analysis finding. */
struct Diagnostic
{
    /** Stable rule id, e.g. "RBE001". */
    std::string ruleId;
    /** Resolved severity (defaults plus configured overrides). */
    Severity severity = Severity::Warning;
    /** Human-readable explanation. */
    std::string message;
    /** Primary location. */
    SourceLocation location;
    /** Secondary locations (the other half of a contradiction). */
    std::vector<SourceLocation> related;
    /**
     * Entities involved: document-local erratum ids, or category
     * codes and pattern slots for rule-set findings. Part of the
     * baseline fingerprint, so they must be stable across runs.
     */
    std::vector<std::string> ids;
    /**
     * Counterexample string for language-level findings (RBE201,
     * RBE205, RBE206): a shortest text exhibiting the defect, raw
     * bytes — renderers escape it. Shown by `check --explain` and
     * the JSON renderer; absent for all other rules.
     */
    std::optional<std::string> witness;
};

/** Catalog entry describing one rule. */
struct RuleInfo
{
    std::string_view id;      ///< "RBE001"
    std::string_view name;    ///< "duplicate-revision-claim"
    std::string_view summary; ///< one-line description
    Severity defaultSeverity = Severity::Warning;
};

/**
 * The complete rule catalog, ordered by id:
 *
 *   RBE001..007  per-document checks (the migrated linter);
 *   RBE101..105  cross-document checks over the deduplicated corpus;
 *   RBE201..207  static analysis of the classification rule tables.
 */
const std::vector<RuleInfo> &ruleCatalog();

/** Look up a rule by id ("RBE001") or name; nullptr when unknown. */
const RuleInfo *findRule(std::string_view id_or_name);

/**
 * Rule id for a per-document defect kind. Exhaustive: adding a
 * DefectKind without extending this mapping fails to compile.
 */
std::string_view ruleIdForDefect(DefectKind kind);

/** Inverse of ruleIdForDefect; nullopt for non-document rules. */
std::optional<DefectKind> defectForRuleId(std::string_view rule_id);

/** Per-run rule configuration: enablement and severity overrides. */
class RuleConfig
{
  public:
    /** Disable one rule by id or name. False when unknown. */
    bool disable(std::string_view id_or_name);

    /** Override one rule's severity. False when unknown. */
    bool overrideSeverity(std::string_view id_or_name,
                          Severity severity);

    bool enabled(std::string_view rule_id) const;

    /** Effective severity: the override, or the catalog default. */
    Severity severityFor(std::string_view rule_id) const;

    /**
     * Drop diagnostics of disabled rules and stamp the effective
     * severity onto the rest, preserving order.
     */
    std::vector<Diagnostic>
    apply(std::vector<Diagnostic> diagnostics) const;

  private:
    std::map<std::string, bool, std::less<>> enabled_;
    std::map<std::string, Severity, std::less<>> severities_;
};

} // namespace rememberr

#endif // REMEMBERR_DIAG_DIAGNOSTIC_HH
