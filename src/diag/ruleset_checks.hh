/**
 * @file
 * Static analysis of the classification rule tables
 * (rules RBE201..RBE207).
 *
 * The regex tables of Section V-A are code, and code has bugs. The
 * checks are derived from the pattern automata (never from timing):
 *
 *   RBE201  a pattern whose language is contained in an earlier
 *           pattern of the same list never changes the outcome —
 *           decided by true language inclusion over the compiled
 *           automata (text/regex_automata.hh), with the exact-
 *           literal screen kept as a fast pre-filter;
 *   RBE202  a pattern matching no erratum of the calibrated corpus
 *           contributes nothing (measured, not proved);
 *   RBE203  a pattern without literal factors defeats the
 *           Aho-Corasick prefilter — every text reaches the VM;
 *   RBE204  nested variable repetition can backtrack exponentially;
 *   RBE205  two patterns of one list accept exactly the same texts;
 *   RBE206  an accept pattern matches texts its category's relevance
 *           list rejects (order-dependent classification), with a
 *           witness text in the finding;
 *   RBE207  the automata analysis ran out of state budget on a
 *           pattern pair — the pair is *unverified*, and the cap is
 *           reported instead of silently skipped.
 */

#ifndef REMEMBERR_DIAG_RULESET_CHECKS_HH
#define REMEMBERR_DIAG_RULESET_CHECKS_HH

#include <cstddef>
#include <vector>

#include "classify/rules.hh"
#include "diagnostic.hh"
#include "model/erratum.hh"
#include "obs/metrics.hh"
#include "text/regex_automata.hh"

namespace rememberr {

/** Rule-set check configuration. */
struct RulesetCheckOptions
{
    /**
     * Corpus documents for the dead-pattern check (RBE202); when
     * null the check is skipped — deadness is a property of a rule
     * set *against a corpus*, not of the rule set alone.
     */
    const std::vector<ErrataDocument> *corpus = nullptr;
    /** Worker threads (0 = all hardware threads, 1 = serial). */
    std::size_t threads = 1;
    /** When set, receives check.* counters. */
    MetricsRegistry *metrics = nullptr;
    /**
     * Product-state budget per automata decision (RBE201/205/206).
     * Exhaustion is reported as RBE207, never silently dropped.
     */
    std::size_t automataBudget = AutomataOptions::defaultStateBudget();
};

/** Run rules RBE201..RBE207 over one rule set. */
std::vector<Diagnostic>
checkRuleSet(const RuleSet &rules,
             const RulesetCheckOptions &options = {});

/**
 * Same checks over a bare category-rule list. RuleSet is a
 * singleton, so this is the entry point for checking synthetic
 * pattern tables (and what checkRuleSet() forwards to).
 */
std::vector<Diagnostic>
checkCategoryRules(const std::vector<CategoryRule> &rules,
                   const RulesetCheckOptions &options = {});

} // namespace rememberr

#endif // REMEMBERR_DIAG_RULESET_CHECKS_HH
