/**
 * @file
 * Static analysis of the classification rule tables
 * (rules RBE201..RBE204).
 *
 * The regex tables of Section V-A are code, and code has bugs. Four
 * checks, all derived from the pattern ASTs (never from timing):
 *
 *   RBE201  a pattern whose language is contained in an earlier
 *           pattern of the same list never changes the outcome;
 *   RBE202  a pattern matching no erratum of the calibrated corpus
 *           contributes nothing (measured, not proved);
 *   RBE203  a pattern without literal factors defeats the
 *           Aho-Corasick prefilter — every text reaches the VM;
 *   RBE204  nested variable repetition can backtrack exponentially.
 */

#ifndef REMEMBERR_DIAG_RULESET_CHECKS_HH
#define REMEMBERR_DIAG_RULESET_CHECKS_HH

#include <cstddef>
#include <vector>

#include "classify/rules.hh"
#include "diagnostic.hh"
#include "model/erratum.hh"
#include "obs/metrics.hh"

namespace rememberr {

/** Rule-set check configuration. */
struct RulesetCheckOptions
{
    /**
     * Corpus documents for the dead-pattern check (RBE202); when
     * null the check is skipped — deadness is a property of a rule
     * set *against a corpus*, not of the rule set alone.
     */
    const std::vector<ErrataDocument> *corpus = nullptr;
    /** Worker threads (0 = all hardware threads, 1 = serial). */
    std::size_t threads = 1;
    /** When set, receives check.* counters. */
    MetricsRegistry *metrics = nullptr;
};

/** Run rules RBE201..RBE204 over one rule set. */
std::vector<Diagnostic>
checkRuleSet(const RuleSet &rules,
             const RulesetCheckOptions &options = {});

/**
 * Same checks over a bare category-rule list. RuleSet is a
 * singleton, so this is the entry point for checking synthetic
 * pattern tables (and what checkRuleSet() forwards to).
 */
std::vector<Diagnostic>
checkCategoryRules(const std::vector<CategoryRule> &rules,
                   const RulesetCheckOptions &options = {});

} // namespace rememberr

#endif // REMEMBERR_DIAG_RULESET_CHECKS_HH
