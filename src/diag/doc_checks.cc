#include "doc_checks.hh"

#include <map>
#include <set>

#include "corpus/generator.hh"
#include "util/strings.hh"

namespace rememberr {

namespace {

SourceLocation
erratumLocation(const ErrataDocument &document,
                const Erratum &erratum, const std::string &field = {})
{
    SourceLocation location;
    location.path = document.sourcePath;
    location.line = field.empty() ? erratum.sourceLine
                                  : erratum.fieldLine(field);
    location.field = field;
    return location;
}

SourceLocation
revisionLocation(const ErrataDocument &document,
                 const Revision &revision)
{
    SourceLocation location;
    location.path = document.sourcePath;
    location.line = revision.sourceLine;
    location.field = "Revision";
    return location;
}

} // namespace

std::vector<Diagnostic>
checkDocument(const ErrataDocument &document,
              const DocCheckOptions &options)
{
    std::vector<Diagnostic> diagnostics;
    auto report = [&](DefectKind kind, std::vector<std::string> ids,
                      std::string message, SourceLocation location,
                      std::vector<SourceLocation> related = {}) {
        Diagnostic diagnostic;
        diagnostic.ruleId = std::string(ruleIdForDefect(kind));
        diagnostic.severity =
            findRule(diagnostic.ruleId)->defaultSeverity;
        diagnostic.message = std::move(message);
        diagnostic.location = std::move(location);
        diagnostic.related = std::move(related);
        diagnostic.ids = std::move(ids);
        diagnostics.push_back(std::move(diagnostic));
    };

    // Count how many entries carry each id; a reused name
    // legitimately appears in multiple revision notes, so it must
    // not also be flagged as a duplicate revision claim.
    std::map<std::string, int> idCount;
    for (const Erratum &erratum : document.errata)
        ++idCount[erratum.localId];

    // ---- Revision-note consistency ---------------------------------
    std::map<std::string, std::vector<const Revision *>> claims;
    for (const Revision &revision : document.revisions) {
        std::set<std::string> inThisRevision;
        for (const std::string &id : revision.addedIds) {
            // The same id twice in one revision is a note defect
            // too, but only cross-revision claims count for the
            // paper's "added in two consecutive revisions" category.
            if (inThisRevision.insert(id).second)
                claims[id].push_back(&revision);
        }
    }
    for (const auto &[id, revisions] : claims) {
        std::size_t count = revisions.size();
        if (count > 1 && idCount[id] <= 1) {
            report(DefectKind::DuplicateRevisionClaim, {id},
                   "revision notes claim '" + id + "' was added " +
                       std::to_string(count) + " times",
                   revisionLocation(document, *revisions[1]),
                   {revisionLocation(document, *revisions[0])});
        }
    }

    std::set<std::string> reportedMissing;
    for (const Erratum &erratum : document.errata) {
        if (!claims.count(erratum.localId) &&
            reportedMissing.insert(erratum.localId).second) {
            report(DefectKind::MissingFromNotes, {erratum.localId},
                   "'" + erratum.localId +
                       "' never appears in the revision notes",
                   erratumLocation(document, erratum));
        }
    }

    // ---- Identifier reuse ------------------------------------------
    for (const auto &[id, count] : idCount) {
        if (count > 1) {
            // Anchor on the second entry carrying the name; the
            // first is the legitimate use.
            SourceLocation second;
            std::vector<SourceLocation> related;
            int seen = 0;
            for (const Erratum &erratum : document.errata) {
                if (erratum.localId != id)
                    continue;
                if (++seen == 1)
                    related.push_back(
                        erratumLocation(document, erratum));
                else if (seen == 2)
                    second = erratumLocation(document, erratum);
            }
            report(DefectKind::ReusedName, {id, id},
                   "name '" + id + "' refers to " +
                       std::to_string(count) + " errata",
                   std::move(second), std::move(related));
        }
    }

    // ---- Field integrity -------------------------------------------
    for (const Erratum &erratum : document.errata) {
        if (erratum.title.empty() || erratum.description.empty() ||
            erratum.implications.empty() ||
            erratum.workaroundText.empty()) {
            std::string which =
                erratum.title.empty() ? "title"
                : erratum.description.empty() ? "description"
                : erratum.implications.empty() ? "implications"
                                               : "workaround";
            std::string field =
                erratum.title.empty() ? "Title"
                : erratum.description.empty() ? "Description"
                : erratum.implications.empty() ? "Implications"
                                               : "Workaround";
            report(DefectKind::MissingField, {erratum.localId},
                   "'" + erratum.localId + "' has an empty " +
                       which + " field",
                   erratumLocation(document, erratum, field));
        } else if (erratum.implications == erratum.description) {
            report(DefectKind::DuplicateField, {erratum.localId},
                   "'" + erratum.localId +
                       "' duplicates the description into the "
                       "implications field",
                   erratumLocation(document, erratum,
                                   "Implications"));
        }
    }

    // ---- MSR numbers -----------------------------------------------
    auto reference = options.msrReference
                         ? options.msrReference
                         : [](const std::string &name) {
                               return canonicalMsrNumber(name);
                           };
    for (const Erratum &erratum : document.errata) {
        for (const MsrRef &msr : erratum.msrs) {
            std::uint32_t expected = reference(msr.name);
            if (expected != 0 && msr.number != 0 &&
                msr.number != expected) {
                report(DefectKind::WrongMsrNumber,
                       {erratum.localId},
                       "'" + erratum.localId + "' lists " +
                           msr.name +
                           " with a number contradicting the "
                           "reference manual",
                       erratumLocation(document, erratum, "MSRs"));
            }
        }
    }

    // ---- Intra-document duplicates ---------------------------------
    // Two entries with identical canonical title, description AND
    // workaround but different ids are the same erratum repeated.
    // The workaround is part of the fingerprint because entries that
    // differ only there (the paper's errata-1327/1329 case) may
    // originate from distinct root causes and must not be flagged.
    std::map<std::string, std::vector<const Erratum *>> byContent;
    for (const Erratum &erratum : document.errata) {
        std::string fingerprint =
            strings::canonicalize(erratum.title) + "\x1f" +
            strings::canonicalize(erratum.description) + "\x1f" +
            strings::canonicalize(erratum.workaroundText);
        byContent[fingerprint].push_back(&erratum);
    }
    for (const auto &[fingerprint, entries] : byContent) {
        if (entries.size() < 2)
            continue;
        for (std::size_t i = 1; i < entries.size(); ++i) {
            if (entries[0]->localId == entries[i]->localId)
                continue; // already reported as ReusedName
            report(DefectKind::IntraDocDuplicate,
                   {entries[0]->localId, entries[i]->localId},
                   "'" + entries[0]->localId + "' and '" +
                       entries[i]->localId +
                       "' are the same erratum repeated in one "
                       "document",
                   erratumLocation(document, *entries[i]),
                   {erratumLocation(document, *entries[0])});
        }
    }

    return diagnostics;
}

} // namespace rememberr
