#include "render.hh"

#include "text/regex_automata.hh"

namespace rememberr {

namespace {

std::string
locationPrefix(const SourceLocation &location)
{
    std::string out = location.path.empty() ? "<unknown>"
                                            : location.path;
    if (location.line > 0) {
        out += ':';
        out += std::to_string(location.line);
    }
    return out;
}

JsonValue
locationToJson(const SourceLocation &location)
{
    JsonValue value = JsonValue::makeObject();
    value["path"] = location.path;
    value["line"] = location.line;
    if (!location.field.empty())
        value["field"] = location.field;
    return value;
}

/** SARIF severity levels are lower-case strings. */
std::string
sarifLevel(Severity severity)
{
    return std::string(severityName(severity));
}

JsonValue
sarifLocation(const SourceLocation &location)
{
    JsonValue artifact = JsonValue::makeObject();
    artifact["uri"] = location.path;
    JsonValue physical = JsonValue::makeObject();
    physical["artifactLocation"] = std::move(artifact);
    if (location.line > 0) {
        JsonValue region = JsonValue::makeObject();
        region["startLine"] = location.line;
        physical["region"] = std::move(region);
    }
    JsonValue wrapper = JsonValue::makeObject();
    wrapper["physicalLocation"] = std::move(physical);
    return wrapper;
}

} // namespace

DiagnosticCounts
countDiagnostics(const std::vector<Diagnostic> &diagnostics,
                 std::size_t suppressed)
{
    DiagnosticCounts counts;
    counts.suppressed = suppressed;
    for (const Diagnostic &diagnostic : diagnostics) {
        switch (diagnostic.severity) {
          case Severity::Error:
            ++counts.errors;
            break;
          case Severity::Warning:
            ++counts.warnings;
            break;
          case Severity::Note:
            ++counts.notes;
            break;
        }
    }
    return counts;
}

std::string
renderText(const std::vector<Diagnostic> &diagnostics,
           std::size_t suppressed, bool explain)
{
    std::string out;
    for (const Diagnostic &diagnostic : diagnostics) {
        out += locationPrefix(diagnostic.location);
        out += ": ";
        out += severityName(diagnostic.severity);
        out += ": ";
        out += diagnostic.message;
        out += " [";
        out += diagnostic.ruleId;
        out += "]\n";
        for (const SourceLocation &related : diagnostic.related) {
            out += "    see also: ";
            out += locationPrefix(related);
            out += '\n';
        }
        if (explain && diagnostic.witness) {
            out += "    witness: \"";
            out += escapeWitness(*diagnostic.witness);
            out += "\"\n";
        }
    }
    DiagnosticCounts counts = countDiagnostics(diagnostics,
                                               suppressed);
    out += "check: ";
    out += std::to_string(counts.errors) + " error(s), ";
    out += std::to_string(counts.warnings) + " warning(s), ";
    out += std::to_string(counts.notes) + " note(s)";
    if (counts.suppressed > 0) {
        out += " (" + std::to_string(counts.suppressed) +
               " suppressed by baseline)";
    }
    out += '\n';
    return out;
}

JsonValue
diagnosticsToJson(const std::vector<Diagnostic> &diagnostics,
                  std::size_t suppressed)
{
    JsonValue list = JsonValue::makeArray();
    for (const Diagnostic &diagnostic : diagnostics) {
        JsonValue entry = JsonValue::makeObject();
        entry["ruleId"] = diagnostic.ruleId;
        entry["severity"] =
            std::string(severityName(diagnostic.severity));
        entry["message"] = diagnostic.message;
        entry["location"] = locationToJson(diagnostic.location);
        if (!diagnostic.related.empty()) {
            JsonValue related = JsonValue::makeArray();
            for (const SourceLocation &location : diagnostic.related)
                related.append(locationToJson(location));
            entry["related"] = std::move(related);
        }
        JsonValue ids = JsonValue::makeArray();
        for (const std::string &id : diagnostic.ids)
            ids.append(id);
        entry["ids"] = std::move(ids);
        if (diagnostic.witness)
            entry["witness"] = *diagnostic.witness;
        list.append(std::move(entry));
    }

    DiagnosticCounts counts = countDiagnostics(diagnostics,
                                               suppressed);
    JsonValue summary = JsonValue::makeObject();
    summary["errors"] = counts.errors;
    summary["warnings"] = counts.warnings;
    summary["notes"] = counts.notes;
    summary["suppressed"] = counts.suppressed;

    JsonValue root = JsonValue::makeObject();
    root["diagnostics"] = std::move(list);
    root["summary"] = std::move(summary);
    return root;
}

JsonValue
diagnosticsToSarif(const std::vector<Diagnostic> &diagnostics)
{
    const std::vector<RuleInfo> &catalog = ruleCatalog();

    JsonValue rules = JsonValue::makeArray();
    for (const RuleInfo &rule : catalog) {
        JsonValue entry = JsonValue::makeObject();
        entry["id"] = std::string(rule.id);
        entry["name"] = std::string(rule.name);
        JsonValue text = JsonValue::makeObject();
        text["text"] = std::string(rule.summary);
        entry["shortDescription"] = std::move(text);
        JsonValue config = JsonValue::makeObject();
        config["level"] = sarifLevel(rule.defaultSeverity);
        entry["defaultConfiguration"] = std::move(config);
        rules.append(std::move(entry));
    }

    JsonValue driver = JsonValue::makeObject();
    driver["name"] = "rememberr-check";
    driver["informationUri"] =
        "https://github.com/rememberr/rememberr";
    driver["rules"] = std::move(rules);
    JsonValue tool = JsonValue::makeObject();
    tool["driver"] = std::move(driver);

    JsonValue results = JsonValue::makeArray();
    for (const Diagnostic &diagnostic : diagnostics) {
        JsonValue result = JsonValue::makeObject();
        result["ruleId"] = diagnostic.ruleId;
        for (std::size_t i = 0; i < catalog.size(); ++i) {
            if (catalog[i].id == diagnostic.ruleId) {
                result["ruleIndex"] = i;
                break;
            }
        }
        result["level"] = sarifLevel(diagnostic.severity);
        JsonValue message = JsonValue::makeObject();
        message["text"] = diagnostic.message;
        result["message"] = std::move(message);
        JsonValue locations = JsonValue::makeArray();
        locations.append(sarifLocation(diagnostic.location));
        result["locations"] = std::move(locations);
        if (!diagnostic.related.empty()) {
            JsonValue related = JsonValue::makeArray();
            for (const SourceLocation &location : diagnostic.related)
                related.append(sarifLocation(location));
            result["relatedLocations"] = std::move(related);
        }
        results.append(std::move(result));
    }

    JsonValue run = JsonValue::makeObject();
    run["tool"] = std::move(tool);
    run["results"] = std::move(results);
    JsonValue runs = JsonValue::makeArray();
    runs.append(std::move(run));

    JsonValue root = JsonValue::makeObject();
    root["$schema"] =
        "https://json.schemastore.org/sarif-2.1.0.json";
    root["version"] = "2.1.0";
    root["runs"] = std::move(runs);
    return root;
}

} // namespace rememberr
