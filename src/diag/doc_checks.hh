/**
 * @file
 * Per-document checks (rules RBE001..RBE007).
 *
 * The migrated "errata in errata" linter of Section IV-A: revisions
 * claiming the same erratum twice, errata never mentioned in the
 * revision notes, reused names, missing or duplicate fields, wrong
 * MSR numbers and intra-document duplicate entries. Findings carry
 * source locations from the parser, so every diagnostic points at
 * file:line. The legacy lintDocument() API in document/lint.hh is a
 * thin adapter over checkDocument().
 */

#ifndef REMEMBERR_DIAG_DOC_CHECKS_HH
#define REMEMBERR_DIAG_DOC_CHECKS_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "diagnostic.hh"
#include "model/erratum.hh"

namespace rememberr {

/** Per-document check configuration. */
struct DocCheckOptions
{
    /**
     * Reference resolver from MSR name to architectural number (the
     * paper cross-checked numbers against the vendor manuals);
     * returns 0 when the name is unknown. Defaults to the corpus's
     * canonical numbering.
     */
    std::function<std::uint32_t(const std::string &)> msrReference;
};

/** Run rules RBE001..RBE007 over one parsed document. */
std::vector<Diagnostic>
checkDocument(const ErrataDocument &document,
              const DocCheckOptions &options = {});

} // namespace rememberr

#endif // REMEMBERR_DIAG_DOC_CHECKS_HH
