/**
 * @file
 * Legacy linter interface, implemented on the diagnostics
 * framework. lintDocument() adapts checkDocument()'s Diagnostics
 * back to LintFindings, so callers of the historical API observe
 * bit-identical findings to `rememberr check`'s RBE001..RBE007.
 */

#include "document/lint.hh"

#include "diag/doc_checks.hh"
#include "util/logging.hh"

namespace rememberr {

std::vector<LintFinding>
lintDocument(const ErrataDocument &document,
             const LintOptions &options)
{
    DocCheckOptions checkOptions;
    checkOptions.msrReference = options.msrReference;

    std::vector<LintFinding> findings;
    for (Diagnostic &diagnostic :
         checkDocument(document, checkOptions)) {
        auto kind = defectForRuleId(diagnostic.ruleId);
        if (!kind) {
            REMEMBERR_PANIC("lintDocument: non-document rule ",
                            diagnostic.ruleId);
        }
        LintFinding finding;
        finding.kind = *kind;
        finding.localIds = std::move(diagnostic.ids);
        finding.detail = std::move(diagnostic.message);
        finding.line = diagnostic.location.line;
        findings.push_back(std::move(finding));
    }
    return findings;
}

LintSummary
summarizeFindings(
    const std::vector<std::vector<LintFinding>> &per_document)
{
    LintSummary summary;
    for (const auto &findings : per_document) {
        for (const LintFinding &finding : findings)
            ++summary.byKind[static_cast<std::size_t>(finding.kind)];
    }
    return summary;
}

} // namespace rememberr
