#include "ruleset_checks.hh"

#include <cctype>
#include <optional>

#include "classify/engine.hh"
#include "taxonomy/taxonomy.hh"
#include "util/parallel.hh"

namespace rememberr {

namespace {

using Diagnostics = std::vector<Diagnostic>;

/** One pattern slot: category + list + index. */
struct PatternRef
{
    CategoryId category = 0;
    const char *list = "accept";
    std::size_t index = 0;
    const Regex *regex = nullptr;
};

SourceLocation
patternLocation(const PatternRef &ref)
{
    SourceLocation location;
    location.path =
        "ruleset:" +
        Taxonomy::instance().categoryById(ref.category).code;
    location.field = std::string(ref.list) + "[" +
                     std::to_string(ref.index) + "]";
    return location;
}

Diagnostic
patternDiagnostic(std::string_view rule_id, const PatternRef &ref,
                  std::string message)
{
    Diagnostic diagnostic;
    diagnostic.ruleId = std::string(rule_id);
    diagnostic.severity = findRule(rule_id)->defaultSeverity;
    diagnostic.message = std::move(message);
    diagnostic.location = patternLocation(ref);
    diagnostic.ids = {
        Taxonomy::instance().categoryById(ref.category).code,
        diagnostic.location.field};
    return diagnostic;
}

/**
 * Shadow analysis is only sound for patterns whose match condition
 * is pure substring containment. Anchors and boundary assertions
 * constrain *where* the language strings may occur, so any pattern
 * mentioning them is excluded (conservatively — '^' inside a
 * character class also disqualifies).
 */
bool
containmentSemantics(const Regex &regex)
{
    const std::string &p = regex.pattern();
    return p.find('^') == std::string::npos &&
           p.find('$') == std::string::npos &&
           p.find("\\b") == std::string::npos &&
           p.find("\\B") == std::string::npos;
}

/**
 * Every string of `language` contains some string of `earlier` as a
 * substring — then any text matching the later pattern also matches
 * the earlier one, and the later pattern is unreachable in an
 * any-of list.
 */
bool
languageSubsumed(const std::vector<std::string> &language,
                 const std::vector<std::string> &earlier)
{
    for (const std::string &word : language) {
        bool covered = false;
        for (const std::string &needle : earlier) {
            if (!needle.empty() &&
                word.find(needle) != std::string::npos) {
                covered = true;
                break;
            }
        }
        if (!covered)
            return false;
    }
    return !language.empty();
}

/** "; e.g. \"...\" ..." clause shared by RBE201/RBE205 messages. */
std::string
exampleClause(const std::optional<std::string> &word)
{
    if (!word)
        return "";
    return "; e.g. \"" + escapeWitness(*word) +
           "\" already fires the earlier pattern";
}

/** RBE201/RBE203/RBE204/RBE205/RBE207 over one pattern list. */
void
checkPatternList(CategoryId category, const char *list,
                 const std::vector<Regex> &patterns,
                 const AutomataOptions &automata, Diagnostics &out)
{
    // Exact literal languages, computed once per pattern: the fast
    // screen. A pair of finite literal languages is decided by
    // substring cover alone; everything else goes to the automata.
    std::vector<std::optional<std::vector<std::string>>> languages;
    languages.reserve(patterns.size());
    for (const Regex &regex : patterns) {
        if (containmentSemantics(regex))
            languages.push_back(regex.exactLiterals());
        else
            languages.push_back(std::nullopt);
    }

    for (std::size_t i = 0; i < patterns.size(); ++i) {
        PatternRef ref{category, list, i, &patterns[i]};

        // RBE201/RBE205: language containment against every earlier
        // pattern of the same list. One finding per pattern.
        for (std::size_t j = 0; j < i; ++j) {
            bool shadowed = false;
            bool bothWays = false;
            if (languages[i] && languages[j]) {
                shadowed = languageSubsumed(*languages[i],
                                            *languages[j]);
                bothWays = shadowed &&
                           languageSubsumed(*languages[j],
                                            *languages[i]);
            } else {
                AutomataResult incl = RegexAutomata::includes(
                    patterns[i], patterns[j], automata);
                if (incl.budgetExhausted()) {
                    out.push_back(patternDiagnostic(
                        "RBE207", ref,
                        "containment of /" + patterns[i].pattern() +
                            "/ in earlier pattern /" +
                            patterns[j].pattern() +
                            "/ is undecided within the " +
                            std::to_string(automata.stateBudget) +
                            "-state analysis budget"));
                    continue;
                }
                shadowed = incl.holds();
                if (shadowed) {
                    // Reverse direction only distinguishes RBE205
                    // from RBE201; on budget exhaustion fall back
                    // to the weaker (still true) RBE201 claim.
                    bothWays = RegexAutomata::includes(
                                   patterns[j], patterns[i],
                                   automata)
                                   .holds();
                }
            }
            if (!shadowed)
                continue;

            std::optional<std::string> word =
                RegexAutomata::shortestAcceptedWord(patterns[i],
                                                    automata);
            Diagnostic diagnostic;
            if (bothWays) {
                diagnostic = patternDiagnostic(
                    "RBE205", ref,
                    "pattern /" + patterns[i].pattern() +
                        "/ accepts exactly the same texts as "
                        "earlier pattern /" +
                        patterns[j].pattern() +
                        "/; one of them is redundant" +
                        exampleClause(word));
            } else {
                diagnostic = patternDiagnostic(
                    "RBE201", ref,
                    "pattern /" + patterns[i].pattern() +
                        "/ is shadowed by earlier pattern /" +
                        patterns[j].pattern() +
                        "/ and can never change the outcome" +
                        exampleClause(word));
            }
            diagnostic.witness = word;
            out.push_back(std::move(diagnostic));
            break;
        }

        // RBE203: no literal factor means the Aho-Corasick
        // prefilter can never screen this pattern out.
        if (patterns[i].literalFactors().empty()) {
            out.push_back(patternDiagnostic(
                "RBE203", ref,
                "pattern /" + patterns[i].pattern() +
                    "/ yields no literal factors; every text falls "
                    "through the prefilter to the regex VM"));
        }

        // RBE204: nested variable repetition. Since the linear DFA
        // tier became the default, the hazard only bites paths that
        // still reach the backtracking VM — report which case this
        // pattern is in so the finding is actionable.
        if (auto hazard = patterns[i].backtrackingHazard()) {
            const char *tierNote =
                patterns[i].linearSpanEligible()
                    ? " [neutralized: decisions and spans run on "
                      "the linear DFA tier]"
                    : " [decisions run on the linear DFA tier, but "
                      "capture groups keep span extraction on the "
                      "backtracking VM]";
            out.push_back(patternDiagnostic(
                "RBE204", ref,
                "pattern /" + patterns[i].pattern() + "/: " +
                    *hazard + tierNote));
        }
    }
}

/** ASCII-lower-case a text once for factor screening. */
std::string
foldedCopy(const std::string &text)
{
    std::string folded = text;
    for (char &c : folded)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    return folded;
}

/** Whether the pattern matches at least one of the texts. */
bool
matchesAnywhere(const Regex &regex,
                const std::vector<std::string> &texts,
                const std::vector<std::string> &folded)
{
    std::vector<std::string> factors = regex.literalFactors();
    for (std::size_t t = 0; t < texts.size(); ++t) {
        if (!factors.empty()) {
            bool hit = false;
            for (const std::string &factor : factors) {
                if (folded[t].find(factor) != std::string::npos) {
                    hit = true;
                    break;
                }
            }
            if (!hit)
                continue;
        }
        if (regex.contains(texts[t]))
            return true;
    }
    return false;
}

} // namespace

std::vector<Diagnostic>
checkRuleSet(const RuleSet &rules, const RulesetCheckOptions &options)
{
    return checkCategoryRules(rules.rules(), options);
}

std::vector<Diagnostic>
checkCategoryRules(const std::vector<CategoryRule> &rules,
                   const RulesetCheckOptions &options)
{
    Diagnostics out;
    std::size_t patternCount = 0;
    AutomataOptions automata;
    automata.stateBudget = options.automataBudget;

    // Structural checks: automata + AST work, serial, category order.
    for (const CategoryRule &rule : rules) {
        checkPatternList(rule.id, "accept", rule.accept, automata,
                         out);
        checkPatternList(rule.id, "relevance", rule.relevance,
                         automata, out);
        patternCount += rule.accept.size() + rule.relevance.size();
    }

    // RBE206: an accept pattern whose language escapes the union of
    // the category's relevance patterns. The engine checks accept
    // against body text (a substring of the full text the relevance
    // screen sees), so a text in L(accept)\∪L(relevance) really can
    // classify AutoYes while the relevance screen calls it
    // irrelevant — the classification depends on list order.
    for (const CategoryRule &rule : rules) {
        if (rule.relevance.empty())
            continue;
        std::vector<const Regex *> relevance;
        for (const Regex &regex : rule.relevance)
            relevance.push_back(&regex);
        for (std::size_t i = 0; i < rule.accept.size(); ++i) {
            PatternRef ref{rule.id, "accept", i, &rule.accept[i]};
            AutomataResult cover = RegexAutomata::includedInUnion(
                rule.accept[i], relevance, automata);
            if (cover.budgetExhausted()) {
                out.push_back(patternDiagnostic(
                    "RBE207", ref,
                    "coverage of accept pattern /" +
                        rule.accept[i].pattern() +
                        "/ by the relevance list is undecided "
                        "within the " +
                        std::to_string(automata.stateBudget) +
                        "-state analysis budget"));
                continue;
            }
            if (!cover.fails())
                continue;
            Diagnostic diagnostic = patternDiagnostic(
                "RBE206", ref,
                "accept pattern /" + rule.accept[i].pattern() +
                    "/ matches text the relevance list rejects "
                    "(\"" +
                    escapeWitness(cover.witness) +
                    "\"), so classification depends on list "
                    "order");
            diagnostic.witness = cover.witness;
            out.push_back(std::move(diagnostic));
        }
    }

    // RBE202: patterns that never fire on the calibrated corpus.
    // Accept patterns see body text only, relevance patterns the
    // full text — mirroring the engine's evaluation.
    if (options.corpus) {
        std::vector<std::string> bodies;
        std::vector<std::string> fulls;
        for (const ErrataDocument &document : *options.corpus) {
            for (const Erratum &erratum : document.errata) {
                bodies.push_back(erratumBodyText(erratum));
                fulls.push_back(erratumFullText(erratum));
            }
        }
        std::vector<std::string> foldedBodies;
        std::vector<std::string> foldedFulls;
        for (const std::string &body : bodies)
            foldedBodies.push_back(foldedCopy(body));
        for (const std::string &full : fulls)
            foldedFulls.push_back(foldedCopy(full));

        std::vector<PatternRef> refs;
        for (const CategoryRule &rule : rules) {
            for (std::size_t i = 0; i < rule.accept.size(); ++i)
                refs.push_back(
                    {rule.id, "accept", i, &rule.accept[i]});
            for (std::size_t i = 0; i < rule.relevance.size(); ++i)
                refs.push_back(
                    {rule.id, "relevance", i, &rule.relevance[i]});
        }

        Diagnostics dead = parallelMapReduce<Diagnostics>(
            refs.size(), options.threads,
            [&](std::size_t begin, std::size_t end) {
                Diagnostics part;
                for (std::size_t r = begin; r < end; ++r) {
                    const PatternRef &ref = refs[r];
                    bool isAccept =
                        std::string_view(ref.list) == "accept";
                    bool alive = matchesAnywhere(
                        *ref.regex, isAccept ? bodies : fulls,
                        isAccept ? foldedBodies : foldedFulls);
                    if (!alive) {
                        part.push_back(patternDiagnostic(
                            "RBE202", ref,
                            "pattern /" + ref.regex->pattern() +
                                "/ matches no erratum of the "
                                "calibrated corpus"));
                    }
                }
                return part;
            },
            [](Diagnostics &acc, Diagnostics &&part) {
                std::move(part.begin(), part.end(),
                          std::back_inserter(acc));
            });
        std::move(dead.begin(), dead.end(),
                  std::back_inserter(out));
    }

    if (options.metrics) {
        options.metrics->counter("check.ruleset.patterns")
            .add(patternCount);
        options.metrics->counter("check.ruleset.diagnostics")
            .add(out.size());
    }
    return out;
}

} // namespace rememberr
