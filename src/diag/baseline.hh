/**
 * @file
 * Baseline files: accepted findings that should not fail CI.
 *
 * A baseline is the set of fingerprints of known diagnostics. A
 * check run filters its findings against the baseline and fails
 * only on fingerprints not present — so a repository can adopt the
 * checker without first fixing (or losing sight of) every historical
 * finding. Fingerprints deliberately exclude line numbers: inserting
 * text above a known finding must not make it "new".
 */

#ifndef REMEMBERR_DIAG_BASELINE_HH
#define REMEMBERR_DIAG_BASELINE_HH

#include <set>
#include <string>
#include <vector>

#include "diagnostic.hh"
#include "util/expected.hh"

namespace rememberr {

/** A set of accepted diagnostic fingerprints. */
class Baseline
{
  public:
    /**
     * Stable identity of one diagnostic:
     * "<ruleId> <path basename> <ids joined with ','> <fnv1a32 of
     * the message>". Line numbers are excluded on purpose.
     */
    static std::string fingerprint(const Diagnostic &diagnostic);

    /** Collect the fingerprints of a set of diagnostics. */
    static Baseline
    fromDiagnostics(const std::vector<Diagnostic> &diagnostics);

    /** Parse the baseline file format produced by serialize(). */
    static Expected<Baseline> parse(const std::string &text);

    /** One fingerprint per line, sorted; '#' lines are comments. */
    std::string serialize() const;

    bool contains(const Diagnostic &diagnostic) const;

    std::size_t size() const { return fingerprints_.size(); }

  private:
    std::set<std::string> fingerprints_;
};

} // namespace rememberr

#endif // REMEMBERR_DIAG_BASELINE_HH
