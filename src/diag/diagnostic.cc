#include "diagnostic.hh"

#include "util/logging.hh"

namespace rememberr {

std::string_view
severityName(Severity severity)
{
    switch (severity) {
      case Severity::Note:
        return "note";
      case Severity::Warning:
        return "warning";
      case Severity::Error:
        return "error";
    }
    REMEMBERR_PANIC("severityName: bad severity");
}

std::optional<Severity>
parseSeverity(std::string_view name)
{
    if (name == "note")
        return Severity::Note;
    if (name == "warning")
        return Severity::Warning;
    if (name == "error")
        return Severity::Error;
    return std::nullopt;
}

const std::vector<RuleInfo> &
ruleCatalog()
{
    static const std::vector<RuleInfo> catalog = {
        {"RBE001", "duplicate-revision-claim",
         "two revisions claim to have added the same erratum",
         Severity::Warning},
        {"RBE002", "missing-from-notes",
         "an erratum never appears in the revision notes",
         Severity::Warning},
        {"RBE003", "reused-name",
         "one document-local name refers to several errata",
         Severity::Error},
        {"RBE004", "missing-field",
         "a mandatory erratum field is empty", Severity::Warning},
        {"RBE005", "duplicate-field",
         "a field duplicates another field verbatim",
         Severity::Warning},
        {"RBE006", "wrong-msr-number",
         "an MSR number contradicts the reference manual",
         Severity::Error},
        {"RBE007", "intra-doc-duplicate",
         "the same erratum appears twice in one document",
         Severity::Warning},
        {"RBE101", "status-regression",
         "a duplicate's fix status regresses from Fixed to NoFix in "
         "a newer document",
         Severity::Error},
        {"RBE102", "divergent-msr-numbers",
         "duplicates of one erratum disagree on an MSR number",
         Severity::Error},
        {"RBE103", "divergent-workaround",
         "duplicates of one erratum disagree on the workaround text",
         Severity::Warning},
        {"RBE104", "non-monotonic-revision-dates",
         "a document's revision dates go backwards",
         Severity::Warning},
        {"RBE105", "dangling-reference",
         "revision notes reference an erratum the document never "
         "defines",
         Severity::Warning},
        {"RBE201", "shadowed-pattern",
         "a rule pattern is subsumed by an earlier pattern of the "
         "same list and can never change the outcome",
         Severity::Warning},
        {"RBE202", "dead-pattern",
         "a rule pattern matches no erratum of the calibrated "
         "corpus",
         Severity::Note},
        {"RBE203", "factorless-pattern",
         "a rule pattern yields no literal factors, so every text "
         "falls through the prefilter to the regex VM",
         Severity::Note},
        {"RBE204", "backtracking-hazard",
         "a rule pattern contains nested variable repetition that "
         "backtracks exponentially on the VM; the finding reports "
         "whether the linear DFA tier neutralizes it",
         Severity::Warning},
        {"RBE205", "equivalent-patterns",
         "two patterns of one list accept exactly the same texts; "
         "one of them is redundant",
         Severity::Warning},
        {"RBE206", "uncovered-accept-pattern",
         "an accept pattern matches texts its category's relevance "
         "list rejects, so classification depends on evaluation "
         "order; the finding carries a witness text",
         Severity::Warning},
        {"RBE207", "analysis-budget-exceeded",
         "the automata analysis hit its state budget before "
         "deciding a pattern pair, so that pair is unverified",
         Severity::Note},
    };
    return catalog;
}

const RuleInfo *
findRule(std::string_view id_or_name)
{
    for (const RuleInfo &rule : ruleCatalog()) {
        if (rule.id == id_or_name || rule.name == id_or_name)
            return &rule;
    }
    return nullptr;
}

std::string_view
ruleIdForDefect(DefectKind kind)
{
    switch (kind) {
      case DefectKind::DuplicateRevisionClaim:
        return "RBE001";
      case DefectKind::MissingFromNotes:
        return "RBE002";
      case DefectKind::ReusedName:
        return "RBE003";
      case DefectKind::MissingField:
        return "RBE004";
      case DefectKind::DuplicateField:
        return "RBE005";
      case DefectKind::WrongMsrNumber:
        return "RBE006";
      case DefectKind::IntraDocDuplicate:
        return "RBE007";
      case DefectKind::StatusRegression:
        return "RBE101";
      case DefectKind::DivergentWorkaround:
        return "RBE103";
      case DefectKind::DanglingReference:
        return "RBE105";
    }
    REMEMBERR_PANIC("ruleIdForDefect: bad kind");
}

std::optional<DefectKind>
defectForRuleId(std::string_view rule_id)
{
    for (std::size_t k = 0; k < kDefectKindCount; ++k) {
        DefectKind kind = static_cast<DefectKind>(k);
        if (ruleIdForDefect(kind) == rule_id)
            return kind;
    }
    return std::nullopt;
}

bool
RuleConfig::disable(std::string_view id_or_name)
{
    const RuleInfo *rule = findRule(id_or_name);
    if (!rule)
        return false;
    enabled_[std::string(rule->id)] = false;
    return true;
}

bool
RuleConfig::overrideSeverity(std::string_view id_or_name,
                             Severity severity)
{
    const RuleInfo *rule = findRule(id_or_name);
    if (!rule)
        return false;
    severities_[std::string(rule->id)] = severity;
    return true;
}

bool
RuleConfig::enabled(std::string_view rule_id) const
{
    auto it = enabled_.find(rule_id);
    return it == enabled_.end() || it->second;
}

Severity
RuleConfig::severityFor(std::string_view rule_id) const
{
    auto it = severities_.find(rule_id);
    if (it != severities_.end())
        return it->second;
    const RuleInfo *rule = findRule(rule_id);
    return rule ? rule->defaultSeverity : Severity::Warning;
}

std::vector<Diagnostic>
RuleConfig::apply(std::vector<Diagnostic> diagnostics) const
{
    std::vector<Diagnostic> kept;
    kept.reserve(diagnostics.size());
    for (Diagnostic &diagnostic : diagnostics) {
        if (!enabled(diagnostic.ruleId))
            continue;
        diagnostic.severity = severityFor(diagnostic.ruleId);
        kept.push_back(std::move(diagnostic));
    }
    return kept;
}

} // namespace rememberr
