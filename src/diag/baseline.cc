#include "baseline.hh"

#include <cstdint>
#include <cstdio>

namespace rememberr {

namespace {

/** FNV-1a over the message keeps fingerprints short but specific. */
std::uint32_t
fnv1a32(const std::string &text)
{
    std::uint32_t hash = 2166136261u;
    for (char c : text) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 16777619u;
    }
    return hash;
}

std::string
basenameOf(const std::string &path)
{
    std::size_t slash = path.find_last_of('/');
    return slash == std::string::npos ? path
                                      : path.substr(slash + 1);
}

} // namespace

std::string
Baseline::fingerprint(const Diagnostic &diagnostic)
{
    std::string ids;
    for (const std::string &id : diagnostic.ids) {
        if (!ids.empty())
            ids += ',';
        ids += id;
    }
    char hash[12];
    std::snprintf(hash, sizeof(hash), "%08x",
                  fnv1a32(diagnostic.message));
    return diagnostic.ruleId + ' ' +
           basenameOf(diagnostic.location.path) + ' ' + ids + ' ' +
           hash;
}

Baseline
Baseline::fromDiagnostics(const std::vector<Diagnostic> &diagnostics)
{
    Baseline baseline;
    for (const Diagnostic &diagnostic : diagnostics)
        baseline.fingerprints_.insert(fingerprint(diagnostic));
    return baseline;
}

Expected<Baseline>
Baseline::parse(const std::string &text)
{
    Baseline baseline;
    std::size_t pos = 0;
    int lineNo = 0;
    while (pos <= text.size()) {
        std::size_t end = text.find('\n', pos);
        if (end == std::string::npos)
            end = text.size();
        std::string line = text.substr(pos, end - pos);
        ++lineNo;
        pos = end + 1;
        if (line.empty() || line[0] == '#')
            continue;
        // Shape check: "RBExxx basename ids hash" (ids may be "").
        std::size_t spaces = 0;
        for (char c : line)
            spaces += c == ' ';
        if (line.rfind("RBE", 0) != 0 || spaces != 3) {
            return makeError("baseline: malformed fingerprint",
                             lineNo);
        }
        baseline.fingerprints_.insert(std::move(line));
    }
    return baseline;
}

std::string
Baseline::serialize() const
{
    std::string out =
        "# rememberr check baseline: accepted findings, one "
        "fingerprint per line.\n"
        "# Regenerate with `rememberr check --write-baseline "
        "<file>`.\n";
    for (const std::string &fingerprint : fingerprints_) {
        out += fingerprint;
        out += '\n';
    }
    return out;
}

bool
Baseline::contains(const Diagnostic &diagnostic) const
{
    return fingerprints_.count(fingerprint(diagnostic)) != 0;
}

} // namespace rememberr
