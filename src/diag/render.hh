/**
 * @file
 * Diagnostic renderers: pretty text, JSON, and SARIF 2.1.0.
 *
 * SARIF (Static Analysis Results Interchange Format) is the OASIS
 * interchange format understood by code-review tooling; emitting it
 * lets `rememberr check` findings flow into the same viewers as any
 * other static analyzer. The JSON renderer is a simpler structure
 * for scripting; the text renderer is the human default.
 */

#ifndef REMEMBERR_DIAG_RENDER_HH
#define REMEMBERR_DIAG_RENDER_HH

#include <string>
#include <vector>

#include "diagnostic.hh"
#include "util/json.hh"

namespace rememberr {

/** Totals of one rendered run. */
struct DiagnosticCounts
{
    std::size_t errors = 0;
    std::size_t warnings = 0;
    std::size_t notes = 0;
    /** Findings suppressed by the baseline (not rendered). */
    std::size_t suppressed = 0;

    std::size_t total() const { return errors + warnings + notes; }
};

DiagnosticCounts
countDiagnostics(const std::vector<Diagnostic> &diagnostics,
                 std::size_t suppressed = 0);

/**
 * "path:line: severity: message [ruleId]" per diagnostic, related
 * locations indented below, then one summary line. With `explain`,
 * findings carrying a witness get an indented "witness:" line with
 * the escaped counterexample text (`check --explain`).
 */
std::string renderText(const std::vector<Diagnostic> &diagnostics,
                       std::size_t suppressed = 0,
                       bool explain = false);

/** {"diagnostics": [...], "summary": {...}} */
JsonValue diagnosticsToJson(
    const std::vector<Diagnostic> &diagnostics,
    std::size_t suppressed = 0);

/**
 * SARIF 2.1.0: one run, the full rule catalog under
 * tool.driver.rules, one result per diagnostic with ruleIndex into
 * the catalog. Regions are omitted for unknown (0) lines, as the
 * SARIF schema requires startLine >= 1.
 */
JsonValue diagnosticsToSarif(
    const std::vector<Diagnostic> &diagnostics);

} // namespace rememberr

#endif // REMEMBERR_DIAG_RENDER_HH
