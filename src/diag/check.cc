#include "check.hh"

#include "classify/rules.hh"
#include "diag/corpus_checks.hh"
#include "diag/ruleset_checks.hh"
#include "util/parallel.hh"

namespace rememberr {

CheckReport
runChecks(const std::vector<ErrataDocument> &documents,
          const DedupResult &dedup, const CheckOptions &options)
{
    std::vector<Diagnostic> all;

    // Per-document checks, merged in document order.
    {
        ScopedSpan span(options.trace, "check.documents");
        using Diagnostics = std::vector<Diagnostic>;
        Diagnostics docDiags = parallelMapReduce<Diagnostics>(
            documents.size(), options.threads,
            [&](std::size_t begin, std::size_t end) {
                Diagnostics part;
                for (std::size_t d = begin; d < end; ++d) {
                    Diagnostics one = checkDocument(
                        documents[d], options.docOptions);
                    std::move(one.begin(), one.end(),
                              std::back_inserter(part));
                }
                return part;
            },
            [](Diagnostics &acc, Diagnostics &&part) {
                std::move(part.begin(), part.end(),
                          std::back_inserter(acc));
            });
        if (options.metrics) {
            options.metrics->counter("check.documents")
                .add(documents.size());
            options.metrics->counter("check.document.diagnostics")
                .add(docDiags.size());
        }
        std::move(docDiags.begin(), docDiags.end(),
                  std::back_inserter(all));
    }

    // Cross-document checks.
    {
        ScopedSpan span(options.trace, "check.corpus");
        CorpusCheckOptions corpusOptions;
        corpusOptions.threads = options.threads;
        corpusOptions.metrics = options.metrics;
        std::vector<Diagnostic> corpusDiags =
            checkCorpus(documents, dedup, corpusOptions);
        std::move(corpusDiags.begin(), corpusDiags.end(),
                  std::back_inserter(all));
    }

    // Rule-set analysis. The expensive dead-pattern sweep is
    // skipped outright when RBE202 is disabled.
    if (options.ruleSetChecks) {
        ScopedSpan span(options.trace, "check.ruleset");
        RulesetCheckOptions rulesetOptions;
        rulesetOptions.corpus =
            options.config.enabled("RBE202") ? &documents : nullptr;
        rulesetOptions.threads = options.threads;
        rulesetOptions.metrics = options.metrics;
        rulesetOptions.automataBudget = options.automataBudget;
        std::vector<Diagnostic> rulesetDiags =
            checkRuleSet(RuleSet::instance(), rulesetOptions);
        std::move(rulesetDiags.begin(), rulesetDiags.end(),
                  std::back_inserter(all));
    }

    all = options.config.apply(std::move(all));

    CheckReport report;
    if (options.baseline) {
        for (Diagnostic &diagnostic : all) {
            if (options.baseline->contains(diagnostic))
                ++report.suppressed;
            else
                report.diagnostics.push_back(std::move(diagnostic));
        }
    } else {
        report.diagnostics = std::move(all);
    }

    if (options.metrics) {
        options.metrics->counter("check.diagnostics")
            .add(report.diagnostics.size());
        options.metrics->counter("check.suppressed")
            .add(report.suppressed);
    }
    return report;
}

} // namespace rememberr
