/**
 * @file
 * Cross-document checks (rules RBE101..RBE105).
 *
 * These defects are invisible to a per-document linter: they only
 * appear when the whole corpus and its dedup clusters are in hand.
 * Within a cluster of duplicates the checks compare fix status
 * (Fixed must not regress to NoFix in a newer document), MSR
 * numbers, and workaround text; per document they verify that
 * revision dates advance monotonically and that revision notes only
 * reference errata the document defines.
 */

#ifndef REMEMBERR_DIAG_CORPUS_CHECKS_HH
#define REMEMBERR_DIAG_CORPUS_CHECKS_HH

#include <cstddef>
#include <vector>

#include "dedup/dedup.hh"
#include "diagnostic.hh"
#include "model/erratum.hh"
#include "obs/metrics.hh"

namespace rememberr {

/** Cross-document check configuration. */
struct CorpusCheckOptions
{
    /** Worker threads (0 = all hardware threads, 1 = serial). */
    std::size_t threads = 1;
    /** When set, receives check.* counters. */
    MetricsRegistry *metrics = nullptr;
};

/**
 * Run rules RBE101..RBE105 over a deduplicated corpus. The dedup
 * result must be aligned with `documents` (keyByDoc parallel to the
 * errata vectors). Output order is deterministic for any thread
 * count: cluster checks in cluster-key order, document checks in
 * document order.
 */
std::vector<Diagnostic>
checkCorpus(const std::vector<ErrataDocument> &documents,
            const DedupResult &dedup,
            const CorpusCheckOptions &options = {});

} // namespace rememberr

#endif // REMEMBERR_DIAG_CORPUS_CHECKS_HH
