/**
 * @file
 * The check driver: one entry point running every analysis layer.
 *
 * Runs per-document checks (RBE001..007) in parallel over all
 * documents, cross-document checks (RBE101..105) over the dedup
 * clusters, and — when requested — rule-set analysis
 * (RBE201..207); then applies the rule configuration and the
 * baseline. The output order is deterministic for any thread count.
 */

#ifndef REMEMBERR_DIAG_CHECK_HH
#define REMEMBERR_DIAG_CHECK_HH

#include <cstddef>
#include <vector>

#include "baseline.hh"
#include "dedup/dedup.hh"
#include "diag/doc_checks.hh"
#include "diagnostic.hh"
#include "model/erratum.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "render.hh"

namespace rememberr {

/** Check-run configuration. */
struct CheckOptions
{
    /** Rule enablement and severity overrides. */
    RuleConfig config;
    /** Per-document check knobs (MSR reference). */
    DocCheckOptions docOptions;
    /** Run RBE201..207 over the classification rule tables. */
    bool ruleSetChecks = true;
    /** Automata state budget for RBE201/205/206 (see RBE207). */
    std::size_t automataBudget = 4096;
    /** Known findings to suppress; null = report everything. */
    const Baseline *baseline = nullptr;
    /** Worker threads (0 = all hardware threads, 1 = serial). */
    std::size_t threads = 1;
    /** When set, receives check.* counters. */
    MetricsRegistry *metrics = nullptr;
    /** When set, records check.* spans. */
    TraceRecorder *trace = nullptr;
};

/** Outcome of one check run. */
struct CheckReport
{
    /** New findings, after config filtering and the baseline. */
    std::vector<Diagnostic> diagnostics;
    /** Findings suppressed by the baseline. */
    std::size_t suppressed = 0;

    DiagnosticCounts
    counts() const
    {
        return countDiagnostics(diagnostics, suppressed);
    }

    /** A run fails on any unsuppressed error or warning. */
    bool
    failed() const
    {
        DiagnosticCounts c = counts();
        return c.errors + c.warnings > 0;
    }
};

/** Run every check layer over a deduplicated corpus. */
CheckReport runChecks(const std::vector<ErrataDocument> &documents,
                      const DedupResult &dedup,
                      const CheckOptions &options = {});

} // namespace rememberr

#endif // REMEMBERR_DIAG_CHECK_HH
