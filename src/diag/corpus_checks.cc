#include "corpus_checks.hh"

#include <algorithm>
#include <map>
#include <set>

#include "util/parallel.hh"
#include "util/strings.hh"

namespace rememberr {

namespace {

using Diagnostics = std::vector<Diagnostic>;

Diagnostic
makeDiagnostic(std::string_view rule_id,
               std::vector<std::string> ids, std::string message,
               SourceLocation location,
               std::vector<SourceLocation> related = {})
{
    Diagnostic diagnostic;
    diagnostic.ruleId = std::string(rule_id);
    diagnostic.severity = findRule(rule_id)->defaultSeverity;
    diagnostic.message = std::move(message);
    diagnostic.location = std::move(location);
    diagnostic.related = std::move(related);
    diagnostic.ids = std::move(ids);
    return diagnostic;
}

SourceLocation
rowLocation(const std::vector<ErrataDocument> &documents,
            const ErratumRef &ref, const std::string &field = {})
{
    const ErrataDocument &document =
        documents[static_cast<std::size_t>(ref.docIndex)];
    const Erratum &erratum = document.errata[ref.position];
    SourceLocation location;
    location.path = document.sourcePath;
    location.line = field.empty() ? erratum.sourceLine
                                  : erratum.fieldLine(field);
    location.field = field;
    return location;
}

/** Rules RBE101..RBE103 over one cluster of duplicate rows. */
void
checkCluster(const std::vector<ErrataDocument> &documents,
             std::vector<ErratumRef> rows, Diagnostics &out)
{
    if (rows.size() < 2)
        return;
    // Documents are inventoried chronologically per vendor, so
    // (docIndex, position) orders a cluster's rows oldest first.
    std::sort(rows.begin(), rows.end(),
              [](const ErratumRef &a, const ErratumRef &b) {
                  return std::pair(a.docIndex, a.position) <
                         std::pair(b.docIndex, b.position);
              });
    auto erratumOf = [&](const ErratumRef &ref) -> const Erratum & {
        return documents[static_cast<std::size_t>(ref.docIndex)]
            .errata[ref.position];
    };

    // RBE101: Fixed must not regress to NoFix in a newer document.
    bool regressionReported = false;
    for (std::size_t i = 0;
         i < rows.size() && !regressionReported; ++i) {
        if (erratumOf(rows[i]).status != FixStatus::Fixed)
            continue;
        for (std::size_t j = i + 1; j < rows.size(); ++j) {
            if (rows[j].docIndex == rows[i].docIndex ||
                erratumOf(rows[j]).status != FixStatus::NoFix) {
                continue;
            }
            const Erratum &fixed = erratumOf(rows[i]);
            const Erratum &regressed = erratumOf(rows[j]);
            out.push_back(makeDiagnostic(
                "RBE101", {fixed.localId, regressed.localId},
                "'" + regressed.localId +
                    "' regresses from Fixed to NoFix in a newer "
                    "document",
                rowLocation(documents, rows[j], "Status"),
                {rowLocation(documents, rows[i], "Status")}));
            regressionReported = true; // one report per cluster
            break;
        }
    }

    // RBE102: duplicates must agree on every MSR number.
    {
        std::map<std::string,
                 std::map<std::uint32_t, ErratumRef>> byName;
        for (const ErratumRef &ref : rows) {
            for (const MsrRef &msr : erratumOf(ref).msrs)
                byName[msr.name].try_emplace(msr.number, ref);
        }
        for (const auto &[name, numbers] : byName) {
            if (numbers.size() < 2)
                continue;
            const ErratumRef &first = numbers.begin()->second;
            const ErratumRef &second =
                std::next(numbers.begin())->second;
            out.push_back(makeDiagnostic(
                "RBE102",
                {erratumOf(first).localId,
                 erratumOf(second).localId},
                "duplicates of '" + erratumOf(first).localId +
                    "' list " + name + " with " +
                    std::to_string(numbers.size()) +
                    " different numbers",
                rowLocation(documents, second, "MSRs"),
                {rowLocation(documents, first, "MSRs")}));
        }
    }

    // RBE103: duplicates must agree on the workaround.
    {
        const ErratumRef &first = rows[0];
        std::string reference =
            strings::canonicalize(erratumOf(first).workaroundText);
        for (std::size_t i = 1; i < rows.size(); ++i) {
            std::string candidate = strings::canonicalize(
                erratumOf(rows[i]).workaroundText);
            if (candidate == reference)
                continue;
            out.push_back(makeDiagnostic(
                "RBE103",
                {erratumOf(first).localId,
                 erratumOf(rows[i]).localId},
                "duplicates of '" + erratumOf(first).localId +
                    "' disagree on the workaround text",
                rowLocation(documents, rows[i], "Workaround"),
                {rowLocation(documents, first, "Workaround")}));
            break; // one report per cluster
        }
    }
}

/** Rules RBE104..RBE105 over one document. */
void
checkDocumentCrossrefs(const ErrataDocument &document,
                       Diagnostics &out)
{
    auto revisionDateLocation = [&](const Revision &revision) {
        SourceLocation location;
        location.path = document.sourcePath;
        location.line = revision.sourceLine;
        location.field = "Date";
        return location;
    };

    // RBE104: revision dates must advance monotonically.
    for (std::size_t i = 1; i < document.revisions.size(); ++i) {
        const Revision &prev = document.revisions[i - 1];
        const Revision &cur = document.revisions[i];
        if (cur.date < prev.date) {
            out.push_back(makeDiagnostic(
                "RBE104", {std::to_string(cur.number)},
                "revision " + std::to_string(cur.number) +
                    " is dated " + cur.date.toString() +
                    ", before revision " +
                    std::to_string(prev.number) + " (" +
                    prev.date.toString() + ")",
                revisionDateLocation(cur),
                {revisionDateLocation(prev)}));
        }
    }

    // RBE105: revision notes must only reference defined errata.
    std::set<std::string> defined;
    for (const Erratum &erratum : document.errata)
        defined.insert(erratum.localId);
    defined.insert(document.hiddenErrata.begin(),
                   document.hiddenErrata.end());
    std::set<std::string> reported;
    for (const Revision &revision : document.revisions) {
        for (const std::string &id : revision.addedIds) {
            if (defined.count(id) || !reported.insert(id).second)
                continue;
            SourceLocation location;
            location.path = document.sourcePath;
            location.line = revision.sourceLine;
            location.field = "Added";
            out.push_back(makeDiagnostic(
                "RBE105", {id},
                "revision notes reference '" + id +
                    "' but the document defines no such erratum",
                std::move(location)));
        }
    }
}

} // namespace

std::vector<Diagnostic>
checkCorpus(const std::vector<ErrataDocument> &documents,
            const DedupResult &dedup,
            const CorpusCheckOptions &options)
{
    // Cluster checks, in cluster-key order. Chunks partition the
    // cluster index space and merge in order, so the output is
    // bit-identical for every thread count.
    Diagnostics clusterDiags = parallelMapReduce<Diagnostics>(
        dedup.clusters.size(), options.threads,
        [&](std::size_t begin, std::size_t end) {
            Diagnostics part;
            for (std::size_t c = begin; c < end; ++c)
                checkCluster(documents, dedup.clusters[c], part);
            return part;
        },
        [](Diagnostics &acc, Diagnostics &&part) {
            std::move(part.begin(), part.end(),
                      std::back_inserter(acc));
        });

    // Document checks, in document order.
    Diagnostics docDiags = parallelMapReduce<Diagnostics>(
        documents.size(), options.threads,
        [&](std::size_t begin, std::size_t end) {
            Diagnostics part;
            for (std::size_t d = begin; d < end; ++d)
                checkDocumentCrossrefs(documents[d], part);
            return part;
        },
        [](Diagnostics &acc, Diagnostics &&part) {
            std::move(part.begin(), part.end(),
                      std::back_inserter(acc));
        });

    if (options.metrics) {
        options.metrics->counter("check.corpus.clusters")
            .add(dedup.clusters.size());
        options.metrics->counter("check.corpus.diagnostics")
            .add(clusterDiags.size() + docDiags.size());
    }

    std::move(docDiags.begin(), docDiags.end(),
              std::back_inserter(clusterDiags));
    return clusterDiags;
}

} // namespace rememberr
