/**
 * @file
 * The RemembERR hierarchical classification scheme.
 *
 * Section V defines three axes — conjunctive *triggers* (Table IV),
 * disjunctive *contexts* (Table V) and disjunctive *effects*
 * (Table VI) — each organized on three abstraction levels:
 *
 *   - class level    e.g. Trg_EXT   ("related to external inputs")
 *   - abstract level e.g. Trg_EXT_rst ("a (cold or warm) reset")
 *   - concrete level free text specific to one erratum
 *
 * The paper defines exactly 60 abstract categories (34 trigger, 10
 * context, 16 effect) in 15 classes; this module is the authoritative
 * registry for them. Category identities are stable small integers so
 * annotation sets can be stored as bitsets.
 */

#ifndef REMEMBERR_TAXONOMY_TAXONOMY_HH
#define REMEMBERR_TAXONOMY_TAXONOMY_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace rememberr {

/** The three classification axes. */
enum class Axis : std::uint8_t { Trigger, Context, Effect };

/** Printable axis prefix: "Trg", "Ctx" or "Eff". */
std::string_view axisPrefix(Axis axis);

/** Printable axis name: "trigger", "context" or "effect". */
std::string_view axisName(Axis axis);

/** Stable identifier of an abstract category (index into registry). */
using CategoryId = std::uint16_t;

/** Stable identifier of a class-level category. */
using ClassId = std::uint16_t;

/** One class-level category, e.g. Trg_EXT. */
struct CategoryClass
{
    ClassId id = 0;
    Axis axis = Axis::Trigger;
    std::string code;        ///< e.g. "Trg_EXT"
    std::string suffix;      ///< e.g. "EXT"
    std::string description; ///< e.g. "related to external inputs"
};

/** One abstract-level category, e.g. Trg_EXT_rst. */
struct AbstractCategory
{
    CategoryId id = 0;
    ClassId classId = 0;
    Axis axis = Axis::Trigger;
    std::string code;        ///< e.g. "Trg_EXT_rst"
    std::string suffix;      ///< e.g. "rst"
    std::string description; ///< e.g. "a (cold or warm) reset"
};

/**
 * The immutable registry of Tables IV-VI.
 *
 * Access through Taxonomy::instance(); construction enumerates the
 * paper's tables in order, so ids are deterministic.
 */
class Taxonomy
{
  public:
    static const Taxonomy &instance();

    const std::vector<CategoryClass> &classes() const
    {
        return classes_;
    }
    const std::vector<AbstractCategory> &categories() const
    {
        return categories_;
    }

    std::size_t classCount() const { return classes_.size(); }
    std::size_t categoryCount() const { return categories_.size(); }

    const CategoryClass &classById(ClassId id) const;
    const AbstractCategory &categoryById(CategoryId id) const;

    /** All abstract categories of one class, in table order. */
    std::vector<CategoryId> categoriesOfClass(ClassId id) const;

    /** All classes of one axis, in table order. */
    std::vector<ClassId> classesOfAxis(Axis axis) const;

    /** All abstract categories of one axis, in table order. */
    std::vector<CategoryId> categoriesOfAxis(Axis axis) const;

    /**
     * Parse a descriptor like "Trg_EXT_rst" (abstract). The prefix is
     * case-insensitive ("trg_EXT_rst" as used in the figures is
     * accepted). Returns nullopt for unknown codes.
     */
    std::optional<CategoryId> parseCategory(std::string_view code) const;

    /** Parse a class descriptor like "Trg_EXT". */
    std::optional<ClassId> parseClass(std::string_view code) const;

  private:
    Taxonomy();

    ClassId addClass(Axis axis, std::string suffix,
                     std::string description);
    CategoryId addCategory(ClassId cls, std::string suffix,
                           std::string description);

    std::vector<CategoryClass> classes_;
    std::vector<AbstractCategory> categories_;
};

/**
 * A set of abstract categories, stored as a 64-bit mask (the paper
 * defines exactly 60 abstract categories).
 */
class CategorySet
{
  public:
    CategorySet() = default;

    /** Rebuild a set from a raw mask (snapshot deserialization). */
    static CategorySet
    fromMask(std::uint64_t mask)
    {
        CategorySet out;
        out.mask_ = mask;
        return out;
    }

    void
    insert(CategoryId id)
    {
        mask_ |= (std::uint64_t{1} << id);
    }

    void
    erase(CategoryId id)
    {
        mask_ &= ~(std::uint64_t{1} << id);
    }

    bool
    contains(CategoryId id) const
    {
        return (mask_ >> id) & 1;
    }

    bool empty() const { return mask_ == 0; }
    std::size_t size() const;

    CategorySet
    operator|(CategorySet other) const
    {
        CategorySet out;
        out.mask_ = mask_ | other.mask_;
        return out;
    }

    CategorySet
    operator&(CategorySet other) const
    {
        CategorySet out;
        out.mask_ = mask_ & other.mask_;
        return out;
    }

    bool operator==(const CategorySet &) const = default;

    std::uint64_t mask() const { return mask_; }

    /** Members in increasing id order. */
    std::vector<CategoryId> toVector() const;

    /** Restrict to categories of one axis. */
    CategorySet filterAxis(Axis axis) const;

    /** The set of classes covered by the members. */
    std::vector<ClassId> coveredClasses() const;

  private:
    std::uint64_t mask_ = 0;
};

} // namespace rememberr

#endif // REMEMBERR_TAXONOMY_TAXONOMY_HH
