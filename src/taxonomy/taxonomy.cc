#include "taxonomy.hh"

#include <algorithm>
#include <set>

#include "util/logging.hh"
#include "util/strings.hh"

namespace rememberr {

std::string_view
axisPrefix(Axis axis)
{
    switch (axis) {
      case Axis::Trigger: return "Trg";
      case Axis::Context: return "Ctx";
      case Axis::Effect: return "Eff";
    }
    REMEMBERR_PANIC("axisPrefix: bad axis");
}

std::string_view
axisName(Axis axis)
{
    switch (axis) {
      case Axis::Trigger: return "trigger";
      case Axis::Context: return "context";
      case Axis::Effect: return "effect";
    }
    REMEMBERR_PANIC("axisName: bad axis");
}

const Taxonomy &
Taxonomy::instance()
{
    static const Taxonomy taxonomy;
    return taxonomy;
}

ClassId
Taxonomy::addClass(Axis axis, std::string suffix,
                   std::string description)
{
    CategoryClass cls;
    cls.id = static_cast<ClassId>(classes_.size());
    cls.axis = axis;
    cls.suffix = suffix;
    cls.code = std::string(axisPrefix(axis)) + "_" + suffix;
    cls.description = std::move(description);
    classes_.push_back(std::move(cls));
    return classes_.back().id;
}

CategoryId
Taxonomy::addCategory(ClassId cls, std::string suffix,
                      std::string description)
{
    if (categories_.size() >= 64)
        REMEMBERR_PANIC("Taxonomy: more than 64 abstract categories");
    AbstractCategory cat;
    cat.id = static_cast<CategoryId>(categories_.size());
    cat.classId = cls;
    cat.axis = classes_[cls].axis;
    cat.suffix = suffix;
    cat.code = classes_[cls].code + "_" + suffix;
    cat.description = std::move(description);
    categories_.push_back(std::move(cat));
    return categories_.back().id;
}

Taxonomy::Taxonomy()
{
    // ---- Table IV: triggers (conjunctive) --------------------------
    ClassId mbr = addClass(Axis::Trigger, "MBR",
                           "a data operation on a memory boundary");
    addCategory(mbr, "cbr", "a data operation on a cache line "
                            "boundary");
    addCategory(mbr, "pgb", "a data operation on a page boundary");
    addCategory(mbr, "mbr", "a data operation on a memory map "
                            "boundary such as canonical");

    ClassId mop = addClass(Axis::Trigger, "MOP",
                           "a memory operation");
    addCategory(mop, "mmp", "an interaction with a memory-mapped "
                            "element");
    addCategory(mop, "atp", "an atomic/transactional memory "
                            "operation");
    addCategory(mop, "fen", "a memory fence or a serializing "
                            "instruction");
    addCategory(mop, "seg", "a condition on segment modes");
    addCategory(mop, "ptw", "a core page table walk");
    addCategory(mop, "nst", "translation on nested page tables");
    addCategory(mop, "flc", "flushing some cache line or TLB");
    addCategory(mop, "spe", "a speculative memory operation");

    ClassId exc = addClass(Axis::Trigger, "EXC",
                           "related to exceptions and faults");
    addCategory(exc, "ovf", "a counter overflow");
    addCategory(exc, "tmr", "a timer event");
    addCategory(exc, "mca", "a machine check exception");
    addCategory(exc, "ill", "an illegal instruction");

    ClassId prv = addClass(Axis::Trigger, "PRV",
                           "related to privilege transitions");
    addCategory(prv, "ret", "a resume from System Management or OS "
                            "mode");
    addCategory(prv, "vmt", "a transition between hypervisor and "
                            "guest");

    ClassId cfg = addClass(Axis::Trigger, "CFG",
                           "related to dynamic configuration");
    addCategory(cfg, "pag", "a paging mechanism interaction");
    addCategory(cfg, "vmc", "a virtual machine configuration "
                            "interaction");
    addCategory(cfg, "wrg", "a configuration register interaction");

    ClassId pow = addClass(Axis::Trigger, "POW",
                           "related to power states");
    addCategory(pow, "pwc", "a transition between power states");
    addCategory(pow, "tht", "a change in thermal or power supply "
                            "conditions, or throttling");

    ClassId ext = addClass(Axis::Trigger, "EXT",
                           "related to external inputs");
    addCategory(ext, "rst", "a (cold or warm) reset");
    addCategory(ext, "pci", "an interaction with PCIe");
    addCategory(ext, "usb", "an interaction with USB");
    addCategory(ext, "ram", "a specific DRAM configuration");
    addCategory(ext, "iom", "an access through the IOMMU");
    addCategory(ext, "bus", "system bus (HyperTransport, QPI, etc.)");

    ClassId fea = addClass(Axis::Trigger, "FEA",
                           "related to features");
    addCategory(fea, "fpu", "floating-point instructions");
    addCategory(fea, "dbg", "debug features such as breakpoints");
    addCategory(fea, "cid", "design identification (CPUID reports)");
    addCategory(fea, "mon", "monitoring (MONITOR and MWAIT)");
    addCategory(fea, "tra", "tracing features");
    addCategory(fea, "cus", "other specific features (SSE, MMX, "
                            "etc.)");

    // ---- Table V: contexts (disjunctive) ---------------------------
    ClassId cprv = addClass(Axis::Context, "PRV",
                            "related to privileges");
    addCategory(cprv, "boo", "booting or being in the BIOS");
    addCategory(cprv, "vmg", "being a virtual machine guest");
    addCategory(cprv, "rea", "operating in real mode");
    addCategory(cprv, "vmh", "being a hypervisor");
    addCategory(cprv, "smm", "being in SMM");

    ClassId cfea = addClass(Axis::Context, "FEA",
                            "related to features");
    addCategory(cfea, "sec", "security feature enabled (SGX, SVM, "
                             "etc.)");
    addCategory(cfea, "sgc", "running in a single-core configuration");

    ClassId cphy = addClass(Axis::Context, "PHY",
                            "non-digital conditions");
    addCategory(cphy, "pkg", "package-specific");
    addCategory(cphy, "tmp", "temperature-specific");
    addCategory(cphy, "vol", "voltage-specific");

    // ---- Table VI: observable effects (disjunctive) ----------------
    ClassId hng = addClass(Axis::Effect, "HNG",
                           "related to hangs");
    addCategory(hng, "unp", "an unpredictable behavior");
    addCategory(hng, "hng", "a hang of the processor");
    addCategory(hng, "crh", "a crash of the processor");
    addCategory(hng, "boo", "a boot failure");

    ClassId flt = addClass(Axis::Effect, "FLT",
                           "related to faults");
    addCategory(flt, "mca", "a machine check exception");
    addCategory(flt, "unc", "an uncorrectable error");
    addCategory(flt, "fsp", "one or multiple spurious faults");
    addCategory(flt, "fms", "one or multiple missing faults");
    addCategory(flt, "fid", "a wrong fault identifier or order");

    ClassId crp = addClass(Axis::Effect, "CRP",
                           "related to corruptions");
    addCategory(crp, "prf", "a wrong performance counter value");
    addCategory(crp, "reg", "a wrong MSR value");

    ClassId eext = addClass(Axis::Effect, "EXT",
                            "related to physical outputs");
    addCategory(eext, "pci", "issues observable on the PCIe side");
    addCategory(eext, "usb", "issues observable on the USB side");
    addCategory(eext, "mmd", "multimedia issues (e.g., audio, "
                             "graphics)");
    addCategory(eext, "ram", "abnormal interaction with DRAM");
    addCategory(eext, "pow", "abnormal power consumption");

    // The paper defines exactly 60 abstract categories in total.
    if (categories_.size() != 60)
        REMEMBERR_PANIC("Taxonomy: expected 60 categories, have ",
                        categories_.size());
}

const CategoryClass &
Taxonomy::classById(ClassId id) const
{
    if (id >= classes_.size())
        REMEMBERR_PANIC("Taxonomy: bad class id ", id);
    return classes_[id];
}

const AbstractCategory &
Taxonomy::categoryById(CategoryId id) const
{
    if (id >= categories_.size())
        REMEMBERR_PANIC("Taxonomy: bad category id ", id);
    return categories_[id];
}

std::vector<CategoryId>
Taxonomy::categoriesOfClass(ClassId id) const
{
    std::vector<CategoryId> out;
    for (const auto &cat : categories_) {
        if (cat.classId == id)
            out.push_back(cat.id);
    }
    return out;
}

std::vector<ClassId>
Taxonomy::classesOfAxis(Axis axis) const
{
    std::vector<ClassId> out;
    for (const auto &cls : classes_) {
        if (cls.axis == axis)
            out.push_back(cls.id);
    }
    return out;
}

std::vector<CategoryId>
Taxonomy::categoriesOfAxis(Axis axis) const
{
    std::vector<CategoryId> out;
    for (const auto &cat : categories_) {
        if (cat.axis == axis)
            out.push_back(cat.id);
    }
    return out;
}

namespace {

/** Normalize the axis prefix case: "trg_EXT_rst" -> "Trg_EXT_rst". */
std::string
normalizeDescriptor(std::string_view code)
{
    std::string text(code);
    if (text.size() >= 3) {
        std::string prefix = strings::toLower(text.substr(0, 3));
        if (prefix == "trg")
            text.replace(0, 3, "Trg");
        else if (prefix == "ctx")
            text.replace(0, 3, "Ctx");
        else if (prefix == "eff")
            text.replace(0, 3, "Eff");
    }
    return text;
}

} // namespace

std::optional<CategoryId>
Taxonomy::parseCategory(std::string_view code) const
{
    std::string normalized = normalizeDescriptor(code);
    for (const auto &cat : categories_) {
        if (cat.code == normalized)
            return cat.id;
    }
    return std::nullopt;
}

std::optional<ClassId>
Taxonomy::parseClass(std::string_view code) const
{
    std::string normalized = normalizeDescriptor(code);
    for (const auto &cls : classes_) {
        if (cls.code == normalized)
            return cls.id;
    }
    return std::nullopt;
}

std::size_t
CategorySet::size() const
{
    return static_cast<std::size_t>(__builtin_popcountll(mask_));
}

std::vector<CategoryId>
CategorySet::toVector() const
{
    std::vector<CategoryId> out;
    for (CategoryId id = 0; id < 64; ++id) {
        if (contains(id))
            out.push_back(id);
    }
    return out;
}

CategorySet
CategorySet::filterAxis(Axis axis) const
{
    const Taxonomy &taxonomy = Taxonomy::instance();
    CategorySet out;
    for (CategoryId id : toVector()) {
        if (id < taxonomy.categoryCount() &&
            taxonomy.categoryById(id).axis == axis) {
            out.insert(id);
        }
    }
    return out;
}

std::vector<ClassId>
CategorySet::coveredClasses() const
{
    const Taxonomy &taxonomy = Taxonomy::instance();
    std::set<ClassId> seen;
    for (CategoryId id : toVector()) {
        if (id < taxonomy.categoryCount())
            seen.insert(taxonomy.categoryById(id).classId);
    }
    return {seen.begin(), seen.end()};
}

} // namespace rememberr
