#include "commands.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "util/parallel.hh"

#include "analysis/correlation.hh"
#include "analysis/frequency.hh"
#include "analysis/heredity.hh"
#include "analysis/msr.hh"
#include "analysis/stats.hh"
#include "analysis/timeline.hh"
#include "classify/engine.hh"
#include "classify/highlight.hh"
#include "core/pipeline.hh"
#include "corpus/calibration.hh"
#include "db/query.hh"
#include "dedup/dedup.hh"
#include "diag/check.hh"
#include "document/format.hh"
#include "document/lint.hh"
#include "guidance/guidance.hh"
#include "obs/exporter.hh"
#include "obs/log.hh"
#include "obs/pool_metrics.hh"
#include "report/svg.hh"
#include "report/table.hh"
#include "serve/server.hh"
#include "snap/format.hh"
#include "snap/view.hh"
#include "snap/writer.hh"
#include "text/regex.hh"
#include "util/fileio.hh"
#include "util/logging.hh"
#include "util/strings.hh"

namespace rememberr {
namespace cli {

ArgList
ArgList::parse(const std::vector<std::string> &args)
{
    ArgList list;
    std::size_t start = 0;
    if (!args.empty() && !strings::startsWith(args[0], "--")) {
        list.command_ = args[0];
        start = 1;
    }
    for (std::size_t i = start; i < args.size(); ++i) {
        const std::string &arg = args[i];
        if (!strings::startsWith(arg, "--")) {
            list.positionals_.push_back(arg);
            continue;
        }
        std::string body = arg.substr(2);
        std::size_t eq = body.find('=');
        if (eq != std::string::npos) {
            list.options_[body.substr(0, eq)] = body.substr(eq + 1);
        } else if (i + 1 < args.size() &&
                   !strings::startsWith(args[i + 1], "--")) {
            list.options_[body] = args[i + 1];
            ++i;
        } else {
            list.options_[body] = "";
        }
    }
    return list;
}

bool
ArgList::hasFlag(const std::string &name) const
{
    return options_.count(name) > 0;
}

std::optional<std::string>
ArgList::option(const std::string &name) const
{
    auto it = options_.find(name);
    if (it == options_.end())
        return std::nullopt;
    return it->second;
}

std::optional<long>
ArgList::intOption(const std::string &name) const
{
    auto text = option(name);
    // An empty value must be rejected explicitly: strtol("") leaves
    // end at the start of the string, where *end == '\0' would pass
    // the trailing-junk check and silently yield 0.
    if (!text || text->empty())
        return std::nullopt;
    errno = 0;
    char *end = nullptr;
    long value = std::strtol(text->c_str(), &end, 10);
    if (end == text->c_str() || *end != '\0')
        return std::nullopt;
    if (errno == ERANGE)
        return std::nullopt; // saturated at LONG_MIN/LONG_MAX
    return value;
}

std::string
usageText()
{
    return "usage: rememberr <command> [options]\n"
           "\n"
           "commands:\n"
           "  stats                       headline numbers vs the "
           "paper\n"
           "  generate  --out DIR         write all documents + db "
           "exports\n"
           "  lint      FILE...           lint specification-update "
           "documents\n"
           "  check     [FILE...]         static analysis: "
           "per-document, cross-\n"
           "                              document and rule-set "
           "checks; without\n"
           "                              FILEs, the calibrated "
           "corpus is checked\n"
           "    --format text|json|sarif  output format (default "
           "text)\n"
           "    --out FILE                write the report to FILE\n"
           "    --baseline FILE           suppress known findings\n"
           "    --write-baseline FILE     accept current findings\n"
           "    --disable ID[,ID...]      disable rules by id or "
           "name\n"
           "    --severity ID=LEVEL[,...] override rule severities\n"
           "    --rules | --no-rules      force rule-set analysis "
           "on/off\n"
           "    --explain                 print witness texts under "
           "findings\n"
           "    --list-rules              print the rule catalog "
           "and exit\n"
           "    --automata-budget N       product-state budget for "
           "the\n"
           "                              language analysis "
           "(default 4096)\n"
           "  classify  FILE              software-assisted "
           "classification\n"
           "  highlight FILE ID CATEGORY  show annotation "
           "highlighting\n"
           "  query     [filters]         query the annotated "
           "database\n"
           "    --vendor intel|amd  --category CODE  --class CODE\n"
           "    --min-triggers N    --workaround NAME  --limit N\n"
           "  campaign  [--pairs N]       derive a directed testing "
           "campaign\n"
           "  seeds     [--count N]       emit a fuzzer seed corpus "
           "(JSON)\n"
           "  figures   --out DIR         write every reproduced "
           "figure (SVG)\n"
           "  snapshot  --out FILE        write the database as a "
           "binary\n"
           "                              snapshot (mmap-able, "
           "query-ready)\n"
           "  serve                       long-lived query daemon: "
           "answers JSON\n"
           "                              query lines over TCP "
           "(SIGINT/SIGTERM\n"
           "                              shut it down gracefully)\n"
           "    --port N                  TCP port, 0..65535 "
           "(default 0 =\n"
           "                              ephemeral; see "
           "--port-file)\n"
           "    --max-connections N       active+queued connections "
           "before\n"
           "                              rejecting (default 64)\n"
           "    --cache N                 cached responses across "
           "shards\n"
           "                              (default 1024; 0 "
           "disables)\n"
           "    --port-file FILE          write the bound port to "
           "FILE once\n"
           "                              listening (atomic write)\n"
           "  profile                     run the pipeline and "
           "print per-stage\n"
           "                              timings, counters and "
           "worker stats\n"
           "    --snapshot FILE           profile the mmap fast "
           "path (open,\n"
           "                              verify, materialize) "
           "instead\n"
           "\n"
           "common options:\n"
           "  --snapshot FILE             serve stats/query/campaign/"
           "seeds/\n"
           "                              figures from a binary "
           "snapshot\n"
           "                              instead of rebuilding the "
           "pipeline\n"
           "  --seed N                    corpus generator seed\n"
           "  --threads N                 pipeline worker threads "
           "(default 1;\n"
           "                              0 = all hardware threads)\n"
           "  --metrics-out FILE          dump pipeline metrics "
           "(JSON, or CSV\n"
           "                              when FILE ends in .csv)\n"
           "  --trace-out FILE            dump Chrome trace_event "
           "JSON (open in\n"
           "                              chrome://tracing or "
           "Perfetto)\n"
           "  --metrics-interval MS       flush metrics every MS "
           "milliseconds as\n"
           "                              an append-only JSONL time "
           "series to the\n"
           "                              --metrics-out file "
           "(atomic rewrites)\n"
           "  --log-json                  structured JSON log "
           "records on stderr\n"
           "                              (level, ts_us, thread, "
           "span, msg)\n"
           "  --regex-tier linear|vm      regex engine: linear-time "
           "DFA tier\n"
           "                              (default) or the "
           "backtracking VM\n"
           "  --verbose | --quiet         raise/silence warn+debug "
           "logging\n";
}

namespace {

/**
 * Build the pipeline with an optional seed override. Results are
 * cached per seed: a CLI process (or a test binary driving runCli
 * repeatedly) pays for each corpus once.
 */
/** Apply --seed/--threads to fresh pipeline options. */
PipelineOptions
pipelineOptionsFromArgs(const ArgList &args)
{
    PipelineOptions options;
    if (auto seed = args.intOption("seed"))
        options.generator.seed = static_cast<std::uint64_t>(*seed);
    if (auto threads = args.intOption("threads"))
        options.threads = static_cast<std::size_t>(*threads);
    return options;
}

/**
 * RAII attachment of the work-pool stats sink: every parallel
 * command (not just profile) reports per-worker chunk/busy/idle
 * counters into its registry while it runs.
 */
class PoolMetricsScope
{
  public:
    explicit PoolMetricsScope(MetricsRegistry &registry)
    {
        attachPoolMetrics(registry);
    }
    ~PoolMetricsScope() { detachPoolMetrics(); }

    PoolMetricsScope(const PoolMetricsScope &) = delete;
    PoolMetricsScope &operator=(const PoolMetricsScope &) = delete;
};

const PipelineResult &
buildPipeline(const ArgList &args)
{
    PipelineOptions options = pipelineOptionsFromArgs(args);

    // The cache is keyed by seed alone: the parallel stages merge
    // deterministically, so the thread count never changes results.
    static std::map<std::uint64_t, PipelineResult> cache;
    auto it = cache.find(options.generator.seed);
    if (it == cache.end()) {
        it = cache.emplace(options.generator.seed,
                           runPipeline(options))
                 .first;
    }
    return it->second;
}

/**
 * Resolve the database a read-only command queries: with --snapshot
 * FILE it is materialized from the memory-mapped snapshot (no corpus
 * generation, no dedup, no classification — query-ready in the time
 * it takes to map and decode the file); otherwise it is the ground
 * truth of the (cached) pipeline run. On success `db` points either
 * at `storage` or at the cached pipeline result; the non-zero return
 * is the command's exit code otherwise.
 */
int
resolveDatabase(const ArgList &args,
                std::optional<Database> &storage,
                const Database *&db, std::ostream &err)
{
    if (auto path = args.option("snapshot")) {
        if (path->empty()) {
            err << "--snapshot requires a file name\n";
            return 2;
        }
        snap::LoadOptions options;
        options.metrics = &MetricsRegistry::global();
        options.trace = &TraceRecorder::global();
        auto view = snap::SnapshotView::open(*path, options);
        if (!view) {
            err << "cannot load snapshot " << *path << ": "
                << view.error().toString() << "\n";
            return 1;
        }
        storage.emplace(view.value().database());
        db = &*storage;
        return 0;
    }
    db = &buildPipeline(args).groundTruth;
    return 0;
}

int
cmdStats(const ArgList &args, std::ostream &out, std::ostream &err)
{
    std::optional<Database> storage;
    const Database *db = nullptr;
    if (int rc = resolveDatabase(args, storage, db, err))
        return rc;
    HeadlineStats stats = headlineStats(*db);

    AsciiTable table;
    table.setColumns({"statistic", "measured", "paper"},
                     {Align::Left, Align::Right, Align::Right});
    table.addRow({"Intel errata (collected/unique)",
                  std::to_string(stats.intelRows) + " / " +
                      std::to_string(stats.intelUnique),
                  "2,057 / 743"});
    table.addRow({"AMD errata (collected/unique)",
                  std::to_string(stats.amdRows) + " / " +
                      std::to_string(stats.amdUnique),
                  "506 / 385"});
    table.addRow({"no clear trigger",
                  strings::formatPercent(stats.noTriggerFraction),
                  "14.4%"});
    table.addRow({">= 2 combined triggers",
                  strings::formatPercent(
                      stats.multiTriggerFraction),
                  "49%"});
    table.addRow({"no workaround (Intel / AMD)",
                  strings::formatPercent(
                      stats.workaroundNoneIntel) +
                      " / " +
                      strings::formatPercent(
                          stats.workaroundNoneAmd),
                  "35.9% / 28.9%"});
    out << table.toString();
    return 0;
}

int
cmdGenerate(const ArgList &args, std::ostream &out,
            std::ostream &err)
{
    auto dir = args.option("out");
    if (!dir || dir->empty()) {
        err << "generate: --out DIR is required\n";
        return 2;
    }
    std::error_code ec;
    std::filesystem::create_directories(*dir, ec);
    if (ec) {
        err << "generate: cannot create " << *dir << "\n";
        return 1;
    }

    const PipelineResult &result = buildPipeline(args);
    for (const ErrataDocument &doc : result.corpus.documents) {
        std::string name = doc.design.key();
        for (char &c : name) {
            if (c == '/')
                c = '_';
        }
        std::ofstream file(*dir + "/" + name + ".txt");
        file << renderDocument(doc);
        out << "wrote " << *dir << "/" << name << ".txt ("
            << doc.errata.size() << " errata)\n";
    }
    {
        std::ofstream file(*dir + "/rememberr_db.json");
        file << result.groundTruth.toJson().dumpPretty() << "\n";
    }
    {
        std::ofstream file(*dir + "/rememberr_db.csv");
        file << result.groundTruth.toCsv();
    }
    out << "wrote " << *dir << "/rememberr_db.json and .csv ("
        << result.groundTruth.entries().size()
        << " unique errata)\n";
    return 0;
}

int
cmdLint(const ArgList &args, std::ostream &out, std::ostream &err)
{
    if (args.positionals().empty()) {
        err << "lint: at least one FILE is required\n";
        return 2;
    }
    int failures = 0;
    for (const std::string &path : args.positionals()) {
        std::ifstream in(path);
        if (!in) {
            err << "lint: cannot open " << path << "\n";
            ++failures;
            continue;
        }
        std::ostringstream buffer;
        buffer << in.rdbuf();
        auto parsed = parseDocument(buffer.str());
        if (!parsed) {
            err << "lint: " << path << ": "
                << parsed.error().toString() << "\n";
            ++failures;
            continue;
        }
        parsed.value().sourcePath = path;
        auto findings = lintDocument(parsed.value());
        out << path << ": " << findings.size() << " finding(s)\n";
        for (const LintFinding &finding : findings) {
            out << "  [" << defectKindName(finding.kind) << "]";
            if (finding.line > 0)
                out << " line " << finding.line << ":";
            out << " " << finding.detail << "\n";
        }
    }
    return failures == 0 ? 0 : 1;
}

int writeTextFile(const std::string &path,
                  const std::string &content, const char *what,
                  std::ostream &err);

int
cmdCheck(const ArgList &args, std::ostream &out, std::ostream &err)
{
    if (args.hasFlag("list-rules")) {
        for (const RuleInfo &rule : ruleCatalog()) {
            out << rule.id << "  " << severityName(rule.defaultSeverity);
            // Pad to the widest severity name ("warning").
            for (std::size_t pad = severityName(rule.defaultSeverity)
                                       .size();
                 pad < 7; ++pad)
                out << ' ';
            out << "  " << rule.name << "\n        " << rule.summary
                << "\n";
        }
        return 0;
    }

    std::string format = args.option("format").value_or("text");
    if (format != "text" && format != "json" && format != "sarif") {
        err << "check: unknown format '" << format
            << "' (expected text, json or sarif)\n";
        return 2;
    }
    if (args.hasFlag("baseline") && args.hasFlag("write-baseline")) {
        err << "check: --baseline and --write-baseline are "
               "mutually exclusive\n";
        return 2;
    }

    CheckOptions options;
    if (auto threads = args.intOption("threads"))
        options.threads = static_cast<std::size_t>(*threads);
    if (auto budget = args.intOption("automata-budget")) {
        if (*budget < 1) {
            err << "check: --automata-budget must be positive\n";
            return 2;
        }
        options.automataBudget = static_cast<std::size_t>(*budget);
    }
    options.metrics = &MetricsRegistry::global();
    options.trace = &TraceRecorder::global();
    // Per-worker pool stats for the parallel check stages (and the
    // pipeline build in corpus mode).
    PoolMetricsScope poolMetrics(*options.metrics);

    auto eachToken = [](const std::string &list,
                        const auto &consume) {
        std::size_t pos = 0;
        while (pos <= list.size()) {
            std::size_t comma = list.find(',', pos);
            if (comma == std::string::npos)
                comma = list.size();
            std::string token = list.substr(pos, comma - pos);
            pos = comma + 1;
            if (!token.empty() && !consume(token))
                return false;
        }
        return true;
    };
    if (auto disable = args.option("disable")) {
        bool ok = eachToken(*disable, [&](const std::string &rule) {
            if (options.config.disable(rule))
                return true;
            err << "check: unknown rule '" << rule << "'\n";
            return false;
        });
        if (!ok)
            return 2;
    }
    if (auto overrides = args.option("severity")) {
        bool ok =
            eachToken(*overrides, [&](const std::string &token) {
                std::size_t eq = token.find('=');
                std::optional<Severity> severity;
                if (eq != std::string::npos)
                    severity = parseSeverity(token.substr(eq + 1));
                if (!severity) {
                    err << "check: expected RULE=note|warning|error"
                           ", got '"
                        << token << "'\n";
                    return false;
                }
                if (!options.config.overrideSeverity(
                        token.substr(0, eq), *severity)) {
                    err << "check: unknown rule '"
                        << token.substr(0, eq) << "'\n";
                    return false;
                }
                return true;
            });
        if (!ok)
            return 2;
    }

    std::optional<Baseline> baseline;
    if (auto path = args.option("baseline")) {
        std::ifstream in(*path);
        if (!in) {
            err << "check: cannot open baseline " << *path << "\n";
            return 1;
        }
        std::ostringstream buffer;
        buffer << in.rdbuf();
        auto parsed = Baseline::parse(buffer.str());
        if (!parsed) {
            err << "check: " << *path << ": "
                << parsed.error().toString() << "\n";
            return 1;
        }
        baseline.emplace(std::move(parsed.value()));
        options.baseline = &*baseline;
    }

    CheckReport report;
    if (args.positionals().empty()) {
        // Corpus mode: the calibrated corpus with its pipeline
        // dedup clusters; rule-set analysis on unless disabled.
        options.ruleSetChecks = !args.hasFlag("no-rules");
        const PipelineResult &result = buildPipeline(args);
        report = runChecks(result.corpus.documents, result.dedup,
                           options);
    } else {
        // File mode: parse and dedup just the given documents.
        // Rule-set analysis is off by default — it concerns the
        // classifier's tables, not the documents — but --rules
        // turns it on (dead-pattern analysis then runs against
        // these documents).
        options.ruleSetChecks = args.hasFlag("rules");
        std::vector<ErrataDocument> documents;
        for (const std::string &path : args.positionals()) {
            std::ifstream in(path);
            if (!in) {
                err << "check: cannot open " << path << "\n";
                return 1;
            }
            std::ostringstream buffer;
            buffer << in.rdbuf();
            auto parsed = parseDocument(buffer.str());
            if (!parsed) {
                err << "check: " << path << ": "
                    << parsed.error().toString() << "\n";
                return 1;
            }
            parsed.value().sourcePath = path;
            documents.push_back(std::move(parsed.value()));
        }
        DedupOptions dedupOptions;
        dedupOptions.threads = options.threads;
        DedupResult dedup = deduplicate(documents, dedupOptions);
        report = runChecks(documents, dedup, options);
    }

    if (auto path = args.option("write-baseline")) {
        if (path->empty()) {
            err << "check: --write-baseline requires a file name\n";
            return 2;
        }
        Baseline accepted =
            Baseline::fromDiagnostics(report.diagnostics);
        if (int rc = writeTextFile(*path, accepted.serialize(),
                                   "baseline", err)) {
            return rc;
        }
        out << "wrote " << *path << " ("
            << report.diagnostics.size() << " accepted finding(s))\n";
        return 0;
    }

    std::string body;
    if (format == "text") {
        body = renderText(report.diagnostics, report.suppressed,
                          args.hasFlag("explain"));
    } else if (format == "json") {
        body = diagnosticsToJson(report.diagnostics,
                                 report.suppressed)
                   .dumpPretty() +
               "\n";
    } else {
        body = diagnosticsToSarif(report.diagnostics).dumpPretty() +
               "\n";
    }
    if (auto path = args.option("out")) {
        if (path->empty()) {
            err << "check: --out requires a file name\n";
            return 2;
        }
        if (int rc = writeTextFile(*path, body, "report", err))
            return rc;
    } else {
        out << body;
    }
    return report.failed() ? 1 : 0;
}

int
cmdClassify(const ArgList &args, std::ostream &out,
            std::ostream &err)
{
    if (args.positionals().size() != 1) {
        err << "classify: exactly one FILE is required\n";
        return 2;
    }
    std::ifstream in(args.positionals()[0]);
    if (!in) {
        err << "classify: cannot open " << args.positionals()[0]
            << "\n";
        return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    auto parsed = parseDocument(buffer.str());
    if (!parsed) {
        err << "classify: " << parsed.error().toString() << "\n";
        return 1;
    }
    const Taxonomy &taxonomy = Taxonomy::instance();
    for (const Erratum &erratum : parsed.value().errata) {
        EngineResult result = classifyErratum(erratum);
        out << erratum.localId << ": ";
        bool first = true;
        for (CategoryId id : result.autoYes.toVector()) {
            if (!first)
                out << ", ";
            first = false;
            out << taxonomy.categoryById(id).code;
        }
        if (first)
            out << "(no auto-accepted categories)";
        out << " [+" << result.manual.size()
            << " manual decision(s)]\n";
    }
    return 0;
}

int
cmdHighlight(const ArgList &args, std::ostream &out,
             std::ostream &err)
{
    if (args.positionals().size() != 3) {
        err << "highlight: FILE ERRATUM-ID CATEGORY required\n";
        return 2;
    }
    const Taxonomy &taxonomy = Taxonomy::instance();
    auto category = taxonomy.parseCategory(args.positionals()[2]);
    if (!category) {
        err << "highlight: unknown category '"
            << args.positionals()[2] << "'\n";
        return 2;
    }
    std::ifstream in(args.positionals()[0]);
    if (!in) {
        err << "highlight: cannot open " << args.positionals()[0]
            << "\n";
        return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    auto parsed = parseDocument(buffer.str());
    if (!parsed) {
        err << "highlight: " << parsed.error().toString() << "\n";
        return 1;
    }
    const Erratum *erratum =
        parsed.value().findErratum(args.positionals()[1]);
    if (!erratum) {
        err << "highlight: no erratum '" << args.positionals()[1]
            << "' in the document\n";
        return 1;
    }
    std::string body = erratumBodyText(*erratum);
    auto spans = highlightCategory(body, *category);
    bool html = args.hasFlag("html");
    out << (html ? renderHtml(body, spans)
                 : renderAnsi(body, spans))
        << "\n";
    return 0;
}

int
cmdQuery(const ArgList &args, std::ostream &out, std::ostream &err)
{
    // Validate every filter before paying for the pipeline, so bad
    // arguments fail fast.
    const Taxonomy &taxonomy = Taxonomy::instance();
    std::optional<Vendor> vendorFilter;
    std::optional<CategoryId> categoryFilter;
    std::optional<ClassId> classFilter;
    std::optional<WorkaroundClass> workaroundFilter;

    if (auto vendor = args.option("vendor")) {
        std::string lowered = strings::toLower(*vendor);
        if (lowered == "intel") {
            vendorFilter = Vendor::Intel;
        } else if (lowered == "amd") {
            vendorFilter = Vendor::Amd;
        } else {
            err << "query: unknown vendor '" << *vendor << "'\n";
            return 2;
        }
    }
    if (auto code = args.option("category")) {
        categoryFilter = taxonomy.parseCategory(*code);
        if (!categoryFilter) {
            err << "query: unknown category '" << *code << "'\n";
            return 2;
        }
    }
    if (auto code = args.option("class")) {
        classFilter = taxonomy.parseClass(*code);
        if (!classFilter) {
            err << "query: unknown class '" << *code << "'\n";
            return 2;
        }
    }
    if (auto name = args.option("workaround")) {
        for (int c = 0; c <= 5; ++c) {
            auto cls = static_cast<WorkaroundClass>(c);
            if (strings::toLower(
                    std::string(workaroundClassName(cls))) ==
                strings::toLower(*name)) {
                workaroundFilter = cls;
            }
        }
        if (!workaroundFilter) {
            err << "query: unknown workaround class '" << *name
                << "'\n";
            return 2;
        }
    }

    std::optional<Database> storage;
    const Database *db = nullptr;
    if (int rc = resolveDatabase(args, storage, db, err))
        return rc;

    Query query(*db);
    if (vendorFilter)
        query.vendor(*vendorFilter);
    if (categoryFilter)
        query.hasCategory(*categoryFilter);
    if (classFilter)
        query.hasClass(*classFilter);
    if (workaroundFilter)
        query.workaround(*workaroundFilter);
    if (auto n = args.intOption("min-triggers"))
        query.triggerCountAtLeast(static_cast<std::size_t>(*n));

    auto matches = query.run();
    std::size_t limit = 20;
    if (auto n = args.intOption("limit"))
        limit = static_cast<std::size_t>(*n);

    AsciiTable table;
    table.setColumns({"key", "vendor", "title", "triggers",
                      "occurrences"},
                     {Align::Right, Align::Left, Align::Left,
                      Align::Right, Align::Right});
    for (std::size_t i = 0; i < matches.size() && i < limit; ++i) {
        const DbEntry *entry = matches[i];
        table.addRow({
            std::to_string(entry->key),
            std::string(vendorName(entry->vendor)),
            entry->title.size() > 48
                ? entry->title.substr(0, 45) + "..."
                : entry->title,
            std::to_string(entry->triggers.size()),
            std::to_string(entry->occurrences.size()),
        });
    }
    out << table.toString();
    out << matches.size() << " matching unique errata";
    if (matches.size() > limit)
        out << " (showing " << limit << ")";
    out << "\n";
    return 0;
}

int
cmdCampaign(const ArgList &args, std::ostream &out,
            std::ostream &err)
{
    std::optional<Database> storage;
    const Database *db = nullptr;
    if (int rc = resolveDatabase(args, storage, db, err))
        return rc;
    CampaignOptions options;
    if (auto n = args.intOption("pairs"))
        options.stimulusPairs = static_cast<std::size_t>(*n);
    TestCampaign campaign = deriveCampaign(*db, options);
    if (args.hasFlag("json"))
        out << campaign.toJson().dumpPretty() << "\n";
    else
        out << campaign.renderText();
    return 0;
}

int
cmdSeeds(const ArgList &args, std::ostream &out, std::ostream &err)
{
    std::optional<Database> storage;
    const Database *db = nullptr;
    if (int rc = resolveDatabase(args, storage, db, err))
        return rc;
    SeedCorpusOptions options;
    if (auto n = args.intOption("count"))
        options.sequenceCount = static_cast<std::size_t>(*n);
    SeedCorpus corpus = generateSeedCorpus(*db, options);
    out << corpus.toJson().dumpPretty() << "\n";
    return 0;
}

int
cmdFigures(const ArgList &args, std::ostream &out,
           std::ostream &err)
{
    auto dir = args.option("out");
    if (!dir || dir->empty()) {
        err << "figures: --out DIR is required\n";
        return 2;
    }
    std::error_code ec;
    std::filesystem::create_directories(*dir, ec);
    if (ec) {
        err << "figures: cannot create " << *dir << "\n";
        return 1;
    }
    std::optional<Database> storage;
    const Database *dbPtr = nullptr;
    if (int rc = resolveDatabase(args, storage, dbPtr, err))
        return rc;
    const Database &db = *dbPtr;

    auto write = [&](const std::string &name,
                     const std::string &svg) {
        std::ofstream file(*dir + "/" + name + ".svg");
        file << svg;
        out << "wrote " << *dir << "/" << name << ".svg\n";
    };

    auto timelines = disclosureTimelines(db);
    std::vector<CumulativeSeries> intel(
        timelines.begin(),
        timelines.begin() + firstAmdDocIndex);
    std::vector<CumulativeSeries> amd(
        timelines.begin() + firstAmdDocIndex, timelines.end());
    write("fig2_intel",
          svgLineChart(intel, {.title = "Figure 2: Intel"}));
    write("fig2_amd", svgLineChart(amd, {.title = "Figure 2: AMD"}));

    HeredityMatrix heredity = heredityMatrix(db, Vendor::Intel);
    write("fig3_heredity",
          svgHeatmap(heredity.labels, heredity.labels,
                     heredity.counts,
                     {.title = "Figure 3: heredity"}));

    std::vector<Bar> triggers;
    for (const CategoryFrequency &freq :
         categoryFrequencies(db, Axis::Trigger, 12)) {
        triggers.push_back(
            Bar{freq.code, static_cast<double>(freq.total()),
                std::to_string(freq.total())});
    }
    write("fig10_triggers",
          svgBarChart(triggers, {.title = "Figure 10: triggers"}));

    TriggerCorrelation correlation = triggerCorrelation(db);
    write("fig12_correlation",
          svgHeatmap(correlation.codes, correlation.codes,
                     correlation.counts,
                     {.title = "Figure 12: correlation"}));
    return 0;
}

int
cmdSnapshot(const ArgList &args, std::ostream &out,
            std::ostream &err)
{
    auto path = args.option("out");
    if (!path || path->empty()) {
        err << "snapshot: --out FILE is required\n";
        return 2;
    }
    // Per-worker pool stats for the parallel pipeline build feeding
    // the snapshot writer.
    PoolMetricsScope poolMetrics(MetricsRegistry::global());
    const PipelineResult &result = buildPipeline(args);
    snap::WriteOptions options;
    options.metrics = &MetricsRegistry::global();
    options.trace = &TraceRecorder::global();
    auto written =
        snap::writeSnapshotFile(*path, result.groundTruth, options);
    if (!written) {
        err << "snapshot: " << written.error().toString() << "\n";
        return 1;
    }
    // Re-open what was just written: a structural + hash check that
    // the file on disk is servable, and the printed hash doubles as
    // the fingerprint CI pins.
    auto view = snap::SnapshotView::open(*path);
    if (!view) {
        err << "snapshot: verification failed: "
            << view.error().toString() << "\n";
        return 1;
    }
    out << "wrote " << *path << " (" << written.value()
        << " bytes, " << view.value().entryCount() << " entries, "
        << view.value().documentCount() << " documents, hash "
        << snap::hashHex(view.value().contentHash()) << ")\n";
    return 0;
}

/**
 * Write `content` to `path`, reporting failures on err. Crash-safe:
 * the content is staged in a sibling temp file and renamed into
 * place, so an interrupted run never leaves a truncated report,
 * baseline, metrics or trace artifact.
 */
int
writeTextFile(const std::string &path, const std::string &content,
              const char *what, std::ostream &err)
{
    auto written = atomicWriteFile(path, content);
    if (!written) {
        err << "cannot write " << what << " to " << path << "\n";
        return 1;
    }
    return 0;
}

/**
 * Handle --metrics-out/--trace-out against the given registry and
 * recorder. Metrics are JSON unless FILE ends in .csv; traces are
 * always Chrome trace_event JSON. With `metricsHandled` (a periodic
 * exporter owned the --metrics-out file as a JSONL series) only the
 * trace export runs.
 */
int
writeObsExports(const ArgList &args, std::ostream &err,
                const MetricsRegistry &metrics,
                const TraceRecorder &trace,
                bool metricsHandled = false)
{
    if (auto path = args.option("metrics-out");
        path && !metricsHandled) {
        if (path->empty()) {
            err << "--metrics-out requires a file name\n";
            return 2;
        }
        bool csv = strings::endsWith(*path, ".csv");
        std::string body = csv
                               ? metrics.toCsv()
                               : metrics.toJson().dumpPretty() + "\n";
        if (int rc = writeTextFile(*path, body, "metrics", err))
            return rc;
    }
    if (auto path = args.option("trace-out")) {
        if (path->empty()) {
            err << "--trace-out requires a file name\n";
            return 2;
        }
        if (int rc = writeTextFile(
                *path, trace.toChromeJson() + "\n", "trace", err))
            return rc;
    }
    return 0;
}

#if defined(__unix__) || defined(__APPLE__)
/** SIGINT/SIGTERM latch for `serve`; the handler may only set it. */
volatile std::sig_atomic_t serveStopRequested = 0;

extern "C" void
serveSignalHandler(int)
{
    serveStopRequested = 1;
}
#endif

/**
 * serve: bind a TCP port and answer query requests until a signal
 * (or a caller-driven stop in tests) asks for a graceful shutdown.
 * The database comes from resolveDatabase, so `--snapshot FILE` is
 * the intended production path (mmap once, serve forever) and the
 * cached pipeline build is the fallback. A periodic metrics exporter
 * (--metrics-interval + --metrics-out) makes the `serve.*` counters
 * and latency quantiles a live JSONL series while the daemon runs.
 */
int
cmdServe(const ArgList &args, std::ostream &out, std::ostream &err)
{
    serve::ServeOptions options;
    // checkIntOptions already rejected malformed or negative values;
    // the upper bounds are serve-specific.
    if (auto port = args.intOption("port")) {
        if (*port > 65535) {
            err << "--port must be in [0, 65535], got " << *port
                << "\n";
            return 2;
        }
        options.port = static_cast<int>(*port);
    }
    if (auto maxConnections = args.intOption("max-connections")) {
        if (*maxConnections < 1) {
            err << "--max-connections must be at least 1, got "
                << *maxConnections << "\n";
            return 2;
        }
        options.maxConnections =
            static_cast<std::size_t>(*maxConnections);
    }
    if (auto cache = args.intOption("cache"))
        options.cacheCapacity = static_cast<std::size_t>(*cache);
    // Workers each own one connection at a time, so unlike the
    // pipeline the daemon wants a floor above the core count: a
    // couple of idle-ish clients must not starve each other on a
    // small machine. --threads still overrides exactly.
    if (auto threads = args.intOption("threads"))
        options.workers = static_cast<std::size_t>(*threads);
    else
        options.workers =
            std::max<std::size_t>(resolveThreadCount(0), 4);
    options.metrics = &MetricsRegistry::global();
    options.trace = &TraceRecorder::global();

    std::optional<Database> storage;
    const Database *db = nullptr;
    if (int rc = resolveDatabase(args, storage, db, err))
        return rc;

    serve::Server server(*db, options);
    if (auto started = server.start(); !started) {
        err << "serve: " << started.error().toString() << "\n";
        return 1;
    }
    if (auto portFile = args.option("port-file")) {
        if (portFile->empty()) {
            err << "--port-file requires a file name\n";
            return 2;
        }
        // Atomic (and directory-fsynced): a supervisor polling for
        // this file never reads a partial port number.
        if (!atomicWriteFile(*portFile,
                             std::to_string(server.port()) + "\n")) {
            err << "serve: cannot write port file " << *portFile
                << "\n";
            return 1;
        }
    }
    out << "serving " << db->entries().size() << " errata on "
        << "127.0.0.1:" << server.port() << " (workers "
        << resolveThreadCount(options.workers) << ", cache "
        << options.cacheCapacity << ", max connections "
        << options.maxConnections << ")" << std::endl;

#if defined(__unix__) || defined(__APPLE__)
    serveStopRequested = 0;
    struct sigaction action
    {
    };
    action.sa_handler = serveSignalHandler;
    sigemptyset(&action.sa_mask);
    struct sigaction oldInt
    {
    };
    struct sigaction oldTerm
    {
    };
    ::sigaction(SIGINT, &action, &oldInt);
    ::sigaction(SIGTERM, &action, &oldTerm);
    while (serveStopRequested == 0 && server.running())
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    ::sigaction(SIGINT, &oldInt, nullptr);
    ::sigaction(SIGTERM, &oldTerm, nullptr);
#endif
    server.stop();

    serve::ServerStats stats = server.stats();
    serve::ShardedLruCache::Stats cacheStats =
        server.cache().stats();
    out << "served " << stats.requests << " requests ("
        << stats.errors << " errors, " << stats.rejected
        << " rejected, cache " << cacheStats.hits << " hits / "
        << cacheStats.misses << " misses)\n";
    return 0;
}

/**
 * Start a private exporter for a profile run when the user asked for
 * a live series (--metrics-interval was validated in runCli). The
 * exporter is non-movable, so it is emplaced into the caller's slot;
 * the slot stays empty otherwise.
 */
void
makeProfileExporter(const ArgList &args, MetricsRegistry &metrics,
                    std::optional<MetricsExporter> &exporter)
{
    if (auto interval = args.intOption("metrics-interval")) {
        ExporterOptions options;
        options.interval = std::chrono::milliseconds(*interval);
        options.metrics = &metrics;
        exporter.emplace(*args.option("metrics-out"), options);
    }
}

/** Stop a profile exporter, surfacing any write failure. */
int
stopProfileExporter(std::optional<MetricsExporter> &exporter,
                    std::ostream &err)
{
    if (!exporter)
        return 0;
    if (!exporter->stop()) {
        err << "cannot write metrics to " << exporter->path() << ": "
            << exporter->lastError() << "\n";
        return 1;
    }
    return 0;
}

/**
 * profile --snapshot FILE: time the mmap fast path (open + verify,
 * then full materialization) instead of the generation pipeline.
 * Uses the same private-instrument discipline as the pipeline
 * profile: a fresh registry/recorder per invocation.
 */
int
profileSnapshot(const std::string &path, const ArgList &args,
                std::ostream &out, std::ostream &err)
{
    MetricsRegistry metrics;
    TraceRecorder trace;
    std::optional<MetricsExporter> exporter;
    makeProfileExporter(args, metrics, exporter);

    snap::LoadOptions loadOptions;
    loadOptions.metrics = &metrics;
    loadOptions.trace = &trace;
    auto view = snap::SnapshotView::open(path, loadOptions);
    if (!view) {
        err << "profile: cannot load snapshot " << path << ": "
            << view.error().toString() << "\n";
        return 1;
    }
    Database db = view.value().database();

    auto gaugeUs = [&](const std::string &name) -> std::int64_t {
        const Gauge *gauge = metrics.findGauge(name);
        return gauge ? gauge->value() : 0;
    };
    auto count = [&](const std::string &name) -> std::uint64_t {
        const Counter *counter = metrics.findCounter(name);
        return counter ? counter->value() : 0;
    };
    auto ms = [](double us) {
        char buffer[32];
        std::snprintf(buffer, sizeof(buffer), "%.1f", us / 1000.0);
        return std::string(buffer);
    };

    struct StageRow
    {
        const char *stage;
        const char *gauge;
        const char *counter;
        const char *unit;
    };
    static constexpr StageRow stages[] = {
        {"open+verify", "snap.load.open_us", "snap.load.bytes",
         "bytes"},
        {"materialize", "snap.load.materialize_us",
         "snap.load.entries", "db entries"},
    };

    std::int64_t totalUs = 0;
    for (const StageRow &row : stages)
        totalUs += gaugeUs(row.gauge);
    AsciiTable table;
    table.setColumns({"stage", "time ms", "share", "items", "unit",
                      "items/s"},
                     {Align::Left, Align::Right, Align::Right,
                      Align::Right, Align::Left, Align::Right});
    for (const StageRow &row : stages) {
        std::int64_t us = gaugeUs(row.gauge);
        std::uint64_t items = count(row.counter);
        double share =
            totalUs > 0 ? static_cast<double>(us) / totalUs : 0.0;
        double rate = us > 0 ? items * 1e6 / us : 0.0;
        char rateText[32];
        std::snprintf(rateText, sizeof(rateText), "%.0f", rate);
        table.addRow({row.stage, ms(static_cast<double>(us)),
                      strings::formatPercent(share),
                      std::to_string(items), row.unit, rateText});
    }
    table.addSeparator();
    table.addRow({"total", ms(static_cast<double>(totalUs)),
                  strings::formatPercent(totalUs > 0 ? 1.0 : 0.0),
                  std::to_string(db.entries().size()),
                  "unique errata", ""});
    out << table.toString();
    out << "\nsnapshot: " << path << " ("
        << count("snap.load.bytes") << " bytes, "
        << view.value().documentCount() << " documents, hash "
        << snap::hashHex(view.value().contentHash()) << ")\n";

    if (int rc = stopProfileExporter(exporter, err))
        return rc;
    return writeObsExports(args, err, metrics, trace,
                           exporter.has_value());
}

int
cmdProfile(const ArgList &args, std::ostream &out,
           std::ostream &err)
{
    // profile --snapshot FILE times the load path, not the build
    // path.
    if (auto path = args.option("snapshot")) {
        if (path->empty()) {
            err << "profile: --snapshot requires a file name\n";
            return 2;
        }
        return profileSnapshot(*path, args, out, err);
    }

    // Profile against private instruments (not the process-global
    // ones) so the report reflects exactly one fresh pipeline run,
    // uncontaminated by earlier commands in the same process and
    // never served from the per-seed cache.
    PipelineOptions options = pipelineOptionsFromArgs(args);
    MetricsRegistry metrics;
    TraceRecorder trace;
    options.metrics = &metrics;
    options.trace = &trace;
    std::optional<MetricsExporter> exporter;
    makeProfileExporter(args, metrics, exporter);
    attachPoolMetrics(metrics);
    PipelineResult result = runPipeline(options);
    detachPoolMetrics();

    auto gaugeUs = [&](const std::string &name) -> std::int64_t {
        const Gauge *gauge = metrics.findGauge(name);
        return gauge ? gauge->value() : 0;
    };
    auto count = [&](const std::string &name) -> std::uint64_t {
        const Counter *counter = metrics.findCounter(name);
        return counter ? counter->value() : 0;
    };
    auto ms = [](double us) {
        char buffer[32];
        std::snprintf(buffer, sizeof(buffer), "%.1f", us / 1000.0);
        return std::string(buffer);
    };

    struct StageRow
    {
        const char *stage;
        const char *counter;
        const char *unit;
    };
    static constexpr StageRow stages[] = {
        {"acquire", "pipeline.acquire.errata", "errata"},
        {"parse", "pipeline.parse.documents", "documents"},
        {"lint", "pipeline.lint.findings", "findings"},
        {"dedup", "pipeline.dedup.candidate_pairs",
         "candidate pairs"},
        {"classify", "pipeline.classify.annotations",
         "annotations"},
        {"assemble", "pipeline.assemble.entries", "db entries"},
    };

    std::int64_t totalUs = gaugeUs("pipeline.total_us");
    std::int64_t stageSumUs = 0;
    AsciiTable table;
    table.setColumns({"stage", "time ms", "share", "items", "unit",
                      "items/s"},
                     {Align::Left, Align::Right, Align::Right,
                      Align::Right, Align::Left, Align::Right});
    for (const StageRow &row : stages) {
        std::int64_t us =
            gaugeUs(std::string("pipeline.stage_us.") + row.stage);
        stageSumUs += us;
        std::uint64_t items = count(row.counter);
        double share =
            totalUs > 0 ? static_cast<double>(us) / totalUs : 0.0;
        double rate = us > 0 ? items * 1e6 / us : 0.0;
        char rateText[32];
        std::snprintf(rateText, sizeof(rateText), "%.0f", rate);
        table.addRow({row.stage, ms(static_cast<double>(us)),
                      strings::formatPercent(share),
                      std::to_string(items), row.unit, rateText});
    }
    table.addSeparator();
    double coverage =
        totalUs > 0 ? static_cast<double>(stageSumUs) / totalUs
                    : 0.0;
    table.addRow({"total", ms(static_cast<double>(totalUs)),
                  strings::formatPercent(coverage),
                  std::to_string(
                      result.groundTruth.entries().size()),
                  "unique errata", ""});
    out << table.toString();

    std::size_t workers = resolveThreadCount(options.threads);
    out << "\nthreads: " << workers
        << (options.threads == 0 ? " (all hardware)" : "") << "\n";
    if (std::uint64_t regions = count("parallel.regions")) {
        std::uint64_t busy = count("parallel.busy_us");
        std::uint64_t idle = count("parallel.idle_us");
        double idleShare =
            busy + idle > 0
                ? static_cast<double>(idle) / (busy + idle)
                : 0.0;
        out << "work pool: " << regions << " fork-join region(s), "
            << count("parallel.chunks") << " chunk(s) over "
            << count("parallel.workers") << " worker run(s); idle "
            << strings::formatPercent(idleShare)
            << " of worker time\n";
    } else {
        out << "work pool: not used (serial run; pass --threads N "
               "to engage it)\n";
    }

    if (int rc = stopProfileExporter(exporter, err))
        return rc;
    return writeObsExports(args, err, metrics, trace,
                           exporter.has_value());
}

/**
 * Validate every numeric option up front so a malformed, empty or
 * out-of-range value fails fast with a message instead of being
 * silently treated as absent (and replaced by the default).
 */
int
checkIntOptions(const ArgList &args, std::ostream &err)
{
    static constexpr const char *intOptions[] = {
        "seed",    "limit", "min-triggers",     "pairs",
        "count",   "threads", "metrics-interval", "port",
        "max-connections", "cache"};
    for (const char *name : intOptions) {
        auto text = args.option(name);
        if (!text)
            continue;
        auto value = args.intOption(name);
        if (!value) {
            err << "invalid integer '" << *text << "' for --"
                << name << "\n";
            return 2;
        }
        if (*value < 0) {
            err << "--" << name << " must be non-negative, got "
                << *value << "\n";
            return 2;
        }
    }
    return 0;
}

} // namespace

int
runCli(const std::vector<std::string> &args, std::ostream &out,
       std::ostream &err)
{
    ArgList parsed = ArgList::parse(args);
    const std::string &command = parsed.command();

    if (command.empty() || command == "help" ||
        parsed.hasFlag("help")) {
        err << usageText();
        return command.empty() ? 2 : 0;
    }
    if (int rc = checkIntOptions(parsed, err))
        return rc;

    // Verbosity: commands run quiet by default (the pipeline's
    // warn/inform chatter would drown their output); --verbose
    // enables debug traces, --quiet is the explicit form of the
    // default. --log-json implies Info — structured records exist to
    // be collected, so silencing them by default would defeat the
    // flag — unless --quiet or --verbose says otherwise.
    if (parsed.hasFlag("verbose") && parsed.hasFlag("quiet")) {
        err << "--verbose and --quiet are mutually exclusive\n";
        return 2;
    }
    bool logJson = parsed.hasFlag("log-json");
    setLogLevel(parsed.hasFlag("verbose") ? LogLevel::Debug
                : logJson && !parsed.hasFlag("quiet")
                    ? LogLevel::Info
                    : LogLevel::Quiet);

    // The JSON emitter must be restored on every exit path: tests
    // (and future embedders) drive runCli repeatedly in one process.
    struct JsonLogScope
    {
        bool active = false;
        ~JsonLogScope()
        {
            if (active)
                disableJsonLogging();
        }
    } jsonLogScope;
    if (logJson) {
        enableJsonLogging();
        jsonLogScope.active = true;
    }

    // A live metrics series needs a positive period and a file to
    // own; both are checked before any command work starts.
    auto metricsInterval = parsed.intOption("metrics-interval");
    if (parsed.hasFlag("metrics-interval")) {
        if (!metricsInterval || *metricsInterval <= 0) {
            err << "--metrics-interval must be a positive number "
                   "of milliseconds\n";
            return 2;
        }
        auto path = parsed.option("metrics-out");
        if (!path || path->empty()) {
            err << "--metrics-interval requires --metrics-out "
                   "FILE\n";
            return 2;
        }
    }

    // Regex execution tier: the linear DFA engine is the default;
    // --regex-tier=vm forces the backtracking VM (the differential
    // oracle) for A/B runs. Restored on exit for the same reason as
    // the JSON emitter above.
    struct RegexTierScope
    {
        RegexTier saved = regexTier();
        ~RegexTierScope() { setRegexTier(saved); }
    } regexTierScope;
    if (auto tier = parsed.option("regex-tier")) {
        if (*tier == "linear") {
            setRegexTier(RegexTier::Linear);
        } else if (*tier == "vm") {
            setRegexTier(RegexTier::Backtracking);
        } else {
            err << "--regex-tier must be 'linear' or 'vm', got '"
                << *tier << "'\n";
            return 2;
        }
    }

    auto dispatch = [&]() -> int {
        if (command == "stats")
            return cmdStats(parsed, out, err);
        if (command == "generate")
            return cmdGenerate(parsed, out, err);
        if (command == "lint")
            return cmdLint(parsed, out, err);
        if (command == "check")
            return cmdCheck(parsed, out, err);
        if (command == "classify")
            return cmdClassify(parsed, out, err);
        if (command == "highlight")
            return cmdHighlight(parsed, out, err);
        if (command == "query")
            return cmdQuery(parsed, out, err);
        if (command == "campaign")
            return cmdCampaign(parsed, out, err);
        if (command == "seeds")
            return cmdSeeds(parsed, out, err);
        if (command == "figures")
            return cmdFigures(parsed, out, err);
        if (command == "snapshot")
            return cmdSnapshot(parsed, out, err);
        if (command == "serve")
            return cmdServe(parsed, out, err);
        if (command == "profile")
            return cmdProfile(parsed, out, err);
        err << "unknown command '" << command << "'\n"
            << usageText();
        return 2;
    };
    // profile exports its own private instruments (and starts its
    // own exporter); every other command records into the
    // process-global registry/recorder, so the live exporter wraps
    // the dispatch and the requested dumps run afterwards.
    std::optional<MetricsExporter> exporter;
    if (metricsInterval && command != "profile") {
        ExporterOptions options;
        options.interval =
            std::chrono::milliseconds(*metricsInterval);
        options.metrics = &MetricsRegistry::global();
        exporter.emplace(*parsed.option("metrics-out"), options);
    }
    int rc = dispatch();
    bool metricsHandled = false;
    if (exporter) {
        metricsHandled = true;
        if (!exporter->stop() && rc == 0) {
            err << "cannot write metrics to " << exporter->path()
                << ": " << exporter->lastError() << "\n";
            rc = 1;
        }
        exporter.reset();
    }
    if (rc == 0 && command != "profile") {
        rc = writeObsExports(parsed, err, MetricsRegistry::global(),
                             TraceRecorder::global(),
                             metricsHandled);
    }
    return rc;
}

} // namespace cli
} // namespace rememberr
