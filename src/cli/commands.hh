/**
 * @file
 * The rememberr command-line interface, as a testable library.
 *
 * Commands:
 *   stats                       headline numbers vs the paper
 *   generate  --out DIR         write the 28 documents + db exports
 *   lint      FILE...           lint specification-update documents
 *   check     [FILE...]         static analysis (per-document,
 *                               cross-document, rule-set); without
 *                               FILEs the calibrated corpus is
 *                               checked. --format text|json|sarif,
 *                               --baseline/--write-baseline FILE,
 *                               --disable IDs, --severity ID=LEVEL
 *   classify  FILE              software-assisted classification
 *   highlight FILE ID CATEGORY  show annotation highlighting
 *   query     [filters]         query the annotated database
 *   campaign                    derive a directed testing campaign
 *   seeds     --count N         emit a fuzzer seed corpus (JSON)
 *   figures   --out DIR         write every reproduced figure (SVG)
 *   snapshot  --out FILE        write the database as a binary,
 *                               mmap-able snapshot
 *   serve                       long-lived TCP query daemon
 *                               (--port, --max-connections, --cache,
 *                               --port-file; see DESIGN.md §16)
 *   profile                     per-stage timing/counter report
 *
 * Every command accepts --metrics-out FILE and --trace-out FILE
 * (pipeline metrics as JSON/CSV, Chrome trace_event JSON) and the
 * --verbose/--quiet log-level pair. The read-only database commands
 * (stats, query, campaign, seeds, figures) also accept
 * --snapshot FILE to serve queries from a snapshot instead of
 * rebuilding the pipeline.
 *
 * All commands write to the supplied streams so tests can capture
 * output; main() in tools/ forwards to runCli().
 */

#ifndef REMEMBERR_CLI_COMMANDS_HH
#define REMEMBERR_CLI_COMMANDS_HH

#include <map>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

namespace rememberr {
namespace cli {

/** Parsed command line: positionals plus --key[=| ]value options. */
class ArgList
{
  public:
    /** Parse argv-style arguments (excluding the program name). */
    static ArgList parse(const std::vector<std::string> &args);

    const std::string &command() const { return command_; }
    const std::vector<std::string> &positionals() const
    {
        return positionals_;
    }

    bool hasFlag(const std::string &name) const;
    std::optional<std::string> option(const std::string &name) const;
    std::optional<long> intOption(const std::string &name) const;

  private:
    std::string command_;
    std::vector<std::string> positionals_;
    std::map<std::string, std::string> options_;
};

/**
 * Run one CLI invocation.
 *
 * @param args argv-style arguments excluding the program name.
 * @param out stream for normal output.
 * @param err stream for errors and usage.
 * @return process exit code.
 */
int runCli(const std::vector<std::string> &args, std::ostream &out,
           std::ostream &err);

/** The usage text. */
std::string usageText();

} // namespace cli
} // namespace rememberr

#endif // REMEMBERR_CLI_COMMANDS_HH
