/**
 * @file
 * The RemembERR annotated database.
 *
 * Combines the parsed documents, the dedup keying and the four-eyes
 * annotations into the queryable structure the paper releases: one
 * entry per unique erratum, each carrying its occurrences across
 * documents, annotations on all three axes and its metadata.
 */

#ifndef REMEMBERR_DB_DATABASE_HH
#define REMEMBERR_DB_DATABASE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "classify/foureyes.hh"
#include "corpus/corpus.hh"
#include "dedup/dedup.hh"
#include "model/erratum.hh"
#include "taxonomy/taxonomy.hh"
#include "util/expected.hh"
#include "util/json.hh"

namespace rememberr {

/** One occurrence of a unique erratum in a document. */
struct Occurrence
{
    int docIndex = 0;
    std::string localId;
    /** Disclosure date approximated per the Section IV-B1 rules. */
    Date disclosed;

    bool operator==(const Occurrence &) const = default;
};

/** One unique erratum with its annotations. */
struct DbEntry
{
    std::uint32_t key = 0;
    Vendor vendor = Vendor::Intel;
    std::string title;
    std::string description;
    std::string implications;
    std::string workaroundText;
    WorkaroundClass workaroundClass = WorkaroundClass::None;
    FixStatus status = FixStatus::NoFix;
    CategorySet triggers;
    CategorySet contexts;
    CategorySet effects;
    std::vector<MsrRef> msrs;
    std::vector<Occurrence> occurrences;
    bool complexConditions = false;
    bool simulationOnly = false;
    /**
     * Root-cause note (Section VII): absent from vendor errata —
     * "one CPU vendor confirmed that triggers and effects are
     * intentionally left inaccurate to avoid revealing design
     * details" — but the proposed Table VII format reserves a slot
     * for it so internally-maintained databases can fill it in.
     */
    std::string rootCause;

    /** Earliest disclosure across occurrences. */
    Date firstDisclosed() const;

    bool operator==(const DbEntry &) const = default;
};

/** The queryable annotated database. */
class Database
{
  public:
    /**
     * Build from pipeline outputs: documents define occurrences and
     * dates, the dedup result defines unique keys and the four-eyes
     * annotations (indexed by the corpus bug keys) define the labels.
     * Cluster-to-bug alignment uses the corpus ground-truth map, i.e.
     * a cluster inherits the annotation of the bug its first row
     * belongs to.
     */
    static Database build(const Corpus &corpus,
                          const DedupResult &dedup,
                          const FourEyesResult &annotations);

    /** Oracle build: keys and labels straight from ground truth. */
    static Database buildFromGroundTruth(const Corpus &corpus);

    /**
     * Reassemble from previously built parts (snapshot
     * deserialization). Occurrence docIndex values must be within
     * the document vector; panics otherwise.
     */
    static Database restore(std::vector<DbEntry> entries,
                            std::vector<ErrataDocument> documents);

    const std::vector<DbEntry> &entries() const { return entries_; }
    const std::vector<ErrataDocument> &documents() const
    {
        return documents_;
    }

    /**
     * Number of documents the entries' occurrence indices refer to.
     * Equals documents().size() for built/restored databases; for a
     * database read back from JSON (which does not carry the raw
     * documents) it preserves the count of the exporting database so
     * occurrence indices stay checkable.
     */
    std::size_t documentCount() const { return documentCount_; }

    std::size_t uniqueCount(Vendor vendor) const;
    std::size_t rowCount(Vendor vendor) const;

    /** Serialize the entries (not the raw documents). */
    JsonValue toJson() const;

    /**
     * Restore entries from JSON. The raw documents are not part of
     * the JSON export, so documents() stays empty, but the exported
     * documentCount is restored and every occurrence docIndex is
     * validated against it.
     */
    static Expected<Database> fromJson(const JsonValue &json);

    /** Export entries as CSV (one row per unique erratum). */
    std::string toCsv() const;

    bool operator==(const Database &) const = default;

  private:
    std::vector<DbEntry> entries_;
    std::vector<ErrataDocument> documents_;
    std::size_t documentCount_ = 0;
};

/** Detect the "complex set of conditions" phrasing (Section V-B). */
bool mentionsComplexConditions(const std::string &description);

/** Detect the simulation-only phrasing. */
bool mentionsSimulationOnly(const std::string &description);

} // namespace rememberr

#endif // REMEMBERR_DB_DATABASE_HH
