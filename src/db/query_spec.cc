#include "query_spec.hh"

#include <cmath>

#include "util/strings.hh"

namespace rememberr {

namespace {

/** FNV-1a 64-bit (matches the snapshot content hash family). */
std::uint64_t
fnv1a(const std::string &text)
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (unsigned char c : text) {
        hash ^= c;
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

std::optional<Vendor>
parseVendor(const std::string &text)
{
    std::string lowered = strings::toLower(text);
    if (lowered == "intel")
        return Vendor::Intel;
    if (lowered == "amd")
        return Vendor::Amd;
    return std::nullopt;
}

std::optional<WorkaroundClass>
parseWorkaround(const std::string &text)
{
    std::string lowered = strings::toLower(text);
    for (int c = 0; c <= 5; ++c) {
        auto cls = static_cast<WorkaroundClass>(c);
        if (lowered ==
            strings::toLower(std::string(workaroundClassName(cls))))
            return cls;
    }
    return std::nullopt;
}

std::optional<FixStatus>
parseStatus(const std::string &text)
{
    std::string lowered = strings::toLower(text);
    for (int s = 0; s <= 2; ++s) {
        auto status = static_cast<FixStatus>(s);
        if (lowered ==
            strings::toLower(std::string(fixStatusName(status))))
            return status;
    }
    return std::nullopt;
}

std::optional<Axis>
parseAxis(const std::string &text)
{
    std::string lowered = strings::toLower(text);
    if (lowered == "trigger")
        return Axis::Trigger;
    if (lowered == "context")
        return Axis::Context;
    if (lowered == "effect")
        return Axis::Effect;
    return std::nullopt;
}

std::optional<QuerySpec::GroupBy>
parseGroupBy(const std::string &text)
{
    std::string lowered = strings::toLower(text);
    if (lowered == "category")
        return QuerySpec::GroupBy::Category;
    if (lowered == "class")
        return QuerySpec::GroupBy::Class;
    if (lowered == "workaround")
        return QuerySpec::GroupBy::Workaround;
    return std::nullopt;
}

/** A JSON number that is a non-negative integer, or an error. */
Expected<std::size_t>
asCount(const std::string &field, const JsonValue &value)
{
    if (!value.isNumber())
        return makeError("field '" + field + "' must be a number");
    double number = value.asNumber();
    if (number < 0 || number != std::floor(number) ||
        number > 1e15) {
        return makeError("field '" + field +
                         "' must be a non-negative integer");
    }
    return static_cast<std::size_t>(number);
}

Expected<bool>
asFlag(const std::string &field, const JsonValue &value)
{
    if (!value.isBool())
        return makeError("field '" + field + "' must be a boolean");
    return value.asBool();
}

Expected<std::string>
asText(const std::string &field, const JsonValue &value)
{
    if (!value.isString())
        return makeError("field '" + field + "' must be a string");
    return value.asString();
}

} // namespace

std::string_view
queryOpName(QuerySpec::Op op)
{
    switch (op) {
      case QuerySpec::Op::Ping: return "ping";
      case QuerySpec::Op::Count: return "count";
      case QuerySpec::Op::Run: return "run";
      case QuerySpec::Op::Group: return "group";
    }
    REMEMBERR_PANIC("queryOpName: bad op");
}

std::string_view
groupByName(QuerySpec::GroupBy by)
{
    switch (by) {
      case QuerySpec::GroupBy::Category: return "category";
      case QuerySpec::GroupBy::Class: return "class";
      case QuerySpec::GroupBy::Workaround: return "workaround";
    }
    REMEMBERR_PANIC("groupByName: bad grouping");
}

Expected<QuerySpec>
QuerySpec::fromJson(const JsonValue &json)
{
    if (!json.isObject())
        return makeError("request must be a JSON object");
    const JsonValue::Object &fields = json.asObject();

    auto opField = fields.find("op");
    if (opField == fields.end())
        return makeError("missing required field 'op'");
    auto opName = asText("op", opField->second);
    if (!opName)
        return opName.error();

    QuerySpec spec;
    if (opName.value() == "ping") {
        spec.op = Op::Ping;
    } else if (opName.value() == "count") {
        spec.op = Op::Count;
    } else if (opName.value() == "run") {
        spec.op = Op::Run;
    } else if (opName.value() == "group") {
        spec.op = Op::Group;
    } else {
        return makeError("unknown op '" + opName.value() +
                         "' (expected ping, count, run or group)");
    }

    for (const auto &[key, value] : fields) {
        if (key == "op")
            continue;
        if (spec.op == Op::Ping)
            return makeError("op 'ping' takes no other fields");
        if (key == "vendor") {
            auto text = asText(key, value);
            if (!text)
                return text.error();
            spec.vendor = parseVendor(text.value());
            if (!spec.vendor)
                return makeError("unknown vendor '" + text.value() +
                                 "'");
        } else if (key == "category") {
            auto text = asText(key, value);
            if (!text)
                return text.error();
            spec.category =
                Taxonomy::instance().parseCategory(text.value());
            if (!spec.category)
                return makeError("unknown category '" +
                                 text.value() + "'");
        } else if (key == "class") {
            auto text = asText(key, value);
            if (!text)
                return text.error();
            spec.categoryClass =
                Taxonomy::instance().parseClass(text.value());
            if (!spec.categoryClass)
                return makeError("unknown class '" + text.value() +
                                 "'");
        } else if (key == "workaround") {
            auto text = asText(key, value);
            if (!text)
                return text.error();
            spec.workaround = parseWorkaround(text.value());
            if (!spec.workaround)
                return makeError("unknown workaround class '" +
                                 text.value() + "'");
        } else if (key == "status") {
            auto text = asText(key, value);
            if (!text)
                return text.error();
            spec.status = parseStatus(text.value());
            if (!spec.status)
                return makeError("unknown fix status '" +
                                 text.value() + "'");
        } else if (key == "min_triggers") {
            auto count = asCount(key, value);
            if (!count)
                return count.error();
            spec.minTriggers = count.value();
        } else if (key == "exact_triggers") {
            auto count = asCount(key, value);
            if (!count)
                return count.error();
            spec.exactTriggers = count.value();
        } else if (key == "min_occurrences") {
            auto count = asCount(key, value);
            if (!count)
                return count.error();
            spec.minOccurrences = count.value();
        } else if (key == "complex") {
            auto flag = asFlag(key, value);
            if (!flag)
                return flag.error();
            spec.complexConditions = flag.value();
        } else if (key == "simulation_only") {
            auto flag = asFlag(key, value);
            if (!flag)
                return flag.error();
            spec.simulationOnly = flag.value();
        } else if (key == "disclosed_from" ||
                   key == "disclosed_to") {
            auto text = asText(key, value);
            if (!text)
                return text.error();
            auto date = Date::parse(text.value());
            if (!date)
                return makeError("field '" + key + "': " +
                                 date.error().message);
            (key == "disclosed_from" ? spec.disclosedFrom
                                     : spec.disclosedTo) =
                date.value();
        } else if (key == "limit") {
            if (spec.op != Op::Run)
                return makeError(
                    "field 'limit' only applies to op 'run'");
            auto count = asCount(key, value);
            if (!count)
                return count.error();
            if (count.value() > maxLimit())
                return makeError(
                    "field 'limit' must be at most " +
                    std::to_string(maxLimit()));
            spec.limit = count.value();
        } else if (key == "by") {
            if (spec.op != Op::Group)
                return makeError(
                    "field 'by' only applies to op 'group'");
            auto text = asText(key, value);
            if (!text)
                return text.error();
            auto by = parseGroupBy(text.value());
            if (!by)
                return makeError("unknown grouping '" +
                                 text.value() + "' (expected "
                                 "category, class or workaround)");
            spec.groupBy = *by;
        } else if (key == "axis") {
            if (spec.op != Op::Group)
                return makeError(
                    "field 'axis' only applies to op 'group'");
            auto text = asText(key, value);
            if (!text)
                return text.error();
            auto axis = parseAxis(text.value());
            if (!axis)
                return makeError("unknown axis '" + text.value() +
                                 "' (expected trigger, context or "
                                 "effect)");
            spec.axis = *axis;
        } else {
            return makeError("unknown field '" + key + "'");
        }
    }

    if (spec.disclosedFrom.has_value() !=
        spec.disclosedTo.has_value()) {
        return makeError("'disclosed_from' and 'disclosed_to' must "
                         "be given together");
    }
    if (spec.op == Op::Group && spec.groupBy == GroupBy::Workaround &&
        fields.count("axis")) {
        return makeError(
            "field 'axis' does not apply to grouping 'workaround'");
    }
    return spec;
}

std::string
QuerySpec::canonical() const
{
    std::string out = "op=";
    out += queryOpName(op);
    if (op == Op::Ping)
        return out;

    auto field = [&](const char *name, const std::string &value) {
        out += ' ';
        out += name;
        out += '=';
        out += value;
    };
    if (vendor)
        field("vendor",
              strings::toLower(std::string(vendorName(*vendor))));
    if (category)
        field("category",
              Taxonomy::instance().categoryById(*category).code);
    if (categoryClass)
        field("class",
              Taxonomy::instance().classById(*categoryClass).code);
    if (workaround)
        field("workaround",
              strings::toLower(
                  std::string(workaroundClassName(*workaround))));
    if (status)
        field("status",
              strings::toLower(std::string(fixStatusName(*status))));
    // A zero minimum matches everything; dropping it makes
    // {"min_triggers": 0} and the absent field the same query.
    if (minTriggers && *minTriggers > 0)
        field("min_triggers", std::to_string(*minTriggers));
    if (exactTriggers)
        field("exact_triggers", std::to_string(*exactTriggers));
    if (minOccurrences && *minOccurrences > 0)
        field("min_occurrences", std::to_string(*minOccurrences));
    if (complexConditions)
        field("complex", *complexConditions ? "1" : "0");
    if (simulationOnly)
        field("simulation_only", *simulationOnly ? "1" : "0");
    if (disclosedFrom)
        field("disclosed", disclosedFrom->toString() + ".." +
                               disclosedTo->toString());
    if (op == Op::Run)
        field("limit", std::to_string(limit));
    if (op == Op::Group) {
        field("by", std::string(groupByName(groupBy)));
        if (groupBy != GroupBy::Workaround)
            field("axis", std::string(axisName(axis)));
    }
    return out;
}

std::uint64_t
QuerySpec::fingerprint() const
{
    return fnv1a(canonical());
}

Query
QuerySpec::toQuery(const Database &db) const
{
    Query query(db);
    if (vendor)
        query.vendor(*vendor);
    if (category)
        query.hasCategory(*category);
    if (categoryClass)
        query.hasClass(*categoryClass);
    if (workaround)
        query.workaround(*workaround);
    if (status)
        query.status(*status);
    if (minTriggers && *minTriggers > 0)
        query.triggerCountAtLeast(*minTriggers);
    if (exactTriggers)
        query.triggerCountExactly(*exactTriggers);
    if (minOccurrences && *minOccurrences > 0)
        query.occurrenceCountAtLeast(*minOccurrences);
    if (complexConditions)
        query.complexConditions(*complexConditions);
    if (simulationOnly)
        query.simulationOnly(*simulationOnly);
    if (disclosedFrom)
        query.disclosedBetween(*disclosedFrom, *disclosedTo);
    return query;
}

std::optional<std::string>
QuerySpec::emptyReason() const
{
    if (op == Op::Ping)
        return std::nullopt;
    if (exactTriggers && minTriggers && *minTriggers > 0 &&
        *exactTriggers < *minTriggers) {
        return "exact_triggers=" + std::to_string(*exactTriggers) +
               " contradicts min_triggers=" +
               std::to_string(*minTriggers);
    }
    if (disclosedFrom && *disclosedTo < *disclosedFrom) {
        return "disclosure window " + disclosedFrom->toString() +
               ".." + disclosedTo->toString() + " is empty";
    }
    return std::nullopt;
}

JsonValue
QuerySpec::executeEmpty() const
{
    JsonValue response = JsonValue::makeObject();
    response["ok"] = JsonValue(true);
    response["op"] = JsonValue(std::string(queryOpName(op)));
    if (op == Op::Ping)
        return response;
    response["query"] = JsonValue(canonical());
    if (op == Op::Count) {
        response["count"] = JsonValue(std::size_t{0});
    } else if (op == Op::Run) {
        response["total"] = JsonValue(std::size_t{0});
        response["entries"] = JsonValue::makeArray();
    } else {
        response["groups"] = JsonValue::makeArray();
    }
    return response;
}

JsonValue
QuerySpec::execute(const Database &db) const
{
    JsonValue response = JsonValue::makeObject();
    response["ok"] = JsonValue(true);
    response["op"] = JsonValue(std::string(queryOpName(op)));
    if (op == Op::Ping)
        return response;
    response["query"] = JsonValue(canonical());

    Query query = toQuery(db);
    if (op == Op::Count) {
        response["count"] = JsonValue(query.count());
        return response;
    }
    if (op == Op::Run) {
        std::vector<const DbEntry *> matches = query.run();
        response["total"] = JsonValue(matches.size());
        JsonValue entries = JsonValue::makeArray();
        for (std::size_t i = 0;
             i < matches.size() && i < limit; ++i) {
            const DbEntry *entry = matches[i];
            JsonValue row = JsonValue::makeObject();
            row["key"] = JsonValue(
                static_cast<std::size_t>(entry->key));
            row["vendor"] = JsonValue(
                std::string(vendorName(entry->vendor)));
            row["title"] = JsonValue(entry->title);
            row["triggers"] = JsonValue(entry->triggers.size());
            row["occurrences"] =
                JsonValue(entry->occurrences.size());
            entries.append(std::move(row));
        }
        response["entries"] = std::move(entries);
        return response;
    }

    // Group: map keys are ordinal ids, so iteration (and therefore
    // the rendered group order) follows taxonomy/enum order.
    JsonValue groups = JsonValue::makeArray();
    auto appendGroup = [&](std::string code, std::size_t count) {
        JsonValue row = JsonValue::makeObject();
        row["code"] = JsonValue(std::move(code));
        row["count"] = JsonValue(count);
        groups.append(std::move(row));
    };
    const Taxonomy &taxonomy = Taxonomy::instance();
    if (groupBy == GroupBy::Category) {
        for (const auto &[id, count] : query.countByCategory(axis))
            appendGroup(taxonomy.categoryById(id).code, count);
    } else if (groupBy == GroupBy::Class) {
        for (const auto &[id, count] : query.countByClass(axis))
            appendGroup(taxonomy.classById(id).code, count);
    } else {
        for (const auto &[cls, count] : query.countByWorkaround())
            appendGroup(std::string(workaroundClassName(cls)),
                        count);
    }
    response["groups"] = std::move(groups);
    return response;
}

} // namespace rememberr
