/**
 * @file
 * Declarative query specifications: the serializable form of the
 * fluent `Query` builder.
 *
 * A `QuerySpec` names the same filters `Query` composes from
 * lambdas, but as plain data, so a query can arrive over a wire
 * (the `serve` protocol), be normalized into a canonical textual
 * form, fingerprinted for result caching, and replayed against any
 * `Database` with exactly the semantics of the in-process builder.
 *
 * Normalization guarantees that two requests meaning the same query
 * — different key order in the JSON, different enum spellings
 * ("INTEL" vs "intel"), redundant no-op filters (`min_triggers: 0`)
 * — share one canonical string and therefore one cache entry.
 * `execute()` is the single rendering path for responses: the serve
 * daemon and the in-process equivalence checks both call it, which
 * is what makes "bit-identical over the socket" testable.
 */

#ifndef REMEMBERR_DB_QUERY_SPEC_HH
#define REMEMBERR_DB_QUERY_SPEC_HH

#include <cstdint>
#include <optional>
#include <string>

#include "db/query.hh"
#include "util/expected.hh"
#include "util/json.hh"

namespace rememberr {

/** A serializable database query. */
struct QuerySpec
{
    enum class Op : std::uint8_t { Ping, Count, Run, Group };
    enum class GroupBy : std::uint8_t { Category, Class, Workaround };

    Op op = Op::Count;

    // ---- filters (each optional; absent = no constraint) ---------
    std::optional<Vendor> vendor;
    std::optional<CategoryId> category;
    std::optional<ClassId> categoryClass;
    std::optional<WorkaroundClass> workaround;
    std::optional<FixStatus> status;
    std::optional<std::size_t> minTriggers;
    std::optional<std::size_t> exactTriggers;
    std::optional<std::size_t> minOccurrences;
    std::optional<bool> complexConditions;
    std::optional<bool> simulationOnly;
    /** Disclosure window; both ends present or both absent. */
    std::optional<Date> disclosedFrom;
    std::optional<Date> disclosedTo;

    // ---- op parameters -------------------------------------------
    /** Run only: entries included in the response (capped). */
    std::size_t limit = defaultLimit();
    /** Group only: grouping dimension. */
    GroupBy groupBy = GroupBy::Category;
    /** Group by category/class only: which axis to group. */
    Axis axis = Axis::Trigger;

    static std::size_t defaultLimit() { return 20; }
    static std::size_t maxLimit() { return 1000; }

    /**
     * Parse a request object. Strict: unknown ops, unknown fields,
     * mistyped values, out-of-range limits and half-open disclosure
     * windows are all structured errors, never silent defaults.
     */
    static Expected<QuerySpec> fromJson(const JsonValue &json);

    /**
     * The canonical textual form: fixed field order, enum values
     * re-rendered from their parsed identity, no-op filters and
     * irrelevant op parameters dropped. Equal canonical strings
     * define equal queries (the result-cache key).
     */
    std::string canonical() const;

    /** FNV-1a 64 hash of `canonical()` (cache sharding key). */
    std::uint64_t fingerprint() const;

    /** Rebuild the equivalent fluent builder over `db`. */
    Query toQuery(const Database &db) const;

    /**
     * Execute against `db` and render the complete response object
     * (`ok`, `op`, the canonical `query` echo and the op's payload).
     * Deterministic: object keys are sorted and entry/group order
     * follows database/taxonomy order, so `execute(db).dump()` is a
     * pure function of (spec, db).
     */
    JsonValue execute(const Database &db) const;

    /**
     * Static lint: when the filter conjunction is provably empty on
     * *every* database — contradictory trigger-count constraints, an
     * inverted disclosure window — returns a human-readable reason;
     * nullopt when the query may match. Purely syntactic on the
     * spec, so the serve daemon can elide execution entirely.
     */
    std::optional<std::string> emptyReason() const;

    /**
     * Render the response for a query with no matches without
     * touching any database. Bit-identical to `execute(db)` whenever
     * `emptyReason()` is set (pinned by tests): empty renders of
     * count/run/group never read matched entries.
     */
    JsonValue executeEmpty() const;
};

/** Printable op name ("ping", "count", "run", "group"). */
std::string_view queryOpName(QuerySpec::Op op);

/** Printable grouping name ("category", "class", "workaround"). */
std::string_view groupByName(QuerySpec::GroupBy by);

} // namespace rememberr

#endif // REMEMBERR_DB_QUERY_SPEC_HH
