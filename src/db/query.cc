#include "query.hh"

namespace rememberr {

Query &
Query::vendor(Vendor v)
{
    predicates_.push_back(
        [v](const DbEntry &entry) { return entry.vendor == v; });
    return *this;
}

Query &
Query::hasCategory(CategoryId id)
{
    predicates_.push_back([id](const DbEntry &entry) {
        return entry.triggers.contains(id) ||
               entry.contexts.contains(id) ||
               entry.effects.contains(id);
    });
    return *this;
}

Query &
Query::hasClass(ClassId id)
{
    predicates_.push_back([id](const DbEntry &entry) {
        CategorySet all =
            entry.triggers | entry.contexts | entry.effects;
        for (ClassId cls : all.coveredClasses()) {
            if (cls == id)
                return true;
        }
        return false;
    });
    return *this;
}

Query &
Query::triggerCountAtLeast(std::size_t n)
{
    predicates_.push_back([n](const DbEntry &entry) {
        return entry.triggers.size() >= n;
    });
    return *this;
}

Query &
Query::triggerCountExactly(std::size_t n)
{
    predicates_.push_back([n](const DbEntry &entry) {
        return entry.triggers.size() == n;
    });
    return *this;
}

Query &
Query::workaround(WorkaroundClass cls)
{
    predicates_.push_back([cls](const DbEntry &entry) {
        return entry.workaroundClass == cls;
    });
    return *this;
}

Query &
Query::status(FixStatus st)
{
    predicates_.push_back(
        [st](const DbEntry &entry) { return entry.status == st; });
    return *this;
}

Query &
Query::complexConditions(bool value)
{
    predicates_.push_back([value](const DbEntry &entry) {
        return entry.complexConditions == value;
    });
    return *this;
}

Query &
Query::simulationOnly(bool value)
{
    predicates_.push_back([value](const DbEntry &entry) {
        return entry.simulationOnly == value;
    });
    return *this;
}

Query &
Query::disclosedBetween(Date from, Date to)
{
    predicates_.push_back([from, to](const DbEntry &entry) {
        if (entry.occurrences.empty())
            return false;
        Date first = entry.firstDisclosed();
        return first >= from && first <= to;
    });
    return *this;
}

Query &
Query::inDocument(int doc_index)
{
    predicates_.push_back([doc_index](const DbEntry &entry) {
        for (const Occurrence &occurrence : entry.occurrences) {
            if (occurrence.docIndex == doc_index)
                return true;
        }
        return false;
    });
    return *this;
}

Query &
Query::occurrenceCountAtLeast(std::size_t n)
{
    predicates_.push_back([n](const DbEntry &entry) {
        return entry.occurrences.size() >= n;
    });
    return *this;
}

Query &
Query::where(std::function<bool(const DbEntry &)> predicate)
{
    predicates_.push_back(std::move(predicate));
    return *this;
}

std::vector<const DbEntry *>
Query::run() const
{
    std::vector<const DbEntry *> out;
    for (const DbEntry &entry : db_->entries()) {
        bool matched = true;
        for (const auto &predicate : predicates_) {
            if (!predicate(entry)) {
                matched = false;
                break;
            }
        }
        if (matched)
            out.push_back(&entry);
    }
    return out;
}

std::size_t
Query::count() const
{
    return run().size();
}

std::map<CategoryId, std::size_t>
Query::countByCategory(Axis axis) const
{
    std::map<CategoryId, std::size_t> counts;
    for (const DbEntry *entry : run()) {
        const CategorySet &set = axis == Axis::Trigger
                                     ? entry->triggers
                                     : axis == Axis::Context
                                           ? entry->contexts
                                           : entry->effects;
        for (CategoryId id : set.toVector())
            ++counts[id];
    }
    return counts;
}

std::map<ClassId, std::size_t>
Query::countByClass(Axis axis) const
{
    const Taxonomy &taxonomy = Taxonomy::instance();
    std::map<ClassId, std::size_t> counts;
    for (const DbEntry *entry : run()) {
        const CategorySet &set = axis == Axis::Trigger
                                     ? entry->triggers
                                     : axis == Axis::Context
                                           ? entry->contexts
                                           : entry->effects;
        for (CategoryId id : set.toVector())
            ++counts[taxonomy.categoryById(id).classId];
    }
    return counts;
}

std::map<WorkaroundClass, std::size_t>
Query::countByWorkaround() const
{
    std::map<WorkaroundClass, std::size_t> counts;
    for (const DbEntry *entry : run())
        ++counts[entry->workaroundClass];
    return counts;
}

} // namespace rememberr
