/**
 * @file
 * Fluent query builder over the annotated database.
 *
 * Mirrors the artifact's "example custom script": filter unique
 * errata by vendor, categories, classes, trigger counts, workaround
 * categories, fix status or disclosure window, then count or iterate.
 */

#ifndef REMEMBERR_DB_QUERY_HH
#define REMEMBERR_DB_QUERY_HH

#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "database.hh"

namespace rememberr {

/** A composable filter over database entries. */
class Query
{
  public:
    explicit Query(const Database &db) : db_(&db) {}

    Query &vendor(Vendor v);
    /** Entry has the abstract category on any axis. */
    Query &hasCategory(CategoryId id);
    /** Entry has at least one category of the class. */
    Query &hasClass(ClassId id);
    Query &triggerCountAtLeast(std::size_t n);
    Query &triggerCountExactly(std::size_t n);
    Query &workaround(WorkaroundClass cls);
    Query &status(FixStatus st);
    Query &complexConditions(bool value);
    Query &simulationOnly(bool value);
    /** First disclosure within [from, to]. */
    Query &disclosedBetween(Date from, Date to);
    /** Entry occurs in the given document. */
    Query &inDocument(int doc_index);
    /** Entry occurs in at least n documents. */
    Query &occurrenceCountAtLeast(std::size_t n);
    /** Arbitrary predicate. */
    Query &where(std::function<bool(const DbEntry &)> predicate);

    /** Execute: matching entries in database order. */
    std::vector<const DbEntry *> run() const;

    std::size_t count() const;

    /** Count matches per abstract category of one axis. */
    std::map<CategoryId, std::size_t> countByCategory(Axis axis) const;

    /** Count matches per class of one axis. */
    std::map<ClassId, std::size_t> countByClass(Axis axis) const;

    /** Count matches per workaround class. */
    std::map<WorkaroundClass, std::size_t> countByWorkaround() const;

  private:
    const Database *db_;
    std::vector<std::function<bool(const DbEntry &)>> predicates_;
};

} // namespace rememberr

#endif // REMEMBERR_DB_QUERY_HH
