#include "database.hh"

#include <algorithm>
#include <map>

#include "text/regex.hh"
#include "util/csv.hh"
#include "util/logging.hh"
#include "util/strings.hh"

namespace rememberr {

Date
DbEntry::firstDisclosed() const
{
    if (occurrences.empty())
        REMEMBERR_PANIC("DbEntry::firstDisclosed: no occurrences");
    Date first = occurrences.front().disclosed;
    for (const Occurrence &occurrence : occurrences)
        first = std::min(first, occurrence.disclosed);
    return first;
}

bool
mentionsComplexConditions(const std::string &description)
{
    static const Regex pattern = Regex::compileOrDie(
        R"(complex set of conditions|highly specific and detailed set)",
        {.ignoreCase = true});
    return pattern.contains(description);
}

bool
mentionsSimulationOnly(const std::string &description)
{
    static const Regex pattern = Regex::compileOrDie(
        R"(observed in simulation)", {.ignoreCase = true});
    return pattern.contains(description);
}

namespace {

/** Fill an entry's text/meta fields from its first occurrence row. */
void
fillFromRow(DbEntry &entry, const ErrataDocument &doc,
            const Erratum &erratum)
{
    entry.vendor = doc.design.vendor;
    entry.title = erratum.title;
    entry.description = erratum.description;
    entry.implications = erratum.implications;
    entry.workaroundText = erratum.workaroundText;
    entry.workaroundClass = erratum.workaroundClass;
    entry.status = erratum.status;
    entry.msrs = erratum.msrs;
    entry.complexConditions =
        mentionsComplexConditions(erratum.description);
    entry.simulationOnly =
        mentionsSimulationOnly(erratum.description);
}

} // namespace

Database
Database::build(const Corpus &corpus, const DedupResult &dedup,
                const FourEyesResult &annotations)
{
    Database db;
    db.documents_ = corpus.documents;
    db.documentCount_ = db.documents_.size();

    for (std::size_t key = 0; key < dedup.clusters.size(); ++key) {
        const auto &cluster = dedup.clusters[key];
        if (cluster.empty())
            continue;
        DbEntry entry;
        entry.key = static_cast<std::uint32_t>(key);

        for (const ErratumRef &ref : cluster) {
            const ErrataDocument &doc =
                db.documents_[static_cast<std::size_t>(ref.docIndex)];
            const Erratum &erratum = doc.errata[ref.position];
            Occurrence occurrence;
            occurrence.docIndex = ref.docIndex;
            occurrence.localId = erratum.localId;
            occurrence.disclosed =
                doc.approximateDisclosureDate(erratum.localId);
            entry.occurrences.push_back(std::move(occurrence));
        }
        std::sort(entry.occurrences.begin(), entry.occurrences.end(),
                  [](const Occurrence &a, const Occurrence &b) {
                      if (a.disclosed != b.disclosed)
                          return a.disclosed < b.disclosed;
                      return a.docIndex < b.docIndex;
                  });

        const ErratumRef &first = cluster.front();
        const ErrataDocument &doc =
            db.documents_[static_cast<std::size_t>(first.docIndex)];
        fillFromRow(entry, doc, doc.errata[first.position]);

        // Annotations come from the four-eyes result via the bug the
        // first row belongs to.
        auto bugIt = corpus.rowToBug.find(
            {first.docIndex, static_cast<int>(first.position)});
        if (bugIt != corpus.rowToBug.end() &&
            bugIt->second < annotations.annotations.size()) {
            const AnnotatedBug &annotated =
                annotations.annotations[bugIt->second];
            entry.triggers = annotated.triggers;
            entry.contexts = annotated.contexts;
            entry.effects = annotated.effects;
        }
        db.entries_.push_back(std::move(entry));
    }
    return db;
}

Database
Database::buildFromGroundTruth(const Corpus &corpus)
{
    Database db;
    db.documents_ = corpus.documents;
    db.documentCount_ = db.documents_.size();

    // Group rows per bug key.
    std::map<std::uint32_t, std::vector<std::pair<int, std::string>>>
        rowsByBug;
    for (const auto &[row, bug] : corpus.rowToBug) {
        const ErrataDocument &doc =
            corpus.documents[static_cast<std::size_t>(row.first)];
        rowsByBug[bug].push_back(
            {row.first,
             doc.errata[static_cast<std::size_t>(row.second)]
                 .localId});
    }

    for (const BugSpec &bug : corpus.bugs) {
        DbEntry entry;
        entry.key = bug.bugKey;
        entry.vendor = bug.vendor;
        entry.title = bug.title;
        entry.description = bug.description;
        entry.implications = bug.implications;
        entry.workaroundText = bug.workaroundText;
        entry.workaroundClass = bug.workaroundClass;
        entry.status = bug.fixStatus;
        entry.triggers = bug.triggers;
        entry.contexts = bug.contexts;
        entry.effects = bug.effects;
        entry.msrs = bug.msrs;
        entry.complexConditions = bug.complexConditions;
        entry.simulationOnly = bug.simulationOnly;

        auto it = rowsByBug.find(bug.bugKey);
        if (it != rowsByBug.end()) {
            for (const auto &[docIndex, localId] : it->second) {
                const ErrataDocument &doc =
                    db.documents_[static_cast<std::size_t>(docIndex)];
                Occurrence occurrence;
                occurrence.docIndex = docIndex;
                occurrence.localId = localId;
                occurrence.disclosed =
                    doc.approximateDisclosureDate(localId);
                entry.occurrences.push_back(std::move(occurrence));
            }
            std::sort(entry.occurrences.begin(),
                      entry.occurrences.end(),
                      [](const Occurrence &a, const Occurrence &b) {
                          if (a.disclosed != b.disclosed)
                              return a.disclosed < b.disclosed;
                          return a.docIndex < b.docIndex;
                      });
        }
        db.entries_.push_back(std::move(entry));
    }
    return db;
}

Database
Database::restore(std::vector<DbEntry> entries,
                  std::vector<ErrataDocument> documents)
{
    Database db;
    db.entries_ = std::move(entries);
    db.documents_ = std::move(documents);
    db.documentCount_ = db.documents_.size();
    for (const DbEntry &entry : db.entries_) {
        for (const Occurrence &occurrence : entry.occurrences) {
            if (occurrence.docIndex < 0 ||
                static_cast<std::size_t>(occurrence.docIndex) >=
                    db.documentCount_) {
                REMEMBERR_PANIC("Database::restore: entry ",
                                entry.key, " occurrence points at ",
                                "document ", occurrence.docIndex,
                                " of ", db.documentCount_);
            }
        }
    }
    return db;
}

std::size_t
Database::uniqueCount(Vendor vendor) const
{
    std::size_t count = 0;
    for (const DbEntry &entry : entries_) {
        if (entry.vendor == vendor)
            ++count;
    }
    return count;
}

std::size_t
Database::rowCount(Vendor vendor) const
{
    std::size_t count = 0;
    for (const DbEntry &entry : entries_) {
        if (entry.vendor == vendor)
            count += entry.occurrences.size();
    }
    return count;
}

namespace {

JsonValue
categorySetToJson(const CategorySet &set)
{
    const Taxonomy &taxonomy = Taxonomy::instance();
    JsonValue out = JsonValue::makeArray();
    for (CategoryId id : set.toVector())
        out.append(taxonomy.categoryById(id).code);
    return out;
}

Expected<CategorySet>
categorySetFromJson(const JsonValue &json)
{
    const Taxonomy &taxonomy = Taxonomy::instance();
    CategorySet set;
    for (const JsonValue &item : json.asArray()) {
        auto id = taxonomy.parseCategory(item.asString());
        if (!id)
            return makeError("unknown category code '" +
                             item.asString() + "'");
        set.insert(*id);
    }
    return set;
}

} // namespace

JsonValue
Database::toJson() const
{
    JsonValue entries = JsonValue::makeArray();
    for (const DbEntry &entry : entries_) {
        JsonValue item = JsonValue::makeObject();
        item["key"] = JsonValue(static_cast<std::int64_t>(entry.key));
        item["vendor"] = std::string(vendorName(entry.vendor));
        item["title"] = entry.title;
        item["description"] = entry.description;
        item["implications"] = entry.implications;
        item["workaround"] = entry.workaroundText;
        item["workaroundClass"] =
            std::string(workaroundClassName(entry.workaroundClass));
        item["status"] = std::string(fixStatusName(entry.status));
        item["triggers"] = categorySetToJson(entry.triggers);
        item["contexts"] = categorySetToJson(entry.contexts);
        item["effects"] = categorySetToJson(entry.effects);
        item["complexConditions"] = entry.complexConditions;
        item["simulationOnly"] = entry.simulationOnly;
        if (!entry.rootCause.empty())
            item["rootCause"] = entry.rootCause;

        JsonValue msrs = JsonValue::makeArray();
        for (const MsrRef &msr : entry.msrs) {
            JsonValue ref = JsonValue::makeObject();
            ref["name"] = msr.name;
            ref["number"] =
                JsonValue(static_cast<std::int64_t>(msr.number));
            msrs.append(std::move(ref));
        }
        item["msrs"] = std::move(msrs);

        JsonValue occurrences = JsonValue::makeArray();
        for (const Occurrence &occurrence : entry.occurrences) {
            JsonValue ref = JsonValue::makeObject();
            ref["doc"] = JsonValue(
                static_cast<std::int64_t>(occurrence.docIndex));
            ref["id"] = occurrence.localId;
            ref["disclosed"] = occurrence.disclosed.toString();
            occurrences.append(std::move(ref));
        }
        item["occurrences"] = std::move(occurrences);
        entries.append(std::move(item));
    }

    JsonValue root = JsonValue::makeObject();
    root["format"] = "rememberr-db";
    root["version"] = 1;
    root["documentCount"] =
        JsonValue(static_cast<std::int64_t>(documentCount_));
    root["entries"] = std::move(entries);
    return root;
}

namespace {

Expected<Vendor>
vendorFromName(const std::string &name)
{
    if (name == vendorName(Vendor::Intel))
        return Vendor::Intel;
    if (name == vendorName(Vendor::Amd))
        return Vendor::Amd;
    return makeError("unknown vendor '" + name + "'");
}

Expected<WorkaroundClass>
workaroundClassFromName(const std::string &name)
{
    for (int c = 0; c <= 5; ++c) {
        auto value = static_cast<WorkaroundClass>(c);
        if (name == workaroundClassName(value))
            return value;
    }
    return makeError("unknown workaround class '" + name + "'");
}

Expected<FixStatus>
fixStatusFromName(const std::string &name)
{
    for (int s = 0; s <= 2; ++s) {
        auto value = static_cast<FixStatus>(s);
        if (name == fixStatusName(value))
            return value;
    }
    return makeError("unknown fix status '" + name + "'");
}

} // namespace

Expected<Database>
Database::fromJson(const JsonValue &json)
{
    if (!json.isObject() || !json.contains("entries"))
        return makeError("not a rememberr-db document");
    Database db;
    // Older exports predate the documentCount field; for those the
    // count is inferred from the occurrence indices below so they
    // still load.
    bool inferDocumentCount = true;
    if (json.contains("documentCount")) {
        std::int64_t count = json.at("documentCount").asInt();
        if (count < 0)
            return makeError("negative documentCount");
        db.documentCount_ = static_cast<std::size_t>(count);
        inferDocumentCount = false;
    }
    for (const JsonValue &item : json.at("entries").asArray()) {
        DbEntry entry;
        entry.key = static_cast<std::uint32_t>(item.at("key").asInt());
        auto vendor = vendorFromName(item.at("vendor").asString());
        if (!vendor)
            return vendor.error();
        entry.vendor = vendor.value();
        entry.title = item.at("title").asString();
        entry.description = item.at("description").asString();
        entry.implications = item.at("implications").asString();
        entry.workaroundText = item.at("workaround").asString();

        auto workaroundClass = workaroundClassFromName(
            item.at("workaroundClass").asString());
        if (!workaroundClass)
            return workaroundClass.error();
        entry.workaroundClass = workaroundClass.value();
        auto status = fixStatusFromName(item.at("status").asString());
        if (!status)
            return status.error();
        entry.status = status.value();

        auto triggers = categorySetFromJson(item.at("triggers"));
        if (!triggers)
            return triggers.error();
        entry.triggers = triggers.value();
        auto contexts = categorySetFromJson(item.at("contexts"));
        if (!contexts)
            return contexts.error();
        entry.contexts = contexts.value();
        auto effects = categorySetFromJson(item.at("effects"));
        if (!effects)
            return effects.error();
        entry.effects = effects.value();

        entry.complexConditions =
            item.at("complexConditions").asBool();
        entry.simulationOnly = item.at("simulationOnly").asBool();
        if (item.contains("rootCause"))
            entry.rootCause = item.at("rootCause").asString();

        for (const JsonValue &ref : item.at("msrs").asArray()) {
            MsrRef msr;
            msr.name = ref.at("name").asString();
            msr.number =
                static_cast<std::uint32_t>(ref.at("number").asInt());
            entry.msrs.push_back(std::move(msr));
        }
        for (const JsonValue &ref :
             item.at("occurrences").asArray()) {
            Occurrence occurrence;
            occurrence.docIndex =
                static_cast<int>(ref.at("doc").asInt());
            if (occurrence.docIndex < 0)
                return makeError(
                    "entry " + std::to_string(entry.key) +
                    ": negative occurrence document index");
            if (inferDocumentCount) {
                db.documentCount_ = std::max(
                    db.documentCount_,
                    static_cast<std::size_t>(occurrence.docIndex) +
                        1);
            } else if (static_cast<std::size_t>(
                           occurrence.docIndex) >=
                       db.documentCount_) {
                return makeError(
                    "entry " + std::to_string(entry.key) +
                    ": occurrence points at document " +
                    std::to_string(occurrence.docIndex) +
                    " but the export only had " +
                    std::to_string(db.documentCount_));
            }
            occurrence.localId = ref.at("id").asString();
            auto date = Date::parse(ref.at("disclosed").asString());
            if (!date)
                return date.error();
            occurrence.disclosed = date.value();
            entry.occurrences.push_back(std::move(occurrence));
        }
        db.entries_.push_back(std::move(entry));
    }
    return db;
}

std::string
Database::toCsv() const
{
    const Taxonomy &taxonomy = Taxonomy::instance();
    CsvWriter writer;
    writer.setHeader({"key", "vendor", "title", "workaround_class",
                      "status", "triggers", "contexts", "effects",
                      "msrs", "occurrences", "first_disclosed"});
    for (const DbEntry &entry : entries_) {
        auto codes = [&](const CategorySet &set) {
            std::vector<std::string> out;
            for (CategoryId id : set.toVector())
                out.push_back(taxonomy.categoryById(id).code);
            return strings::join(out, ";");
        };
        std::vector<std::string> msrNames;
        for (const MsrRef &msr : entry.msrs)
            msrNames.push_back(msr.name);
        writer.addRow({
            std::to_string(entry.key),
            std::string(vendorName(entry.vendor)),
            entry.title,
            std::string(workaroundClassName(entry.workaroundClass)),
            std::string(fixStatusName(entry.status)),
            codes(entry.triggers),
            codes(entry.contexts),
            codes(entry.effects),
            strings::join(msrNames, ";"),
            std::to_string(entry.occurrences.size()),
            entry.occurrences.empty()
                ? ""
                : entry.firstDisclosed().toString(),
        });
    }
    return writer.toString();
}

} // namespace rememberr
