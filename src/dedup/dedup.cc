#include "dedup.hh"

#include <algorithm>
#include <map>
#include <set>

#include "text/ngram_index.hh"
#include "text/similarity.hh"
#include "union_find.hh"
#include "util/logging.hh"
#include "util/parallel.hh"
#include "util/strings.hh"

namespace rememberr {

namespace {

/** Flattened view of all rows with precomputed canonical titles. */
struct RowView
{
    ErratumRef ref;
    const Erratum *erratum = nullptr;
    Vendor vendor = Vendor::Intel;
    std::string canonicalTitle;
};

bool
defaultReviewOracle(const Erratum &a, const Erratum &b)
{
    return strings::canonicalize(a.description) ==
           strings::canonicalize(b.description);
}

} // namespace

DedupResult
deduplicate(const std::vector<ErrataDocument> &documents,
            const DedupOptions &options)
{
    auto reviewOracle =
        options.reviewOracle ? options.reviewOracle
                             : defaultReviewOracle;

    // Flatten rows.
    std::vector<RowView> rows;
    for (std::size_t d = 0; d < documents.size(); ++d) {
        const ErrataDocument &doc = documents[d];
        for (std::size_t i = 0; i < doc.errata.size(); ++i) {
            RowView row;
            row.ref = ErratumRef{static_cast<int>(d), i};
            row.erratum = &doc.errata[i];
            row.vendor = doc.design.vendor;
            row.canonicalTitle =
                strings::canonicalize(doc.errata[i].title);
            rows.push_back(std::move(row));
        }
    }

    DedupResult result;
    UnionFind forest(rows.size());

    // ---- AMD: shared numeric identifiers ---------------------------
    {
        std::map<std::string, std::size_t> firstByNumber;
        for (std::size_t i = 0; i < rows.size(); ++i) {
            if (rows[i].vendor != Vendor::Amd)
                continue;
            auto [it, inserted] = firstByNumber.try_emplace(
                rows[i].erratum->localId, i);
            if (!inserted) {
                if (forest.unite(it->second, i))
                    ++result.numericIdMerges;
            }
        }
    }

    // ---- Intel step 1: (nearly) identical titles -------------------
    {
        std::map<std::string, std::size_t> firstByTitle;
        for (std::size_t i = 0; i < rows.size(); ++i) {
            if (rows[i].vendor != Vendor::Intel)
                continue;
            auto [it, inserted] =
                firstByTitle.try_emplace(rows[i].canonicalTitle, i);
            if (!inserted) {
                if (forest.unite(it->second, i))
                    ++result.exactTitleMerges;
            }
        }
    }

    // ---- Intel step 2: similarity-ranked review --------------------
    // Collect one representative per current Intel cluster to avoid
    // re-reviewing rows already merged by exact title.
    std::vector<std::size_t> reps;
    {
        std::set<std::size_t> seen;
        for (std::size_t i = 0; i < rows.size(); ++i) {
            if (rows[i].vendor != Vendor::Intel)
                continue;
            if (seen.insert(forest.find(i)).second)
                reps.push_back(i);
        }
    }

    struct Candidate
    {
        std::size_t a = 0;
        std::size_t b = 0;
        double similarity = 0.0;
    };

    // Scoring compares each representative against many others, so
    // canonicalization, tokenization and the byte histogram move out
    // of the pair loop into one profile per representative; the
    // thresholded kernel then screens most pairs without running the
    // quadratic Jaro window loop. Kept pairs and scores are
    // bit-identical to titleSimilarity (see similarity.hh).
    std::vector<TitleProfile> profiles(reps.size());
    parallelFor(reps.size(), options.threads, [&](std::size_t i) {
        profiles[i] =
            makeTitleProfile(rows[reps[i]].erratum->title);
    });

    // Candidate generation + similarity scoring is the hot loop and
    // is read-only over rows/index/profiles, so it shards across
    // threads by representative index. Partial candidate lists are
    // concatenated in chunk order, which reproduces the serial
    // append order exactly; the union-find below stays strictly
    // serial.
    struct CandidateShard
    {
        std::vector<Candidate> candidates;
        std::size_t pairsConsidered = 0;
        SimilarityKernelStats stats;
    };
    auto mergeShards = [](CandidateShard &acc, CandidateShard &&part) {
        acc.candidates.insert(
            acc.candidates.end(),
            std::make_move_iterator(part.candidates.begin()),
            std::make_move_iterator(part.candidates.end()));
        acc.pairsConsidered += part.pairsConsidered;
        acc.stats += part.stats;
    };

    CandidateShard generated;
    if (options.useNgramIndex) {
        NgramIndex index(3);
        for (std::size_t rep : reps)
            index.add(rows[rep].erratum->title);
        generated = parallelMapReduce<CandidateShard>(
            reps.size(), options.threads,
            [&](std::size_t begin, std::size_t end) {
                CandidateShard shard;
                NgramQueryScratch scratch;
                for (std::size_t i = begin; i < end; ++i) {
                    auto hits = index.query(
                        rows[reps[i]].erratum->title, scratch,
                        options.ngramMinOverlap,
                        static_cast<std::int64_t>(i));
                    for (const NgramCandidate &hit : hits) {
                        if (hit.docId <= i)
                            continue; // count each unordered pair once
                        ++shard.pairsConsidered;
                        auto sim = titleSimilarityAtLeast(
                            profiles[i], profiles[hit.docId],
                            options.reviewThreshold, &shard.stats);
                        if (sim) {
                            shard.candidates.push_back(Candidate{
                                reps[i], reps[hit.docId], *sim});
                        }
                    }
                }
                return shard;
            },
            mergeShards);
    } else {
        generated = parallelMapReduce<CandidateShard>(
            reps.size(), options.threads,
            [&](std::size_t begin, std::size_t end) {
                CandidateShard shard;
                for (std::size_t i = begin; i < end; ++i) {
                    for (std::size_t j = i + 1; j < reps.size();
                         ++j) {
                        ++shard.pairsConsidered;
                        auto sim = titleSimilarityAtLeast(
                            profiles[i], profiles[j],
                            options.reviewThreshold, &shard.stats);
                        if (sim) {
                            shard.candidates.push_back(
                                Candidate{reps[i], reps[j], *sim});
                        }
                    }
                }
                return shard;
            },
            mergeShards);
    }
    std::vector<Candidate> candidates =
        std::move(generated.candidates);
    result.candidatePairsConsidered = generated.pairsConsidered;
    result.simKernel = generated.stats;
    if (options.metrics) {
        options.metrics->counter("dedup.simkernel.pairs")
            .add(generated.stats.pairs);
        options.metrics->counter("dedup.simkernel.screen_rejects")
            .add(generated.stats.screenRejects);
        options.metrics->counter("dedup.simkernel.jaro_runs")
            .add(generated.stats.jaroRuns);
        options.metrics->counter("dedup.simkernel.kept")
            .add(generated.stats.kept);
    }

    // Review in decreasing title similarity, as the paper did.
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate &a, const Candidate &b) {
                  if (a.similarity != b.similarity)
                      return a.similarity > b.similarity;
                  if (a.a != b.a)
                      return a.a < b.a;
                  return a.b < b.b;
              });
    for (const Candidate &candidate : candidates) {
        if (forest.connected(candidate.a, candidate.b))
            continue;
        ++result.reviewedPairs;
        if (reviewOracle(*rows[candidate.a].erratum,
                         *rows[candidate.b].erratum)) {
            if (forest.unite(candidate.a, candidate.b))
                ++result.reviewConfirmedMerges;
        }
    }

    // ---- Assign cluster keys ---------------------------------------
    std::map<std::size_t, std::uint32_t> keyOfRoot;
    result.keyByDoc.resize(documents.size());
    for (std::size_t d = 0; d < documents.size(); ++d)
        result.keyByDoc[d].resize(documents[d].errata.size());

    for (std::size_t i = 0; i < rows.size(); ++i) {
        std::size_t root = forest.find(i);
        auto [it, inserted] = keyOfRoot.try_emplace(
            root, static_cast<std::uint32_t>(result.clusters.size()));
        if (inserted)
            result.clusters.emplace_back();
        std::uint32_t key = it->second;
        result.clusters[key].push_back(rows[i].ref);
        result.keyByDoc[static_cast<std::size_t>(rows[i].ref.docIndex)]
                       [rows[i].ref.position] = key;
    }
    return result;
}

std::size_t
DedupResult::uniqueCount(const std::vector<ErrataDocument> &docs,
                         Vendor vendor) const
{
    std::size_t count = 0;
    for (const auto &cluster : clusters) {
        if (cluster.empty())
            continue;
        Vendor v = docs[static_cast<std::size_t>(
                            cluster.front().docIndex)]
                       .design.vendor;
        if (v == vendor)
            ++count;
    }
    return count;
}

DedupAccuracy
evaluateDedup(const Corpus &corpus, const DedupResult &result)
{
    // Pair-level evaluation: for every unordered pair of rows, is it
    // correctly placed in the same / different cluster?  Pairs are
    // enumerated implicitly from cluster sizes to stay linear.
    DedupAccuracy accuracy;

    auto pairsOf = [](std::size_t n) {
        return n * (n - 1) / 2;
    };

    // Ground-truth clusters: rows grouped by bugKey.
    std::map<std::uint32_t, std::vector<ErratumRef>> truth;
    for (const auto &[row, bug] : corpus.rowToBug) {
        truth[bug].push_back(ErratumRef{
            row.first, static_cast<std::size_t>(row.second)});
    }
    for (const auto &[bug, refs] : truth)
        accuracy.truePairs += pairsOf(refs.size());

    for (const auto &cluster : result.clusters)
        accuracy.predictedPairs += pairsOf(cluster.size());

    // Correct pairs: intersect predicted clusters with truth by
    // mapping every row to its true bug.
    std::map<std::pair<int, std::size_t>, std::uint32_t> rowToBug;
    for (const auto &[bug, refs] : truth) {
        for (const ErratumRef &ref : refs)
            rowToBug[{ref.docIndex, ref.position}] = bug;
    }
    for (const auto &cluster : result.clusters) {
        std::map<std::uint32_t, std::size_t> perBug;
        for (const ErratumRef &ref : cluster) {
            auto it = rowToBug.find({ref.docIndex, ref.position});
            if (it != rowToBug.end())
                ++perBug[it->second];
        }
        for (const auto &[bug, count] : perBug)
            accuracy.correctPairs += pairsOf(count);
    }

    accuracy.pairPrecision =
        accuracy.predictedPairs == 0
            ? 1.0
            : static_cast<double>(accuracy.correctPairs) /
                  static_cast<double>(accuracy.predictedPairs);
    accuracy.pairRecall =
        accuracy.truePairs == 0
            ? 1.0
            : static_cast<double>(accuracy.correctPairs) /
                  static_cast<double>(accuracy.truePairs);
    return accuracy;
}

} // namespace rememberr
