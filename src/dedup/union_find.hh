/**
 * @file
 * Disjoint-set forest with union by size and path compression.
 */

#ifndef REMEMBERR_DEDUP_UNION_FIND_HH
#define REMEMBERR_DEDUP_UNION_FIND_HH

#include <cstdint>
#include <numeric>
#include <vector>

namespace rememberr {

/** Union-find over dense indices [0, n). */
class UnionFind
{
  public:
    explicit UnionFind(std::size_t n) : parent_(n), size_(n, 1)
    {
        std::iota(parent_.begin(), parent_.end(), 0);
    }

    std::size_t
    find(std::size_t x)
    {
        std::size_t root = x;
        while (parent_[root] != root)
            root = parent_[root];
        while (parent_[x] != root) {
            std::size_t next = parent_[x];
            parent_[x] = root;
            x = next;
        }
        return root;
    }

    /** Union the sets containing a and b; returns true when merged. */
    bool
    unite(std::size_t a, std::size_t b)
    {
        std::size_t ra = find(a);
        std::size_t rb = find(b);
        if (ra == rb)
            return false;
        if (size_[ra] < size_[rb])
            std::swap(ra, rb);
        parent_[rb] = ra;
        size_[ra] += size_[rb];
        return true;
    }

    bool
    connected(std::size_t a, std::size_t b)
    {
        return find(a) == find(b);
    }

    std::size_t setSize(std::size_t x) { return size_[find(x)]; }

    std::size_t elementCount() const { return parent_.size(); }

    /** Number of disjoint sets. */
    std::size_t
    setCount()
    {
        std::size_t count = 0;
        for (std::size_t i = 0; i < parent_.size(); ++i) {
            if (find(i) == i)
                ++count;
        }
        return count;
    }

  private:
    std::vector<std::size_t> parent_;
    std::vector<std::size_t> size_;
};

} // namespace rememberr

#endif // REMEMBERR_DEDUP_UNION_FIND_HH
