/**
 * @file
 * Duplicate detection across errata documents.
 *
 * Section IV-A: AMD identifies errata across families by a shared
 * numeric identifier; Intel provides no such mechanism, so duplicates
 * are found by title — first exact (canonicalized) title matches,
 * then remaining pairs ranked by decreasing title similarity and
 * confirmed by review (simulated here by comparing the full entries,
 * which is what the manual inspection did). The resulting keying
 * mechanism assigns one cluster key to every group of identical
 * errata.
 */

#ifndef REMEMBERR_DEDUP_DEDUP_HH
#define REMEMBERR_DEDUP_DEDUP_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "corpus/corpus.hh"
#include "model/erratum.hh"
#include "obs/metrics.hh"
#include "text/similarity.hh"

namespace rememberr {

/** Reference to one erratum row. */
struct ErratumRef
{
    int docIndex = 0;
    /** Position inside the document's errata vector. */
    std::size_t position = 0;

    bool operator==(const ErratumRef &other) const = default;
};

/** Tuning knobs for the Intel title pipeline. */
struct DedupOptions
{
    /**
     * Similarity above which a pair is surfaced for review. Titles
     * identical after canonicalization merge without review (the
     * paper's step 1); every other candidate pair is reviewed in
     * decreasing similarity order (step 2) — near-identical titles
     * are never merged blindly, since similar phrasing can describe
     * distinct bugs (e.g. "overflow" vs "underflow").
     */
    double reviewThreshold = 0.85;
    /** Use the n-gram index for candidate generation instead of the
     * quadratic all-pairs scan (DESIGN.md D1). */
    bool useNgramIndex = true;
    /** Minimum n-gram overlap for index candidates. */
    double ngramMinOverlap = 0.30;
    /**
     * Review decision for a surfaced pair. The default emulates the
     * paper's manual inspection: confirm when the descriptions are
     * identical up to canonicalization.
     */
    std::function<bool(const Erratum &, const Erratum &)> reviewOracle;
    /**
     * Worker threads for candidate generation + similarity scoring
     * (0 = all hardware threads, 1 = serial). Results are
     * bit-identical for every thread count: shards merge in index
     * order and union-find merges stay serial.
     */
    std::size_t threads = 1;
    /** When set, receives dedup.simkernel.* counters describing how
     * often the thresholded similarity kernel short-circuited. */
    MetricsRegistry *metrics = nullptr;
};

/** Outcome of deduplication. */
struct DedupResult
{
    /** Cluster key for every row, aligned with documents/errata. */
    std::vector<std::vector<std::uint32_t>> keyByDoc;
    /** Rows grouped per cluster key. */
    std::vector<std::vector<ErratumRef>> clusters;

    // Pipeline statistics.
    std::size_t exactTitleMerges = 0;
    std::size_t reviewedPairs = 0;
    std::size_t reviewConfirmedMerges = 0;
    std::size_t numericIdMerges = 0;
    std::size_t candidatePairsConsidered = 0;
    /** Thresholded-similarity kernel behavior over the scoring loop. */
    SimilarityKernelStats simKernel;

    /** Number of clusters whose rows all belong to the vendor. */
    std::size_t uniqueCount(const std::vector<ErrataDocument> &docs,
                            Vendor vendor) const;
};

/** Run deduplication over a set of documents. */
DedupResult deduplicate(const std::vector<ErrataDocument> &documents,
                        const DedupOptions &options = {});

/** Pairwise precision/recall against the corpus ground truth. */
struct DedupAccuracy
{
    double pairPrecision = 0.0;
    double pairRecall = 0.0;
    std::size_t truePairs = 0;
    std::size_t predictedPairs = 0;
    std::size_t correctPairs = 0;
};

DedupAccuracy evaluateDedup(const Corpus &corpus,
                            const DedupResult &result);

} // namespace rememberr

#endif // REMEMBERR_DEDUP_DEDUP_HH
