/**
 * @file
 * The plain-text specification-update document format.
 *
 * Substitutes for the vendor PDF documents: the corpus renders into
 * this format and the parsing stage reads it back, so the pipeline
 * exercises real (de)serialization with all the robustness concerns
 * of Section IV-A (wrapped prose, missing fields, inconsistent
 * revision notes). The workaround *category* and fix status are not
 * stored as metadata — the parser infers them from the prose, just
 * like the paper's annotation did.
 *
 * Format sketch:
 *
 *   SPECIFICATION UPDATE
 *   Vendor: Intel
 *   Design: Core 4 (D)
 *   ...
 *   == REVISION HISTORY ==
 *   Revision: 1
 *   Date: 2013-06-04
 *   Note: Initial release.
 *   Added: HSD001, HSD002
 *   ...
 *   == ERRATA ==
 *   ID: HSD001
 *   Title: ...
 *   Description: ...        (wrapped; continuations indented)
 *   Implications: ...
 *   Workaround: ...
 *   Status: No fix planned.
 *   MSRs: MC4_STATUS=0x9A3
 *   ...
 *   == END ==
 */

#ifndef REMEMBERR_DOCUMENT_FORMAT_HH
#define REMEMBERR_DOCUMENT_FORMAT_HH

#include <string>

#include "model/erratum.hh"
#include "util/expected.hh"

namespace rememberr {

/** Render a document into the text format. */
std::string renderDocument(const ErrataDocument &document);

/** Parse a document from the text format. */
Expected<ErrataDocument> parseDocument(const std::string &text);

/**
 * Infer the workaround category from its prose (Figure 6's
 * classification). "Contact ... for information on a BIOS update"
 * counts as Absent per Section IV-B3, even though it mentions the
 * BIOS, because the actual information is withheld.
 */
WorkaroundClass classifyWorkaround(const std::string &text);

/** Infer the fix status from the status prose. */
FixStatus classifyStatus(const std::string &text);

/** Render the status prose for a fix status. */
std::string statusText(FixStatus status);

} // namespace rememberr

#endif // REMEMBERR_DOCUMENT_FORMAT_HH
