#include "lint.hh"

#include <map>
#include <set>

#include "corpus/generator.hh"
#include "util/strings.hh"

namespace rememberr {

std::vector<LintFinding>
lintDocument(const ErrataDocument &document, const LintOptions &options)
{
    std::vector<LintFinding> findings;
    auto report = [&](DefectKind kind, std::vector<std::string> ids,
                      std::string detail) {
        findings.push_back(
            LintFinding{kind, std::move(ids), std::move(detail)});
    };

    // Count how many entries carry each id; a reused name legitimately
    // appears in multiple revision notes, so it must not also be
    // flagged as a duplicate revision claim.
    std::map<std::string, int> idCount;
    for (const Erratum &erratum : document.errata)
        ++idCount[erratum.localId];

    // ---- Revision-note consistency ---------------------------------
    std::map<std::string, int> claimCount;
    for (const Revision &revision : document.revisions) {
        std::set<std::string> inThisRevision;
        for (const std::string &id : revision.addedIds) {
            // The same id twice in one revision is a note defect too,
            // but only cross-revision claims count for the paper's
            // "added in two consecutive revisions" category.
            if (inThisRevision.insert(id).second)
                ++claimCount[id];
        }
    }
    for (const auto &[id, count] : claimCount) {
        if (count > 1 && idCount[id] <= 1) {
            report(DefectKind::DuplicateRevisionClaim, {id},
                   "revision notes claim '" + id + "' was added " +
                       std::to_string(count) + " times");
        }
    }

    std::set<std::string> everClaimed;
    for (const auto &[id, count] : claimCount)
        everClaimed.insert(id);
    std::set<std::string> reportedMissing;
    for (const Erratum &erratum : document.errata) {
        if (!everClaimed.count(erratum.localId) &&
            reportedMissing.insert(erratum.localId).second) {
            report(DefectKind::MissingFromNotes, {erratum.localId},
                   "'" + erratum.localId +
                       "' never appears in the revision notes");
        }
    }

    // ---- Identifier reuse ------------------------------------------
    for (const auto &[id, count] : idCount) {
        if (count > 1) {
            report(DefectKind::ReusedName, {id, id},
                   "name '" + id + "' refers to " +
                       std::to_string(count) + " errata");
        }
    }

    // ---- Field integrity -------------------------------------------
    for (const Erratum &erratum : document.errata) {
        if (erratum.title.empty() || erratum.description.empty() ||
            erratum.implications.empty() ||
            erratum.workaroundText.empty()) {
            std::string which =
                erratum.title.empty() ? "title"
                : erratum.description.empty() ? "description"
                : erratum.implications.empty() ? "implications"
                                               : "workaround";
            report(DefectKind::MissingField, {erratum.localId},
                   "'" + erratum.localId + "' has an empty " + which +
                       " field");
        } else if (erratum.implications == erratum.description) {
            report(DefectKind::DuplicateField, {erratum.localId},
                   "'" + erratum.localId +
                       "' duplicates the description into the "
                       "implications field");
        }
    }

    // ---- MSR numbers ------------------------------------------------
    auto reference = options.msrReference
                         ? options.msrReference
                         : [](const std::string &name) {
                               return canonicalMsrNumber(name);
                           };
    for (const Erratum &erratum : document.errata) {
        for (const MsrRef &msr : erratum.msrs) {
            std::uint32_t expected = reference(msr.name);
            if (expected != 0 && msr.number != 0 &&
                msr.number != expected) {
                report(DefectKind::WrongMsrNumber, {erratum.localId},
                       "'" + erratum.localId + "' lists " + msr.name +
                           " with a number contradicting the "
                           "reference manual");
            }
        }
    }

    // ---- Intra-document duplicates -----------------------------------
    // Two entries with identical canonical title, description AND
    // workaround but different ids are the same erratum repeated.
    // The workaround is part of the fingerprint because entries that
    // differ only there (the paper's errata-1327/1329 case) may
    // originate from distinct root causes and must not be flagged.
    std::map<std::string, std::vector<const Erratum *>> byContent;
    for (const Erratum &erratum : document.errata) {
        std::string fingerprint =
            strings::canonicalize(erratum.title) + "\x1f" +
            strings::canonicalize(erratum.description) + "\x1f" +
            strings::canonicalize(erratum.workaroundText);
        byContent[fingerprint].push_back(&erratum);
    }
    for (const auto &[fingerprint, entries] : byContent) {
        if (entries.size() < 2)
            continue;
        for (std::size_t i = 1; i < entries.size(); ++i) {
            if (entries[0]->localId == entries[i]->localId)
                continue; // already reported as ReusedName
            report(DefectKind::IntraDocDuplicate,
                   {entries[0]->localId, entries[i]->localId},
                   "'" + entries[0]->localId + "' and '" +
                       entries[i]->localId +
                       "' are the same erratum repeated in one "
                       "document");
        }
    }

    return findings;
}

LintSummary
summarizeFindings(
    const std::vector<std::vector<LintFinding>> &per_document)
{
    LintSummary summary;
    for (const auto &findings : per_document) {
        for (const LintFinding &finding : findings) {
            switch (finding.kind) {
              case DefectKind::DuplicateRevisionClaim:
                ++summary.duplicateRevisionClaims;
                break;
              case DefectKind::MissingFromNotes:
                ++summary.missingFromNotes;
                break;
              case DefectKind::ReusedName:
                ++summary.reusedNames;
                break;
              case DefectKind::MissingField:
                ++summary.missingFields;
                break;
              case DefectKind::DuplicateField:
                ++summary.duplicateFields;
                break;
              case DefectKind::WrongMsrNumber:
                ++summary.wrongMsrNumbers;
                break;
              case DefectKind::IntraDocDuplicate:
                ++summary.intraDocDuplicates;
                break;
            }
        }
    }
    return summary;
}

} // namespace rememberr
