/**
 * @file
 * The "errata in errata" linter — legacy interface.
 *
 * Section IV-A documents that errata documents contain errors
 * themselves: revisions claiming the same erratum twice, errata
 * never mentioned in the revision notes, reused names, missing or
 * duplicate fields, wrong MSR numbers and intra-document duplicate
 * entries.
 *
 * The checks themselves live in the diagnostics framework
 * (diag/doc_checks.hh, rules RBE001..RBE007); this header is a thin
 * adapter kept for the pipeline and existing callers. New code
 * should consume Diagnostics via diag/check.hh.
 */

#ifndef REMEMBERR_DOCUMENT_LINT_HH
#define REMEMBERR_DOCUMENT_LINT_HH

#include <array>
#include <functional>
#include <string>
#include <vector>

#include "corpus/corpus.hh"
#include "model/erratum.hh"

namespace rememberr {

/** One detected document defect. */
struct LintFinding
{
    DefectKind kind = DefectKind::MissingFromNotes;
    /** Local ids involved (one or two). */
    std::vector<std::string> localIds;
    /** Human-readable explanation. */
    std::string detail;
    /** 1-based source line of the finding; 0 = unknown. */
    int line = 0;
};

/** Linter configuration. */
struct LintOptions
{
    /**
     * Reference resolver from MSR name to architectural number (the
     * paper cross-checked numbers against the vendor manuals);
     * returns 0 when the name is unknown. Defaults to the corpus's
     * canonical numbering.
     */
    std::function<std::uint32_t(const std::string &)> msrReference;
};

/** Run all lint checks over one document. */
std::vector<LintFinding> lintDocument(const ErrataDocument &document,
                                      const LintOptions &options = {});

/**
 * Aggregated lint counts: one counter per DefectKind, sized by
 * kDefectKindCount so a new kind cannot silently escape total().
 */
struct LintSummary
{
    std::array<int, kDefectKindCount> byKind{};

    int
    count(DefectKind kind) const
    {
        return byKind[static_cast<std::size_t>(kind)];
    }

    int duplicateRevisionClaims() const
    { return count(DefectKind::DuplicateRevisionClaim); }
    int missingFromNotes() const
    { return count(DefectKind::MissingFromNotes); }
    int reusedNames() const
    { return count(DefectKind::ReusedName); }
    int missingFields() const
    { return count(DefectKind::MissingField); }
    int duplicateFields() const
    { return count(DefectKind::DuplicateField); }
    int wrongMsrNumbers() const
    { return count(DefectKind::WrongMsrNumber); }
    int intraDocDuplicates() const
    { return count(DefectKind::IntraDocDuplicate); }

    int
    total() const
    {
        int sum = 0;
        for (int count : byKind)
            sum += count;
        return sum;
    }
};

/** Summarize findings across many documents. */
LintSummary summarizeFindings(
    const std::vector<std::vector<LintFinding>> &per_document);

} // namespace rememberr

#endif // REMEMBERR_DOCUMENT_LINT_HH
