/**
 * @file
 * The "errata in errata" linter.
 *
 * Section IV-A documents that errata documents contain errors
 * themselves: revisions claiming the same erratum twice, errata never
 * mentioned in the revision notes, reused names, missing or duplicate
 * fields, wrong MSR numbers and intra-document duplicate entries.
 * The linter detects all of these in a parsed document.
 */

#ifndef REMEMBERR_DOCUMENT_LINT_HH
#define REMEMBERR_DOCUMENT_LINT_HH

#include <functional>
#include <string>
#include <vector>

#include "corpus/corpus.hh"
#include "model/erratum.hh"

namespace rememberr {

/** One detected document defect. */
struct LintFinding
{
    DefectKind kind = DefectKind::MissingFromNotes;
    /** Local ids involved (one or two). */
    std::vector<std::string> localIds;
    /** Human-readable explanation. */
    std::string detail;
};

/** Linter configuration. */
struct LintOptions
{
    /**
     * Reference resolver from MSR name to architectural number (the
     * paper cross-checked numbers against the vendor manuals);
     * returns 0 when the name is unknown. Defaults to the corpus's
     * canonical numbering.
     */
    std::function<std::uint32_t(const std::string &)> msrReference;
};

/** Run all lint checks over one document. */
std::vector<LintFinding> lintDocument(const ErrataDocument &document,
                                      const LintOptions &options = {});

/** Aggregated lint counts per defect kind. */
struct LintSummary
{
    int duplicateRevisionClaims = 0;
    int missingFromNotes = 0;
    int reusedNames = 0;
    int missingFields = 0;
    int duplicateFields = 0;
    int wrongMsrNumbers = 0;
    int intraDocDuplicates = 0;

    int
    total() const
    {
        return duplicateRevisionClaims + missingFromNotes +
               reusedNames + missingFields + duplicateFields +
               wrongMsrNumbers + intraDocDuplicates;
    }
};

/** Summarize findings across many documents. */
LintSummary summarizeFindings(
    const std::vector<std::vector<LintFinding>> &per_document);

} // namespace rememberr

#endif // REMEMBERR_DOCUMENT_LINT_HH
