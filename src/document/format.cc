#include "format.hh"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "util/logging.hh"
#include "util/strings.hh"

namespace rememberr {

namespace {

constexpr std::size_t wrapColumn = 72;
constexpr const char *continuationIndent = "  ";

/** Emit "Key: value" with wrapped continuation lines. */
void
emitField(std::string &out, const char *key, const std::string &value)
{
    out += key;
    out += ": ";
    std::size_t firstWidth =
        wrapColumn > std::string(key).size() + 2
            ? wrapColumn - std::string(key).size() - 2
            : 40;
    auto lines = strings::wrap(value, firstWidth);
    // Re-wrap the remainder at the continuation width.
    if (lines.size() > 1) {
        std::string rest;
        for (std::size_t i = 1; i < lines.size(); ++i) {
            if (i > 1)
                rest += ' ';
            rest += lines[i];
        }
        lines.resize(1);
        for (auto &line : strings::wrap(rest, wrapColumn - 2))
            lines.push_back(line);
    }
    out += lines[0];
    out += '\n';
    for (std::size_t i = 1; i < lines.size(); ++i) {
        out += continuationIndent;
        out += lines[i];
        out += '\n';
    }
}

std::string
renderVariant(DesignVariant variant)
{
    return std::string(variantName(variant));
}

} // namespace

std::string
statusText(FixStatus status)
{
    switch (status) {
      case FixStatus::NoFix:
        return "No fix planned.";
      case FixStatus::Planned:
        return "A fix is planned for a future stepping.";
      case FixStatus::Fixed:
        return "Fixed. For the steppings affected, refer to the "
               "Summary Table of Changes.";
    }
    REMEMBERR_PANIC("statusText: bad status");
}

FixStatus
classifyStatus(const std::string &text)
{
    if (strings::containsIgnoreCase(text, "no fix"))
        return FixStatus::NoFix;
    if (strings::containsIgnoreCase(text, "planned"))
        return FixStatus::Planned;
    if (strings::containsIgnoreCase(text, "fixed"))
        return FixStatus::Fixed;
    return FixStatus::NoFix;
}

WorkaroundClass
classifyWorkaround(const std::string &text)
{
    // Order matters: "Contact ... for information on a BIOS update"
    // must classify as Absent despite mentioning the BIOS.
    if (text.empty() ||
        strings::containsIgnoreCase(text, "none identified")) {
        return WorkaroundClass::None;
    }
    if (strings::containsIgnoreCase(text, "contact"))
        return WorkaroundClass::Absent;
    if (strings::containsIgnoreCase(text, "documentation"))
        return WorkaroundClass::DocumentationFix;
    if (strings::containsIgnoreCase(text, "bios"))
        return WorkaroundClass::Bios;
    if (strings::containsIgnoreCase(text, "peripheral"))
        return WorkaroundClass::Peripherals;
    if (strings::containsIgnoreCase(text, "software"))
        return WorkaroundClass::Software;
    return WorkaroundClass::Absent;
}

std::string
renderDocument(const ErrataDocument &document)
{
    std::string out;
    out += "SPECIFICATION UPDATE\n";
    emitField(out, "Vendor",
              std::string(vendorName(document.design.vendor)));
    emitField(out, "Design", document.design.name);
    emitField(out, "Reference", document.design.reference);
    emitField(out, "Generation",
              std::to_string(document.design.generation));
    emitField(out, "Variant", renderVariant(document.design.variant));
    emitField(out, "Release",
              document.design.releaseDate.toString());
    out += '\n';

    out += "== REVISION HISTORY ==\n";
    for (const Revision &revision : document.revisions) {
        emitField(out, "Revision", std::to_string(revision.number));
        emitField(out, "Date", revision.date.toString());
        emitField(out, "Note", revision.note);
        if (!revision.addedIds.empty())
            emitField(out, "Added",
                      strings::join(revision.addedIds, ", "));
        out += '\n';
    }

    out += "== ERRATA ==\n";
    for (const Erratum &erratum : document.errata) {
        emitField(out, "ID", erratum.localId);
        emitField(out, "Title", erratum.title);
        emitField(out, "Description", erratum.description);
        emitField(out, "Implications", erratum.implications);
        emitField(out, "Workaround", erratum.workaroundText);
        emitField(out, "Status", statusText(erratum.status));
        if (!erratum.msrs.empty()) {
            std::vector<std::string> parts;
            for (const MsrRef &msr : erratum.msrs) {
                char buf[64];
                std::snprintf(buf, sizeof(buf), "%s=0x%X",
                              msr.name.c_str(), msr.number);
                parts.emplace_back(buf);
            }
            emitField(out, "MSRs", strings::join(parts, ", "));
        }
        out += '\n';
    }
    if (!document.hiddenErrata.empty()) {
        out += "== HIDDEN ERRATA ==\n";
        emitField(out, "IDs",
                  strings::join(document.hiddenErrata, ", "));
        out += '\n';
    }
    out += "== END ==\n";
    return out;
}

namespace {

/** Line-oriented reader with unwrapping of continuation lines. */
class FieldReader
{
  public:
    explicit FieldReader(const std::string &text)
        : lines_(strings::splitLines(text))
    {
    }

    bool atEnd() const { return pos_ >= lines_.size(); }
    int lineNumber() const { return static_cast<int>(pos_) + 1; }

    /** Peek the current raw line. */
    const std::string &
    peekLine() const
    {
        static const std::string empty;
        return atEnd() ? empty : lines_[pos_];
    }

    void skipLine() { ++pos_; }

    void
    skipBlank()
    {
        while (!atEnd() && strings::trim(peekLine()).empty())
            ++pos_;
    }

    /**
     * Read a "Key: value" field, joining indented continuation
     * lines. Returns false when the current line is not a field.
     */
    bool
    readField(std::string &key, std::string &value)
    {
        if (atEnd())
            return false;
        const std::string &line = lines_[pos_];
        if (line.empty() || line[0] == ' ' ||
            strings::startsWith(line, "==")) {
            return false;
        }
        std::size_t colon = line.find(':');
        if (colon == std::string::npos)
            return false;
        key = strings::trim(line.substr(0, colon));
        value = strings::trim(line.substr(colon + 1));
        fieldLine_ = lineNumber();
        ++pos_;
        while (!atEnd() &&
               strings::startsWith(lines_[pos_], continuationIndent)) {
            if (!value.empty())
                value += ' ';
            value += strings::trim(lines_[pos_]);
            ++pos_;
        }
        return true;
    }

    /** 1-based line of the key of the last readField() result. */
    int fieldLine() const { return fieldLine_; }

  private:
    std::vector<std::string> lines_;
    std::size_t pos_ = 0;
    int fieldLine_ = 0;
};

Expected<Date>
parseDateField(const std::string &value, int line)
{
    auto date = Date::parse(value);
    if (!date)
        return makeError(date.error().message, line);
    return date;
}

/**
 * Strictly parse a numeric field: the whole value must be one
 * integer in [minValue, maxValue]. Malformed input ("abc", "12x",
 * "", out-of-range) is a structured parse error with a line number
 * — never a silent zero, which is exactly the "errata in errata"
 * corruption class the linter exists to surface.
 */
Expected<long>
parseIntField(const char *field, const std::string &value, int line,
              long minValue, long maxValue, int base = 10)
{
    std::string trimmed = strings::trim(value);
    if (trimmed.empty()) {
        return makeError(std::string(field) +
                             ": empty numeric field",
                         line);
    }
    errno = 0;
    char *end = nullptr;
    long parsed = std::strtol(trimmed.c_str(), &end, base);
    if (end != trimmed.c_str() + trimmed.size()) {
        return makeError(std::string(field) +
                             ": invalid number '" + value + "'",
                         line);
    }
    if (errno == ERANGE || parsed < minValue || parsed > maxValue) {
        return makeError(std::string(field) + ": value '" + value +
                             "' out of range [" +
                             std::to_string(minValue) + ", " +
                             std::to_string(maxValue) + "]",
                         line);
    }
    return parsed;
}

} // namespace

Expected<ErrataDocument>
parseDocument(const std::string &text)
{
    FieldReader reader(text);
    reader.skipBlank();
    if (strings::trim(reader.peekLine()) != "SPECIFICATION UPDATE")
        return makeError("missing SPECIFICATION UPDATE header",
                         reader.lineNumber());
    reader.skipLine();

    ErrataDocument document;
    bool sawVendor = false;

    // ---- Header fields ---------------------------------------------
    std::string key, value;
    while (reader.readField(key, value)) {
        if (key == "Vendor") {
            if (value == "Intel") {
                document.design.vendor = Vendor::Intel;
            } else if (value == "AMD") {
                document.design.vendor = Vendor::Amd;
            } else {
                return makeError("unknown vendor '" + value + "'",
                                 reader.lineNumber());
            }
            sawVendor = true;
        } else if (key == "Design") {
            document.design.name = value;
        } else if (key == "Reference") {
            document.design.reference = value;
        } else if (key == "Generation") {
            auto generation = parseIntField(
                "Generation", value, reader.lineNumber(), 0, 9999);
            if (!generation)
                return generation.error();
            document.design.generation =
                static_cast<int>(generation.value());
        } else if (key == "Variant") {
            if (value == "D")
                document.design.variant = DesignVariant::Desktop;
            else if (value == "M")
                document.design.variant = DesignVariant::Mobile;
            else
                document.design.variant = DesignVariant::Unified;
        } else if (key == "Release") {
            auto date = parseDateField(value, reader.lineNumber());
            if (!date)
                return date.error();
            document.design.releaseDate = date.value();
        } else {
            return makeError("unknown header field '" + key + "'",
                             reader.lineNumber());
        }
    }
    if (!sawVendor)
        return makeError("document has no Vendor field",
                         reader.lineNumber());

    reader.skipBlank();
    if (strings::trim(reader.peekLine()) != "== REVISION HISTORY ==")
        return makeError("missing REVISION HISTORY section",
                         reader.lineNumber());
    reader.skipLine();
    reader.skipBlank();

    // ---- Revision entries ------------------------------------------
    while (!reader.atEnd() &&
           !strings::startsWith(strings::trim(reader.peekLine()),
                                "==")) {
        Revision revision;
        bool any = false;
        while (reader.readField(key, value)) {
            any = true;
            if (key == "Revision") {
                auto number = parseIntField("Revision", value,
                                            reader.lineNumber(), 0,
                                            1000000);
                if (!number)
                    return number.error();
                revision.number =
                    static_cast<int>(number.value());
                revision.sourceLine = reader.fieldLine();
            } else if (key == "Date") {
                auto date = parseDateField(value,
                                           reader.lineNumber());
                if (!date)
                    return date.error();
                revision.date = date.value();
            } else if (key == "Note") {
                revision.note = value;
            } else if (key == "Added") {
                for (auto &id : strings::split(value, ',')) {
                    std::string trimmed = strings::trim(id);
                    if (!trimmed.empty())
                        revision.addedIds.push_back(trimmed);
                }
            } else {
                return makeError("unknown revision field '" + key +
                                     "'",
                                 reader.lineNumber());
            }
        }
        if (!any)
            break;
        if (revision.number == 0)
            return makeError("revision entry without a number",
                             reader.lineNumber());
        document.revisions.push_back(std::move(revision));
        reader.skipBlank();
    }

    if (strings::trim(reader.peekLine()) != "== ERRATA ==")
        return makeError("missing ERRATA section",
                         reader.lineNumber());
    reader.skipLine();
    reader.skipBlank();

    // ---- Erratum entries -------------------------------------------
    while (!reader.atEnd() &&
           !strings::startsWith(strings::trim(reader.peekLine()),
                                "==")) {
        Erratum erratum;
        bool any = false;
        bool sawId = false;
        while (reader.readField(key, value)) {
            any = true;
            erratum.fieldLines[key] = reader.fieldLine();
            if (key == "ID") {
                erratum.localId = value;
                erratum.sourceLine = reader.fieldLine();
                sawId = true;
            } else if (key == "Title") {
                erratum.title = value;
            } else if (key == "Description") {
                erratum.description = value;
            } else if (key == "Implications") {
                erratum.implications = value;
            } else if (key == "Workaround") {
                erratum.workaroundText = value;
            } else if (key == "Status") {
                erratum.status = classifyStatus(value);
            } else if (key == "MSRs") {
                for (auto &entry : strings::split(value, ',')) {
                    std::string trimmed = strings::trim(entry);
                    if (trimmed.empty())
                        continue;
                    std::size_t eq = trimmed.find('=');
                    MsrRef msr;
                    if (eq == std::string::npos) {
                        msr.name = trimmed;
                    } else {
                        msr.name =
                            strings::trim(trimmed.substr(0, eq));
                        auto number = parseIntField(
                            "MSRs", trimmed.substr(eq + 1),
                            reader.lineNumber(), 0, 0xFFFFFFFFL,
                            16);
                        if (!number)
                            return number.error();
                        msr.number = static_cast<std::uint32_t>(
                            number.value());
                    }
                    erratum.msrs.push_back(std::move(msr));
                }
            } else {
                return makeError("unknown erratum field '" + key +
                                     "'",
                                 reader.lineNumber());
            }
        }
        if (!any)
            break;
        if (!sawId)
            return makeError("erratum entry without an ID",
                             reader.lineNumber());
        erratum.workaroundClass =
            classifyWorkaround(erratum.workaroundText);

        // Recover addedInRevision from the revision notes (earliest
        // claim wins, matching the dating rules).
        erratum.addedInRevision = 0;
        const Revision *earliest = nullptr;
        for (const Revision &revision : document.revisions) {
            for (const std::string &id : revision.addedIds) {
                if (id == erratum.localId &&
                    (!earliest || revision.date < earliest->date)) {
                    earliest = &revision;
                }
            }
        }
        if (earliest)
            erratum.addedInRevision = earliest->number;

        document.errata.push_back(std::move(erratum));
        reader.skipBlank();
    }

    // ---- Optional hidden-errata summary ------------------------------
    if (strings::trim(reader.peekLine()) ==
        "== HIDDEN ERRATA ==") {
        reader.skipLine();
        reader.skipBlank();
        while (reader.readField(key, value)) {
            if (key != "IDs") {
                return makeError("unknown hidden-errata field '" +
                                     key + "'",
                                 reader.lineNumber());
            }
            for (auto &id : strings::split(value, ',')) {
                std::string trimmed = strings::trim(id);
                if (!trimmed.empty())
                    document.hiddenErrata.push_back(trimmed);
            }
        }
        reader.skipBlank();
    }

    if (strings::trim(reader.peekLine()) != "== END ==")
        return makeError("missing END marker", reader.lineNumber());
    return document;
}

} // namespace rememberr
