/**
 * @file
 * Umbrella header: the RemembERR public API.
 *
 * Include this to get the full pipeline, the database and query
 * layer, every analysis of the paper's evaluation and the report
 * writers. Individual headers remain includable for finer-grained
 * dependencies.
 */

#ifndef REMEMBERR_CORE_REMEMBERR_HH
#define REMEMBERR_CORE_REMEMBERR_HH

// Substrates.
#include "text/ngram_index.hh"
#include "text/regex.hh"
#include "text/similarity.hh"
#include "text/tokenize.hh"
#include "util/csv.hh"
#include "util/date.hh"
#include "util/json.hh"
#include "util/rng.hh"
#include "util/strings.hh"

// Data model and taxonomy.
#include "model/erratum.hh"
#include "model/types.hh"
#include "taxonomy/taxonomy.hh"

// Corpus and documents.
#include "corpus/calibration.hh"
#include "corpus/corpus.hh"
#include "corpus/generator.hh"
#include "corpus/phrasebank.hh"
#include "document/format.hh"
#include "document/lint.hh"

// Pipeline stages.
#include "classify/engine.hh"
#include "classify/foureyes.hh"
#include "classify/highlight.hh"
#include "classify/rules.hh"
#include "dedup/dedup.hh"

// Database and analyses.
#include "analysis/correlation.hh"
#include "analysis/criticality.hh"
#include "analysis/evolution.hh"
#include "analysis/frequency.hh"
#include "analysis/heredity.hh"
#include "analysis/msr.hh"
#include "analysis/stats.hh"
#include "analysis/timeline.hh"
#include "analysis/vendorcmp.hh"
#include "analysis/workfix.hh"
#include "db/database.hh"
#include "db/query.hh"
#include "guidance/guidance.hh"

// Snapshots (binary, mmap-able database images).
#include "snap/view.hh"
#include "snap/writer.hh"

// Observability.
#include "obs/metrics.hh"
#include "obs/pool_metrics.hh"
#include "obs/trace.hh"

// Reporting.
#include "report/chart.hh"
#include "report/svg.hh"
#include "report/table.hh"

// The end-to-end pipeline.
#include "core/pipeline.hh"

#endif // REMEMBERR_CORE_REMEMBERR_HH
