/**
 * @file
 * End-to-end pipeline: the paper's methodology (Figure 1) as one
 * call.
 *
 *   1. acquire     — generate the calibrated corpus and render every
 *                    document to the text format;
 *   2. parse       — read the documents back (exercising the real
 *                    parser) and lint them for "errata in errata";
 *   3. deduplicate — AMD numeric keying + Intel title pipeline;
 *   4. classify    — software-assisted prefilter + four-eyes manual
 *                    annotation;
 *   5. database    — assemble the annotated RemembERR database.
 */

#ifndef REMEMBERR_CORE_PIPELINE_HH
#define REMEMBERR_CORE_PIPELINE_HH

#include <string>
#include <vector>

#include "classify/foureyes.hh"
#include "corpus/generator.hh"
#include "db/database.hh"
#include "dedup/dedup.hh"
#include "document/lint.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace rememberr {

/** Pipeline configuration. */
struct PipelineOptions
{
    GeneratorOptions generator;
    DedupOptions dedup;
    FourEyesOptions foureyes;
    /** Render + reparse every document (slower, exercises the
     * parser); when false the generated documents are used
     * directly. */
    bool roundTripDocuments = true;
    /** Run the linter over every document. */
    bool lint = true;
    /**
     * Worker threads for the parse, dedup and classify stages
     * (0 = all hardware threads, 1 = serial). Propagated into
     * DedupOptions/FourEyesOptions; every stage merges
     * deterministically, so the pipeline result is bit-identical
     * for any thread count.
     */
    std::size_t threads = 1;
    /**
     * Metrics target. Every stage records its duration (gauge
     * `pipeline.stage_us.<stage>`) and flow counters (documents
     * parsed, lint findings, dedup candidates/merges/clusters,
     * annotations, database entries) here. Defaults to the
     * process-global registry; null disables metrics entirely — the
     * remaining cost is one pointer test per instrumentation site.
     */
    MetricsRegistry *metrics = &MetricsRegistry::global();
    /**
     * Trace target. Each stage is wrapped in a ScopedSpan
     * (`pipeline.<stage>`) plus one umbrella `pipeline` span;
     * export with TraceRecorder::toChromeJson(). Defaults to the
     * process-global recorder; null disables span recording.
     */
    TraceRecorder *trace = &TraceRecorder::global();
};

/** Everything the pipeline produces. */
struct PipelineResult
{
    /** The corpus; documents are the re-parsed ones when
     * round-tripping. */
    Corpus corpus;
    /** Lint findings per document (empty when lint is off). */
    std::vector<std::vector<LintFinding>> lintFindings;
    DedupResult dedup;
    FourEyesResult annotations;
    /** The assembled database (pipeline path). */
    Database database;
    /** Oracle database straight from ground truth. */
    Database groundTruth;
};

/** Run the full pipeline. Deterministic per options. */
PipelineResult runPipeline(const PipelineOptions &options = {});

/** Render an entry in the proposed Table VII format. */
std::string renderProposedFormat(const DbEntry &entry);

} // namespace rememberr

#endif // REMEMBERR_CORE_PIPELINE_HH
