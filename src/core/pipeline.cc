#include "pipeline.hh"

#include <chrono>

#include "document/format.hh"
#include "util/logging.hh"
#include "util/parallel.hh"

namespace rememberr {

namespace {

/**
 * Per-stage observability: one trace span plus a duration gauge
 * (`pipeline.stage_us.<stage>`). The gauge is measured with its own
 * monotonic clock so metrics work when tracing is disabled.
 */
class StageScope
{
  public:
    StageScope(const PipelineOptions &options, const char *stage)
        : metrics_(options.metrics), stage_(stage),
          span_(options.trace, std::string("pipeline.") + stage),
          begin_(std::chrono::steady_clock::now())
    {
    }

    ~StageScope()
    {
        auto elapsed =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - begin_)
                .count();
        if (metrics_) {
            metrics_
                ->gauge(std::string("pipeline.stage_us.") + stage_)
                .set(static_cast<std::int64_t>(elapsed));
            // Quantile form of the same timing: one run observes one
            // sample per stage; repeated runs (and the exporter's
            // periodic snapshots) turn it into a latency
            // distribution.
            metrics_
                ->quantile(std::string("pipeline.stage_lat_us.") +
                           stage_)
                .observe(static_cast<double>(elapsed));
        }
        REMEMBERR_DEBUG("pipeline: stage ", stage_, " took ",
                        elapsed, " us");
    }

  private:
    MetricsRegistry *metrics_;
    const char *stage_;
    ScopedSpan span_;
    std::chrono::steady_clock::time_point begin_;
};

} // namespace

PipelineResult
runPipeline(const PipelineOptions &options)
{
    PipelineResult result;
    MetricsRegistry *metrics = options.metrics;
    ScopedSpan pipelineSpan(options.trace, "pipeline");
    auto pipelineBegin = std::chrono::steady_clock::now();

    // 1. Acquire.
    {
        StageScope stage(options, "acquire");
        result.corpus =
            CorpusGenerator(options.generator).generate();
        if (metrics) {
            std::size_t errata = 0;
            for (const ErrataDocument &doc :
                 result.corpus.documents)
                errata += doc.errata.size();
            metrics->counter("pipeline.acquire.documents")
                .add(result.corpus.documents.size());
            metrics->counter("pipeline.acquire.errata").add(errata);
        }
    }
    std::vector<ErrataDocument> &documents =
        result.corpus.documents;

    // 2. Parse (round-trip through the text format). Documents
    // render and re-parse independently; failures are collected per
    // slot and reported after the join so the panic message does not
    // depend on thread scheduling.
    if (options.roundTripDocuments) {
        StageScope stage(options, "parse");
        Counter *parsed =
            metrics ? &metrics->counter("pipeline.parse.documents")
                    : nullptr;
        std::vector<std::string> parseErrors(documents.size());
        parallelFor(documents.size(), options.threads,
                    [&](std::size_t d) {
                        auto reparsed = parseDocument(
                            renderDocument(documents[d]));
                        if (!reparsed) {
                            parseErrors[d] =
                                reparsed.error().toString();
                            return;
                        }
                        // The text format does not carry the origin;
                        // keep the generator's pseudo-path.
                        reparsed.value().sourcePath =
                            std::move(documents[d].sourcePath);
                        documents[d] = std::move(reparsed.value());
                        if (parsed)
                            parsed->add();
                    });
        for (std::size_t d = 0; d < documents.size(); ++d) {
            if (!parseErrors[d].empty()) {
                REMEMBERR_PANIC("pipeline: document ",
                                documents[d].design.name,
                                " failed to re-parse: ",
                                parseErrors[d]);
            }
        }
    }

    if (options.lint) {
        StageScope stage(options, "lint");
        result.lintFindings.resize(documents.size());
        parallelFor(documents.size(), options.threads,
                    [&](std::size_t d) {
                        result.lintFindings[d] =
                            lintDocument(documents[d]);
                    });
        if (metrics) {
            std::size_t findings = 0;
            for (const auto &perDoc : result.lintFindings)
                findings += perDoc.size();
            metrics->counter("pipeline.lint.findings")
                .add(findings);
        }
    }

    // 3. Deduplicate.
    {
        StageScope stage(options, "dedup");
        DedupOptions dedupOptions = options.dedup;
        dedupOptions.threads = options.threads;
        dedupOptions.metrics = metrics;
        result.dedup = deduplicate(documents, dedupOptions);
        if (metrics) {
            const DedupResult &dedup = result.dedup;
            metrics->counter("pipeline.dedup.candidate_pairs")
                .add(dedup.candidatePairsConsidered);
            metrics->counter("pipeline.dedup.exact_merges")
                .add(dedup.exactTitleMerges);
            metrics->counter("pipeline.dedup.reviewed_pairs")
                .add(dedup.reviewedPairs);
            metrics->counter("pipeline.dedup.review_merges")
                .add(dedup.reviewConfirmedMerges);
            metrics->counter("pipeline.dedup.numeric_merges")
                .add(dedup.numericIdMerges);
            metrics->counter("pipeline.dedup.clusters")
                .add(dedup.clusters.size());
        }
    }

    // 4. Classify.
    {
        StageScope stage(options, "classify");
        FourEyesOptions foureyesOptions = options.foureyes;
        foureyesOptions.threads = options.threads;
        foureyesOptions.metrics = metrics;
        result.annotations =
            runFourEyes(result.corpus, foureyesOptions);
        if (metrics) {
            metrics->counter("pipeline.classify.annotations")
                .add(result.annotations.annotations.size());
            metrics->counter("pipeline.classify.manual_decisions")
                .add(result.annotations
                         .manualDecisionsPerAnnotator);
        }
    }

    // 5. Assemble.
    {
        StageScope stage(options, "assemble");
        result.database = Database::build(
            result.corpus, result.dedup, result.annotations);
        result.groundTruth =
            Database::buildFromGroundTruth(result.corpus);
        if (metrics) {
            metrics->counter("pipeline.assemble.entries")
                .add(result.database.entries().size());
            metrics
                ->counter(
                    "pipeline.assemble.ground_truth_entries")
                .add(result.groundTruth.entries().size());
        }
    }

    if (metrics) {
        auto total =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - pipelineBegin)
                .count();
        metrics->gauge("pipeline.total_us")
            .set(static_cast<std::int64_t>(total));
        metrics->quantile("pipeline.total_lat_us")
            .observe(static_cast<double>(total));
        metrics->counter("pipeline.runs").add(1);
    }
    return result;
}

std::string
renderProposedFormat(const DbEntry &entry)
{
    const Taxonomy &taxonomy = Taxonomy::instance();
    auto codes = [&](const CategorySet &set) {
        std::string out;
        for (CategoryId id : set.toVector()) {
            if (!out.empty())
                out += ", ";
            out += taxonomy.categoryById(id).code;
        }
        return out.empty() ? std::string("(none)") : out;
    };

    std::string out;
    out += "ID: " + std::to_string(entry.key) + "\n";
    out += "Title: " + entry.title + "\n";
    out += "Triggers:\n";
    out += "  Abstract: " + codes(entry.triggers) + "\n";
    out += "  Concrete: " + entry.description + "\n";
    out += "Contexts:\n";
    out += "  Abstract: " + codes(entry.contexts) + "\n";
    out += "Effects:\n";
    out += "  Abstract: " + codes(entry.effects) + "\n";
    out += "Root cause: ";
    out += entry.rootCause.empty()
               ? "(not published by the vendor)"
               : entry.rootCause;
    out += '\n';
    out += "Workaround: " + entry.workaroundText + "\n";
    out += "Status: " +
           std::string(fixStatusName(entry.status)) + "\n";
    return out;
}

} // namespace rememberr
