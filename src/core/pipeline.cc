#include "pipeline.hh"

#include "document/format.hh"
#include "util/logging.hh"

namespace rememberr {

PipelineResult
runPipeline(const PipelineOptions &options)
{
    PipelineResult result;

    // 1. Acquire.
    result.corpus = CorpusGenerator(options.generator).generate();

    // 2. Parse (round-trip through the text format).
    if (options.roundTripDocuments) {
        for (ErrataDocument &document : result.corpus.documents) {
            std::string rendered = renderDocument(document);
            auto parsed = parseDocument(rendered);
            if (!parsed) {
                REMEMBERR_PANIC("pipeline: document ",
                                document.design.name,
                                " failed to re-parse: ",
                                parsed.error().toString());
            }
            document = std::move(parsed.value());
        }
    }

    if (options.lint) {
        for (const ErrataDocument &document :
             result.corpus.documents) {
            result.lintFindings.push_back(lintDocument(document));
        }
    }

    // 3. Deduplicate.
    result.dedup =
        deduplicate(result.corpus.documents, options.dedup);

    // 4. Classify.
    result.annotations =
        runFourEyes(result.corpus, options.foureyes);

    // 5. Assemble.
    result.database = Database::build(result.corpus, result.dedup,
                                      result.annotations);
    result.groundTruth =
        Database::buildFromGroundTruth(result.corpus);
    return result;
}

std::string
renderProposedFormat(const DbEntry &entry)
{
    const Taxonomy &taxonomy = Taxonomy::instance();
    auto codes = [&](const CategorySet &set) {
        std::string out;
        for (CategoryId id : set.toVector()) {
            if (!out.empty())
                out += ", ";
            out += taxonomy.categoryById(id).code;
        }
        return out.empty() ? std::string("(none)") : out;
    };

    std::string out;
    out += "ID: " + std::to_string(entry.key) + "\n";
    out += "Title: " + entry.title + "\n";
    out += "Triggers:\n";
    out += "  Abstract: " + codes(entry.triggers) + "\n";
    out += "  Concrete: " + entry.description + "\n";
    out += "Contexts:\n";
    out += "  Abstract: " + codes(entry.contexts) + "\n";
    out += "Effects:\n";
    out += "  Abstract: " + codes(entry.effects) + "\n";
    out += "Root cause: ";
    out += entry.rootCause.empty()
               ? "(not published by the vendor)"
               : entry.rootCause;
    out += '\n';
    out += "Workaround: " + entry.workaroundText + "\n";
    out += "Status: " +
           std::string(fixStatusName(entry.status)) + "\n";
    return out;
}

} // namespace rememberr
