#include "pipeline.hh"

#include "document/format.hh"
#include "util/logging.hh"
#include "util/parallel.hh"

namespace rememberr {

PipelineResult
runPipeline(const PipelineOptions &options)
{
    PipelineResult result;

    // 1. Acquire.
    result.corpus = CorpusGenerator(options.generator).generate();
    std::vector<ErrataDocument> &documents =
        result.corpus.documents;

    // 2. Parse (round-trip through the text format). Documents
    // render and re-parse independently; failures are collected per
    // slot and reported after the join so the panic message does not
    // depend on thread scheduling.
    if (options.roundTripDocuments) {
        std::vector<std::string> parseErrors(documents.size());
        parallelFor(documents.size(), options.threads,
                    [&](std::size_t d) {
                        auto parsed = parseDocument(
                            renderDocument(documents[d]));
                        if (!parsed) {
                            parseErrors[d] =
                                parsed.error().toString();
                            return;
                        }
                        documents[d] = std::move(parsed.value());
                    });
        for (std::size_t d = 0; d < documents.size(); ++d) {
            if (!parseErrors[d].empty()) {
                REMEMBERR_PANIC("pipeline: document ",
                                documents[d].design.name,
                                " failed to re-parse: ",
                                parseErrors[d]);
            }
        }
    }

    if (options.lint) {
        result.lintFindings.resize(documents.size());
        parallelFor(documents.size(), options.threads,
                    [&](std::size_t d) {
                        result.lintFindings[d] =
                            lintDocument(documents[d]);
                    });
    }

    // 3. Deduplicate.
    DedupOptions dedupOptions = options.dedup;
    dedupOptions.threads = options.threads;
    result.dedup = deduplicate(documents, dedupOptions);

    // 4. Classify.
    FourEyesOptions foureyesOptions = options.foureyes;
    foureyesOptions.threads = options.threads;
    result.annotations =
        runFourEyes(result.corpus, foureyesOptions);

    // 5. Assemble.
    result.database = Database::build(result.corpus, result.dedup,
                                      result.annotations);
    result.groundTruth =
        Database::buildFromGroundTruth(result.corpus);
    return result;
}

std::string
renderProposedFormat(const DbEntry &entry)
{
    const Taxonomy &taxonomy = Taxonomy::instance();
    auto codes = [&](const CategorySet &set) {
        std::string out;
        for (CategoryId id : set.toVector()) {
            if (!out.empty())
                out += ", ";
            out += taxonomy.categoryById(id).code;
        }
        return out.empty() ? std::string("(none)") : out;
    };

    std::string out;
    out += "ID: " + std::to_string(entry.key) + "\n";
    out += "Title: " + entry.title + "\n";
    out += "Triggers:\n";
    out += "  Abstract: " + codes(entry.triggers) + "\n";
    out += "  Concrete: " + entry.description + "\n";
    out += "Contexts:\n";
    out += "  Abstract: " + codes(entry.contexts) + "\n";
    out += "Effects:\n";
    out += "  Abstract: " + codes(entry.effects) + "\n";
    out += "Root cause: ";
    out += entry.rootCause.empty()
               ? "(not published by the vendor)"
               : entry.rootCause;
    out += '\n';
    out += "Workaround: " + entry.workaroundText + "\n";
    out += "Status: " +
           std::string(fixStatusName(entry.status)) + "\n";
    return out;
}

} // namespace rememberr
