/**
 * @file
 * Regex rule tables for software-assisted classification.
 *
 * Section V-A: "some errata contain expressions that are specific
 * enough to be classified automatically using regular expressions
 * into some categories", while conservative filtering marks most
 * (erratum, category) pairs as clearly irrelevant; the remainder
 * needs human decisions. Each category therefore carries two rule
 * sets:
 *
 *   - accept:    conservative patterns; a match means the category
 *                clearly applies (auto-yes);
 *   - relevance: broad patterns; no match means the category clearly
 *                does not apply (auto-no); a match without an accept
 *                match leaves a manual decision.
 */

#ifndef REMEMBERR_CLASSIFY_RULES_HH
#define REMEMBERR_CLASSIFY_RULES_HH

#include <vector>

#include "taxonomy/taxonomy.hh"
#include "text/regex.hh"

namespace rememberr {

/** The rules attached to one abstract category. */
struct CategoryRule
{
    CategoryId id = 0;
    std::vector<Regex> accept;
    std::vector<Regex> relevance;
};

/** Immutable registry of rules for all 60 categories. */
class RuleSet
{
  public:
    static const RuleSet &instance();

    const CategoryRule &ruleFor(CategoryId id) const;

    const std::vector<CategoryRule> &rules() const { return rules_; }

  private:
    RuleSet();

    std::vector<CategoryRule> rules_;
};

} // namespace rememberr

#endif // REMEMBERR_CLASSIFY_RULES_HH
