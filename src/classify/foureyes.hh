/**
 * @file
 * The four-eyes classification protocol.
 *
 * Section V-A: two researchers independently classified every
 * (erratum, category) pair the automatic stage left open, in seven
 * successive discussion steps, then resolved each mismatch. Here the
 * two humans are stochastic annotator models whose per-decision error
 * rate varies by step (learning over time, with a bump when the AMD
 * corpus — new phrasing — starts); the protocol, the agreement curve
 * (Figure 9), the cumulative step sizes (Figure 8) and the final
 * annotated database all fall out of the simulation.
 */

#ifndef REMEMBERR_CLASSIFY_FOUREYES_HH
#define REMEMBERR_CLASSIFY_FOUREYES_HH

#include <cstdint>
#include <string>
#include <vector>

#include "corpus/corpus.hh"
#include "obs/metrics.hh"
#include "taxonomy/taxonomy.hh"

namespace rememberr {

/** Protocol configuration. */
struct FourEyesOptions
{
    std::uint64_t seed = 0xc1a551f1ULL;
    /** Per-step annotator error rates; length defines the number of
     * steps. The bump at step 6 models the switch to the AMD corpus
     * (classified after Intel, Section V-A). */
    std::vector<double> stepErrorRates{0.095, 0.085, 0.075, 0.065,
                                       0.055, 0.080, 0.045};
    /** Unique errata classified per step (Intel in the first five
     * steps, AMD in the last two; sums must match the corpus). */
    std::vector<std::size_t> stepSizes{120, 140, 150, 160, 173,
                                       190, 195};
    /** Probability that discussing a mismatch recovers the truth. */
    double discussionFidelity = 0.97;
    /** Error-rate multiplier when the true answer is "yes" (a
     * present category is easier to miss than an absent one is to
     * invent). */
    double missFactor = 1.3;
    double inventFactor = 0.8;
    /**
     * Worker threads for the regex prefilter (0 = all hardware
     * threads, 1 = serial). Only the per-erratum engine runs is
     * parallel; the stochastic annotator protocol consumes the
     * precomputed results in bug order, so annotations are
     * bit-identical for every thread count.
     */
    std::size_t threads = 1;
    /** Screen rule patterns with the literal prefilter before
     * running the regex VM (decision-neutral; see engine.hh). */
    bool usePrefilter = true;
    /** When set, receives classify.prefilter.{hits,vm_runs,skipped}
     * counters for the engine stage. */
    MetricsRegistry *metrics = nullptr;
};

/** Per-step protocol statistics. */
struct StepStats
{
    int step = 0;
    std::size_t erratumCount = 0;
    std::size_t cumulativeErrata = 0;
    std::size_t manualDecisions = 0;
    std::size_t mismatches = 0;
    /** Fraction of manual decisions both annotators made
     * identically, before discussion. */
    double agreement = 1.0;
};

/** Final annotation for one unique bug. */
struct AnnotatedBug
{
    std::uint32_t bugKey = 0;
    CategorySet triggers;
    CategorySet contexts;
    CategorySet effects;
    /** Categories the automatic stage accepted. */
    CategorySet autoAccepted;
    /** Manual decisions this bug required (per annotator). */
    std::size_t manualDecisions = 0;
};

/** Complete protocol outcome. */
struct FourEyesResult
{
    std::vector<StepStats> steps;
    /** One annotation per unique bug, indexed by bugKey. */
    std::vector<AnnotatedBug> annotations;
    /** Decisions without filtering: unique errata x 60. */
    std::size_t naiveDecisionsPerAnnotator = 0;
    /** Decisions actually requiring a human, per annotator. */
    std::size_t manualDecisionsPerAnnotator = 0;
    /** Fraction of (bug, category) pairs annotated correctly. */
    double labelAccuracy = 0.0;

    /** Merge the final annotation into one CategorySet. */
    static CategorySet allCategories(const AnnotatedBug &bug);
};

/** Run the protocol over the corpus's unique bugs. */
FourEyesResult runFourEyes(const Corpus &corpus,
                           const FourEyesOptions &options = {});

} // namespace rememberr

#endif // REMEMBERR_CLASSIFY_FOUREYES_HH
