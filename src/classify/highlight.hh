/**
 * @file
 * The syntax-highlighting engine guiding human classification.
 *
 * Section V-A: "we designed a syntax highlighting engine with regular
 * expressions to emphasize parts of the errata descriptions relevant
 * to a given category". Spans come from the category's rule sets;
 * accept-level matches render stronger than relevance-level ones.
 */

#ifndef REMEMBERR_CLASSIFY_HIGHLIGHT_HH
#define REMEMBERR_CLASSIFY_HIGHLIGHT_HH

#include <string>
#include <vector>

#include "taxonomy/taxonomy.hh"

namespace rememberr {

/** One highlighted region of the text. */
struct HighlightSpan
{
    std::size_t begin = 0;
    std::size_t end = 0;
    /** True when an accept pattern produced the span. */
    bool strong = false;

    bool operator==(const HighlightSpan &other) const = default;
};

/**
 * Compute highlight spans for one category over the text. Overlapping
 * spans are merged; a strong span absorbs weak overlaps.
 */
std::vector<HighlightSpan> highlightCategory(const std::string &text,
                                             CategoryId id);

/** Render with ANSI escapes (bold red = strong, yellow = weak). */
std::string renderAnsi(const std::string &text,
                       const std::vector<HighlightSpan> &spans);

/** Render as HTML with <mark class="strong|weak"> tags. */
std::string renderHtml(const std::string &text,
                       const std::vector<HighlightSpan> &spans);

} // namespace rememberr

#endif // REMEMBERR_CLASSIFY_HIGHLIGHT_HH
