#include "prefilter.hh"

#include "obs/trace.hh"
#include "rules.hh"

namespace rememberr {

namespace {

/** Register one pattern list with a scanner, recording per-pattern
 * factor availability and the category's base offset. */
void
registerPatterns(const std::vector<Regex> &patterns,
                 LiteralScanner &scanner,
                 std::vector<std::size_t> &bases,
                 std::vector<std::uint8_t> &hasFactors,
                 std::size_t &factored)
{
    bases.push_back(hasFactors.size());
    for (const Regex &regex : patterns) {
        const std::uint32_t id =
            static_cast<std::uint32_t>(hasFactors.size());
        const std::vector<std::string> factors =
            regex.literalFactors();
        if (factors.empty()) {
            hasFactors.push_back(0);
            // Keep owner ids dense even for factor-less patterns so
            // the hit bitmap and the flattened id space line up.
            scanner.addOwner(id, {});
        } else {
            hasFactors.push_back(1);
            ++factored;
            scanner.addOwner(id, factors);
        }
    }
}

} // namespace

ClassifyPrefilter::ClassifyPrefilter()
{
    ScopedSpan span(&TraceRecorder::global(),
                    "classify.prefilter.build");
    for (const CategoryRule &rule : RuleSet::instance().rules()) {
        registerPatterns(rule.accept, bodyScanner_, acceptBase_,
                         acceptHasFactors_, factoredAccept_);
        registerPatterns(rule.relevance, fullScanner_,
                         relevanceBase_, relevanceHasFactors_,
                         factoredRelevance_);
    }
    bodyScanner_.build();
    fullScanner_.build();
}

const ClassifyPrefilter &
ClassifyPrefilter::instance()
{
    static const ClassifyPrefilter prefilter;
    return prefilter;
}

} // namespace rememberr
