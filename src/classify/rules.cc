#include "rules.hh"

#include "util/logging.hh"

namespace rememberr {

const RuleSet &
RuleSet::instance()
{
    static const RuleSet rules;
    return rules;
}

const CategoryRule &
RuleSet::ruleFor(CategoryId id) const
{
    if (id >= rules_.size())
        REMEMBERR_PANIC("RuleSet: bad category id ", id);
    return rules_[id];
}

RuleSet::RuleSet()
{
    const Taxonomy &taxonomy = Taxonomy::instance();
    rules_.resize(taxonomy.categoryCount());
    for (CategoryId id = 0; id < taxonomy.categoryCount(); ++id)
        rules_[id].id = id;

    RegexOptions ci;
    ci.ignoreCase = true;

    auto def = [&](const char *code,
                   std::vector<const char *> accept,
                   std::vector<const char *> relevance) {
        auto id = taxonomy.parseCategory(code);
        if (!id)
            REMEMBERR_PANIC("RuleSet: unknown category ", code);
        CategoryRule &rule = rules_[*id];
        for (const char *pattern : accept)
            rule.accept.push_back(Regex::compileOrDie(pattern, ci));
        for (const char *pattern : relevance)
            rule.relevance.push_back(
                Regex::compileOrDie(pattern, ci));
    };

    // ---- Triggers ---------------------------------------------------
    def("Trg_MBR_cbr",
        {R"((crosses|spans) (a cache line boundary|two cache lines))"},
        {R"(cache line)"});
    def("Trg_MBR_pgb",
        {R"(page boundary)"},
        {R"(boundary|last byte of a page)"});
    def("Trg_MBR_mbr",
        {R"(canonical|memory map limit)"},
        {R"(boundary|\bwraps?\b)"});
    def("Trg_MOP_mmp",
        {R"(memory-mapped (APIC|I/O))"},
        {R"(memory-mapped)"});
    def("Trg_MOP_atp",
        {R"(locked read-modify-write|transactional)"},
        {R"(atomic|locked|transact)"});
    def("Trg_MOP_fen",
        {R"(memory fence|serializing instruction)"},
        {R"(fence|serializ)"});
    def("Trg_MOP_seg",
        {R"(null selector|segment register is loaded)"},
        {R"(segment)"});
    def("Trg_MOP_ptw",
        {R"(page table walk)"},
        {R"(\bwalk\b|page directory)"});
    def("Trg_MOP_nst",
        {R"(nested (page )?table)"},
        {R"(nested)"});
    def("Trg_MOP_flc",
        {R"(CLFLUSH|TLB invalidation)"},
        {R"(flush|invalidat)"});
    def("Trg_MOP_spe",
        {R"(speculativ)"},
        {R"(speculat|mispredict)"});
    def("Trg_EXC_ovf",
        {R"(counter overflow)"},
        {R"(overflow|wraps around)"});
    def("Trg_EXC_tmr",
        {R"(timer fires)"},
        {R"(timer)"});
    def("Trg_EXC_mca",
        {R"(machine check exception is signalled)",
         R"(machine check event)"},
        {R"(machine check)"});
    def("Trg_EXC_ill",
        {R"(illegal instruction)"},
        {R"(undefined opcode|illegal)"});
    def("Trg_PRV_ret",
        {R"(\bRSM\b|resumes from System Management)"},
        {R"(\bSMI\b|resume|System Management)"});
    def("Trg_PRV_vmt",
        {R"(VM (exit|entry))"},
        {R"(\bVM\b|world switch|hypervisor|guest state)"});
    def("Trg_CFG_pag",
        {R"(paging mode)"},
        {R"(paging|\bCR0\b|\bCR4\b)"});
    def("Trg_CFG_vmc",
        {R"(control structure|\bVMCS\b)"},
        {R"(intercept|virtual machine)"});
    def("Trg_CFG_wrg",
        {R"(writes a model specific register)",
         R"(programmed to a non-default)", R"(\bWRMSR\b)"},
        {R"(writes|programmed|\bWRMSR\b|model specific register|configuration register)"});
    def("Trg_POW_pwc",
        {R"(C6 power state|C-state transition)"},
        {R"(power state|C-state|deep sleep)"});
    def("Trg_POW_tht",
        {R"(throttling|voltage droops)"},
        {R"(thermal|power limit|voltage)"});
    def("Trg_EXT_rst",
        {R"((warm|cold) reset)"},
        {R"(reset)"});
    def("Trg_EXT_pci",
        {R"(PCIe (device|traffic))"},
        {R"(PCIe)"});
    def("Trg_EXT_usb",
        {R"(isochronous)"},
        {R"(\bUSB\b)"});
    def("Trg_EXT_ram",
        {R"(DRAM is configured|DDR refresh)"},
        {R"(DRAM|\bDDR\b|refresh)"});
    def("Trg_EXT_iom",
        {R"(remapped through the IOMMU)"},
        {R"(IOMMU)"});
    def("Trg_EXT_bus",
        {R"(system bus|HyperTransport)"},
        {R"(fabric|\bprobe\b|\bbus\b)"});
    def("Trg_FEA_fpu",
        {R"(FSAVE|FNSAVE|floating-point instruction)"},
        {R"(x87|\bFPU\b|floating-point)"});
    def("Trg_FEA_dbg",
        {R"(breakpoint|single-step)"},
        {R"(debug)"});
    def("Trg_FEA_cid",
        {R"(queries the CPUID)"},
        {R"(CPUID)"});
    def("Trg_FEA_mon",
        {R"(MONITOR/MWAIT)"},
        {R"(\bMWAIT\b|\bMONITOR\b)"});
    def("Trg_FEA_tra",
        {R"(trace packets)"},
        {R"(trace|tracing)"});
    def("Trg_FEA_cus",
        {R"(\bSSE\b|\bMMX\b)"},
        {R"(accelerator|\bSSE\b|\bMMX\b|\bAVX\b)"});

    // ---- Contexts ---------------------------------------------------
    def("Ctx_PRV_boo",
        {R"(BIOS initialization)"},
        {R"(\bboot|BIOS initialization)"});
    def("Ctx_PRV_vmg",
        {R"(virtual machine guest|virtualized environment)"},
        {R"(guest|virtual)"});
    def("Ctx_PRV_rea",
        {R"(real-address mode|\breal mode\b)"},
        {R"(\breal\b|8086)"});
    def("Ctx_PRV_vmh",
        {R"(as a hypervisor)"},
        {R"(hypervisor|\bhost\b)"});
    def("Ctx_PRV_smm",
        {R"(is in System Management Mode)"},
        {R"(\bSMM\b|System Management)"});
    def("Ctx_FEA_sec",
        {R"(memory encryption|secure enclave)"},
        {R"(secur|encrypt|enclave)"});
    def("Ctx_FEA_sgc",
        {R"(single-core)"},
        {R"(one core|single)"});
    def("Ctx_PHY_pkg",
        {R"(land grid array)"},
        {R"(package)"});
    def("Ctx_PHY_tmp",
        {R"(temperatures near)"},
        {R"(temperature)"});
    def("Ctx_PHY_vol",
        {R"(minimum specified operating voltage)"},
        {R"(voltage)"});

    // ---- Effects ----------------------------------------------------
    def("Eff_HNG_unp",
        {R"(unpredictable)"},
        {R"(unpredictable|incorrect data)"});
    def("Eff_HNG_hng",
        {R"(may \bhang\b|stop responding)"},
        {R"(\bhang\b|respond)"});
    def("Eff_HNG_crh",
        {R"(crash)"},
        {R"(crash|shutdown|reset)"});
    def("Eff_HNG_boo",
        {R"(fail to boot)"},
        {R"(boot|power-on)"});
    def("Eff_FLT_mca",
        {R"(machine check exception may be generated)", R"(\bMCE\b)"},
        {R"(machine check)"});
    def("Eff_FLT_unc",
        {R"(uncorrectable error)"},
        {R"(uncorrectable)"});
    def("Eff_FLT_fsp",
        {R"(spurious|general protection fault)"},
        {R"(fault)"});
    def("Eff_FLT_fms",
        {R"(may not be delivered)"},
        {R"(may not be delivered|may be lost|missing)"});
    def("Eff_FLT_fid",
        {R"(wrong error code)"},
        {R"(error code|out of order)"});
    def("Eff_CRP_prf",
        {R"(wrong count|over-counted)"},
        {R"(performance)"});
    def("Eff_CRP_reg",
        {R"(register may hold an incorrect|stale value)"},
        {R"(register \(MSR|register may|stale value|incorrect value for)"});
    def("Eff_EXT_pci",
        {R"(malformed transaction)"},
        {R"(PCIe)"});
    def("Eff_EXT_usb",
        {R"(disconnect)"},
        {R"(\bUSB\b)"});
    def("Eff_EXT_mmd",
        {R"(audio or graphics)"},
        {R"(audio|graphic|display|multimedia)"});
    def("Eff_EXT_ram",
        {R"(abnormal DRAM)"},
        {R"(DRAM|\bECC\b)"});
    def("Eff_EXT_pow",
        {R"(power consumption)"},
        {R"(power consumption|low-power|power envelope)"});

    // Every category must carry at least one rule of each kind.
    for (const CategoryRule &rule : rules_) {
        if (rule.accept.empty() || rule.relevance.empty())
            REMEMBERR_PANIC(
                "RuleSet: category ",
                taxonomy.categoryById(rule.id).code,
                " has no rules");
    }
}

} // namespace rememberr
