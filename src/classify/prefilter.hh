/**
 * @file
 * Literal prefilter for the classification rule set.
 *
 * Running the backtracking regex VM for every (erratum, pattern)
 * pair dominates classification cost. Almost every rule regex
 * requires some literal phrase to appear in the text
 * (Regex::literalFactors); one Aho–Corasick scan over the erratum
 * therefore decides, for all patterns at once, which ones can
 * possibly match. Only those run the VM. Patterns without an
 * extractable factor always fall through to the VM, so decisions are
 * bit-identical to the unfiltered engine.
 *
 * Accept patterns match against the body text and relevance patterns
 * against the full text (see engine.hh), so the prefilter keeps two
 * automatons, one per haystack kind. The singleton is built once per
 * process from RuleSet::instance() and is immutable afterwards;
 * concurrent scans are safe.
 */

#ifndef REMEMBERR_CLASSIFY_PREFILTER_HH
#define REMEMBERR_CLASSIFY_PREFILTER_HH

#include <cstdint>
#include <string_view>
#include <vector>

#include "text/literal_scan.hh"

namespace rememberr {

/** Prefilter verdict for one pattern given a scanned haystack. */
enum class PrefilterState : std::uint8_t
{
    /** A required factor is absent: the pattern cannot match. */
    Skip,
    /** A factor occurred: the pattern may match, run the VM. */
    FactorHit,
    /** No factor was extractable: the VM must always run. */
    NoFactors,
};

/** The shared literal prefilter over RuleSet::instance(). */
class ClassifyPrefilter
{
  public:
    /** Lazily built on first use (spanned as
     * "classify.prefilter.build" on the global trace recorder). */
    static const ClassifyPrefilter &instance();

    /** Flattened accept-pattern count across all categories. */
    std::size_t acceptPatternCount() const { return acceptHasFactors_.size(); }
    /** Flattened relevance-pattern count across all categories. */
    std::size_t relevancePatternCount() const { return relevanceHasFactors_.size(); }
    /** Accept patterns with at least one extracted factor. */
    std::size_t factoredAcceptCount() const { return factoredAccept_; }
    /** Relevance patterns with at least one extracted factor. */
    std::size_t factoredRelevanceCount() const { return factoredRelevance_; }

    /** Scan a case-folded body; hits is indexed by flattened accept
     * pattern id. */
    void
    scanBody(std::string_view foldedBody,
             std::vector<std::uint8_t> &hits) const
    {
        bodyScanner_.scan(foldedBody, hits);
    }

    /** Scan a case-folded full text; hits is indexed by flattened
     * relevance pattern id. */
    void
    scanFull(std::string_view foldedFull,
             std::vector<std::uint8_t> &hits) const
    {
        fullScanner_.scan(foldedFull, hits);
    }

    /** Verdict for accept pattern `pattern` of the category at rule
     * position `category` (RuleSet::rules() order). */
    PrefilterState
    acceptState(const std::vector<std::uint8_t> &hits,
                std::size_t category, std::size_t pattern) const
    {
        const std::size_t id = acceptBase_[category] + pattern;
        if (!acceptHasFactors_[id])
            return PrefilterState::NoFactors;
        return hits[id] ? PrefilterState::FactorHit
                        : PrefilterState::Skip;
    }

    /** Verdict for relevance pattern `pattern` of the category at
     * rule position `category`. */
    PrefilterState
    relevanceState(const std::vector<std::uint8_t> &hits,
                   std::size_t category, std::size_t pattern) const
    {
        const std::size_t id = relevanceBase_[category] + pattern;
        if (!relevanceHasFactors_[id])
            return PrefilterState::NoFactors;
        return hits[id] ? PrefilterState::FactorHit
                        : PrefilterState::Skip;
    }

  private:
    ClassifyPrefilter();

    LiteralScanner bodyScanner_;
    LiteralScanner fullScanner_;
    /** First flattened pattern id per category position. */
    std::vector<std::size_t> acceptBase_;
    std::vector<std::size_t> relevanceBase_;
    /** Whether each flattened pattern contributed factors. */
    std::vector<std::uint8_t> acceptHasFactors_;
    std::vector<std::uint8_t> relevanceHasFactors_;
    std::size_t factoredAccept_ = 0;
    std::size_t factoredRelevance_ = 0;
};

} // namespace rememberr

#endif // REMEMBERR_CLASSIFY_PREFILTER_HH
