/**
 * @file
 * The software-assisted classification engine.
 *
 * For every (erratum, category) pair the engine produces one of
 * three outcomes: AutoYes (a conservative accept pattern matched the
 * body), AutoNo (no relevance pattern matched anywhere) or Manual
 * (relevant but not conclusive — a human decision is required).
 * Accept patterns are evaluated over the description and implications
 * only; titles are too terse to trust for automatic acceptance but do
 * count towards relevance.
 */

#ifndef REMEMBERR_CLASSIFY_ENGINE_HH
#define REMEMBERR_CLASSIFY_ENGINE_HH

#include <string>
#include <vector>

#include "model/erratum.hh"
#include "taxonomy/taxonomy.hh"

namespace rememberr {

/** Outcome of the automatic stage for one (erratum, category). */
enum class Decision : std::uint8_t { AutoYes, AutoNo, Manual };

/** Engine output for one erratum. */
struct EngineResult
{
    /** Decision per category id (indexed by CategoryId). */
    std::vector<Decision> decisions;
    /** Categories auto-accepted. */
    CategorySet autoYes;
    /** Categories requiring a human decision. */
    std::vector<CategoryId> manual;

    std::size_t
    manualCount() const
    {
        return manual.size();
    }
};

/** Body text used for conservative acceptance. */
std::string erratumBodyText(const Erratum &erratum);

/** Full text (title + all prose) used for relevance filtering. */
std::string erratumFullText(const Erratum &erratum);

/** Classify one erratum against all 60 categories. */
EngineResult classifyErratum(const Erratum &erratum);

/** Classify raw text (body == full). Used by tests and tools. */
EngineResult classifyText(const std::string &body,
                          const std::string &full);

} // namespace rememberr

#endif // REMEMBERR_CLASSIFY_ENGINE_HH
