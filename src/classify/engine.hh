/**
 * @file
 * The software-assisted classification engine.
 *
 * For every (erratum, category) pair the engine produces one of
 * three outcomes: AutoYes (a conservative accept pattern matched the
 * body), AutoNo (no relevance pattern matched anywhere) or Manual
 * (relevant but not conclusive — a human decision is required).
 * Accept patterns are evaluated over the description and implications
 * only; titles are too terse to trust for automatic acceptance but do
 * count towards relevance.
 */

#ifndef REMEMBERR_CLASSIFY_ENGINE_HH
#define REMEMBERR_CLASSIFY_ENGINE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "model/erratum.hh"
#include "taxonomy/taxonomy.hh"

namespace rememberr {

/** Outcome of the automatic stage for one (erratum, category). */
enum class Decision : std::uint8_t { AutoYes, AutoNo, Manual };

/** Engine output for one erratum. */
struct EngineResult
{
    /** Decision per category id (indexed by CategoryId). */
    std::vector<Decision> decisions;
    /** Categories auto-accepted. */
    CategorySet autoYes;
    /** Categories requiring a human decision. */
    std::vector<CategoryId> manual;

    std::size_t
    manualCount() const
    {
        return manual.size();
    }
};

/** Body text used for conservative acceptance. */
std::string erratumBodyText(const Erratum &erratum);

/** Full text (title + all prose) used for relevance filtering. */
std::string erratumFullText(const Erratum &erratum);

/** Counters describing one classification's prefilter behavior. */
struct ClassifyStats
{
    /** Patterns matched because a literal factor occurred. */
    std::uint64_t prefilterHits = 0;
    /** Patterns the regex engine (linear tier by default, the
     * backtracking VM under --regex-tier=vm) actually evaluated. */
    std::uint64_t vmRuns = 0;
    /** Patterns skipped because a required factor was absent. */
    std::uint64_t skipped = 0;

    ClassifyStats &
    operator+=(const ClassifyStats &o)
    {
        prefilterHits += o.prefilterHits;
        vmRuns += o.vmRuns;
        skipped += o.skipped;
        return *this;
    }
};

/** Engine knobs. Defaults preserve the historical behavior (the
 * prefilter changes no decision, only the work done). */
struct ClassifyOptions
{
    /** Screen patterns with the Aho–Corasick literal prefilter and
     * run the regex engine only on possible matches. Decisions are
     * identical either way. */
    bool usePrefilter = true;
    /** Optional per-call counters (not thread-shared). */
    ClassifyStats *stats = nullptr;
};

/** Classify one erratum against all 60 categories. */
EngineResult classifyErratum(const Erratum &erratum,
                             const ClassifyOptions &options = {});

/** Classify raw text (body == full). Used by tests and tools. */
EngineResult classifyText(const std::string &body,
                          const std::string &full,
                          const ClassifyOptions &options = {});

} // namespace rememberr

#endif // REMEMBERR_CLASSIFY_ENGINE_HH
