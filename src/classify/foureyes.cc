#include "foureyes.hh"

#include "engine.hh"
#include "util/logging.hh"
#include "util/parallel.hh"
#include "util/rng.hh"

namespace rememberr {

namespace {

/** Build the representative erratum entry for one unique bug. */
Erratum
representative(const BugSpec &bug)
{
    Erratum erratum;
    erratum.title = bug.title;
    erratum.description = bug.description;
    erratum.implications = bug.implications;
    erratum.workaroundText = bug.workaroundText;
    erratum.workaroundClass = bug.workaroundClass;
    erratum.status = bug.fixStatus;
    erratum.msrs = bug.msrs;
    return erratum;
}

CategorySet
groundTruth(const BugSpec &bug)
{
    return bug.triggers | bug.contexts | bug.effects;
}

} // namespace

CategorySet
FourEyesResult::allCategories(const AnnotatedBug &bug)
{
    return bug.triggers | bug.contexts | bug.effects;
}

FourEyesResult
runFourEyes(const Corpus &corpus, const FourEyesOptions &options)
{
    // Configuration mistakes are user errors, not library bugs.
    if (options.stepErrorRates.size() != options.stepSizes.size())
        REMEMBERR_FATAL("runFourEyes: step table size mismatch");
    std::size_t planned = 0;
    for (std::size_t size : options.stepSizes)
        planned += size;
    if (planned != corpus.bugs.size())
        REMEMBERR_FATAL("runFourEyes: step sizes cover ", planned,
                        " errata, corpus has ", corpus.bugs.size());

    const Taxonomy &taxonomy = Taxonomy::instance();
    Rng rngA(options.seed);
    Rng rngB(options.seed ^ 0x9e3779b97f4a7c15ULL);
    Rng rngDiscuss(options.seed ^ 0x5851f42d4c957f2dULL);

    FourEyesResult result;
    result.annotations.resize(corpus.bugs.size());
    result.naiveDecisionsPerAnnotator =
        corpus.bugs.size() * taxonomy.categoryCount();

    // The regex prefilter dominates the protocol's cost and each
    // erratum is independent, so it runs up front across threads.
    // The annotator loop below draws from sequential RNG streams and
    // therefore stays serial, consuming the precomputed results in
    // bug order — output is identical for every thread count.
    std::vector<EngineResult> engineResults(corpus.bugs.size());
    std::vector<ClassifyStats> engineStats(corpus.bugs.size());
    parallelFor(corpus.bugs.size(), options.threads,
                [&](std::size_t i) {
                    ClassifyOptions classifyOptions;
                    classifyOptions.usePrefilter =
                        options.usePrefilter;
                    classifyOptions.stats = &engineStats[i];
                    engineResults[i] = classifyErratum(
                        representative(corpus.bugs[i]),
                        classifyOptions);
                });
    if (options.metrics) {
        ClassifyStats total;
        for (const ClassifyStats &stats : engineStats)
            total += stats;
        options.metrics->counter("classify.prefilter.hits")
            .add(total.prefilterHits);
        options.metrics->counter("classify.prefilter.vm_runs")
            .add(total.vmRuns);
        options.metrics->counter("classify.prefilter.skipped")
            .add(total.skipped);
    }

    std::size_t correctLabels = 0;
    std::size_t totalLabels = 0;
    std::size_t nextBug = 0;
    std::size_t cumulative = 0;

    for (std::size_t stepIdx = 0; stepIdx < options.stepSizes.size();
         ++stepIdx) {
        StepStats stats;
        stats.step = static_cast<int>(stepIdx) + 1;
        stats.erratumCount = options.stepSizes[stepIdx];
        const double errorRate = options.stepErrorRates[stepIdx];

        for (std::size_t k = 0;
             k < options.stepSizes[stepIdx] &&
             nextBug < corpus.bugs.size();
             ++k, ++nextBug) {
            const BugSpec &bug = corpus.bugs[nextBug];
            const CategorySet truth = groundTruth(bug);

            const EngineResult &engine = engineResults[nextBug];

            AnnotatedBug annotation;
            annotation.bugKey = bug.bugKey;
            annotation.autoAccepted = engine.autoYes;
            annotation.manualDecisions = engine.manual.size();

            CategorySet final = engine.autoYes;
            for (CategoryId id : engine.manual) {
                bool truthHere = truth.contains(id);
                double pA = errorRate * (truthHere
                                             ? options.missFactor
                                             : options.inventFactor);
                double pB = pA;
                bool decisionA =
                    rngA.nextBool(pA) ? !truthHere : truthHere;
                bool decisionB =
                    rngB.nextBool(pB) ? !truthHere : truthHere;
                ++stats.manualDecisions;
                bool finalDecision;
                if (decisionA == decisionB) {
                    finalDecision = decisionA;
                } else {
                    ++stats.mismatches;
                    finalDecision =
                        rngDiscuss.nextBool(
                            options.discussionFidelity)
                            ? truthHere
                            : !truthHere;
                }
                if (finalDecision)
                    final.insert(id);
            }

            annotation.triggers = final.filterAxis(Axis::Trigger);
            annotation.contexts = final.filterAxis(Axis::Context);
            annotation.effects = final.filterAxis(Axis::Effect);
            result.manualDecisionsPerAnnotator +=
                engine.manual.size();

            // Label accuracy over all 60 categories.
            for (CategoryId id = 0; id < taxonomy.categoryCount();
                 ++id) {
                ++totalLabels;
                if (final.contains(id) == truth.contains(id))
                    ++correctLabels;
            }

            result.annotations[bug.bugKey] = annotation;
        }

        cumulative += stats.erratumCount;
        stats.cumulativeErrata = cumulative;
        stats.agreement =
            stats.manualDecisions == 0
                ? 1.0
                : 1.0 - static_cast<double>(stats.mismatches) /
                            static_cast<double>(
                                stats.manualDecisions);
        result.steps.push_back(stats);
    }

    result.labelAccuracy =
        totalLabels == 0 ? 1.0
                         : static_cast<double>(correctLabels) /
                               static_cast<double>(totalLabels);
    return result;
}

} // namespace rememberr
