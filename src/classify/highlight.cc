#include "highlight.hh"

#include <algorithm>

#include "rules.hh"

namespace rememberr {

namespace {

void
collectSpans(const std::string &text, const std::vector<Regex> &rules,
             bool strong, std::vector<HighlightSpan> &spans)
{
    for (const Regex &regex : rules) {
        for (const RegexMatch &match : regex.findAll(text)) {
            if (match.end > match.begin)
                spans.push_back(
                    HighlightSpan{match.begin, match.end, strong});
        }
    }
}

/** HTML-escape a fragment. */
std::string
escapeHtml(const std::string &text)
{
    std::string out;
    for (char c : text) {
        switch (c) {
          case '<': out += "&lt;"; break;
          case '>': out += "&gt;"; break;
          case '&': out += "&amp;"; break;
          default: out += c;
        }
    }
    return out;
}

} // namespace

std::vector<HighlightSpan>
highlightCategory(const std::string &text, CategoryId id)
{
    const CategoryRule &rule = RuleSet::instance().ruleFor(id);
    std::vector<HighlightSpan> spans;
    collectSpans(text, rule.accept, true, spans);
    collectSpans(text, rule.relevance, false, spans);

    if (spans.empty())
        return spans;

    // Sort and merge overlapping spans; strength wins on overlap.
    std::sort(spans.begin(), spans.end(),
              [](const HighlightSpan &a, const HighlightSpan &b) {
                  if (a.begin != b.begin)
                      return a.begin < b.begin;
                  return a.end > b.end;
              });
    std::vector<HighlightSpan> merged;
    for (const HighlightSpan &span : spans) {
        if (!merged.empty() && span.begin <= merged.back().end) {
            merged.back().end = std::max(merged.back().end, span.end);
            merged.back().strong |= span.strong;
        } else {
            merged.push_back(span);
        }
    }
    return merged;
}

std::string
renderAnsi(const std::string &text,
           const std::vector<HighlightSpan> &spans)
{
    static const char *strongOn = "\x1b[1;31m";
    static const char *weakOn = "\x1b[33m";
    static const char *off = "\x1b[0m";

    std::string out;
    std::size_t pos = 0;
    for (const HighlightSpan &span : spans) {
        out += text.substr(pos, span.begin - pos);
        out += span.strong ? strongOn : weakOn;
        out += text.substr(span.begin, span.end - span.begin);
        out += off;
        pos = span.end;
    }
    out += text.substr(pos);
    return out;
}

std::string
renderHtml(const std::string &text,
           const std::vector<HighlightSpan> &spans)
{
    std::string out;
    std::size_t pos = 0;
    for (const HighlightSpan &span : spans) {
        out += escapeHtml(text.substr(pos, span.begin - pos));
        out += span.strong ? "<mark class=\"strong\">"
                           : "<mark class=\"weak\">";
        out += escapeHtml(
            text.substr(span.begin, span.end - span.begin));
        out += "</mark>";
        pos = span.end;
    }
    out += escapeHtml(text.substr(pos));
    return out;
}

} // namespace rememberr
