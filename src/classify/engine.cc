#include "engine.hh"

#include "rules.hh"

namespace rememberr {

std::string
erratumBodyText(const Erratum &erratum)
{
    std::string out = erratum.description;
    out += '\n';
    out += erratum.implications;
    return out;
}

std::string
erratumFullText(const Erratum &erratum)
{
    // The workaround field describes the mitigation, not the bug;
    // including it floods the relevance filter ("BIOS code change"
    // would make every mitigated erratum a boot-context candidate),
    // so relevance sees title + description + implications only.
    std::string out = erratum.title;
    out += '\n';
    out += erratum.description;
    out += '\n';
    out += erratum.implications;
    return out;
}

EngineResult
classifyText(const std::string &body, const std::string &full)
{
    const RuleSet &rules = RuleSet::instance();
    const Taxonomy &taxonomy = Taxonomy::instance();

    EngineResult result;
    result.decisions.resize(taxonomy.categoryCount(),
                            Decision::AutoNo);

    for (const CategoryRule &rule : rules.rules()) {
        bool accepted = false;
        for (const Regex &regex : rule.accept) {
            if (regex.contains(body)) {
                accepted = true;
                break;
            }
        }
        if (accepted) {
            result.decisions[rule.id] = Decision::AutoYes;
            result.autoYes.insert(rule.id);
            continue;
        }
        bool relevant = false;
        for (const Regex &regex : rule.relevance) {
            if (regex.contains(full)) {
                relevant = true;
                break;
            }
        }
        if (relevant) {
            result.decisions[rule.id] = Decision::Manual;
            result.manual.push_back(rule.id);
        }
    }
    return result;
}

EngineResult
classifyErratum(const Erratum &erratum)
{
    return classifyText(erratumBodyText(erratum),
                        erratumFullText(erratum));
}

} // namespace rememberr
