#include "engine.hh"

#include "prefilter.hh"
#include "rules.hh"
#include "text/literal_scan.hh"

namespace rememberr {

std::string
erratumBodyText(const Erratum &erratum)
{
    std::string out = erratum.description;
    out += '\n';
    out += erratum.implications;
    return out;
}

std::string
erratumFullText(const Erratum &erratum)
{
    // The workaround field describes the mitigation, not the bug;
    // including it floods the relevance filter ("BIOS code change"
    // would make every mitigated erratum a boot-context candidate),
    // so relevance sees title + description + implications only.
    std::string out = erratum.title;
    out += '\n';
    out += erratum.description;
    out += '\n';
    out += erratum.implications;
    return out;
}

EngineResult
classifyText(const std::string &body, const std::string &full,
             const ClassifyOptions &options)
{
    const RuleSet &rules = RuleSet::instance();
    const Taxonomy &taxonomy = Taxonomy::instance();

    EngineResult result;
    result.decisions.resize(taxonomy.categoryCount(),
                            Decision::AutoNo);

    ClassifyStats localStats;
    ClassifyStats &stats = options.stats ? *options.stats
                                         : localStats;

    // One linear scan per haystack answers, for every pattern at
    // once, whether its required literal factors occur; the matcher
    // then only runs on possible matches. A skipped pattern cannot
    // match, so the first-match-wins loops below take the same
    // branches as without the prefilter. Survivors run through
    // Regex::contains, i.e. the linear DFA tier by default — the
    // backtracking VM only executes under --regex-tier=vm.
    const ClassifyPrefilter *prefilter = nullptr;
    std::vector<std::uint8_t> bodyHits;
    std::vector<std::uint8_t> fullHits;
    if (options.usePrefilter) {
        prefilter = &ClassifyPrefilter::instance();
        prefilter->scanBody(foldForScan(body), bodyHits);
        prefilter->scanFull(foldForScan(full), fullHits);
    }

    std::size_t category = 0;
    for (const CategoryRule &rule : rules.rules()) {
        bool accepted = false;
        for (std::size_t p = 0; p < rule.accept.size(); ++p) {
            if (prefilter) {
                const PrefilterState state =
                    prefilter->acceptState(bodyHits, category, p);
                if (state == PrefilterState::Skip) {
                    ++stats.skipped;
                    continue;
                }
                if (state == PrefilterState::FactorHit)
                    ++stats.prefilterHits;
            }
            ++stats.vmRuns;
            if (rule.accept[p].contains(body)) {
                accepted = true;
                break;
            }
        }
        if (accepted) {
            result.decisions[rule.id] = Decision::AutoYes;
            result.autoYes.insert(rule.id);
            ++category;
            continue;
        }
        bool relevant = false;
        for (std::size_t p = 0; p < rule.relevance.size(); ++p) {
            if (prefilter) {
                const PrefilterState state =
                    prefilter->relevanceState(fullHits, category, p);
                if (state == PrefilterState::Skip) {
                    ++stats.skipped;
                    continue;
                }
                if (state == PrefilterState::FactorHit)
                    ++stats.prefilterHits;
            }
            ++stats.vmRuns;
            if (rule.relevance[p].contains(full)) {
                relevant = true;
                break;
            }
        }
        if (relevant) {
            result.decisions[rule.id] = Decision::Manual;
            result.manual.push_back(rule.id);
        }
        ++category;
    }
    return result;
}

EngineResult
classifyErratum(const Erratum &erratum, const ClassifyOptions &options)
{
    return classifyText(erratumBodyText(erratum),
                        erratumFullText(erratum), options);
}

} // namespace rememberr
