#include "literal_scan.hh"

#include <algorithm>
#include <cctype>

#include "util/logging.hh"

namespace rememberr {

std::string
foldForScan(std::string_view text)
{
    std::string out(text);
    for (char &c : out) {
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    }
    return out;
}

void
LiteralScanner::addOwner(std::uint32_t owner,
                         const std::vector<std::string> &needles)
{
    if (built_)
        REMEMBERR_PANIC("LiteralScanner: addOwner after build");
    ownerLimit_ = std::max(ownerLimit_,
                           static_cast<std::size_t>(owner) + 1);
    for (const std::string &needle : needles) {
        if (needle.empty()) {
            REMEMBERR_PANIC(
                "LiteralScanner: empty needle for owner ", owner);
        }
        std::int32_t state = 0;
        for (char c : needle) {
            unsigned char byte = static_cast<unsigned char>(c);
            std::int32_t next = nodes_[static_cast<std::size_t>(
                                           state)]
                                    .next[byte];
            if (next < 0) {
                next = static_cast<std::int32_t>(nodes_.size());
                nodes_.emplace_back();
                nodes_[static_cast<std::size_t>(state)].next[byte] =
                    next;
            }
            state = next;
        }
        auto &owners =
            nodes_[static_cast<std::size_t>(state)].owners;
        if (std::find(owners.begin(), owners.end(), owner) ==
            owners.end()) {
            owners.push_back(owner);
        }
        ++needleCount_;
    }
}

void
LiteralScanner::build()
{
    if (built_)
        return;
    built_ = true;

    // BFS over the trie: compute each node's failure link, merge the
    // failure target's owner list (so a state reports every needle
    // ending at any of its suffixes), and resolve missing byte
    // transitions through the failure link into full DFA moves.
    std::vector<std::int32_t> fail(nodes_.size(), 0);
    std::vector<std::int32_t> queue;
    queue.reserve(nodes_.size());

    for (int byte = 0; byte < 256; ++byte) {
        std::int32_t child = nodes_[0].next[static_cast<
            std::size_t>(byte)];
        if (child < 0) {
            nodes_[0].next[static_cast<std::size_t>(byte)] = 0;
        } else {
            fail[static_cast<std::size_t>(child)] = 0;
            queue.push_back(child);
        }
    }

    for (std::size_t head = 0; head < queue.size(); ++head) {
        std::int32_t state = queue[head];
        Node &node = nodes_[static_cast<std::size_t>(state)];
        const std::int32_t failState =
            fail[static_cast<std::size_t>(state)];
        // Merge suffix owners; keep the list sorted and unique so
        // scan() emits each owner at most a handful of times.
        const auto &suffixOwners =
            nodes_[static_cast<std::size_t>(failState)].owners;
        if (!suffixOwners.empty()) {
            node.owners.insert(node.owners.end(),
                               suffixOwners.begin(),
                               suffixOwners.end());
            std::sort(node.owners.begin(), node.owners.end());
            node.owners.erase(std::unique(node.owners.begin(),
                                          node.owners.end()),
                              node.owners.end());
        }
        for (int byte = 0; byte < 256; ++byte) {
            std::int32_t child =
                node.next[static_cast<std::size_t>(byte)];
            std::int32_t viaFail =
                nodes_[static_cast<std::size_t>(failState)]
                    .next[static_cast<std::size_t>(byte)];
            if (child < 0) {
                node.next[static_cast<std::size_t>(byte)] = viaFail;
            } else {
                fail[static_cast<std::size_t>(child)] = viaFail;
                queue.push_back(child);
            }
        }
    }
}

void
LiteralScanner::scan(std::string_view foldedHaystack,
                     std::vector<std::uint8_t> &hits) const
{
    if (!built_)
        REMEMBERR_PANIC("LiteralScanner: scan before build");
    hits.assign(ownerLimit_, 0);
    std::int32_t state = 0;
    for (char c : foldedHaystack) {
        state = nodes_[static_cast<std::size_t>(state)]
                    .next[static_cast<unsigned char>(c)];
        const auto &owners =
            nodes_[static_cast<std::size_t>(state)].owners;
        for (std::uint32_t owner : owners)
            hits[owner] = 1;
    }
}

} // namespace rememberr
