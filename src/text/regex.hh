/**
 * @file
 * A self-contained regular-expression engine.
 *
 * The software-assisted classification of Section V-A relies on
 * regular expressions in two places: conservative category
 * prefiltering and the syntax-highlighting engine that marks the
 * erratum text spans relevant to a category. Match *spans* (not just
 * booleans) are therefore part of the API.
 *
 * Supported syntax:
 *   - literals, '.', escapes \d \D \w \W \s \S plus \n \t \r \\ etc.
 *   - character classes [abc], [a-z0-9], negated [^...]
 *   - groups (...) (capturing) and (?:...) (non-capturing)
 *   - alternation a|b
 *   - quantifiers * + ? {m} {m,} {m,n}, each with a lazy '?' variant
 *   - anchors ^ $ and word boundaries \b \B
 *
 * Patterns compile to a small Thompson-style bytecode program (see
 * regex_program.hh) executed by one of two tiers:
 *
 *   - the **linear tier** (default, regex_linear.{hh,cc}): an
 *     incrementally built lazy DFA answers match decisions and a
 *     priority-ordered Pike NFA simulation produces leftmost match
 *     spans, both in guaranteed O(subject) time — exponential
 *     backtracking is structurally impossible;
 *   - the **backtracking VM** (this file): full semantics including
 *     capture-group extraction, guarded by a per-match step budget
 *     that turns pathological backtracking into a counted,
 *     warned-once event (`text.regex.budget_exhausted`). The VM
 *     remains the differential oracle for the linear tier and runs
 *     span extraction for patterns with capture groups.
 */

#ifndef REMEMBERR_TEXT_REGEX_HH
#define REMEMBERR_TEXT_REGEX_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "text/regex_program.hh"
#include "util/expected.hh"

namespace rememberr {

/** Result of a successful regex match. */
struct RegexMatch
{
    /** Byte offset of the match start in the subject. */
    std::size_t begin = 0;
    /** Byte offset one past the match end. */
    std::size_t end = 0;
    /**
     * Capture-group spans, 1-based group numbering mapped to index
     * (group 1 is groups[0]); nullopt when the group did not
     * participate in the match.
     */
    std::vector<std::optional<std::pair<std::size_t, std::size_t>>>
        groups;

    std::size_t length() const { return end - begin; }

    /** Extract the matched text from the subject. */
    std::string
    text(std::string_view subject) const
    {
        return std::string(subject.substr(begin, end - begin));
    }
};

/** Compilation and execution options. */
struct RegexOptions
{
    /** ASCII case-insensitive matching. */
    bool ignoreCase = false;
    /** VM step budget per match attempt. */
    std::size_t stepLimit = 1u << 20;
};

/**
 * Which engine answers match queries. Linear is the default; the
 * backtracking VM stays selectable as the differential oracle (the
 * benches and `--regex-tier=vm` use it).
 */
enum class RegexTier : int
{
    Linear = 0,
    Backtracking = 1,
};

/** Set/read the process-wide match tier. Thread-safe. */
void setRegexTier(RegexTier tier);
RegexTier regexTier();

class RegexLinearCache;

/** A compiled regular expression. Immutable and cheap to copy
 * (copies share the compiled program's lazy-DFA cache). */
class Regex
{
  public:
    /** Compile a pattern; reports syntax errors with offsets. */
    static Expected<Regex> compile(std::string_view pattern,
                                   RegexOptions options = {});

    /**
     * Compile a pattern that must be valid (library-internal rule
     * tables). Panics on syntax errors.
     */
    static Regex compileOrDie(std::string_view pattern,
                              RegexOptions options = {});

    /** Anchored match over the whole subject. */
    bool fullMatch(std::string_view subject) const;

    /**
     * Find the leftmost match at or after position from.
     * Returns nullopt when there is no match (or, on the
     * backtracking VM span path, the step budget is exhausted, in
     * which case exhausted is set when non-null; the linear tier
     * never exhausts).
     */
    std::optional<RegexMatch> search(std::string_view subject,
                                     std::size_t from = 0,
                                     bool *exhausted = nullptr) const;

    /** All non-overlapping matches, left to right. */
    std::vector<RegexMatch> findAll(std::string_view subject) const;

    /** True when the pattern occurs anywhere in the subject. */
    bool contains(std::string_view subject) const;

    // ---- backtracking-VM oracle entry points -----------------------
    // Same queries, forced through the backtracking VM regardless of
    // the process tier. The differential tests and bench_parse
    // compare these against the linear tier; production code should
    // call the plain methods above.

    bool fullMatchBacktracking(std::string_view subject) const;
    std::optional<RegexMatch>
    searchBacktracking(std::string_view subject, std::size_t from = 0,
                       bool *exhausted = nullptr) const;
    bool containsBacktracking(std::string_view subject) const;

    /** The original pattern text. */
    const std::string &pattern() const { return pattern_; }

    /** Number of capturing groups. */
    int groupCount() const { return groupCount_; }

    /** Whether the pattern matches ASCII case-insensitively. */
    bool ignoreCase() const { return options_.ignoreCase; }

    /**
     * Whether leftmost span extraction runs on the linear tier.
     * Capture groups are the one construct the DFA/Pike tier does
     * not express; patterns carrying them keep span extraction on
     * the backtracking VM (decisions still run on the DFA). RBE204
     * uses this to report whether a backtracking hazard is actually
     * neutralized.
     */
    bool linearSpanEligible() const { return groupCount_ == 0; }

    /**
     * Required literal factors: a set of ASCII-lower-cased strings
     * such that every subject containing a match also contains at
     * least one factor as a substring of its lower-cased form. The
     * set is conservative in the only safe direction — a factor hit
     * does not imply a match, but a miss of every factor proves there
     * is none — which is exactly what a multi-pattern literal
     * prefilter needs. An empty vector means no factor could be
     * extracted and callers must always run the full matcher.
     */
    std::vector<std::string> literalFactors() const;

    /**
     * The pattern's complete language, when it is finite and small:
     * every string (ASCII-lower-cased) the pattern can match, and
     * nothing else. nullopt when the language is infinite, too large
     * to enumerate, or the pattern failed to re-parse. Rule-set
     * analysis uses it to decide language containment (shadowing)
     * without executing the VM.
     */
    std::optional<std::vector<std::string>> exactLiterals() const;

    /**
     * Scan the pattern AST for exponential-backtracking hazards:
     * a quantifier that can iterate more than once whose body
     * contains another variable-count repetition of non-empty text
     * (the '(x+)+' shape). Returns a description of the first hazard
     * found, nullopt when the pattern is safe. Purely structural —
     * no timing, no VM execution.
     */
    std::optional<std::string> backtrackingHazard() const;

  private:
    friend class RegexCompiler;
    friend class RegexLinear;
    friend struct RegexAutomataAccess;

    using Op = redetail::Op;
    using Inst = redetail::Inst;
    using CharClass = redetail::CharClass;

    bool runFrom(std::string_view subject, std::size_t start,
                 RegexMatch &out, bool *exhausted,
                 bool require_full = false) const;

    std::string pattern_;
    RegexOptions options_;
    std::vector<Inst> program_;
    std::vector<CharClass> classes_;
    int groupCount_ = 0;
    /** Lazily filled DFA state cache, shared across copies. */
    std::shared_ptr<RegexLinearCache> linear_;
};

/** Escape all regex metacharacters so text matches literally. */
std::string regexEscape(std::string_view literal);

} // namespace rememberr

#endif // REMEMBERR_TEXT_REGEX_HH
