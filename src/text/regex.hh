/**
 * @file
 * A self-contained regular-expression engine.
 *
 * The software-assisted classification of Section V-A relies on
 * regular expressions in two places: conservative category
 * prefiltering and the syntax-highlighting engine that marks the
 * erratum text spans relevant to a category. Match *spans* (not just
 * booleans) are therefore part of the API.
 *
 * Supported syntax:
 *   - literals, '.', escapes \d \D \w \W \s \S plus \n \t \r \\ etc.
 *   - character classes [abc], [a-z0-9], negated [^...]
 *   - groups (...) (capturing) and (?:...) (non-capturing)
 *   - alternation a|b
 *   - quantifiers * + ? {m} {m,} {m,n}, each with a lazy '?' variant
 *   - anchors ^ $ and word boundaries \b \B
 *
 * The implementation compiles to a small bytecode program executed by
 * a backtracking VM. A per-match step budget turns pathological
 * backtracking into a reported error instead of a hang.
 */

#ifndef REMEMBERR_TEXT_REGEX_HH
#define REMEMBERR_TEXT_REGEX_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/expected.hh"

namespace rememberr {

/** Result of a successful regex match. */
struct RegexMatch
{
    /** Byte offset of the match start in the subject. */
    std::size_t begin = 0;
    /** Byte offset one past the match end. */
    std::size_t end = 0;
    /**
     * Capture-group spans, 1-based group numbering mapped to index
     * (group 1 is groups[0]); nullopt when the group did not
     * participate in the match.
     */
    std::vector<std::optional<std::pair<std::size_t, std::size_t>>>
        groups;

    std::size_t length() const { return end - begin; }

    /** Extract the matched text from the subject. */
    std::string
    text(std::string_view subject) const
    {
        return std::string(subject.substr(begin, end - begin));
    }
};

/** Compilation and execution options. */
struct RegexOptions
{
    /** ASCII case-insensitive matching. */
    bool ignoreCase = false;
    /** VM step budget per match attempt. */
    std::size_t stepLimit = 1u << 20;
};

/** A compiled regular expression. Immutable and cheap to copy. */
class Regex
{
  public:
    /** Compile a pattern; reports syntax errors with offsets. */
    static Expected<Regex> compile(std::string_view pattern,
                                   RegexOptions options = {});

    /**
     * Compile a pattern that must be valid (library-internal rule
     * tables). Panics on syntax errors.
     */
    static Regex compileOrDie(std::string_view pattern,
                              RegexOptions options = {});

    /** Anchored match over the whole subject. */
    bool fullMatch(std::string_view subject) const;

    /**
     * Find the leftmost match at or after position from.
     * Returns nullopt when there is no match (or the step budget is
     * exhausted, in which case exhausted is set when non-null).
     */
    std::optional<RegexMatch> search(std::string_view subject,
                                     std::size_t from = 0,
                                     bool *exhausted = nullptr) const;

    /** All non-overlapping matches, left to right. */
    std::vector<RegexMatch> findAll(std::string_view subject) const;

    /** True when the pattern occurs anywhere in the subject. */
    bool contains(std::string_view subject) const;

    /** The original pattern text. */
    const std::string &pattern() const { return pattern_; }

    /** Number of capturing groups. */
    int groupCount() const { return groupCount_; }

    /** Whether the pattern matches ASCII case-insensitively. */
    bool ignoreCase() const { return options_.ignoreCase; }

    /**
     * Required literal factors: a set of ASCII-lower-cased strings
     * such that every subject containing a match also contains at
     * least one factor as a substring of its lower-cased form. The
     * set is conservative in the only safe direction — a factor hit
     * does not imply a match, but a miss of every factor proves there
     * is none — which is exactly what a multi-pattern literal
     * prefilter needs. An empty vector means no factor could be
     * extracted and callers must always run the full matcher.
     */
    std::vector<std::string> literalFactors() const;

    /**
     * The pattern's complete language, when it is finite and small:
     * every string (ASCII-lower-cased) the pattern can match, and
     * nothing else. nullopt when the language is infinite, too large
     * to enumerate, or the pattern failed to re-parse. Rule-set
     * analysis uses it to decide language containment (shadowing)
     * without executing the VM.
     */
    std::optional<std::vector<std::string>> exactLiterals() const;

    /**
     * Scan the pattern AST for exponential-backtracking hazards:
     * a quantifier that can iterate more than once whose body
     * contains another variable-count repetition of non-empty text
     * (the '(x+)+' shape). Returns a description of the first hazard
     * found, nullopt when the pattern is safe. Purely structural —
     * no timing, no VM execution.
     */
    std::optional<std::string> backtrackingHazard() const;

  private:
    friend class RegexCompiler;

    enum class Op : std::uint8_t {
        Char,       ///< match a single (possibly case-folded) byte
        Any,        ///< match any byte except '\n'
        Class,      ///< match a character class by table index
        Split,      ///< try arg1 first, then arg2 (priority)
        Jump,       ///< unconditional jump to arg1
        Save,       ///< record current position in slot arg1
        Bol,        ///< assert beginning of subject or after '\n'
        Eol,        ///< assert end of subject or before '\n'
        WordB,      ///< assert a word boundary
        NotWordB,   ///< assert no word boundary
        Accept,     ///< match complete
    };

    struct Inst
    {
        Op op;
        std::int32_t arg1 = 0;
        std::int32_t arg2 = 0;
        char ch = 0;
    };

    struct CharClass
    {
        bool negated = false;
        /** Inclusive byte ranges. */
        std::vector<std::pair<unsigned char, unsigned char>> ranges;

        bool matches(unsigned char c, bool ignore_case) const;
    };

    bool runFrom(std::string_view subject, std::size_t start,
                 RegexMatch &out, bool *exhausted,
                 bool require_full = false) const;

    std::string pattern_;
    RegexOptions options_;
    std::vector<Inst> program_;
    std::vector<CharClass> classes_;
    int groupCount_ = 0;
};

/** Escape all regex metacharacters so text matches literally. */
std::string regexEscape(std::string_view literal);

} // namespace rememberr

#endif // REMEMBERR_TEXT_REGEX_HH
