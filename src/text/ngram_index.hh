/**
 * @file
 * Inverted n-gram index for duplicate-candidate generation.
 *
 * Comparing all ~2,000 Intel errata pairwise is quadratic; the index
 * returns, for a query title, only the documents sharing at least one
 * character n-gram, ranked by shared-gram count. DESIGN.md D1
 * evaluates the index against the all-pairs baseline.
 */

#ifndef REMEMBERR_TEXT_NGRAM_INDEX_HH
#define REMEMBERR_TEXT_NGRAM_INDEX_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace rememberr {

/** A scored candidate from the index. */
struct NgramCandidate
{
    std::uint32_t docId = 0;
    /** Number of distinct query n-grams also present in the doc. */
    std::size_t sharedGrams = 0;
    /** sharedGrams / distinct query grams, in [0, 1]. */
    double overlap = 0.0;
};

/**
 * Reusable per-caller scratch for NgramIndex::query(): the
 * shared-gram counting table and touched list survive across queries
 * so a dedup pass over thousands of titles does not rebuild a hash
 * map per call. Not thread-safe; use one scratch per worker thread.
 */
struct NgramQueryScratch
{
    /** Shared-gram count per doc id; sized to the index lazily and
     * reset sparsely via touched after every query. */
    std::vector<std::size_t> sharedCounts;
    /** Doc ids with a nonzero count in sharedCounts. */
    std::vector<std::uint32_t> touched;
};

/** An inverted index from character n-grams to document ids. */
class NgramIndex
{
  public:
    /** @param n the gram length (3 works well for titles). */
    explicit NgramIndex(std::size_t n = 3);

    /** Add a document; ids are assigned sequentially from 0. */
    std::uint32_t add(std::string_view text);

    std::size_t size() const { return docGramCounts_.size(); }
    std::size_t gramLength() const { return n_; }

    /**
     * Candidates sharing at least minOverlap fraction of the query's
     * distinct grams, sorted by decreasing overlap. The query doc
     * itself (by id) can be excluded with excludeId.
     */
    std::vector<NgramCandidate>
    query(std::string_view text, double min_overlap = 0.2,
          std::int64_t exclude_id = -1) const;

    /**
     * Same results as the overload above, but counts shared grams in
     * caller-owned scratch instead of a per-call hash map. Results
     * are sorted by (overlap desc, docId asc), so they do not depend
     * on accumulation order.
     */
    std::vector<NgramCandidate>
    query(std::string_view text, NgramQueryScratch &scratch,
          double min_overlap = 0.2, std::int64_t exclude_id = -1)
        const;

  private:
    std::vector<std::string> distinctGrams(std::string_view text) const;

    std::size_t n_;
    std::unordered_map<std::string, std::vector<std::uint32_t>>
        postings_;
    /** Distinct-gram count per document, for normalization. */
    std::vector<std::size_t> docGramCounts_;
};

} // namespace rememberr

#endif // REMEMBERR_TEXT_NGRAM_INDEX_HH
