/**
 * @file
 * String and token-set similarity metrics.
 *
 * The Intel duplicate-detection pipeline of Section IV-A marks errata
 * with (nearly) identical titles as duplicates and then ranks the
 * remaining pairs by decreasing title similarity for manual review.
 * These metrics implement both steps. DESIGN.md D3 compares them.
 */

#ifndef REMEMBERR_TEXT_SIMILARITY_HH
#define REMEMBERR_TEXT_SIMILARITY_HH

#include <string>
#include <string_view>
#include <vector>

namespace rememberr {

/** Levenshtein edit distance (insert/delete/substitute, unit cost). */
std::size_t levenshteinDistance(std::string_view a, std::string_view b);

/**
 * Damerau-Levenshtein distance (adds adjacent transposition), the
 * restricted "optimal string alignment" variant.
 */
std::size_t damerauDistance(std::string_view a, std::string_view b);

/** Levenshtein similarity normalized to [0, 1]; 1 means equal. */
double levenshteinSimilarity(std::string_view a, std::string_view b);

/** Jaro similarity in [0, 1]. */
double jaroSimilarity(std::string_view a, std::string_view b);

/**
 * Jaro-Winkler similarity in [0, 1] with the standard prefix scale
 * 0.1 over at most 4 common prefix characters.
 */
double jaroWinklerSimilarity(std::string_view a, std::string_view b);

/** Jaccard similarity of the two token multiset supports, in [0, 1]. */
double tokenJaccardSimilarity(const std::vector<std::string> &a,
                              const std::vector<std::string> &b);

/** Dice coefficient over token sets, in [0, 1]. */
double tokenDiceSimilarity(const std::vector<std::string> &a,
                           const std::vector<std::string> &b);

/** Cosine similarity of term-frequency vectors, in [0, 1]. */
double tokenCosineSimilarity(const std::vector<std::string> &a,
                             const std::vector<std::string> &b);

/**
 * The composite title similarity used by the dedup pipeline: the
 * maximum of Jaro-Winkler over canonicalized text and token Jaccard,
 * which is robust to both small edits and word reorderings.
 */
double titleSimilarity(std::string_view a, std::string_view b);

} // namespace rememberr

#endif // REMEMBERR_TEXT_SIMILARITY_HH
