/**
 * @file
 * String and token-set similarity metrics.
 *
 * The Intel duplicate-detection pipeline of Section IV-A marks errata
 * with (nearly) identical titles as duplicates and then ranks the
 * remaining pairs by decreasing title similarity for manual review.
 * These metrics implement both steps. DESIGN.md D3 compares them.
 */

#ifndef REMEMBERR_TEXT_SIMILARITY_HH
#define REMEMBERR_TEXT_SIMILARITY_HH

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace rememberr {

/**
 * Levenshtein edit distance (insert/delete/substitute, unit cost).
 * Dispatches to the bit-parallel kernel; identical results to the
 * scalar reference for every input.
 */
std::size_t levenshteinDistance(std::string_view a, std::string_view b);

/**
 * Scalar rolling-row reference implementation, O(min(n,m)) memory.
 * Kept public so differential tests (and the kernel benchmarks) can
 * pin the bit-parallel kernels against an obviously-correct baseline.
 */
std::size_t levenshteinDistanceScalar(std::string_view a,
                                      std::string_view b);

/**
 * Myers' bit-vector Levenshtein kernel (64-bit blocks, multi-block
 * for longer strings). Exact: equals the scalar reference for every
 * input, at roughly one column update per 64 pattern characters.
 */
std::size_t levenshteinDistanceBitParallel(std::string_view a,
                                           std::string_view b);

/**
 * Thresholded distance: the exact distance when it is <= k, nullopt
 * otherwise. Pre-rejects on length difference and a character-count
 * lower bound, then runs a banded O(k * min(n,m)) DP that exits as
 * soon as every cell of a row exceeds k. Equivalent to computing
 * levenshteinDistance and comparing against k, only cheaper.
 */
std::optional<std::size_t> levenshteinWithin(std::string_view a,
                                             std::string_view b,
                                             std::size_t k);

/**
 * Damerau-Levenshtein distance (adds adjacent transposition), the
 * restricted "optimal string alignment" variant.
 */
std::size_t damerauDistance(std::string_view a, std::string_view b);

/** Levenshtein similarity normalized to [0, 1]; 1 means equal. */
double levenshteinSimilarity(std::string_view a, std::string_view b);

/** Jaro similarity in [0, 1]. */
double jaroSimilarity(std::string_view a, std::string_view b);

/**
 * Jaro-Winkler similarity in [0, 1] with the standard prefix scale
 * 0.1 over at most 4 common prefix characters.
 */
double jaroWinklerSimilarity(std::string_view a, std::string_view b);

/** Jaccard similarity of the two token multiset supports, in [0, 1]. */
double tokenJaccardSimilarity(const std::vector<std::string> &a,
                              const std::vector<std::string> &b);

/** Dice coefficient over token sets, in [0, 1]. */
double tokenDiceSimilarity(const std::vector<std::string> &a,
                           const std::vector<std::string> &b);

/** Cosine similarity of term-frequency vectors, in [0, 1]. */
double tokenCosineSimilarity(const std::vector<std::string> &a,
                             const std::vector<std::string> &b);

/**
 * The composite title similarity used by the dedup pipeline: the
 * maximum of Jaro-Winkler over canonicalized text and token Jaccard,
 * which is robust to both small edits and word reorderings.
 */
double titleSimilarity(std::string_view a, std::string_view b);

/**
 * Levenshtein similarity thresholded at minSimilarity: the exact
 * levenshteinSimilarity when it is >= minSimilarity, nullopt when
 * the thresholded kernel proves it below. Bit-identical to computing
 * the full similarity and comparing.
 */
std::optional<double>
levenshteinSimilarityAtLeast(std::string_view a, std::string_view b,
                             double min_similarity);

/**
 * Precomputed per-title state for the thresholded composite
 * similarity: dedup compares each candidate title against many
 * others, so canonicalization, tokenization and the byte histogram
 * move out of the pair loop into one pass per title.
 */
struct TitleProfile
{
    /** strings::canonicalize of the raw title. */
    std::string canonical;
    /** Sorted distinct stop-word-filtered tokens (Jaccard support). */
    std::vector<std::string> tokens;
    /** Byte histogram of the canonical text (Jaro upper bound). */
    std::array<std::uint32_t, 256> histogram{};
};

TitleProfile makeTitleProfile(std::string_view title);

/** Counters from the thresholded composite kernel. */
struct SimilarityKernelStats
{
    /** Pairs scored. */
    std::uint64_t pairs = 0;
    /** Pairs rejected by the histogram screen without running the
     * quadratic Jaro window loop. */
    std::uint64_t screenRejects = 0;
    /** Pairs where the full Jaro-Winkler loop actually ran. */
    std::uint64_t jaroRuns = 0;
    /** Pairs at or above the threshold. */
    std::uint64_t kept = 0;

    SimilarityKernelStats &operator+=(const SimilarityKernelStats &o);
};

/**
 * Thresholded composite similarity over precomputed profiles: the
 * exact titleSimilarity when it is >= minKeep, nullopt otherwise.
 * A conservative histogram upper bound on Jaro-Winkler skips the
 * quadratic window loop whenever the pair provably cannot reach
 * minKeep (or Jaccard already decides the max) — kept pairs and
 * their scores are bit-identical to titleSimilarity.
 */
std::optional<double>
titleSimilarityAtLeast(const TitleProfile &a, const TitleProfile &b,
                       double min_keep,
                       SimilarityKernelStats *stats = nullptr);

} // namespace rememberr

#endif // REMEMBERR_TEXT_SIMILARITY_HH
