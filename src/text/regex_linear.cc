#include "text/regex_linear.hh"

#include <algorithm>
#include <atomic>

#include "obs/metrics.hh"

namespace rememberr {

namespace {

using redetail::CharClass;
using redetail::Inst;
using redetail::instConsumes;
using redetail::isWordChar;
using redetail::Op;

/**
 * Default per-DFA state cap. Rule-table patterns compile to a
 * handful of states; 256 is far above anything the corpus produces
 * while still bounding memory at states × byte-classes × 4 bytes.
 */
constexpr std::size_t kDefaultMaxDfaStates = 256;
/** Flushes tolerated per scan before falling back to the NFA. */
constexpr std::size_t kMaxFlushesPerScan = 2;

std::atomic<std::size_t> g_maxDfaStates{kDefaultMaxDfaStates};

std::size_t
maxDfaStates()
{
    std::size_t cap = g_maxDfaStates.load(std::memory_order_relaxed);
    // A one-state cache cannot hold even a start state plus a
    // successor; keep the flush machinery well-defined.
    return cap < 2 ? 2 : cap;
}

/**
 * Context classes for the byte on the left of a gap. Begin-of-input
 * and '\n' are the same context: both satisfy Bol and neither is a
 * word character.
 */
enum : std::uint8_t { kPrevBolOk = 0, kPrevWord = 1, kPrevOther = 2 };

std::uint8_t
prevClassOf(unsigned char byte)
{
    if (byte == '\n')
        return kPrevBolOk;
    if (isWordChar(static_cast<char>(byte)))
        return kPrevWord;
    return kPrevOther;
}

std::uint8_t
prevClassAt(std::string_view subject, std::size_t gap)
{
    if (gap == 0)
        return kPrevBolOk;
    return prevClassOf(static_cast<unsigned char>(subject[gap - 1]));
}

/** The slices of a compiled Regex the engines read. */
struct Prog
{
    const std::vector<Inst> &insts;
    const std::vector<CharClass> &classes;
    bool ignoreCase;
};

/**
 * Epsilon closure at a gap. Zero-width assertions are decided from
 * the (prevClass, nextByte) context — the reason DFA transitions are
 * keyed by byte class and states carry prevClass. Collects the
 * consuming pcs reachable without consuming input and whether Accept
 * is reachable. The visited map makes closure terminate on
 * empty-body loops like (?:a*)* that would hang a naive walker.
 */
struct Closure
{
    std::vector<std::int32_t> consuming;
    bool accept = false;

    void
    run(const Prog &prog, const std::vector<std::int32_t> &kernel,
        bool inject_start, std::uint8_t prev_class, int next_byte)
    {
        consuming.clear();
        accept = false;
        visited_.assign(prog.insts.size(), 0);
        for (std::int32_t pc : kernel)
            add(prog, pc, prev_class, next_byte);
        if (inject_start)
            add(prog, 0, prev_class, next_byte);
    }

  private:
    void
    add(const Prog &prog, std::int32_t pc, std::uint8_t prev_class,
        int next_byte)
    {
        if (visited_[static_cast<std::size_t>(pc)])
            return;
        visited_[static_cast<std::size_t>(pc)] = 1;
        const Inst &inst = prog.insts[static_cast<std::size_t>(pc)];
        switch (inst.op) {
          case Op::Char:
          case Op::Any:
          case Op::Class:
            consuming.push_back(pc);
            return;
          case Op::Split:
            add(prog, inst.arg1, prev_class, next_byte);
            add(prog, inst.arg2, prev_class, next_byte);
            return;
          case Op::Jump:
            add(prog, inst.arg1, prev_class, next_byte);
            return;
          case Op::Save:
            add(prog, pc + 1, prev_class, next_byte);
            return;
          case Op::Bol:
            if (prev_class == kPrevBolOk)
                add(prog, pc + 1, prev_class, next_byte);
            return;
          case Op::Eol:
            if (next_byte < 0 || next_byte == '\n')
                add(prog, pc + 1, prev_class, next_byte);
            return;
          case Op::WordB:
          case Op::NotWordB: {
            bool before = prev_class == kPrevWord;
            bool after = next_byte >= 0 &&
                         isWordChar(static_cast<char>(next_byte));
            bool boundary = before != after;
            if ((inst.op == Op::WordB) == boundary)
                add(prog, pc + 1, prev_class, next_byte);
            return;
          }
          case Op::Accept:
            accept = true;
            return;
        }
    }

    std::vector<std::uint8_t> visited_;
};

/** Advance the closure's consuming set over one byte: the next
 * kernel, canonically sorted so state identity is well-defined. */
std::vector<std::int32_t>
stepKernel(const Prog &prog, const std::vector<std::int32_t> &consuming,
           unsigned char byte)
{
    std::vector<std::int32_t> next;
    next.reserve(consuming.size());
    for (std::int32_t pc : consuming) {
        const Inst &inst = prog.insts[static_cast<std::size_t>(pc)];
        if (instConsumes(inst, prog.classes, prog.ignoreCase, byte))
            next.push_back(pc + 1);
    }
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    return next;
}

/**
 * Uncached NFA decision scan — the fallback when a cache is absent
 * or keeps overflowing, and the semantic reference the DFA memoizes.
 * O(subject × program), never exponential.
 */
bool
nfaDecide(const Prog &prog, std::string_view subject, std::size_t from,
          bool anchored)
{
    Closure closure;
    std::vector<std::int32_t> kernel;
    if (anchored)
        kernel.push_back(0);
    std::uint8_t prev = prevClassAt(subject, from);
    for (std::size_t p = from;; ++p) {
        int nextByte =
            p < subject.size()
                ? static_cast<int>(
                      static_cast<unsigned char>(subject[p]))
                : -1;
        closure.run(prog, kernel, !anchored, prev, nextByte);
        // An anchored (fullMatch) accept only counts at end of
        // input; mid-subject Accept is just a prefix match.
        if (closure.accept && (!anchored || p == subject.size()))
            return true;
        if (p == subject.size())
            return false;
        kernel = stepKernel(prog, closure.consuming,
                            static_cast<unsigned char>(nextByte));
        if (anchored && kernel.empty())
            return false;
        prev = prevClassOf(static_cast<unsigned char>(nextByte));
    }
}

/**
 * Partition bytes into equivalence classes: two bytes that every
 * consuming instruction treats alike, with the same word-char and
 * newline behavior, always drive identical transitions, so DFA
 * transition tables need one slot per class instead of 256.
 */
void
buildByteClasses(const Prog &prog, RegexLinearCache &cache)
{
    std::map<std::vector<std::uint8_t>, std::uint16_t> sigIndex;
    for (int b = 0; b < 256; ++b) {
        unsigned char byte = static_cast<unsigned char>(b);
        std::vector<std::uint8_t> sig;
        sig.reserve(prog.insts.size() + 2);
        for (const Inst &inst : prog.insts) {
            switch (inst.op) {
              case Op::Char:
              case Op::Any:
              case Op::Class:
                sig.push_back(instConsumes(inst, prog.classes,
                                           prog.ignoreCase, byte)
                                  ? 1
                                  : 0);
                break;
              default:
                break;
            }
        }
        sig.push_back(
            isWordChar(static_cast<char>(byte)) ? 1 : 0);
        sig.push_back(byte == '\n' ? 1 : 0);
        auto [it, inserted] = sigIndex.try_emplace(
            std::move(sig),
            static_cast<std::uint16_t>(sigIndex.size()));
        cache.byteClass[static_cast<std::size_t>(b)] = it->second;
    }
    cache.numClasses = static_cast<std::uint16_t>(sigIndex.size());
}

using Dfa = RegexLinearCache::Dfa;

/** Find-or-create the state for (kernel, prevClass). */
std::int32_t
internState(Dfa &dfa, std::vector<std::int32_t> kernel,
            std::uint8_t prev_class, std::uint16_t num_classes)
{
    auto key = std::make_pair(std::move(kernel), prev_class);
    auto it = dfa.index.find(key);
    if (it != dfa.index.end())
        return it->second;
    std::int32_t id = static_cast<std::int32_t>(dfa.states.size());
    Dfa::State state;
    state.kernel = key.first;
    state.prevClass = prev_class;
    state.dead = state.kernel.empty();
    state.trans.assign(num_classes, -1);
    dfa.states.push_back(std::move(state));
    dfa.index.emplace(std::move(key), id);
    return id;
}

/** Compute and cache one transition. Unique lock must be held. */
std::int32_t
buildTransition(const Prog &prog, RegexLinearCache &cache, Dfa &dfa,
                bool anchored, std::int32_t state_id,
                unsigned char byte, Closure &closure)
{
    // Copy the kernel: interning the successor may reallocate states.
    std::vector<std::int32_t> kernel =
        dfa.states[static_cast<std::size_t>(state_id)].kernel;
    std::uint8_t prev =
        dfa.states[static_cast<std::size_t>(state_id)].prevClass;
    closure.run(prog, kernel, !anchored, prev,
                static_cast<int>(byte));
    bool matchedHere = closure.accept;
    std::vector<std::int32_t> next =
        stepKernel(prog, closure.consuming, byte);
    std::int32_t nextId = internState(dfa, std::move(next),
                                      prevClassOf(byte),
                                      cache.numClasses);
    std::int32_t value = (nextId << 1) | (matchedHere ? 1 : 0);
    dfa.states[static_cast<std::size_t>(state_id)]
        .trans[cache.byteClass[byte]] = value;
    return value;
}

/**
 * Read-only scan over cached states. Returns 0/1 for a decided
 * scan, -1 on the first unexplored transition (caller upgrades to
 * the building scan). Shared lock must be held.
 */
int
scanCached(const Prog &prog, const RegexLinearCache &cache,
           const Dfa &dfa, bool anchored, std::string_view subject,
           std::size_t from)
{
    std::vector<std::int32_t> startKernel;
    if (anchored)
        startKernel.push_back(0);
    auto it = dfa.index.find(
        std::make_pair(std::move(startKernel),
                       prevClassAt(subject, from)));
    if (it == dfa.index.end())
        return -1;
    std::int32_t state = it->second;
    for (std::size_t p = from; p < subject.size(); ++p) {
        const Dfa::State &st =
            dfa.states[static_cast<std::size_t>(state)];
        if (anchored && st.dead)
            return 0;
        std::int32_t t = st.trans[cache.byteClass[
            static_cast<unsigned char>(subject[p])]];
        if (t < 0)
            return -1;
        if (!anchored && (t & 1))
            return 1;
        state = t >> 1;
    }
    const Dfa::State &st =
        dfa.states[static_cast<std::size_t>(state)];
    if (anchored && st.dead)
        return 0;
    if (st.acceptAtEof < 0)
        return -1;
    return st.acceptAtEof;
}

/**
 * Scan that builds missing states as it goes. Flushes the cache and
 * restarts when the state cap is hit; after kMaxFlushesPerScan
 * flushes the subject clearly needs more states than the cache may
 * hold, and the scan completes on the uncached NFA instead. Unique
 * lock must be held.
 */
int
scanBuild(const Prog &prog, RegexLinearCache &cache, Dfa &dfa,
          bool anchored, std::string_view subject, std::size_t from)
{
    Closure closure;
    std::size_t flushes = 0;
    for (;;) {
        std::vector<std::int32_t> startKernel;
        if (anchored)
            startKernel.push_back(0);
        std::int32_t state =
            internState(dfa, std::move(startKernel),
                        prevClassAt(subject, from), cache.numClasses);
        bool flushed = false;
        for (std::size_t p = from; p < subject.size(); ++p) {
            if (anchored &&
                dfa.states[static_cast<std::size_t>(state)].dead) {
                return 0;
            }
            unsigned char byte =
                static_cast<unsigned char>(subject[p]);
            std::int32_t t =
                dfa.states[static_cast<std::size_t>(state)]
                    .trans[cache.byteClass[byte]];
            if (t < 0) {
                if (dfa.states.size() >= maxDfaStates()) {
                    dfa.states.clear();
                    dfa.index.clear();
                    MetricsRegistry::global()
                        .counter("text.regex.dfa_flush")
                        .add();
                    if (++flushes > kMaxFlushesPerScan) {
                        MetricsRegistry::global()
                            .counter("text.regex.dfa_fallback")
                            .add();
                        return nfaDecide(prog, subject, from,
                                         anchored)
                                   ? 1
                                   : 0;
                    }
                    flushed = true;
                    break;
                }
                t = buildTransition(prog, cache, dfa, anchored,
                                    state, byte, closure);
            }
            if (!anchored && (t & 1))
                return 1;
            state = t >> 1;
        }
        if (flushed)
            continue;
        Dfa::State &st =
            dfa.states[static_cast<std::size_t>(state)];
        if (anchored && st.dead)
            return 0;
        if (st.acceptAtEof < 0) {
            closure.run(prog, st.kernel, !anchored, st.prevClass, -1);
            st.acceptAtEof = closure.accept ? 1 : 0;
        }
        return st.acceptAtEof;
    }
}

/** DFA decision with the shared-cache protocol described in the
 * header; falls back to the uncached NFA when no cache exists. */
bool
decideWithCache(const Prog &prog, RegexLinearCache *cache,
                bool anchored, std::string_view subject,
                std::size_t from)
{
    if (from > subject.size())
        return false;
    if (!cache)
        return nfaDecide(prog, subject, from, anchored);
    std::call_once(cache->once,
                   [&] { buildByteClasses(prog, *cache); });
    Dfa &dfa = anchored ? cache->anchored : cache->unanchored;
    {
        std::shared_lock<std::shared_mutex> lock(cache->mutex);
        int r = scanCached(prog, *cache, dfa, anchored, subject, from);
        if (r >= 0)
            return r == 1;
    }
    std::unique_lock<std::shared_mutex> lock(cache->mutex);
    return scanBuild(prog, *cache, dfa, anchored, subject, from) == 1;
}

/**
 * Pike NFA simulation: leftmost-first span search, identical
 * semantics to the backtracking VM for capture-free patterns.
 *
 * Threads carry (pc, start) and live in priority order: earlier
 * start first, then backtracking DFS order (Split arg1 before arg2)
 * within a start. When a thread reaches Accept, every lower-priority
 * thread is cut and the match is recorded; surviving higher-priority
 * threads keep running and overwrite the record if they accept later
 * — exactly the path the backtracking VM would have committed to
 * first. New start threads are seeded at each gap only until a match
 * is recorded.
 */
std::optional<RegexMatch>
pikeSearch(const Prog &prog, std::string_view subject,
           std::size_t from)
{
    struct Thread
    {
        std::int32_t pc;
        std::size_t start;
    };

    const std::size_t n = subject.size();
    if (from > n)
        return std::nullopt;

    std::vector<Thread> clist, nlist;
    std::vector<std::uint32_t> visited(prog.insts.size(), 0);
    std::uint32_t gen = 0;

    bool matched = false;
    std::size_t mStart = 0;
    std::size_t mEnd = 0;
    std::size_t curGap = from;

    // Epsilon-closure insertion in DFS (priority) order. Returns
    // true when Accept was reached: the caller must cut all
    // lower-priority work at this gap.
    auto add = [&](auto &&self, std::vector<Thread> &list,
                   std::int32_t pc, std::size_t start,
                   std::uint8_t prev, int nextByte) -> bool {
        if (visited[static_cast<std::size_t>(pc)] == gen)
            return false;
        visited[static_cast<std::size_t>(pc)] = gen;
        const Inst &inst = prog.insts[static_cast<std::size_t>(pc)];
        switch (inst.op) {
          case Op::Char:
          case Op::Any:
          case Op::Class:
            list.push_back({pc, start});
            return false;
          case Op::Split:
            if (self(self, list, inst.arg1, start, prev, nextByte))
                return true;
            return self(self, list, inst.arg2, start, prev,
                        nextByte);
          case Op::Jump:
            return self(self, list, inst.arg1, start, prev,
                        nextByte);
          case Op::Save:
            return self(self, list, pc + 1, start, prev, nextByte);
          case Op::Bol:
            if (prev == kPrevBolOk)
                return self(self, list, pc + 1, start, prev,
                            nextByte);
            return false;
          case Op::Eol:
            if (nextByte < 0 || nextByte == '\n')
                return self(self, list, pc + 1, start, prev,
                            nextByte);
            return false;
          case Op::WordB:
          case Op::NotWordB: {
            bool before = prev == kPrevWord;
            bool after = nextByte >= 0 &&
                         isWordChar(static_cast<char>(nextByte));
            bool boundary = before != after;
            if ((inst.op == Op::WordB) == boundary)
                return self(self, list, pc + 1, start, prev,
                            nextByte);
            return false;
          }
          case Op::Accept:
            matched = true;
            mStart = start;
            mEnd = curGap;
            return true;
        }
        return false;
    };

    ++gen;
    for (std::size_t p = from;; ++p) {
        curGap = p;
        int hereByte =
            p < n ? static_cast<int>(
                        static_cast<unsigned char>(subject[p]))
                  : -1;
        std::uint8_t prevP = prevClassAt(subject, p);
        // Seed a fresh, lowest-priority attempt at this gap; once a
        // match is recorded, later starts can never beat it.
        if (!matched)
            add(add, clist, 0, p, prevP, hereByte);
        if (p == n)
            break;
        if (clist.empty() && matched)
            break;
        unsigned char byte = static_cast<unsigned char>(subject[p]);
        // Step every surviving thread over the byte; closures for
        // the next gap see (this byte, the byte after it).
        nlist.clear();
        ++gen;
        std::uint8_t nextPrev = prevClassOf(byte);
        int nextByte =
            p + 1 < n ? static_cast<int>(
                            static_cast<unsigned char>(subject[p + 1]))
                      : -1;
        curGap = p + 1;
        for (const Thread &t : clist) {
            const Inst &inst =
                prog.insts[static_cast<std::size_t>(t.pc)];
            if (!instConsumes(inst, prog.classes, prog.ignoreCase,
                              byte)) {
                continue;
            }
            if (add(add, nlist, t.pc + 1, t.start, nextPrev,
                    nextByte)) {
                break;
            }
        }
        clist.swap(nlist);
    }

    if (!matched)
        return std::nullopt;
    RegexMatch match;
    match.begin = mStart;
    match.end = mEnd;
    return match;
}

} // namespace

bool
RegexLinear::contains(const Regex &regex, std::string_view subject,
                      std::size_t from)
{
    Prog prog{regex.program_, regex.classes_,
              regex.options_.ignoreCase};
    return decideWithCache(prog, regex.linear_.get(), false, subject,
                           from);
}

bool
RegexLinear::fullMatch(const Regex &regex, std::string_view subject)
{
    Prog prog{regex.program_, regex.classes_,
              regex.options_.ignoreCase};
    return decideWithCache(prog, regex.linear_.get(), true, subject,
                           0);
}

std::optional<RegexMatch>
RegexLinear::searchSpan(const Regex &regex, std::string_view subject,
                        std::size_t from)
{
    Prog prog{regex.program_, regex.classes_,
              regex.options_.ignoreCase};
    // The DFA decides "no match anywhere" in O(1)/byte; only
    // subjects that do match pay for the span-tracking simulation.
    if (!decideWithCache(prog, regex.linear_.get(), false, subject,
                         from)) {
        return std::nullopt;
    }
    return pikeSearch(prog, subject, from);
}

void
RegexLinear::setMaxDfaStatesForTest(std::size_t cap)
{
    g_maxDfaStates.store(cap == 0 ? kDefaultMaxDfaStates : cap,
                         std::memory_order_relaxed);
}

} // namespace rememberr
