/**
 * @file
 * The compiled regex program representation, shared by every
 * execution engine.
 *
 * A compiled `Regex` is a Thompson-style bytecode program: Char /
 * Any / Class consume one byte, Split / Jump / Save are epsilon
 * edges, the anchor opcodes are zero-width assertions, and Accept
 * ends a match. Three engines interpret the same program:
 *
 *   - the backtracking VM in regex.cc (full semantics including
 *     capture groups; the differential oracle);
 *   - the lazy-DFA decision engine in regex_linear.cc (booleans in
 *     guaranteed linear time);
 *   - the Pike NFA simulation in regex_linear.cc (leftmost match
 *     spans in guaranteed linear time, capture-free patterns).
 *
 * The types live in `redetail` rather than inside `Regex` so the
 * linear engines can be implemented as free code instead of an
 * ever-growing friend class.
 */

#ifndef REMEMBERR_TEXT_REGEX_PROGRAM_HH
#define REMEMBERR_TEXT_REGEX_PROGRAM_HH

#include <cctype>
#include <cstdint>
#include <utility>
#include <vector>

namespace rememberr {
namespace redetail {

enum class Op : std::uint8_t {
    Char,       ///< match a single (possibly case-folded) byte
    Any,        ///< match any byte except '\n'
    Class,      ///< match a character class by table index
    Split,      ///< try arg1 first, then arg2 (priority)
    Jump,       ///< unconditional jump to arg1
    Save,       ///< record current position in slot arg1
    Bol,        ///< assert beginning of subject or after '\n'
    Eol,        ///< assert end of subject or before '\n'
    WordB,      ///< assert a word boundary
    NotWordB,   ///< assert no word boundary
    Accept,     ///< match complete
};

struct Inst
{
    Op op;
    std::int32_t arg1 = 0;
    std::int32_t arg2 = 0;
    char ch = 0;
};

struct CharClass
{
    bool negated = false;
    /** Inclusive byte ranges. */
    std::vector<std::pair<unsigned char, unsigned char>> ranges;

    bool matches(unsigned char c, bool ignore_case) const;
};

inline char
foldCase(char c)
{
    return static_cast<char>(
        std::tolower(static_cast<unsigned char>(c)));
}

inline bool
isWordChar(char c)
{
    unsigned char u = static_cast<unsigned char>(c);
    return std::isalnum(u) || c == '_';
}

/**
 * Whether a consuming instruction (Char/Any/Class) accepts `byte`.
 * Every engine must route byte tests through here so the three
 * interpretations of one program recognize exactly the same
 * language.
 */
inline bool
instConsumes(const Inst &inst, const std::vector<CharClass> &classes,
             bool ignore_case, unsigned char byte)
{
    switch (inst.op) {
      case Op::Char: {
        char c = static_cast<char>(byte);
        if (ignore_case)
            c = foldCase(c);
        return c == inst.ch;
      }
      case Op::Any:
        return byte != static_cast<unsigned char>('\n');
      case Op::Class:
        return classes[static_cast<std::size_t>(inst.arg1)].matches(
            byte, ignore_case);
      default:
        return false;
    }
}

} // namespace redetail
} // namespace rememberr

#endif // REMEMBERR_TEXT_REGEX_PROGRAM_HH
