/**
 * @file
 * Bounded automata-theoretic analysis over compiled regex programs.
 *
 * The rule-table static analysis (RBE201/205/206/207) needs *language*
 * facts, not match results: is every text matched by one pattern also
 * matched by another, are two patterns interchangeable, can any text
 * fire two patterns at once. All three questions are decided here by
 * an on-the-fly product/subset construction over the shared Thompson
 * bytecode (regex_program.hh) — the same programs the matching tiers
 * execute, so the analyzed language and the matched language cannot
 * drift apart.
 *
 * Semantics: every procedure works on the **contains language** of a
 * pattern — the set of subjects `Regex::contains()` accepts, i.e. the
 * unanchored "a match occurs somewhere" reading, which is how the
 * classification engine consumes its rule patterns. Anchors (^ $) and
 * boundary assertions (\b \B) are interpreted exactly as the engines
 * do (Bol after '\n', Eol before '\n', ASCII word characters), so
 * previously unanalyzable patterns participate fully.
 *
 * Construction: a breadth-first search over product states
 *
 *   (kernels of side A, acceptedA, kernels of side B, acceptedB,
 *    context class of the previous byte)
 *
 * where each side is a union of one or more patterns, a kernel is the
 * sorted set of pending consuming pcs of one pattern (fresh match
 * attempts injected at every gap, as in the unanchored lazy DFA), and
 * "accepted" is sticky — once a side has matched inside some prefix,
 * every extension of that prefix is in its contains language, so the
 * side's kernels are dropped and the flag absorbs. Zero-width
 * assertions are decided from the (previous class, next byte)
 * context; the end-of-input case is evaluated with next byte = none.
 *
 * Transitions are explored per joint byte-equivalence class (two
 * bytes every pattern treats alike drive one transition), visiting
 * classes in a fixed printable-preference order, so the BFS finds a
 * *shortest* witness and, among equal-length witnesses, a
 * deterministic, human-readable one ("ab", not "\x01b").
 *
 * Everything is bounded: the search interns at most
 * `AutomataOptions::stateBudget` product states and reports
 * `Status::Budget` instead of silently truncating — the caller (RBE207)
 * is expected to surface that. See DESIGN.md §17.
 */

#ifndef REMEMBERR_TEXT_REGEX_AUTOMATA_HH
#define REMEMBERR_TEXT_REGEX_AUTOMATA_HH

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "text/regex.hh"

namespace rememberr {

/** Analysis limits. */
struct AutomataOptions
{
    /**
     * Maximum product states interned per decision. The default is
     * far above what any rule-table pair needs (tens of states)
     * while bounding memory and time on adversarial inputs.
     */
    std::size_t stateBudget = 4096;

    static std::size_t defaultStateBudget() { return 4096; }
};

/** Outcome of one decision procedure. */
struct AutomataResult
{
    enum class Status : std::uint8_t
    {
        Holds,  ///< the property was verified over all strings
        Fails,  ///< refuted; `witness` is a shortest counterexample
        Budget, ///< state budget exhausted before a decision
    };

    Status status = Status::Holds;
    /**
     * Set when status == Fails: a shortest string refuting the
     * property (in L(A)\L(B) for inclusion, in the symmetric
     * difference for equivalence, in L(A)∩L(B) for intersection
     * emptiness). May contain arbitrary bytes; escape for display.
     */
    std::string witness;
    /** Product states interned (deterministic for fixed inputs). */
    std::size_t statesExplored = 0;

    bool holds() const { return status == Status::Holds; }
    bool fails() const { return status == Status::Fails; }
    bool budgetExhausted() const { return status == Status::Budget; }
};

/**
 * Static decision procedures over compiled patterns. A friend of
 * Regex (reads the compiled program); stateless itself.
 */
class RegexAutomata
{
  public:
    /** L(inner) ⊆ L(outer)? Witness in L(inner)\L(outer). */
    static AutomataResult includes(const Regex &inner,
                                   const Regex &outer,
                                   const AutomataOptions &options = {});

    /**
     * L(inner) ⊆ ∪ L(outer[i])? The union side is what RBE206 needs:
     * one accept pattern against a whole relevance list. An empty
     * union is the empty language. Witness in L(inner)\∪L(outer).
     */
    static AutomataResult
    includedInUnion(const Regex &inner,
                    const std::vector<const Regex *> &outer,
                    const AutomataOptions &options = {});

    /** L(a) = L(b)? Witness in the symmetric difference. */
    static AutomataResult equivalent(const Regex &a, const Regex &b,
                                     const AutomataOptions &options = {});

    /** L(a) ∩ L(b) = ∅? Witness in the intersection. */
    static AutomataResult
    intersectionEmpty(const Regex &a, const Regex &b,
                      const AutomataOptions &options = {});

    /**
     * A shortest string of the pattern's contains language (the
     * deterministic exemplar used in shadowing messages). nullopt
     * when the language is empty or the budget ran out first.
     */
    static std::optional<std::string>
    shortestAcceptedWord(const Regex &regex,
                         const AutomataOptions &options = {});
};

/**
 * Render a witness for humans: printable ASCII verbatim, everything
 * else as \xHH (and '"'/'\\' escaped), so witnesses embed safely in
 * diagnostic messages.
 */
std::string escapeWitness(const std::string &witness);

} // namespace rememberr

#endif // REMEMBERR_TEXT_REGEX_AUTOMATA_HH
