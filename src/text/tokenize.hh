/**
 * @file
 * Word-level tokenization of erratum prose.
 *
 * The dedup candidate generator and the token-based similarity
 * metrics operate on token streams. Tokens preserve their source
 * spans so highlighting can map back into the original text.
 */

#ifndef REMEMBERR_TEXT_TOKENIZE_HH
#define REMEMBERR_TEXT_TOKENIZE_HH

#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace rememberr {

/** One token with its span in the source text. */
struct Token
{
    std::string text;       ///< lower-cased token text
    std::size_t begin = 0;  ///< byte offset of the first character
    std::size_t end = 0;    ///< one past the last character

    bool operator==(const Token &other) const = default;
};

/** Tokenizer configuration. */
struct TokenizerOptions
{
    /** Drop English stop words ("the", "may", "a", ...). */
    bool dropStopWords = false;
    /** Keep numeric tokens (register numbers etc.). */
    bool keepNumbers = true;
    /** Minimum token length; shorter tokens are dropped. */
    std::size_t minLength = 1;
};

/**
 * Split text into word tokens.
 *
 * A token is a maximal run of alphanumerics plus intra-word '-', '_'
 * and '.' (so "C6", "x87", "MCi_STATUS" and "virtual-8086" survive as
 * single tokens). Tokens are lower-cased.
 */
std::vector<Token> tokenize(std::string_view text,
                            const TokenizerOptions &options = {});

/** Just the token strings, in order. */
std::vector<std::string> tokenizeWords(std::string_view text,
                                       const TokenizerOptions &opt = {});

/** The built-in stop-word list used when dropStopWords is set. */
const std::unordered_set<std::string> &stopWords();

/** Character n-grams of the (lower-cased) text, n >= 1. */
std::vector<std::string> characterNgrams(std::string_view text,
                                         std::size_t n);

} // namespace rememberr

#endif // REMEMBERR_TEXT_TOKENIZE_HH
