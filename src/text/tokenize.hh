/**
 * @file
 * Word-level tokenization of erratum prose.
 *
 * The dedup candidate generator and the token-based similarity
 * metrics operate on token streams. Tokens preserve their source
 * spans so highlighting can map back into the original text.
 */

#ifndef REMEMBERR_TEXT_TOKENIZE_HH
#define REMEMBERR_TEXT_TOKENIZE_HH

#include <functional>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace rememberr {

/** One token with its span in the source text. */
struct Token
{
    std::string text;       ///< lower-cased token text
    std::size_t begin = 0;  ///< byte offset of the first character
    std::size_t end = 0;    ///< one past the last character

    bool operator==(const Token &other) const = default;
};

/** Tokenizer configuration. */
struct TokenizerOptions
{
    /** Drop English stop words ("the", "may", "a", ...). */
    bool dropStopWords = false;
    /** Keep numeric tokens (register numbers etc.). */
    bool keepNumbers = true;
    /** Minimum token length; shorter tokens are dropped. */
    std::size_t minLength = 1;
};

/**
 * Split text into word tokens.
 *
 * A token is a maximal run of alphanumerics plus intra-word '-', '_'
 * and '.' (so "C6", "x87", "MCi_STATUS" and "virtual-8086" survive as
 * single tokens). Tokens are lower-cased.
 */
std::vector<Token> tokenize(std::string_view text,
                            const TokenizerOptions &options = {});

/**
 * Reference tokenizer: the original per-character `<cctype>`
 * implementation, kept as the differential oracle for the
 * table-driven `tokenize`. Byte-identical output is asserted by the
 * tests (over all 256 byte values) and by bench_parse's equivalence
 * hashes; production code should call `tokenize`.
 */
std::vector<Token>
tokenizeReference(std::string_view text,
                  const TokenizerOptions &options = {});

/** Just the token strings, in order. */
std::vector<std::string> tokenizeWords(std::string_view text,
                                       const TokenizerOptions &opt = {});

/** Transparent string hash so set probes accept string_view (or a
 * reused scratch string) without building a temporary std::string. */
struct StopWordHash
{
    using is_transparent = void;

    std::size_t
    operator()(std::string_view s) const
    {
        return std::hash<std::string_view>{}(s);
    }
};

/** Stop-word set with heterogeneous (string_view) lookup. */
using StopWordSet =
    std::unordered_set<std::string, StopWordHash, std::equal_to<>>;

/** The built-in stop-word list used when dropStopWords is set. */
const StopWordSet &stopWords();

/** Character n-grams of the (lower-cased) text, n >= 1. */
std::vector<std::string> characterNgrams(std::string_view text,
                                         std::size_t n);

} // namespace rememberr

#endif // REMEMBERR_TEXT_TOKENIZE_HH
