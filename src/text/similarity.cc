#include "similarity.hh"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "tokenize.hh"
#include "util/strings.hh"

namespace rememberr {

std::size_t
levenshteinDistance(std::string_view a, std::string_view b)
{
    if (a.size() < b.size())
        std::swap(a, b);
    // b is now the shorter string; keep one rolling row of |b|+1.
    std::vector<std::size_t> row(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        row[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        std::size_t diag = row[0];
        row[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            std::size_t next = std::min({
                row[j] + 1,      // deletion
                row[j - 1] + 1,  // insertion
                diag + (a[i - 1] == b[j - 1] ? 0 : 1), // substitution
            });
            diag = row[j];
            row[j] = next;
        }
    }
    return row[b.size()];
}

std::size_t
damerauDistance(std::string_view a, std::string_view b)
{
    const std::size_t n = a.size(), m = b.size();
    if (n == 0)
        return m;
    if (m == 0)
        return n;
    // Full matrix; the transposition case reads two rows back.
    std::vector<std::vector<std::size_t>> d(
        n + 1, std::vector<std::size_t>(m + 1));
    for (std::size_t i = 0; i <= n; ++i)
        d[i][0] = i;
    for (std::size_t j = 0; j <= m; ++j)
        d[0][j] = j;
    for (std::size_t i = 1; i <= n; ++i) {
        for (std::size_t j = 1; j <= m; ++j) {
            std::size_t cost = a[i - 1] == b[j - 1] ? 0 : 1;
            d[i][j] = std::min({
                d[i - 1][j] + 1,
                d[i][j - 1] + 1,
                d[i - 1][j - 1] + cost,
            });
            if (i > 1 && j > 1 && a[i - 1] == b[j - 2] &&
                a[i - 2] == b[j - 1]) {
                d[i][j] = std::min(d[i][j], d[i - 2][j - 2] + 1);
            }
        }
    }
    return d[n][m];
}

double
levenshteinSimilarity(std::string_view a, std::string_view b)
{
    std::size_t longest = std::max(a.size(), b.size());
    if (longest == 0)
        return 1.0;
    return 1.0 - static_cast<double>(levenshteinDistance(a, b)) /
                     static_cast<double>(longest);
}

double
jaroSimilarity(std::string_view a, std::string_view b)
{
    if (a.empty() && b.empty())
        return 1.0;
    if (a.empty() || b.empty())
        return 0.0;
    std::size_t window =
        std::max(a.size(), b.size()) / 2;
    if (window > 0)
        --window;

    std::vector<bool> aMatched(a.size(), false);
    std::vector<bool> bMatched(b.size(), false);
    std::size_t matches = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        std::size_t lo = i > window ? i - window : 0;
        std::size_t hi = std::min(b.size(), i + window + 1);
        for (std::size_t j = lo; j < hi; ++j) {
            if (bMatched[j] || a[i] != b[j])
                continue;
            aMatched[i] = true;
            bMatched[j] = true;
            ++matches;
            break;
        }
    }
    if (matches == 0)
        return 0.0;

    std::size_t transpositions = 0;
    std::size_t k = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (!aMatched[i])
            continue;
        while (!bMatched[k])
            ++k;
        if (a[i] != b[k])
            ++transpositions;
        ++k;
    }
    double md = static_cast<double>(matches);
    return (md / a.size() + md / b.size() +
            (md - transpositions / 2.0) / md) /
           3.0;
}

double
jaroWinklerSimilarity(std::string_view a, std::string_view b)
{
    double jaro = jaroSimilarity(a, b);
    std::size_t prefix = 0;
    for (std::size_t i = 0;
         i < std::min({a.size(), b.size(), std::size_t{4}}); ++i) {
        if (a[i] == b[i])
            ++prefix;
        else
            break;
    }
    return jaro + prefix * 0.1 * (1.0 - jaro);
}

double
tokenJaccardSimilarity(const std::vector<std::string> &a,
                       const std::vector<std::string> &b)
{
    if (a.empty() && b.empty())
        return 1.0;
    std::set<std::string> setA(a.begin(), a.end());
    std::set<std::string> setB(b.begin(), b.end());
    std::size_t inter = 0;
    for (const auto &token : setA)
        inter += setB.count(token);
    std::size_t uni = setA.size() + setB.size() - inter;
    if (uni == 0)
        return 1.0;
    return static_cast<double>(inter) / static_cast<double>(uni);
}

double
tokenDiceSimilarity(const std::vector<std::string> &a,
                    const std::vector<std::string> &b)
{
    if (a.empty() && b.empty())
        return 1.0;
    std::set<std::string> setA(a.begin(), a.end());
    std::set<std::string> setB(b.begin(), b.end());
    if (setA.empty() && setB.empty())
        return 1.0;
    std::size_t inter = 0;
    for (const auto &token : setA)
        inter += setB.count(token);
    return 2.0 * static_cast<double>(inter) /
           static_cast<double>(setA.size() + setB.size());
}

double
tokenCosineSimilarity(const std::vector<std::string> &a,
                      const std::vector<std::string> &b)
{
    if (a.empty() && b.empty())
        return 1.0;
    if (a.empty() || b.empty())
        return 0.0;
    std::map<std::string, double> tfA, tfB;
    for (const auto &token : a)
        tfA[token] += 1.0;
    for (const auto &token : b)
        tfB[token] += 1.0;
    double dot = 0.0;
    for (const auto &[token, freq] : tfA) {
        auto it = tfB.find(token);
        if (it != tfB.end())
            dot += freq * it->second;
    }
    double normA = 0.0, normB = 0.0;
    for (const auto &[token, freq] : tfA)
        normA += freq * freq;
    for (const auto &[token, freq] : tfB)
        normB += freq * freq;
    return dot / (std::sqrt(normA) * std::sqrt(normB));
}

double
titleSimilarity(std::string_view a, std::string_view b)
{
    std::string ca = strings::canonicalize(a);
    std::string cb = strings::canonicalize(b);
    double jw = jaroWinklerSimilarity(ca, cb);
    TokenizerOptions opt;
    opt.dropStopWords = true;
    double jac =
        tokenJaccardSimilarity(tokenizeWords(a, opt),
                               tokenizeWords(b, opt));
    return std::max(jw, jac);
}

} // namespace rememberr
