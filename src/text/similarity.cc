#include "similarity.hh"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "tokenize.hh"
#include "util/strings.hh"

namespace rememberr {

std::size_t
levenshteinDistanceScalar(std::string_view a, std::string_view b)
{
    if (a.size() < b.size())
        std::swap(a, b);
    // b is now the shorter string; keep one rolling row of |b|+1.
    std::vector<std::size_t> row(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        row[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        std::size_t diag = row[0];
        row[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            std::size_t next = std::min({
                row[j] + 1,      // deletion
                row[j - 1] + 1,  // insertion
                diag + (a[i - 1] == b[j - 1] ? 0 : 1), // substitution
            });
            diag = row[j];
            row[j] = next;
        }
    }
    return row[b.size()];
}

namespace {

/**
 * Advance one 64-row block of the Myers/Hyyrö bit-vector DP by one
 * text column. Pv/Mv are the vertical positive/negative delta
 * vectors, eq the pattern-match bits for the text character, hin the
 * horizontal delta entering the block's low row (-1, 0 or +1). The
 * returned horizontal delta is read at houtMask's row — bit 63 when
 * feeding the next block, the pattern's last-row bit for the final
 * block (rows above it carry pad characters that never match; they
 * sit above the last row in the DP, so they cannot influence it).
 */
inline int
advanceBlock(std::uint64_t &pv, std::uint64_t &mv, std::uint64_t eq,
             int hin, std::uint64_t hout_mask)
{
    const std::uint64_t hinNeg = hin < 0 ? 1u : 0u;
    const std::uint64_t xv = eq | mv;
    eq |= hinNeg;
    const std::uint64_t xh = (((eq & pv) + pv) ^ pv) | eq;
    std::uint64_t ph = mv | ~(xh | pv);
    std::uint64_t mh = pv & xh;
    int hout = 0;
    if (ph & hout_mask)
        hout = 1;
    else if (mh & hout_mask)
        hout = -1;
    ph <<= 1;
    mh <<= 1;
    mh |= hinNeg;
    if (hin > 0)
        ph |= 1;
    pv = mh | ~(xv | ph);
    mv = ph & xv;
    return hout;
}

} // namespace

std::size_t
levenshteinDistanceBitParallel(std::string_view a, std::string_view b)
{
    // The shorter string becomes the pattern: fewer 64-bit blocks.
    if (a.size() > b.size())
        std::swap(a, b);
    const std::size_t m = a.size();
    if (m == 0)
        return b.size();

    const std::size_t blocks = (m + 63) / 64;
    std::vector<std::uint64_t> peq(blocks * 256, 0);
    for (std::size_t i = 0; i < m; ++i) {
        peq[static_cast<unsigned char>(a[i]) * blocks + i / 64] |=
            std::uint64_t{1} << (i % 64);
    }

    std::vector<std::uint64_t> pv(blocks, ~std::uint64_t{0});
    std::vector<std::uint64_t> mv(blocks, 0);
    const std::uint64_t lastMask = std::uint64_t{1}
                                   << ((m - 1) % 64);
    const std::uint64_t topMask = std::uint64_t{1} << 63;
    std::ptrdiff_t score = static_cast<std::ptrdiff_t>(m);
    for (char c : b) {
        const std::uint64_t *eqRow =
            &peq[static_cast<unsigned char>(c) * blocks];
        int h = 1; // boundary row D[0][j] = j increments by one
        for (std::size_t blk = 0; blk < blocks; ++blk) {
            const bool last = blk + 1 == blocks;
            h = advanceBlock(pv[blk], mv[blk], eqRow[blk], h,
                             last ? lastMask : topMask);
        }
        score += h;
    }
    return static_cast<std::size_t>(score);
}

std::size_t
levenshteinDistance(std::string_view a, std::string_view b)
{
    return levenshteinDistanceBitParallel(a, b);
}

std::optional<std::size_t>
levenshteinWithin(std::string_view a, std::string_view b,
                  std::size_t k)
{
    if (a.size() < b.size())
        std::swap(a, b);
    const std::size_t n = a.size(); // rows (longer)
    const std::size_t m = b.size(); // columns (shorter)
    if (n - m > k)
        return std::nullopt;
    if (m == 0)
        return n <= k ? std::optional<std::size_t>(n)
                      : std::nullopt;
    if (k >= n) {
        // Threshold can never bind; the unbanded kernel is cheaper
        // than a full-width band.
        std::size_t d = levenshteinDistanceBitParallel(a, b);
        return d <= k ? std::optional<std::size_t>(d)
                      : std::nullopt;
    }

    // Character-count lower bound: a substitution fixes at most two
    // histogram mismatches, an insert/delete at most one.
    {
        std::array<std::int32_t, 256> diff{};
        for (char c : a)
            ++diff[static_cast<unsigned char>(c)];
        for (char c : b)
            --diff[static_cast<unsigned char>(c)];
        std::size_t mismatch = 0;
        for (std::int32_t d : diff) {
            mismatch += static_cast<std::size_t>(d < 0 ? -d : d);
        }
        if ((mismatch + 1) / 2 > k)
            return std::nullopt;
    }

    // Banded rolling-row DP: only cells with |i - j| <= k can stay
    // at or below k (D[i][j] >= |i - j|); everything else saturates
    // at BIG. Cells <= k are exact, BIG means "> k".
    const std::size_t BIG = k + 1;
    std::vector<std::size_t> row(m + 1);
    for (std::size_t j = 0; j <= m; ++j)
        row[j] = j <= k ? j : BIG;
    for (std::size_t i = 1; i <= n; ++i) {
        const std::size_t lo = i > k ? i - k : 1;
        const std::size_t hi = std::min(m, i + k);
        std::size_t diag = row[lo - 1]; // D[i-1][lo-1]
        std::size_t left = BIG;        // D[i][lo-1], outside band
        if (lo == 1) {
            row[0] = i <= k ? i : BIG;
            left = row[0];
        }
        std::size_t rowMin = left;
        for (std::size_t j = lo; j <= hi; ++j) {
            // Above the band's top-right edge the stored value is
            // stale; the true cell is > k there.
            const std::size_t up = j == i + k ? BIG : row[j];
            std::size_t value = std::min({
                up + 1,
                left + 1,
                diag + (a[i - 1] == b[j - 1] ? 0 : 1),
            });
            if (value > BIG)
                value = BIG;
            diag = row[j];
            row[j] = value;
            left = value;
            rowMin = std::min(rowMin, value);
        }
        if (rowMin >= BIG)
            return std::nullopt; // every continuation exceeds k
    }
    return row[m] <= k ? std::optional<std::size_t>(row[m])
                       : std::nullopt;
}

std::size_t
damerauDistance(std::string_view a, std::string_view b)
{
    const std::size_t n = a.size(), m = b.size();
    if (n == 0)
        return m;
    if (m == 0)
        return n;
    // Three rolling rows (the transposition case reads two rows
    // back), O(min(n,m)) memory instead of a full matrix.
    std::string_view x = a, y = b;
    if (x.size() < y.size())
        std::swap(x, y);
    const std::size_t rows = x.size(), cols = y.size();
    std::vector<std::size_t> prev2(cols + 1), prev(cols + 1),
        curr(cols + 1);
    for (std::size_t j = 0; j <= cols; ++j)
        prev[j] = j;
    for (std::size_t i = 1; i <= rows; ++i) {
        curr[0] = i;
        for (std::size_t j = 1; j <= cols; ++j) {
            std::size_t cost = x[i - 1] == y[j - 1] ? 0 : 1;
            curr[j] = std::min({
                prev[j] + 1,
                curr[j - 1] + 1,
                prev[j - 1] + cost,
            });
            if (i > 1 && j > 1 && x[i - 1] == y[j - 2] &&
                x[i - 2] == y[j - 1]) {
                curr[j] = std::min(curr[j], prev2[j - 2] + 1);
            }
        }
        std::swap(prev2, prev);
        std::swap(prev, curr);
    }
    return prev[cols];
}

double
levenshteinSimilarity(std::string_view a, std::string_view b)
{
    std::size_t longest = std::max(a.size(), b.size());
    if (longest == 0)
        return 1.0;
    return 1.0 - static_cast<double>(levenshteinDistance(a, b)) /
                     static_cast<double>(longest);
}

double
jaroSimilarity(std::string_view a, std::string_view b)
{
    if (a.empty() && b.empty())
        return 1.0;
    if (a.empty() || b.empty())
        return 0.0;
    std::size_t window =
        std::max(a.size(), b.size()) / 2;
    if (window > 0)
        --window;

    std::vector<bool> aMatched(a.size(), false);
    std::vector<bool> bMatched(b.size(), false);
    std::size_t matches = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        std::size_t lo = i > window ? i - window : 0;
        std::size_t hi = std::min(b.size(), i + window + 1);
        for (std::size_t j = lo; j < hi; ++j) {
            if (bMatched[j] || a[i] != b[j])
                continue;
            aMatched[i] = true;
            bMatched[j] = true;
            ++matches;
            break;
        }
    }
    if (matches == 0)
        return 0.0;

    std::size_t transpositions = 0;
    std::size_t k = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (!aMatched[i])
            continue;
        while (!bMatched[k])
            ++k;
        if (a[i] != b[k])
            ++transpositions;
        ++k;
    }
    double md = static_cast<double>(matches);
    return (md / a.size() + md / b.size() +
            (md - transpositions / 2.0) / md) /
           3.0;
}

double
jaroWinklerSimilarity(std::string_view a, std::string_view b)
{
    double jaro = jaroSimilarity(a, b);
    std::size_t prefix = 0;
    for (std::size_t i = 0;
         i < std::min({a.size(), b.size(), std::size_t{4}}); ++i) {
        if (a[i] == b[i])
            ++prefix;
        else
            break;
    }
    return jaro + prefix * 0.1 * (1.0 - jaro);
}

double
tokenJaccardSimilarity(const std::vector<std::string> &a,
                       const std::vector<std::string> &b)
{
    if (a.empty() && b.empty())
        return 1.0;
    std::set<std::string> setA(a.begin(), a.end());
    std::set<std::string> setB(b.begin(), b.end());
    std::size_t inter = 0;
    for (const auto &token : setA)
        inter += setB.count(token);
    std::size_t uni = setA.size() + setB.size() - inter;
    if (uni == 0)
        return 1.0;
    return static_cast<double>(inter) / static_cast<double>(uni);
}

double
tokenDiceSimilarity(const std::vector<std::string> &a,
                    const std::vector<std::string> &b)
{
    if (a.empty() && b.empty())
        return 1.0;
    std::set<std::string> setA(a.begin(), a.end());
    std::set<std::string> setB(b.begin(), b.end());
    if (setA.empty() && setB.empty())
        return 1.0;
    std::size_t inter = 0;
    for (const auto &token : setA)
        inter += setB.count(token);
    return 2.0 * static_cast<double>(inter) /
           static_cast<double>(setA.size() + setB.size());
}

double
tokenCosineSimilarity(const std::vector<std::string> &a,
                      const std::vector<std::string> &b)
{
    if (a.empty() && b.empty())
        return 1.0;
    if (a.empty() || b.empty())
        return 0.0;
    std::map<std::string, double> tfA, tfB;
    for (const auto &token : a)
        tfA[token] += 1.0;
    for (const auto &token : b)
        tfB[token] += 1.0;
    double dot = 0.0;
    for (const auto &[token, freq] : tfA) {
        auto it = tfB.find(token);
        if (it != tfB.end())
            dot += freq * it->second;
    }
    double normA = 0.0, normB = 0.0;
    for (const auto &[token, freq] : tfA)
        normA += freq * freq;
    for (const auto &[token, freq] : tfB)
        normB += freq * freq;
    return dot / (std::sqrt(normA) * std::sqrt(normB));
}

double
titleSimilarity(std::string_view a, std::string_view b)
{
    std::string ca = strings::canonicalize(a);
    std::string cb = strings::canonicalize(b);
    double jw = jaroWinklerSimilarity(ca, cb);
    TokenizerOptions opt;
    opt.dropStopWords = true;
    double jac =
        tokenJaccardSimilarity(tokenizeWords(a, opt),
                               tokenizeWords(b, opt));
    return std::max(jw, jac);
}

std::optional<double>
levenshteinSimilarityAtLeast(std::string_view a, std::string_view b,
                             double min_similarity)
{
    const std::size_t longest = std::max(a.size(), b.size());
    if (longest == 0) {
        return 1.0 >= min_similarity ? std::optional<double>(1.0)
                                     : std::nullopt;
    }
    // sim >= minSim requires d <= longest * (1 - minSim) in real
    // arithmetic; one extra unit of slack absorbs rounding so the
    // final decision is always made on the exact similarity double.
    const double bound =
        static_cast<double>(longest) * (1.0 - min_similarity);
    std::size_t k = longest;
    if (bound < static_cast<double>(longest)) {
        const double floored = std::floor(std::max(bound, 0.0));
        k = std::min(longest,
                     static_cast<std::size_t>(floored) + 1);
    }
    const auto d = levenshteinWithin(a, b, k);
    if (!d)
        return std::nullopt;
    const double sim = 1.0 - static_cast<double>(*d) /
                                 static_cast<double>(longest);
    if (sim >= min_similarity)
        return sim;
    return std::nullopt;
}

SimilarityKernelStats &
SimilarityKernelStats::operator+=(const SimilarityKernelStats &o)
{
    pairs += o.pairs;
    screenRejects += o.screenRejects;
    jaroRuns += o.jaroRuns;
    kept += o.kept;
    return *this;
}

TitleProfile
makeTitleProfile(std::string_view title)
{
    TitleProfile profile;
    profile.canonical = strings::canonicalize(title);
    TokenizerOptions opt;
    opt.dropStopWords = true;
    profile.tokens = tokenizeWords(title, opt);
    std::sort(profile.tokens.begin(), profile.tokens.end());
    profile.tokens.erase(std::unique(profile.tokens.begin(),
                                     profile.tokens.end()),
                         profile.tokens.end());
    for (char c : profile.canonical)
        ++profile.histogram[static_cast<unsigned char>(c)];
    return profile;
}

namespace {

/**
 * Token Jaccard over sorted distinct token vectors: the same
 * intersection and union counts — and therefore the same double —
 * as tokenJaccardSimilarity over the underlying token lists.
 */
double
jaccardSorted(const std::vector<std::string> &a,
              const std::vector<std::string> &b)
{
    if (a.empty() && b.empty())
        return 1.0;
    std::size_t inter = 0;
    auto ia = a.begin();
    auto ib = b.begin();
    while (ia != a.end() && ib != b.end()) {
        const int cmp = ia->compare(*ib);
        if (cmp == 0) {
            ++inter;
            ++ia;
            ++ib;
        } else if (cmp < 0) {
            ++ia;
        } else {
            ++ib;
        }
    }
    const std::size_t uni = a.size() + b.size() - inter;
    if (uni == 0)
        return 1.0;
    return static_cast<double>(inter) / static_cast<double>(uni);
}

} // namespace

std::optional<double>
titleSimilarityAtLeast(const TitleProfile &a, const TitleProfile &b,
                       double min_keep, SimilarityKernelStats *stats)
{
    SimilarityKernelStats local;
    SimilarityKernelStats &s = stats ? *stats : local;
    ++s.pairs;

    const double jac = jaccardSorted(a.tokens, b.tokens);
    double result;
    if (a.canonical.empty() || b.canonical.empty()) {
        const double jw =
            a.canonical.empty() && b.canonical.empty() ? 1.0 : 0.0;
        result = std::max(jw, jac);
    } else {
        // Jaro matches can pair at most min(histA[c], histB[c])
        // occurrences of each byte, and the transposition term of
        // the Jaro formula is at most 1, so this bounds Jaro from
        // above; Winkler's prefix boost is increasing in Jaro, so
        // boosting the bound by the exact common prefix bounds
        // Jaro-Winkler.
        std::size_t common = 0;
        for (std::size_t c = 0; c < 256; ++c)
            common += std::min(a.histogram[c], b.histogram[c]);
        if (common == 0) {
            // No shared byte: zero Jaro matches and an empty common
            // prefix, so Jaro-Winkler is exactly 0.
            result = std::max(0.0, jac);
        } else {
            std::size_t prefix = 0;
            for (std::size_t i = 0;
                 i < std::min({a.canonical.size(),
                               b.canonical.size(), std::size_t{4}});
                 ++i) {
                if (a.canonical[i] == b.canonical[i])
                    ++prefix;
                else
                    break;
            }
            const double md = static_cast<double>(common);
            const double jaroUB =
                (md / static_cast<double>(a.canonical.size()) +
                 md / static_cast<double>(b.canonical.size()) +
                 1.0) /
                3.0;
            const double jwUB =
                jaroUB + prefix * 0.1 * (1.0 - jaroUB);
            if (jwUB <= jac) {
                // max(jw, jac) can only be jac; when they tie,
                // std::max's pick is the same double anyway.
                result = jac;
            } else if (jwUB < min_keep && jac < min_keep) {
                ++s.screenRejects;
                return std::nullopt;
            } else {
                ++s.jaroRuns;
                const double jw = jaroWinklerSimilarity(a.canonical,
                                                        b.canonical);
                result = std::max(jw, jac);
            }
        }
    }
    if (result < min_keep)
        return std::nullopt;
    ++s.kept;
    return result;
}

} // namespace rememberr
