/**
 * @file
 * Multi-pattern literal scanning (Aho–Corasick) for regex
 * prefiltering.
 *
 * The classification engine owns dozens of rule regexes, almost all
 * of which are gated on literal phrases ("page boundary", "machine
 * check", ...). Running the backtracking VM for every (rule, erratum)
 * pair is the measured hot path; production matchers instead screen
 * with one multi-pattern automaton over the required literal factors
 * of every pattern (see Regex::literalFactors) and only run the full
 * engine on the rules whose factors actually occur. The scanner is
 * built once per rule set and is immutable afterwards, so concurrent
 * scans from worker threads are safe.
 */

#ifndef REMEMBERR_TEXT_LITERAL_SCAN_HH
#define REMEMBERR_TEXT_LITERAL_SCAN_HH

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rememberr {

/** ASCII-lower-case a haystack once for repeated scanning. */
std::string foldForScan(std::string_view text);

/**
 * An Aho–Corasick automaton mapping needle hits to dense owner ids.
 *
 * Each owner registers a set of alternative needles; after build(),
 * scan() walks a haystack once and reports, per owner, whether at
 * least one of its needles occurred. Failure links are resolved into
 * full byte transitions at build time, so the scan loop is a single
 * table lookup per input byte with no fail-chasing.
 */
class LiteralScanner
{
  public:
    /**
     * Register needles for an owner id. Needles must be non-empty
     * and already case-folded (see foldForScan); owners may be
     * registered in any order and ids need not be contiguous, but
     * scan() sizes its result to the largest id + 1.
     */
    void addOwner(std::uint32_t owner,
                  const std::vector<std::string> &needles);

    /** Resolve failure links; no addOwner() calls afterwards. */
    void build();

    bool built() const { return built_; }
    /** Largest registered owner id + 1 (0 when none). */
    std::size_t ownerCount() const { return ownerLimit_; }
    /** Automaton states (1 when empty: the root). */
    std::size_t nodeCount() const { return nodes_.size(); }
    /** Registered needles across all owners. */
    std::size_t needleCount() const { return needleCount_; }

    /**
     * One linear pass over a case-folded haystack. hits is resized
     * to ownerCount() and hits[o] is set to 1 for every owner with
     * at least one needle present (other entries are set to 0).
     */
    void scan(std::string_view foldedHaystack,
              std::vector<std::uint8_t> &hits) const;

  private:
    struct Node
    {
        /** Byte transitions; trie edges before build(), full DFA
         * transitions (failure links folded in) afterwards. */
        std::array<std::int32_t, 256> next;
        /** Owners completed at this state, including via suffix
         * links (merged at build time). */
        std::vector<std::uint32_t> owners;

        Node() { next.fill(-1); }
    };

    std::vector<Node> nodes_{Node()};
    std::size_t ownerLimit_ = 0;
    std::size_t needleCount_ = 0;
    bool built_ = false;
};

} // namespace rememberr

#endif // REMEMBERR_TEXT_LITERAL_SCAN_HH
