#include "text/regex_automata.hh"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <map>

namespace rememberr {

namespace {

using redetail::CharClass;
using redetail::Inst;
using redetail::instConsumes;
using redetail::isWordChar;
using redetail::Op;

/** Context classes for the byte left of a gap, mirroring the linear
 * tier: begin-of-input and '\n' are one context (both satisfy Bol,
 * neither is a word character). */
enum : std::uint8_t { kPrevBolOk = 0, kPrevWord = 1, kPrevOther = 2 };

std::uint8_t
prevClassOf(unsigned char byte)
{
    if (byte == '\n')
        return kPrevBolOk;
    if (isWordChar(static_cast<char>(byte)))
        return kPrevWord;
    return kPrevOther;
}

/** The slices of a compiled Regex the analysis reads. */
struct Prog
{
    const std::vector<Inst> *insts = nullptr;
    const std::vector<CharClass> *classes = nullptr;
    bool ignoreCase = false;
};

/**
 * Epsilon closure at a gap with start injection (the unanchored
 * reading): collects the consuming pcs reachable without input and
 * whether Accept is reachable. Assertions are decided from the
 * (prevClass, nextByte) context; nextByte < 0 means end of input.
 * Identical semantics to the closure in regex_linear.cc — the
 * differential tests in test_automata.cc pin the two together.
 */
struct Closure
{
    std::vector<std::int32_t> consuming;
    bool accept = false;

    void
    run(const Prog &prog, const std::vector<std::int32_t> &kernel,
        std::uint8_t prev_class, int next_byte)
    {
        consuming.clear();
        accept = false;
        visited_.assign(prog.insts->size(), 0);
        for (std::int32_t pc : kernel)
            add(prog, pc, prev_class, next_byte);
        add(prog, 0, prev_class, next_byte); // fresh attempt at gap
    }

  private:
    void
    add(const Prog &prog, std::int32_t pc, std::uint8_t prev_class,
        int next_byte)
    {
        if (visited_[static_cast<std::size_t>(pc)])
            return;
        visited_[static_cast<std::size_t>(pc)] = 1;
        const Inst &inst =
            (*prog.insts)[static_cast<std::size_t>(pc)];
        switch (inst.op) {
          case Op::Char:
          case Op::Any:
          case Op::Class:
            consuming.push_back(pc);
            return;
          case Op::Split:
            add(prog, inst.arg1, prev_class, next_byte);
            add(prog, inst.arg2, prev_class, next_byte);
            return;
          case Op::Jump:
            add(prog, inst.arg1, prev_class, next_byte);
            return;
          case Op::Save:
            add(prog, pc + 1, prev_class, next_byte);
            return;
          case Op::Bol:
            if (prev_class == kPrevBolOk)
                add(prog, pc + 1, prev_class, next_byte);
            return;
          case Op::Eol:
            if (next_byte < 0 || next_byte == '\n')
                add(prog, pc + 1, prev_class, next_byte);
            return;
          case Op::WordB:
          case Op::NotWordB: {
            bool before = prev_class == kPrevWord;
            bool after = next_byte >= 0 &&
                         isWordChar(static_cast<char>(next_byte));
            bool boundary = before != after;
            if ((inst.op == Op::WordB) == boundary)
                add(prog, pc + 1, prev_class, next_byte);
            return;
          }
          case Op::Accept:
            accept = true;
            return;
        }
    }

    std::vector<std::uint8_t> visited_;
};

/** Advance a closure's consuming set over one byte (sorted, unique
 * — kernel identity must be canonical). */
std::vector<std::int32_t>
stepKernel(const Prog &prog,
           const std::vector<std::int32_t> &consuming,
           unsigned char byte)
{
    std::vector<std::int32_t> next;
    next.reserve(consuming.size());
    for (std::int32_t pc : consuming) {
        const Inst &inst =
            (*prog.insts)[static_cast<std::size_t>(pc)];
        if (instConsumes(inst, *prog.classes, prog.ignoreCase, byte))
            next.push_back(pc + 1);
    }
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    return next;
}

/**
 * Witness-preference rank: lower ranks are explored (and therefore
 * chosen as class representatives) first, so the shortest witness
 * the BFS reconstructs is also the most readable one available.
 */
int
byteRank(unsigned char byte)
{
    if (byte >= 'a' && byte <= 'z')
        return byte - 'a';
    if (byte >= '0' && byte <= '9')
        return 26 + (byte - '0');
    if (byte == ' ')
        return 36;
    if (byte >= 'A' && byte <= 'Z')
        return 40 + (byte - 'A');
    if (byte >= 33 && byte <= 126)
        return 100 + byte;
    return 300 + byte;
}

/**
 * Joint byte-equivalence classes over every pattern of both sides:
 * two bytes with identical consume signatures across all programs,
 * the same word-char bit and the same newline bit always drive the
 * same product transition. Returns one representative per class,
 * sorted by preference rank.
 */
std::vector<unsigned char>
jointByteRepresentatives(const std::vector<Prog> &progs)
{
    std::map<std::vector<std::uint8_t>, unsigned char> reps;
    // Visit bytes in preference order so the first byte of each
    // signature — the one try_emplace keeps — is the best-ranked.
    std::vector<int> order(256);
    for (int b = 0; b < 256; ++b)
        order[static_cast<std::size_t>(b)] = b;
    std::sort(order.begin(), order.end(), [](int a, int b) {
        return byteRank(static_cast<unsigned char>(a)) <
               byteRank(static_cast<unsigned char>(b));
    });
    for (int b : order) {
        unsigned char byte = static_cast<unsigned char>(b);
        std::vector<std::uint8_t> sig;
        for (const Prog &prog : progs) {
            for (const Inst &inst : *prog.insts) {
                switch (inst.op) {
                  case Op::Char:
                  case Op::Any:
                  case Op::Class:
                    sig.push_back(instConsumes(inst, *prog.classes,
                                               prog.ignoreCase, byte)
                                      ? 1
                                      : 0);
                    break;
                  default:
                    break;
                }
            }
        }
        sig.push_back(isWordChar(static_cast<char>(byte)) ? 1 : 0);
        sig.push_back(byte == '\n' ? 1 : 0);
        reps.try_emplace(std::move(sig), byte);
    }
    std::vector<unsigned char> out;
    out.reserve(reps.size());
    for (const auto &[sig, byte] : reps)
        out.push_back(byte);
    std::sort(out.begin(), out.end(),
              [](unsigned char a, unsigned char b) {
                  return byteRank(a) < byteRank(b);
              });
    return out;
}

/** One side of the product: a union of patterns with their kernels. */
struct SideState
{
    /** One kernel per pattern; empty vector once `accepted`. */
    std::vector<std::vector<std::int32_t>> kernels;
    /** Sticky: some prefix already contained a match of this side. */
    bool accepted = false;
};

/** A full product state plus the BFS parent link for witnesses. */
struct ProductState
{
    SideState a;
    SideState b;
    std::uint8_t prevClass = kPrevBolOk;
    std::int32_t parent = -1;
    unsigned char byte = 0;
};

/** Canonical interning key for a product state. */
std::vector<std::int32_t>
stateKey(const ProductState &state)
{
    std::vector<std::int32_t> key;
    auto appendSide = [&](const SideState &side) {
        key.push_back(side.accepted ? 1 : 0);
        for (const std::vector<std::int32_t> &kernel : side.kernels) {
            for (std::int32_t pc : kernel)
                key.push_back(pc);
            key.push_back(-1); // kernel separator
        }
        key.push_back(-2); // side separator
    };
    appendSide(state.a);
    appendSide(state.b);
    key.push_back(state.prevClass);
    return key;
}

/**
 * What the BFS is looking for. The predicate sees the *final*
 * acceptance of each side for the string ending at the inspected
 * state (sticky flag OR end-of-input acceptance at this gap), and a
 * prune test sees only the sticky flags: a pruned state can never
 * reach the target, so its subtree is skipped (pure optimization —
 * prunes must be implied by target monotonicity).
 */
struct SearchGoal
{
    bool (*target)(bool final_a, bool final_b);
    bool (*prune)(bool sticky_a, bool sticky_b);
};

struct Search
{
    std::vector<Prog> progsA;
    std::vector<Prog> progsB;
    std::size_t stateBudget = AutomataOptions::defaultStateBudget();

    AutomataResult
    run(const SearchGoal &goal)
    {
        AutomataResult result;
        std::vector<Prog> all = progsA;
        all.insert(all.end(), progsB.begin(), progsB.end());
        std::vector<unsigned char> reps =
            jointByteRepresentatives(all);

        std::vector<ProductState> states;
        std::map<std::vector<std::int32_t>, std::int32_t> index;
        std::deque<std::int32_t> queue;

        ProductState initial;
        initial.a.kernels.assign(progsA.size(), {});
        initial.b.kernels.assign(progsB.size(), {});
        states.push_back(initial);
        index.emplace(stateKey(initial), 0);
        queue.push_back(0);

        Closure closure;

        // Sticky-accept/EOF evaluation for one side at a gap.
        auto sideEofAccept = [&](const SideState &side,
                                 const std::vector<Prog> &progs,
                                 std::uint8_t prev) {
            if (side.accepted)
                return true;
            for (std::size_t p = 0; p < progs.size(); ++p) {
                closure.run(progs[p], side.kernels[p], prev, -1);
                if (closure.accept)
                    return true;
            }
            return false;
        };

        // Advance one side over `byte`; returns the successor.
        auto stepSide = [&](const SideState &side,
                            const std::vector<Prog> &progs,
                            std::uint8_t prev, unsigned char byte) {
            SideState next;
            if (side.accepted) {
                next.accepted = true;
                return next;
            }
            next.kernels.reserve(progs.size());
            bool accepted = false;
            for (std::size_t p = 0; p < progs.size(); ++p) {
                closure.run(progs[p], side.kernels[p], prev,
                            static_cast<int>(byte));
                accepted = accepted || closure.accept;
                next.kernels.push_back(
                    stepKernel(progs[p], closure.consuming, byte));
            }
            if (accepted) {
                // Absorbing: the flag carries all the information.
                next.kernels.clear();
                next.accepted = true;
            }
            return next;
        };

        while (!queue.empty()) {
            std::int32_t id = queue.front();
            queue.pop_front();

            // Does the string ending here refute the property?
            {
                const ProductState &state =
                    states[static_cast<std::size_t>(id)];
                bool finalA = sideEofAccept(state.a, progsA,
                                            state.prevClass);
                bool finalB = sideEofAccept(state.b, progsB,
                                            state.prevClass);
                if (goal.target(finalA, finalB)) {
                    result.status = AutomataResult::Status::Fails;
                    result.witness = reconstruct(states, id);
                    result.statesExplored = states.size();
                    return result;
                }
            }

            for (unsigned char byte : reps) {
                // states may reallocate while interning successors;
                // take a copy of the expansion source.
                ProductState state =
                    states[static_cast<std::size_t>(id)];
                ProductState next;
                next.a = stepSide(state.a, progsA, state.prevClass,
                                  byte);
                next.b = stepSide(state.b, progsB, state.prevClass,
                                  byte);
                next.prevClass = prevClassOf(byte);
                next.parent = id;
                next.byte = byte;
                if (goal.prune(next.a.accepted, next.b.accepted))
                    continue;
                std::vector<std::int32_t> key = stateKey(next);
                if (index.count(key))
                    continue;
                if (states.size() >= stateBudget) {
                    result.status = AutomataResult::Status::Budget;
                    result.statesExplored = states.size();
                    return result;
                }
                std::int32_t nid =
                    static_cast<std::int32_t>(states.size());
                states.push_back(std::move(next));
                index.emplace(std::move(key), nid);
                queue.push_back(nid);
            }
        }

        result.status = AutomataResult::Status::Holds;
        result.statesExplored = states.size();
        return result;
    }

  private:
    static std::string
    reconstruct(const std::vector<ProductState> &states,
                std::int32_t id)
    {
        std::string witness;
        while (id > 0) {
            const ProductState &state =
                states[static_cast<std::size_t>(id)];
            witness.push_back(static_cast<char>(state.byte));
            id = state.parent;
        }
        std::reverse(witness.begin(), witness.end());
        return witness;
    }
};

} // namespace

// Friend of Regex (declared in regex.hh); the only hole through
// which the analysis reads the compiled program slices.
struct RegexAutomataAccess
{
    static const std::vector<Inst> &
    program(const Regex &regex)
    {
        return regex.program_;
    }
    static const std::vector<CharClass> &
    classes(const Regex &regex)
    {
        return regex.classes_;
    }
    static bool
    ignoreCase(const Regex &regex)
    {
        return regex.options_.ignoreCase;
    }
};

namespace {

Prog
progOf(const Regex &regex)
{
    return Prog{&RegexAutomataAccess::program(regex),
                &RegexAutomataAccess::classes(regex),
                RegexAutomataAccess::ignoreCase(regex)};
}

} // namespace

AutomataResult
RegexAutomata::includes(const Regex &inner, const Regex &outer,
                        const AutomataOptions &options)
{
    return includedInUnion(inner, {&outer}, options);
}

AutomataResult
RegexAutomata::includedInUnion(const Regex &inner,
                               const std::vector<const Regex *> &outer,
                               const AutomataOptions &options)
{
    Search search;
    search.stateBudget = options.stateBudget;
    search.progsA = {progOf(inner)};
    for (const Regex *regex : outer)
        search.progsB.push_back(progOf(*regex));
    SearchGoal goal;
    // Refuted by a word in L(A)\L(B); once B has matched, no
    // extension can ever leave L(B) again.
    goal.target = [](bool a, bool b) { return a && !b; };
    goal.prune = [](bool, bool b) { return b; };
    return search.run(goal);
}

AutomataResult
RegexAutomata::equivalent(const Regex &a, const Regex &b,
                          const AutomataOptions &options)
{
    Search search;
    search.stateBudget = options.stateBudget;
    search.progsA = {progOf(a)};
    search.progsB = {progOf(b)};
    SearchGoal goal;
    goal.target = [](bool fa, bool fb) { return fa != fb; };
    // Both sticky-accepted: every extension is in both languages.
    goal.prune = [](bool sa, bool sb) { return sa && sb; };
    return search.run(goal);
}

AutomataResult
RegexAutomata::intersectionEmpty(const Regex &a, const Regex &b,
                                 const AutomataOptions &options)
{
    Search search;
    search.stateBudget = options.stateBudget;
    search.progsA = {progOf(a)};
    search.progsB = {progOf(b)};
    SearchGoal goal;
    goal.target = [](bool fa, bool fb) { return fa && fb; };
    goal.prune = [](bool, bool) { return false; };
    return search.run(goal);
}

std::optional<std::string>
RegexAutomata::shortestAcceptedWord(const Regex &regex,
                                    const AutomataOptions &options)
{
    Search search;
    search.stateBudget = options.stateBudget;
    search.progsA = {progOf(regex)};
    SearchGoal goal;
    // "Refutation" here is simply acceptance: the BFS returns the
    // shortest accepted word as the witness.
    goal.target = [](bool a, bool) { return a; };
    goal.prune = [](bool, bool) { return false; };
    AutomataResult result = search.run(goal);
    if (!result.fails())
        return std::nullopt;
    return result.witness;
}

std::string
escapeWitness(const std::string &witness)
{
    std::string out;
    out.reserve(witness.size());
    for (unsigned char c : witness) {
        if (c == '"' || c == '\\') {
            out.push_back('\\');
            out.push_back(static_cast<char>(c));
        } else if (c >= 32 && c <= 126) {
            out.push_back(static_cast<char>(c));
        } else {
            char hex[8];
            std::snprintf(hex, sizeof(hex), "\\x%02x", c);
            out += hex;
        }
    }
    return out;
}

} // namespace rememberr
