#include "regex.hh"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <memory>

#include "obs/metrics.hh"
#include "text/regex_linear.hh"
#include "util/logging.hh"

namespace rememberr {

namespace {

using redetail::foldCase;
using redetail::isWordChar;

/** Parsed pattern AST. */
struct Node
{
    enum class Kind {
        Literal,    ///< a single byte
        AnyChar,    ///< '.'
        Class,      ///< character class (index into class table)
        Concat,     ///< children in sequence
        Alternate,  ///< children as alternatives
        Repeat,     ///< child repeated [min, max] (max < 0: unbounded)
        Group,      ///< capturing or non-capturing group
        Anchor,     ///< ^ $ \b \B
        Empty,      ///< matches the empty string
    };

    enum class AnchorType { Bol, Eol, WordB, NotWordB };

    Kind kind = Kind::Empty;
    char ch = 0;
    int classIndex = -1;
    std::vector<std::unique_ptr<Node>> children;
    int min = 0;
    int max = 0;
    bool lazy = false;
    int groupIndex = 0;  ///< 0 for non-capturing
    AnchorType anchor = AnchorType::Bol;

    std::unique_ptr<Node>
    clone() const
    {
        auto copy = std::make_unique<Node>();
        copy->kind = kind;
        copy->ch = ch;
        copy->classIndex = classIndex;
        copy->min = min;
        copy->max = max;
        copy->lazy = lazy;
        copy->groupIndex = groupIndex;
        copy->anchor = anchor;
        for (const auto &child : children)
            copy->children.push_back(child->clone());
        return copy;
    }
};

} // namespace

bool
redetail::CharClass::matches(unsigned char c, bool ignore_case) const
{
    auto inRanges = [&](unsigned char probe) {
        for (const auto &[lo, hi] : ranges) {
            if (probe >= lo && probe <= hi)
                return true;
        }
        return false;
    };
    bool hit = inRanges(c);
    if (!hit && ignore_case) {
        unsigned char other = static_cast<unsigned char>(
            std::isupper(c) ? std::tolower(c)
                            : std::isalpha(c) ? std::toupper(c) : c);
        if (other != c)
            hit = inRanges(other);
    }
    return negated ? !hit : hit;
}

/** Compiles a pattern string into a Regex program. */
class RegexCompiler
{
  public:
    RegexCompiler(std::string_view pattern, RegexOptions options)
        : pattern_(pattern), options_(options)
    {
    }

    Expected<Regex>
    compile()
    {
        auto ast = parseAlternation();
        if (!ast)
            return makeError(error_);
        if (pos_ != pattern_.size())
            return makeError(syntaxError("unexpected ')'"));

        Regex regex;
        regex.pattern_ = std::string(pattern_);
        regex.options_ = options_;
        regex.classes_ = std::move(classes_);
        regex.groupCount_ = groupCount_;

        // Save(0)/Save(1) delimit the whole match.
        emit(regex, {Regex::Op::Save, 0, 0, 0});
        if (!emitNode(regex, *ast))
            return makeError(error_);
        emit(regex, {Regex::Op::Save, 1, 0, 0});
        emit(regex, {Regex::Op::Accept, 0, 0, 0});
        regex.linear_ = std::make_shared<RegexLinearCache>();
        return regex;
    }

    /**
     * Parse only, for factor analysis. Returns null on any syntax
     * error; the caller falls back to "no factors" (always run the
     * VM), so analysis can never be less correct than compilation.
     */
    std::unique_ptr<Node>
    parseForAnalysis()
    {
        auto ast = parseAlternation();
        if (!ast || pos_ != pattern_.size())
            return nullptr;
        return ast;
    }

  private:
    using NodePtr = std::unique_ptr<Node>;

    std::string
    syntaxError(const std::string &what)
    {
        return what + " at offset " + std::to_string(pos_) + " in /" +
               std::string(pattern_) + "/";
    }

    NodePtr
    fail(const std::string &what)
    {
        if (error_.empty())
            error_ = syntaxError(what);
        return nullptr;
    }

    bool atEnd() const { return pos_ >= pattern_.size(); }
    char peek() const { return pattern_[pos_]; }
    char take() { return pattern_[pos_++]; }

    // alternation := concat ('|' concat)*
    NodePtr
    parseAlternation()
    {
        auto first = parseConcat();
        if (!first)
            return nullptr;
        if (atEnd() || peek() != '|')
            return first;
        auto node = std::make_unique<Node>();
        node->kind = Node::Kind::Alternate;
        node->children.push_back(std::move(first));
        while (!atEnd() && peek() == '|') {
            take();
            auto branch = parseConcat();
            if (!branch)
                return nullptr;
            node->children.push_back(std::move(branch));
        }
        return node;
    }

    // concat := repeat*
    NodePtr
    parseConcat()
    {
        auto node = std::make_unique<Node>();
        node->kind = Node::Kind::Concat;
        while (!atEnd() && peek() != '|' && peek() != ')') {
            auto piece = parseRepeat();
            if (!piece)
                return nullptr;
            node->children.push_back(std::move(piece));
        }
        if (node->children.empty()) {
            node->kind = Node::Kind::Empty;
        } else if (node->children.size() == 1) {
            return std::move(node->children[0]);
        }
        return node;
    }

    // repeat := atom ('*' | '+' | '?' | '{m,n}')? '?'?
    NodePtr
    parseRepeat()
    {
        auto atom = parseAtom();
        if (!atom)
            return nullptr;
        if (atEnd())
            return atom;

        int min = -1, max = -1;
        char q = peek();
        if (q == '*') {
            take();
            min = 0;
            max = -1;
        } else if (q == '+') {
            take();
            min = 1;
            max = -1;
        } else if (q == '?') {
            take();
            min = 0;
            max = 1;
        } else if (q == '{') {
            std::size_t mark = pos_;
            take();
            if (!parseBraceQuantifier(min, max)) {
                // '{' not followed by a quantifier: treat literally.
                pos_ = mark;
                return atom;
            }
        } else {
            return atom;
        }

        if (atom->kind == Node::Kind::Anchor)
            return fail("quantifier on anchor");

        auto node = std::make_unique<Node>();
        node->kind = Node::Kind::Repeat;
        node->min = min;
        node->max = max;
        if (!atEnd() && peek() == '?') {
            take();
            node->lazy = true;
        }
        node->children.push_back(std::move(atom));
        return node;
    }

    bool
    parseBraceQuantifier(int &min, int &max)
    {
        std::size_t start = pos_;
        auto readInt = [&](int &out) {
            int value = 0;
            bool any = false;
            while (!atEnd() &&
                   std::isdigit(static_cast<unsigned char>(peek()))) {
                value = value * 10 + (take() - '0');
                any = true;
                if (value > 1000)
                    return false;
            }
            if (any)
                out = value;
            return any;
        };
        int lo = -1, hi = -1;
        if (!readInt(lo)) {
            pos_ = start;
            return false;
        }
        if (!atEnd() && peek() == ',') {
            take();
            if (!atEnd() && peek() == '}') {
                hi = -1; // open-ended
            } else if (!readInt(hi)) {
                pos_ = start;
                return false;
            }
        } else {
            hi = lo;
        }
        if (atEnd() || peek() != '}') {
            pos_ = start;
            return false;
        }
        take();
        if (hi >= 0 && hi < lo) {
            pos_ = start;
            return false;
        }
        min = lo;
        max = hi;
        return true;
    }

    NodePtr
    parseAtom()
    {
        if (atEnd())
            return fail("pattern ends unexpectedly");
        char c = take();
        switch (c) {
          case '(': {
            bool capturing = true;
            if (!atEnd() && peek() == '?') {
                take();
                if (atEnd() || take() != ':')
                    return fail("only (?: groups are supported");
                capturing = false;
            }
            auto node = std::make_unique<Node>();
            node->kind = Node::Kind::Group;
            node->groupIndex = capturing ? ++groupCount_ : 0;
            auto body = parseAlternation();
            if (!body)
                return nullptr;
            if (atEnd() || take() != ')')
                return fail("unterminated group");
            node->children.push_back(std::move(body));
            return node;
          }
          case '[':
            return parseClass();
          case '.': {
            auto node = std::make_unique<Node>();
            node->kind = Node::Kind::AnyChar;
            return node;
          }
          case '^':
            return makeAnchor(Node::AnchorType::Bol);
          case '$':
            return makeAnchor(Node::AnchorType::Eol);
          case '\\':
            return parseEscape(false);
          case '*':
          case '+':
          case '?':
            return fail("quantifier with nothing to repeat");
          case ')':
            return fail("unmatched ')'");
          default: {
            auto node = std::make_unique<Node>();
            node->kind = Node::Kind::Literal;
            node->ch = c;
            return node;
          }
        }
    }

    NodePtr
    makeAnchor(Node::AnchorType type)
    {
        auto node = std::make_unique<Node>();
        node->kind = Node::Kind::Anchor;
        node->anchor = type;
        return node;
    }

    /** Build a class node from predefined escape classes (\d, \w...). */
    NodePtr
    makeEscapeClass(char kind)
    {
        Regex::CharClass cls;
        switch (kind) {
          case 'D':
            cls.negated = true;
            [[fallthrough]];
          case 'd':
            cls.ranges.push_back({'0', '9'});
            break;
          case 'W':
            cls.negated = true;
            [[fallthrough]];
          case 'w':
            cls.ranges.push_back({'a', 'z'});
            cls.ranges.push_back({'A', 'Z'});
            cls.ranges.push_back({'0', '9'});
            cls.ranges.push_back({'_', '_'});
            break;
          case 'S':
            cls.negated = true;
            [[fallthrough]];
          case 's':
            cls.ranges.push_back({' ', ' '});
            cls.ranges.push_back({'\t', '\t'});
            cls.ranges.push_back({'\n', '\n'});
            cls.ranges.push_back({'\r', '\r'});
            cls.ranges.push_back({'\f', '\f'});
            cls.ranges.push_back({'\v', '\v'});
            break;
          default:
            return fail("unknown escape class");
        }
        auto node = std::make_unique<Node>();
        node->kind = Node::Kind::Class;
        node->classIndex = static_cast<int>(classes_.size());
        classes_.push_back(std::move(cls));
        return node;
    }

    NodePtr
    parseEscape(bool in_class)
    {
        if (atEnd())
            return fail("trailing backslash");
        char c = take();
        switch (c) {
          case 'd': case 'D': case 'w': case 'W': case 's': case 'S':
            return makeEscapeClass(c);
          case 'b':
            if (!in_class)
                return makeAnchor(Node::AnchorType::WordB);
            return makeLiteral('\b');
          case 'B':
            if (!in_class)
                return makeAnchor(Node::AnchorType::NotWordB);
            return fail("\\B inside class");
          case 'n': return makeLiteral('\n');
          case 't': return makeLiteral('\t');
          case 'r': return makeLiteral('\r');
          case 'f': return makeLiteral('\f');
          case 'v': return makeLiteral('\v');
          case '0': return makeLiteral('\0');
          default:
            if (std::isalnum(static_cast<unsigned char>(c)))
                return fail(std::string("unsupported escape \\") + c);
            return makeLiteral(c);
        }
    }

    NodePtr
    makeLiteral(char c)
    {
        auto node = std::make_unique<Node>();
        node->kind = Node::Kind::Literal;
        node->ch = c;
        return node;
    }

    NodePtr
    parseClass()
    {
        Regex::CharClass cls;
        if (!atEnd() && peek() == '^') {
            take();
            cls.negated = true;
        }
        bool first = true;
        while (true) {
            if (atEnd())
                return fail("unterminated character class");
            char c = peek();
            if (c == ']' && !first) {
                take();
                break;
            }
            first = false;
            take();
            unsigned char lo;
            if (c == '\\') {
                // Inside classes, escape classes merge their ranges.
                if (atEnd())
                    return fail("trailing backslash in class");
                char esc = peek();
                if (esc == 'd' || esc == 'w' || esc == 's') {
                    auto sub = parseEscape(true);
                    if (!sub)
                        return nullptr;
                    const auto &subCls =
                        classes_[static_cast<std::size_t>(
                            sub->classIndex)];
                    for (auto r : subCls.ranges)
                        cls.ranges.push_back(r);
                    classes_.pop_back();
                    continue;
                }
                auto lit = parseEscape(true);
                if (!lit)
                    return nullptr;
                if (lit->kind != Node::Kind::Literal)
                    return fail("unsupported escape in class");
                lo = static_cast<unsigned char>(lit->ch);
            } else {
                lo = static_cast<unsigned char>(c);
            }
            unsigned char hi = lo;
            if (!atEnd() && peek() == '-' && pos_ + 1 < pattern_.size()
                && pattern_[pos_ + 1] != ']') {
                take(); // '-'
                char rc = take();
                if (rc == '\\') {
                    auto lit = parseEscape(true);
                    if (!lit || lit->kind != Node::Kind::Literal)
                        return fail("bad range end in class");
                    hi = static_cast<unsigned char>(lit->ch);
                } else {
                    hi = static_cast<unsigned char>(rc);
                }
                if (hi < lo)
                    return fail("reversed range in class");
            }
            cls.ranges.push_back({lo, hi});
        }
        auto node = std::make_unique<Node>();
        node->kind = Node::Kind::Class;
        node->classIndex = static_cast<int>(classes_.size());
        classes_.push_back(std::move(cls));
        return node;
    }

    // ---- code generation -------------------------------------------

    static std::int32_t
    here(const Regex &regex)
    {
        return static_cast<std::int32_t>(regex.program_.size());
    }

    static void
    emit(Regex &regex, Regex::Inst inst)
    {
        regex.program_.push_back(inst);
    }

    bool
    compileError(const std::string &what)
    {
        if (error_.empty())
            error_ = what + " in /" + std::string(pattern_) + "/";
        return false;
    }

    bool
    emitNode(Regex &regex, const Node &node)
    {
        switch (node.kind) {
          case Node::Kind::Empty:
            return true;
          case Node::Kind::Literal: {
            char c = options_.ignoreCase ? foldCase(node.ch) : node.ch;
            emit(regex, {Regex::Op::Char, 0, 0, c});
            return true;
          }
          case Node::Kind::AnyChar:
            emit(regex, {Regex::Op::Any, 0, 0, 0});
            return true;
          case Node::Kind::Class:
            emit(regex, {Regex::Op::Class, node.classIndex, 0, 0});
            return true;
          case Node::Kind::Anchor:
            switch (node.anchor) {
              case Node::AnchorType::Bol:
                emit(regex, {Regex::Op::Bol, 0, 0, 0});
                break;
              case Node::AnchorType::Eol:
                emit(regex, {Regex::Op::Eol, 0, 0, 0});
                break;
              case Node::AnchorType::WordB:
                emit(regex, {Regex::Op::WordB, 0, 0, 0});
                break;
              case Node::AnchorType::NotWordB:
                emit(regex, {Regex::Op::NotWordB, 0, 0, 0});
                break;
            }
            return true;
          case Node::Kind::Concat:
            for (const auto &child : node.children) {
                if (!emitNode(regex, *child))
                    return false;
            }
            return true;
          case Node::Kind::Group: {
            if (node.groupIndex > 0) {
                emit(regex,
                     {Regex::Op::Save, node.groupIndex * 2, 0, 0});
            }
            if (!emitNode(regex, *node.children[0]))
                return false;
            if (node.groupIndex > 0) {
                emit(regex,
                     {Regex::Op::Save, node.groupIndex * 2 + 1, 0, 0});
            }
            return true;
          }
          case Node::Kind::Alternate: {
            // split b1, (split b2, (... bn))  with jumps to the end.
            std::vector<std::int32_t> jumpSites;
            for (std::size_t i = 0; i < node.children.size(); ++i) {
                bool last = (i + 1 == node.children.size());
                std::int32_t splitSite = -1;
                if (!last) {
                    splitSite = here(regex);
                    emit(regex, {Regex::Op::Split, 0, 0, 0});
                    regex.program_[splitSite].arg1 = here(regex);
                }
                if (!emitNode(regex, *node.children[i]))
                    return false;
                if (!last) {
                    jumpSites.push_back(here(regex));
                    emit(regex, {Regex::Op::Jump, 0, 0, 0});
                    regex.program_[splitSite].arg2 = here(regex);
                }
            }
            for (std::int32_t site : jumpSites)
                regex.program_[site].arg1 = here(regex);
            return true;
          }
          case Node::Kind::Repeat:
            return emitRepeat(regex, node);
        }
        return compileError("unreachable node kind");
    }

    bool
    emitRepeat(Regex &regex, const Node &node)
    {
        const Node &body = *node.children[0];
        const int min = node.min;
        const int max = node.max;
        const bool lazy = node.lazy;

        if (min > 64 || (max >= 0 && max > 64))
            return compileError("repetition bound too large (max 64)");

        // Mandatory copies.
        for (int i = 0; i < min; ++i) {
            if (!emitNode(regex, body))
                return false;
        }

        if (max < 0) {
            // Kleene loop:  L: split body, end ; body ; jump L
            std::int32_t loop = here(regex);
            emit(regex, {Regex::Op::Split, 0, 0, 0});
            std::int32_t bodyStart = here(regex);
            if (!emitNode(regex, body))
                return false;
            emit(regex, {Regex::Op::Jump, loop, 0, 0});
            std::int32_t end = here(regex);
            if (lazy) {
                regex.program_[loop].arg1 = end;
                regex.program_[loop].arg2 = bodyStart;
            } else {
                regex.program_[loop].arg1 = bodyStart;
                regex.program_[loop].arg2 = end;
            }
            return true;
        }

        // (max - min) optional copies, each guarded by a split that
        // can bail straight to the end.
        std::vector<std::int32_t> splitSites;
        for (int i = min; i < max; ++i) {
            splitSites.push_back(here(regex));
            emit(regex, {Regex::Op::Split, 0, 0, 0});
            std::int32_t bodyStart = here(regex);
            if (!emitNode(regex, body))
                return false;
            // Fill the "take the body" arm now; the "skip" arm is
            // patched to the common end below.
            auto &inst = regex.program_[splitSites.back()];
            if (lazy)
                inst.arg2 = bodyStart;
            else
                inst.arg1 = bodyStart;
        }
        std::int32_t end = here(regex);
        for (std::int32_t site : splitSites) {
            auto &inst = regex.program_[site];
            if (lazy)
                inst.arg1 = end;
            else
                inst.arg2 = end;
        }
        return true;
    }

    std::string_view pattern_;
    RegexOptions options_;
    std::size_t pos_ = 0;
    int groupCount_ = 0;
    std::vector<Regex::CharClass> classes_;
    std::string error_;
};

namespace {

// ---- required-literal-factor analysis ------------------------------
//
// For every AST node we compute either the node's *exact* language
// (a small set of literal strings) or a set of *factor alternatives*
// — strings of which at least one must appear inside any match of the
// node. Exact sets compose under concatenation (cross product) and
// alternation (union); factor sets only survive alternation when
// every branch contributes one. All strings are ASCII-lower-cased so
// a scanner can fold the haystack once: folding is a conservative
// over-approximation for case-sensitive patterns and exact for
// case-insensitive ones.

constexpr std::size_t kMaxFactorAlternatives = 16;
constexpr std::size_t kMaxFactorLength = 64;

struct FactorInfo
{
    /** strings is the node's complete language (not just factors). */
    bool exact = false;
    /** Exact language, or factor alternatives; empty = no factors. */
    std::vector<std::string> strings;
};

bool
usableAsFactors(const std::vector<std::string> &strings)
{
    if (strings.empty() || strings.size() > kMaxFactorAlternatives)
        return false;
    for (const std::string &s : strings) {
        if (s.empty() || s.size() > kMaxFactorLength)
            return false;
    }
    return true;
}

/** Lexicographic score: (min alternative length, -alternatives). */
std::pair<std::size_t, std::size_t>
factorScore(const std::vector<std::string> &strings)
{
    std::size_t minLen = kMaxFactorLength + 1;
    for (const std::string &s : strings)
        minLen = std::min(minLen, s.size());
    return {minLen, kMaxFactorAlternatives - strings.size()};
}

/** Keep the better of best and candidate (longer minimum factor). */
void
considerCandidate(std::vector<std::string> &best,
                  const std::vector<std::string> &candidate)
{
    if (!usableAsFactors(candidate))
        return;
    if (best.empty() || factorScore(candidate) > factorScore(best))
        best = candidate;
}

/** Cross product into acc; false (acc untouched) on overflow. */
bool
productInto(std::vector<std::string> &acc,
            const std::vector<std::string> &next)
{
    if (acc.size() * next.size() > kMaxFactorAlternatives)
        return false;
    std::vector<std::string> out;
    out.reserve(acc.size() * next.size());
    for (const std::string &a : acc) {
        for (const std::string &b : next) {
            if (a.size() + b.size() > kMaxFactorLength)
                return false;
            out.push_back(a + b);
        }
    }
    acc = std::move(out);
    return true;
}

/** The node's factor alternatives (empty when unusable). */
std::vector<std::string>
factorsOf(const FactorInfo &info)
{
    if (!usableAsFactors(info.strings))
        return {};
    return info.strings;
}

FactorInfo
analyzeFactors(const Node &node)
{
    switch (node.kind) {
      case Node::Kind::Empty:
      case Node::Kind::Anchor:
        // Anchors consume nothing; as a language fragment they
        // contribute the empty string to any concatenation.
        return {true, {std::string()}};
      case Node::Kind::Literal:
        return {true, {std::string(1, foldCase(node.ch))}};
      case Node::Kind::AnyChar:
      case Node::Kind::Class:
        // Could enumerate tiny classes; not worth it for the rule
        // tables, which gate on literal phrases.
        return {false, {}};
      case Node::Kind::Group:
        return analyzeFactors(*node.children[0]);
      case Node::Kind::Concat: {
        // Greedily cross-product maximal runs of exact children;
        // every finished run is a valid factor-alternative set for
        // the whole concatenation (a match embeds the run's text as
        // a contiguous substring). Non-exact children contribute
        // their own factor sets as candidates.
        std::vector<std::string> best;
        std::vector<std::string> run;
        bool runOpen = false;
        bool allExact = true;
        bool overflowed = false;
        for (const auto &child : node.children) {
            FactorInfo sub = analyzeFactors(*child);
            if (sub.exact) {
                if (!runOpen) {
                    run = sub.strings;
                    runOpen = true;
                } else if (!productInto(run, sub.strings)) {
                    overflowed = true;
                    considerCandidate(best, run);
                    run = sub.strings;
                }
            } else {
                allExact = false;
                if (runOpen) {
                    considerCandidate(best, run);
                    runOpen = false;
                }
                considerCandidate(best, factorsOf(sub));
            }
        }
        if (allExact && !overflowed && runOpen)
            return {true, std::move(run)};
        if (runOpen)
            considerCandidate(best, run);
        return {false, std::move(best)};
      }
      case Node::Kind::Alternate: {
        bool allExact = true;
        std::vector<std::string> unionSet;
        for (const auto &child : node.children) {
            FactorInfo sub = analyzeFactors(*child);
            if (!sub.exact) {
                allExact = false;
                // A factor union is only sound when every branch
                // guarantees one of its own factors.
                if (factorsOf(sub).empty())
                    return {false, {}};
            } else if (!usableAsFactors(sub.strings)) {
                // Exact branch that matches "" (or is too big):
                // sound for an exact union, useless as a factor.
                allExact = allExact && true;
                if (!sub.strings.empty() &&
                    sub.strings.size() <= kMaxFactorAlternatives) {
                    // keep for the exact union below
                } else {
                    return {false, {}};
                }
            }
            for (std::string &s : sub.strings)
                unionSet.push_back(std::move(s));
            if (unionSet.size() > kMaxFactorAlternatives)
                return {false, {}};
        }
        std::sort(unionSet.begin(), unionSet.end());
        unionSet.erase(
            std::unique(unionSet.begin(), unionSet.end()),
            unionSet.end());
        if (allExact)
            return {true, std::move(unionSet)};
        if (!usableAsFactors(unionSet))
            return {false, {}};
        return {false, std::move(unionSet)};
      }
      case Node::Kind::Repeat: {
        FactorInfo body = analyzeFactors(*node.children[0]);
        if (node.min == 0) {
            // The repeat can match the empty string, so nothing
            // inside it is required; enumerate x? / x{0,n} exactly
            // when the body language is small.
            if (body.exact && node.max >= 0) {
                std::vector<std::string> langUnion{std::string()};
                std::vector<std::string> power{std::string()};
                for (int i = 1; i <= node.max; ++i) {
                    if (!productInto(power, body.strings))
                        return {false, {}};
                    for (const std::string &s : power)
                        langUnion.push_back(s);
                    if (langUnion.size() > kMaxFactorAlternatives)
                        return {false, {}};
                }
                std::sort(langUnion.begin(), langUnion.end());
                langUnion.erase(std::unique(langUnion.begin(),
                                            langUnion.end()),
                                langUnion.end());
                return {true, std::move(langUnion)};
            }
            return {false, {}};
        }
        // min >= 1: at least one body occurrence appears in full.
        if (body.exact && node.max == node.min) {
            std::vector<std::string> power = body.strings;
            bool ok = true;
            for (int i = 1; i < node.min && ok; ++i)
                ok = productInto(power, body.strings);
            if (ok)
                return {true, std::move(power)};
        }
        return {false, factorsOf(body)};
      }
    }
    return {false, {}};
}

} // namespace

std::vector<std::string>
Regex::literalFactors() const
{
    RegexCompiler compiler(pattern_, options_);
    auto ast = compiler.parseForAnalysis();
    if (!ast)
        return {};
    FactorInfo info = analyzeFactors(*ast);
    std::vector<std::string> factors = factorsOf(info);
    std::sort(factors.begin(), factors.end());
    factors.erase(std::unique(factors.begin(), factors.end()),
                  factors.end());
    return factors;
}

namespace {

/** True when the node can match at least one non-empty string. */
bool
canMatchNonEmpty(const Node &node)
{
    switch (node.kind) {
      case Node::Kind::Empty:
      case Node::Kind::Anchor:
        return false;
      case Node::Kind::Literal:
      case Node::Kind::AnyChar:
      case Node::Kind::Class:
        return true;
      case Node::Kind::Group:
        return canMatchNonEmpty(*node.children[0]);
      case Node::Kind::Concat:
      case Node::Kind::Alternate:
        for (const auto &child : node.children) {
            if (canMatchNonEmpty(*child))
                return true;
        }
        return false;
      case Node::Kind::Repeat:
        return node.max != 0 && canMatchNonEmpty(*node.children[0]);
    }
    return false;
}

/** A repeat where the VM has a choice of iteration counts. */
bool
isVariableRepeat(const Node &node)
{
    return node.kind == Node::Kind::Repeat &&
           (node.max < 0 || node.max > node.min);
}

/** Whether the subtree holds a variable repeat of non-empty text. */
bool
containsVariableRepeat(const Node &node)
{
    if (isVariableRepeat(node) &&
        canMatchNonEmpty(*node.children[0])) {
        return true;
    }
    for (const auto &child : node.children) {
        if (containsVariableRepeat(*child))
            return true;
    }
    return false;
}

/**
 * First '(x+)+'-shaped hazard in the subtree: an outer quantifier
 * that can iterate more than once around an inner variable-count
 * repetition of non-empty text. The same subject substring can then
 * be split across outer iterations in exponentially many ways, and
 * a backtracking VM explores them all on a failing subject.
 */
std::optional<std::string>
findNestedRepeat(const Node &node)
{
    if (node.kind == Node::Kind::Repeat &&
        (node.max < 0 || node.max > 1) &&
        containsVariableRepeat(*node.children[0])) {
        std::string bound =
            node.max < 0 ? std::string("unbounded")
                         : "up to " + std::to_string(node.max);
        return "quantifier with " + bound +
               " iterations encloses another variable-count "
               "repetition of non-empty text ('(x+)+' shape); a "
               "failing subject forces exponential backtracking";
    }
    for (const auto &child : node.children) {
        if (auto hit = findNestedRepeat(*child))
            return hit;
    }
    return std::nullopt;
}

} // namespace

std::optional<std::vector<std::string>>
Regex::exactLiterals() const
{
    RegexCompiler compiler(pattern_, options_);
    auto ast = compiler.parseForAnalysis();
    if (!ast)
        return std::nullopt;
    FactorInfo info = analyzeFactors(*ast);
    if (!info.exact)
        return std::nullopt;
    std::vector<std::string> language = std::move(info.strings);
    std::sort(language.begin(), language.end());
    language.erase(std::unique(language.begin(), language.end()),
                   language.end());
    return language;
}

std::optional<std::string>
Regex::backtrackingHazard() const
{
    RegexCompiler compiler(pattern_, options_);
    auto ast = compiler.parseForAnalysis();
    if (!ast)
        return std::nullopt;
    return findNestedRepeat(*ast);
}

Expected<Regex>
Regex::compile(std::string_view pattern, RegexOptions options)
{
    return RegexCompiler(pattern, options).compile();
}

Regex
Regex::compileOrDie(std::string_view pattern, RegexOptions options)
{
    auto result = compile(pattern, options);
    if (!result)
        REMEMBERR_PANIC("regex compile failed: ",
                        result.error().toString());
    return result.value();
}

bool
Regex::runFrom(std::string_view subject, std::size_t start,
               RegexMatch &out, bool *exhausted,
               bool require_full) const
{
    struct Frame
    {
        std::int32_t pc;
        std::size_t pos;
        std::vector<std::int64_t> saves;
    };

    const std::size_t slotCount =
        static_cast<std::size_t>(groupCount_ + 1) * 2;
    std::vector<std::int64_t> saves(slotCount, -1);
    std::vector<Frame> stack;
    std::int32_t pc = 0;
    std::size_t pos = start;
    std::size_t steps = 0;

    auto backtrack = [&]() -> bool {
        if (stack.empty())
            return false;
        Frame &frame = stack.back();
        pc = frame.pc;
        pos = frame.pos;
        saves = std::move(frame.saves);
        stack.pop_back();
        return true;
    };

    for (;;) {
        if (++steps > options_.stepLimit) {
            // Structured, counted event instead of a silent miss:
            // exhaustion means the VM *gave up*, not that the subject
            // provably fails to match, so operators need to see it.
            static Counter &exhaustedCounter =
                MetricsRegistry::global().counter(
                    "text.regex.budget_exhausted");
            exhaustedCounter.add();
            static std::atomic<bool> warnedOnce{false};
            if (!warnedOnce.exchange(true,
                                     std::memory_order_relaxed)) {
                REMEMBERR_WARN(
                    "regex VM step budget exhausted for /", pattern_,
                    "/ (limit ", options_.stepLimit,
                    "); treating as no-match — further occurrences "
                    "are counted in text.regex.budget_exhausted");
            }
            if (exhausted)
                *exhausted = true;
            return false;
        }
        const Inst &inst = program_[static_cast<std::size_t>(pc)];
        bool ok = true;
        switch (inst.op) {
          case Op::Char: {
            if (pos >= subject.size()) {
                ok = false;
                break;
            }
            char c = subject[pos];
            if (options_.ignoreCase)
                c = foldCase(c);
            if (c != inst.ch) {
                ok = false;
                break;
            }
            ++pos;
            ++pc;
            break;
          }
          case Op::Any:
            if (pos >= subject.size() || subject[pos] == '\n') {
                ok = false;
                break;
            }
            ++pos;
            ++pc;
            break;
          case Op::Class: {
            if (pos >= subject.size()) {
                ok = false;
                break;
            }
            const CharClass &cls =
                classes_[static_cast<std::size_t>(inst.arg1)];
            if (!cls.matches(static_cast<unsigned char>(subject[pos]),
                             options_.ignoreCase)) {
                ok = false;
                break;
            }
            ++pos;
            ++pc;
            break;
          }
          case Op::Split:
            stack.push_back({inst.arg2, pos, saves});
            pc = inst.arg1;
            break;
          case Op::Jump:
            pc = inst.arg1;
            break;
          case Op::Save:
            saves[static_cast<std::size_t>(inst.arg1)] =
                static_cast<std::int64_t>(pos);
            ++pc;
            break;
          case Op::Bol:
            if (pos != 0 && subject[pos - 1] != '\n') {
                ok = false;
                break;
            }
            ++pc;
            break;
          case Op::Eol:
            if (pos != subject.size() && subject[pos] != '\n') {
                ok = false;
                break;
            }
            ++pc;
            break;
          case Op::WordB:
          case Op::NotWordB: {
            bool before = pos > 0 && isWordChar(subject[pos - 1]);
            bool after =
                pos < subject.size() && isWordChar(subject[pos]);
            bool boundary = before != after;
            bool want = inst.op == Op::WordB;
            if (boundary != want) {
                ok = false;
                break;
            }
            ++pc;
            break;
          }
          case Op::Accept: {
            if (require_full && pos != subject.size()) {
                // Keep backtracking until a path consumes everything.
                ok = false;
                break;
            }
            out.begin = static_cast<std::size_t>(saves[0]);
            out.end = static_cast<std::size_t>(saves[1]);
            out.groups.clear();
            for (int g = 1; g <= groupCount_; ++g) {
                std::int64_t b = saves[static_cast<std::size_t>(g) * 2];
                std::int64_t e =
                    saves[static_cast<std::size_t>(g) * 2 + 1];
                if (b >= 0 && e >= 0) {
                    out.groups.emplace_back(std::make_pair(
                        static_cast<std::size_t>(b),
                        static_cast<std::size_t>(e)));
                } else {
                    out.groups.emplace_back(std::nullopt);
                }
            }
            return true;
          }
        }
        if (!ok && !backtrack())
            return false;
    }
}

namespace {

std::atomic<int> g_regexTier{static_cast<int>(RegexTier::Linear)};

} // namespace

void
setRegexTier(RegexTier tier)
{
    g_regexTier.store(static_cast<int>(tier),
                      std::memory_order_relaxed);
}

RegexTier
regexTier()
{
    return static_cast<RegexTier>(
        g_regexTier.load(std::memory_order_relaxed));
}

// ---- backtracking-VM oracle entry points ---------------------------

bool
Regex::fullMatchBacktracking(std::string_view subject) const
{
    RegexMatch match;
    return runFrom(subject, 0, match, nullptr, true);
}

std::optional<RegexMatch>
Regex::searchBacktracking(std::string_view subject, std::size_t from,
                          bool *exhausted) const
{
    if (exhausted)
        *exhausted = false;
    for (std::size_t start = from; start <= subject.size(); ++start) {
        RegexMatch match;
        bool budget = false;
        if (runFrom(subject, start, match, &budget))
            return match;
        if (budget) {
            if (exhausted)
                *exhausted = true;
            return std::nullopt;
        }
    }
    return std::nullopt;
}

bool
Regex::containsBacktracking(std::string_view subject) const
{
    return searchBacktracking(subject).has_value();
}

// ---- tier-routed public queries ------------------------------------

bool
Regex::fullMatch(std::string_view subject) const
{
    if (regexTier() == RegexTier::Linear)
        return RegexLinear::fullMatch(*this, subject);
    return fullMatchBacktracking(subject);
}

std::optional<RegexMatch>
Regex::search(std::string_view subject, std::size_t from,
              bool *exhausted) const
{
    if (regexTier() == RegexTier::Linear) {
        if (exhausted)
            *exhausted = false;
        if (linearSpanEligible())
            return RegexLinear::searchSpan(*this, subject, from);
        // Capture groups keep span extraction on the VM; the DFA
        // still quick-rejects non-matching subjects in linear time,
        // which is the common case after prefiltering.
        if (!RegexLinear::contains(*this, subject, from))
            return std::nullopt;
        return searchBacktracking(subject, from, exhausted);
    }
    return searchBacktracking(subject, from, exhausted);
}

std::vector<RegexMatch>
Regex::findAll(std::string_view subject) const
{
    std::vector<RegexMatch> matches;
    std::size_t from = 0;
    while (from <= subject.size()) {
        auto match = search(subject, from);
        if (!match)
            break;
        matches.push_back(*match);
        // Empty matches must still make progress.
        from = match->end > match->begin ? match->end : match->end + 1;
    }
    return matches;
}

bool
Regex::contains(std::string_view subject) const
{
    if (regexTier() == RegexTier::Linear)
        return RegexLinear::contains(*this, subject);
    return containsBacktracking(subject);
}

std::string
regexEscape(std::string_view literal)
{
    static const std::string meta = R"(.^$*+?()[]{}|\)";
    std::string out;
    out.reserve(literal.size());
    for (char c : literal) {
        if (meta.find(c) != std::string::npos)
            out += '\\';
        out += c;
    }
    return out;
}

} // namespace rememberr
