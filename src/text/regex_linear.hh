/**
 * @file
 * The linear-time regex execution tier: a lazily built DFA for match
 * decisions and a Pike NFA simulation for leftmost match spans.
 *
 * Both engines interpret the same Thompson bytecode the backtracking
 * VM runs (regex_program.hh), so the three tiers recognize exactly
 * the same language. The DFA answers `contains`/`fullMatch` booleans
 * in O(subject) with O(1) amortized work per byte once its states are
 * cached; the Pike simulation answers leftmost-first span queries in
 * O(subject × program) worst case with no backtracking. Neither can
 * take exponential time on any input — the '(x+)+' hazard class
 * RBE204 detects is structurally impossible here.
 *
 * DFA states are discovered on demand and cached in the
 * `RegexLinearCache` every copy of a compiled `Regex` shares. The
 * cache is bounded: when the state count hits the cap the cache is
 * flushed and the scan restarts, and a scan that keeps overflowing
 * falls back to the uncached NFA simulation — still linear, just
 * without memoization. See DESIGN.md §15.
 */

#ifndef REMEMBERR_TEXT_REGEX_LINEAR_HH
#define REMEMBERR_TEXT_REGEX_LINEAR_HH

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string_view>
#include <utility>
#include <vector>

#include "text/regex.hh"

namespace rememberr {

/**
 * Per-pattern lazy-DFA state cache, shared (via shared_ptr) by every
 * copy of one compiled Regex.
 *
 * Concurrency: byte-equivalence classes are built once under
 * `once`; the two DFAs are guarded by `mutex`. Readers scan whole
 * subjects under a shared lock and treat any unexplored transition
 * as a miss; the miss path re-scans under the unique lock, building
 * states as it goes. States are only ever appended or flushed
 * wholesale, both under the unique lock.
 */
class RegexLinearCache
{
  public:
    /** One lazily discovered DFA (anchored or unanchored). */
    struct Dfa
    {
        struct State
        {
            /** Sorted NFA pcs pending (pre-closure) at a gap. */
            std::vector<std::int32_t> kernel;
            /** Context class of the preceding byte (kPrev*). */
            std::uint8_t prevClass = 0;
            /** Kernel empty: an anchored scan can stop early. */
            bool dead = false;
            /** -1 unknown, else 0/1: Accept reachable at EOT. */
            std::int8_t acceptAtEof = -1;
            /**
             * Per byte-equivalence-class transition: -1 unexplored,
             * else (nextStateId << 1) | acceptedAtThisGap.
             */
            std::vector<std::int32_t> trans;
        };

        std::vector<State> states;
        /** (kernel, prevClass) -> state id. */
        std::map<std::pair<std::vector<std::int32_t>, std::uint8_t>,
                 std::int32_t>
            index;
    };

    std::once_flag once;
    /** Byte -> equivalence class under the pattern's predicates. */
    std::array<std::uint16_t, 256> byteClass{};
    std::uint16_t numClasses = 0;

    std::shared_mutex mutex;
    /** For fullMatch: starts only at the scan origin. */
    Dfa anchored;
    /** For contains: a fresh match attempt injected at every gap. */
    Dfa unanchored;
};

/**
 * Static entry points of the linear tier. A friend of Regex so the
 * engines can read the compiled program; stateless itself.
 */
class RegexLinear
{
  public:
    /** Unanchored decision: any match starting at or after from. */
    static bool contains(const Regex &regex, std::string_view subject,
                         std::size_t from = 0);

    /** Anchored whole-subject decision. */
    static bool fullMatch(const Regex &regex,
                          std::string_view subject);

    /**
     * Leftmost match span with backtracking-identical
     * (leftmost-first) semantics, for capture-free patterns. The
     * returned match carries no group spans.
     */
    static std::optional<RegexMatch>
    searchSpan(const Regex &regex, std::string_view subject,
               std::size_t from = 0);

    /**
     * Test hook: shrink the per-DFA state cap to force
     * flush-on-overflow and the NFA fallback. 0 restores the
     * default. Affects newly scanned subjects only; existing cached
     * states stay valid.
     */
    static void setMaxDfaStatesForTest(std::size_t cap);
};

} // namespace rememberr

#endif // REMEMBERR_TEXT_REGEX_LINEAR_HH
