#include "ngram_index.hh"

#include <algorithm>

#include "tokenize.hh"
#include "util/logging.hh"
#include "util/strings.hh"

namespace rememberr {

NgramIndex::NgramIndex(std::size_t n) : n_(n)
{
    if (n == 0)
        REMEMBERR_PANIC("NgramIndex: n must be positive");
}

std::vector<std::string>
NgramIndex::distinctGrams(std::string_view text) const
{
    std::string canon = strings::canonicalize(text);
    std::vector<std::string> grams = characterNgrams(canon, n_);
    std::sort(grams.begin(), grams.end());
    grams.erase(std::unique(grams.begin(), grams.end()),
                grams.end());
    // Short titles still need representation: fall back to the whole
    // canonical string as a single gram.
    if (grams.empty() && !canon.empty())
        grams.push_back(std::move(canon));
    return grams;
}

std::uint32_t
NgramIndex::add(std::string_view text)
{
    std::uint32_t id =
        static_cast<std::uint32_t>(docGramCounts_.size());
    auto grams = distinctGrams(text);
    for (const auto &gram : grams)
        postings_[gram].push_back(id);
    docGramCounts_.push_back(grams.size());
    return id;
}

std::vector<NgramCandidate>
NgramIndex::query(std::string_view text, double min_overlap,
                  std::int64_t exclude_id) const
{
    NgramQueryScratch scratch;
    return query(text, scratch, min_overlap, exclude_id);
}

std::vector<NgramCandidate>
NgramIndex::query(std::string_view text, NgramQueryScratch &scratch,
                  double min_overlap, std::int64_t exclude_id) const
{
    auto grams = distinctGrams(text);
    if (grams.empty())
        return {};
    if (scratch.sharedCounts.size() < docGramCounts_.size())
        scratch.sharedCounts.resize(docGramCounts_.size(), 0);
    scratch.touched.clear();
    for (const auto &gram : grams) {
        auto it = postings_.find(gram);
        if (it == postings_.end())
            continue;
        for (std::uint32_t doc : it->second) {
            if (scratch.sharedCounts[doc]++ == 0)
                scratch.touched.push_back(doc);
        }
    }
    std::vector<NgramCandidate> out;
    out.reserve(scratch.touched.size());
    for (std::uint32_t doc : scratch.touched) {
        const std::size_t count = scratch.sharedCounts[doc];
        scratch.sharedCounts[doc] = 0; // sparse reset for next query
        if (exclude_id >= 0 &&
            doc == static_cast<std::uint32_t>(exclude_id)) {
            continue;
        }
        double overlap =
            static_cast<double>(count) / static_cast<double>(
                grams.size());
        if (overlap >= min_overlap)
            out.push_back({doc, count, overlap});
    }
    std::sort(out.begin(), out.end(),
              [](const NgramCandidate &a, const NgramCandidate &b) {
                  if (a.overlap != b.overlap)
                      return a.overlap > b.overlap;
                  return a.docId < b.docId;
              });
    return out;
}

} // namespace rememberr
