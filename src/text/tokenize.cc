#include "tokenize.hh"

#include <cctype>

namespace rememberr {

namespace {

inline bool
isTokenChar(char c)
{
    unsigned char u = static_cast<unsigned char>(c);
    return std::isalnum(u) != 0;
}

inline bool
isJoinerChar(char c)
{
    return c == '-' || c == '_' || c == '.';
}

inline char
lowerChar(char c)
{
    return static_cast<char>(
        std::tolower(static_cast<unsigned char>(c)));
}

bool
isNumeric(const std::string &token)
{
    for (char c : token) {
        if (!std::isdigit(static_cast<unsigned char>(c)))
            return false;
    }
    return !token.empty();
}

} // namespace

const std::unordered_set<std::string> &
stopWords()
{
    static const std::unordered_set<std::string> words = {
        "a",     "an",   "and",  "are",  "as",   "at",    "be",
        "by",    "can",  "do",   "does", "for",  "from",  "has",
        "have",  "if",   "in",   "into", "is",   "it",    "its",
        "may",   "might","not",  "of",   "on",   "or",    "such",
        "that",  "the",  "their","then", "there","these", "this",
        "to",    "under","was",  "when", "which","while", "will",
        "with",  "would",
    };
    return words;
}

std::vector<Token>
tokenize(std::string_view text, const TokenizerOptions &options)
{
    std::vector<Token> tokens;
    std::size_t i = 0;
    while (i < text.size()) {
        if (!isTokenChar(text[i])) {
            ++i;
            continue;
        }
        std::size_t start = i;
        std::string word;
        while (i < text.size()) {
            if (isTokenChar(text[i])) {
                word += lowerChar(text[i]);
                ++i;
            } else if (isJoinerChar(text[i]) && i + 1 < text.size() &&
                       isTokenChar(text[i + 1])) {
                word += text[i];
                ++i;
            } else {
                break;
            }
        }
        if (word.size() < options.minLength)
            continue;
        if (!options.keepNumbers && isNumeric(word))
            continue;
        if (options.dropStopWords && stopWords().count(word))
            continue;
        tokens.push_back(Token{std::move(word), start, i});
    }
    return tokens;
}

std::vector<std::string>
tokenizeWords(std::string_view text, const TokenizerOptions &opt)
{
    std::vector<std::string> words;
    for (auto &token : tokenize(text, opt))
        words.push_back(std::move(token.text));
    return words;
}

std::vector<std::string>
characterNgrams(std::string_view text, std::size_t n)
{
    std::vector<std::string> grams;
    if (n == 0 || text.size() < n)
        return grams;
    std::string lowered;
    lowered.reserve(text.size());
    for (char c : text)
        lowered += lowerChar(c);
    for (std::size_t i = 0; i + n <= lowered.size(); ++i)
        grams.push_back(lowered.substr(i, n));
    return grams;
}

} // namespace rememberr
