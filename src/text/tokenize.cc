#include "tokenize.hh"

#include <array>
#include <cctype>
#include <cstdint>

namespace rememberr {

namespace {

// ---- table-driven byte classification ------------------------------
//
// The tokenizer runs over every document on every ingest, dedup and
// index pass, so the per-character `<cctype>` calls (each an indirect
// locale-table lookup through a function call) are replaced with two
// constexpr 256-entry tables: one classification byte and one
// lowercase map. `tokenizeReference` below keeps the original
// implementation as the differential oracle; the ASCII-only "C"
// locale behavior the reference relies on is exactly what the tables
// encode.

constexpr std::uint8_t kDigit = 1;   ///< '0'..'9'
constexpr std::uint8_t kAlpha = 2;   ///< 'a'..'z', 'A'..'Z'
constexpr std::uint8_t kJoiner = 4;  ///< intra-word '-', '_', '.'
constexpr std::uint8_t kToken = kDigit | kAlpha;

constexpr auto kCharTable = [] {
    std::array<std::uint8_t, 256> table{};
    for (int c = '0'; c <= '9'; ++c)
        table[static_cast<std::size_t>(c)] |= kDigit;
    for (int c = 'a'; c <= 'z'; ++c)
        table[static_cast<std::size_t>(c)] |= kAlpha;
    for (int c = 'A'; c <= 'Z'; ++c)
        table[static_cast<std::size_t>(c)] |= kAlpha;
    table['-'] |= kJoiner;
    table['_'] |= kJoiner;
    table['.'] |= kJoiner;
    return table;
}();

constexpr auto kLowerTable = [] {
    std::array<char, 256> table{};
    for (int c = 0; c < 256; ++c)
        table[static_cast<std::size_t>(c)] = static_cast<char>(c);
    for (int c = 'A'; c <= 'Z'; ++c) {
        table[static_cast<std::size_t>(c)] =
            static_cast<char>(c - 'A' + 'a');
    }
    return table;
}();

inline std::uint8_t
classOf(char c)
{
    return kCharTable[static_cast<unsigned char>(c)];
}

inline char
lowerByte(char c)
{
    return kLowerTable[static_cast<unsigned char>(c)];
}

} // namespace

const StopWordSet &
stopWords()
{
    static const StopWordSet words = {
        "a",     "an",   "and",  "are",  "as",   "at",    "be",
        "by",    "can",  "do",   "does", "for",  "from",  "has",
        "have",  "if",   "in",   "into", "is",   "it",    "its",
        "may",   "might","not",  "of",   "on",   "or",    "such",
        "that",  "the",  "their","then", "there","these", "this",
        "to",    "under","was",  "when", "which","while", "will",
        "with",  "would",
    };
    return words;
}

std::vector<Token>
tokenize(std::string_view text, const TokenizerOptions &options)
{
    std::vector<Token> tokens;
    const std::size_t n = text.size();
    // One scratch string reused across tokens: dropped tokens (stop
    // words, too-short, numeric) cost no allocation at all.
    std::string word;
    std::size_t i = 0;
    while (i < n) {
        if (!(classOf(text[i]) & kToken)) {
            ++i;
            continue;
        }
        std::size_t start = i;
        word.clear();
        bool allDigits = true;
        while (i < n) {
            std::uint8_t cls = classOf(text[i]);
            if (cls & kToken) {
                // Absorb the whole alphanumeric run in one chunk.
                std::size_t run = i;
                while (run < n && (classOf(text[run]) & kToken))
                    ++run;
                for (std::size_t j = i; j < run; ++j) {
                    if (!(classOf(text[j]) & kDigit))
                        allDigits = false;
                    word += lowerByte(text[j]);
                }
                i = run;
            } else if ((cls & kJoiner) && i + 1 < n &&
                       (classOf(text[i + 1]) & kToken)) {
                word += text[i];
                allDigits = false;
                ++i;
            } else {
                break;
            }
        }
        if (word.size() < options.minLength)
            continue;
        if (!options.keepNumbers && allDigits)
            continue;
        if (options.dropStopWords &&
            stopWords().contains(std::string_view(word))) {
            continue;
        }
        tokens.push_back(Token{word, start, i});
    }
    return tokens;
}

// ---- reference implementation (differential oracle) ----------------

namespace {

inline bool
refIsTokenChar(char c)
{
    unsigned char u = static_cast<unsigned char>(c);
    return std::isalnum(u) != 0;
}

inline bool
refIsJoinerChar(char c)
{
    return c == '-' || c == '_' || c == '.';
}

inline char
refLowerChar(char c)
{
    return static_cast<char>(
        std::tolower(static_cast<unsigned char>(c)));
}

bool
refIsNumeric(const std::string &token)
{
    for (char c : token) {
        if (!std::isdigit(static_cast<unsigned char>(c)))
            return false;
    }
    return !token.empty();
}

} // namespace

std::vector<Token>
tokenizeReference(std::string_view text,
                  const TokenizerOptions &options)
{
    std::vector<Token> tokens;
    std::size_t i = 0;
    while (i < text.size()) {
        if (!refIsTokenChar(text[i])) {
            ++i;
            continue;
        }
        std::size_t start = i;
        std::string word;
        while (i < text.size()) {
            if (refIsTokenChar(text[i])) {
                word += refLowerChar(text[i]);
                ++i;
            } else if (refIsJoinerChar(text[i]) &&
                       i + 1 < text.size() &&
                       refIsTokenChar(text[i + 1])) {
                word += text[i];
                ++i;
            } else {
                break;
            }
        }
        if (word.size() < options.minLength)
            continue;
        if (!options.keepNumbers && refIsNumeric(word))
            continue;
        if (options.dropStopWords && stopWords().count(word))
            continue;
        tokens.push_back(Token{std::move(word), start, i});
    }
    return tokens;
}

std::vector<std::string>
tokenizeWords(std::string_view text, const TokenizerOptions &opt)
{
    std::vector<std::string> words;
    for (auto &token : tokenize(text, opt))
        words.push_back(std::move(token.text));
    return words;
}

std::vector<std::string>
characterNgrams(std::string_view text, std::size_t n)
{
    std::vector<std::string> grams;
    if (n == 0 || text.size() < n)
        return grams;
    std::string lowered;
    lowered.reserve(text.size());
    for (char c : text)
        lowered += lowerByte(c);
    grams.reserve(lowered.size() - n + 1);
    for (std::size_t i = 0; i + n <= lowered.size(); ++i)
        grams.push_back(lowered.substr(i, n));
    return grams;
}

} // namespace rememberr
