#include "logging.hh"

#include <atomic>
#include <cstdio>
#include <memory>
#include <mutex>
#include <stdexcept>

namespace rememberr {

namespace {

std::atomic<int> levelFlag{static_cast<int>(LogLevel::Info)};

std::mutex &
emitterMutex()
{
    static std::mutex mutex;
    return mutex;
}

/** Shared so a concurrent setLogEmitter cannot destroy the emitter
 * under a thread that already picked it up. */
std::shared_ptr<LogEmitter> &
emitterSlot()
{
    static std::shared_ptr<LogEmitter> slot;
    return slot;
}

/**
 * Write one already-formatted line to stderr. The message is
 * assembled into a single buffer and written with one fwrite under a
 * mutex: stdio locks individual fprintf calls, but a multi-part
 * emission (prefix, body, newline) could interleave between pool
 * workers without this.
 */
void
emitLine(const char *prefix, const std::string &msg)
{
    std::string line;
    line.reserve(msg.size() + 16);
    line += prefix;
    line += ": ";
    line += msg;
    line += '\n';
    static std::mutex emitMutex;
    std::lock_guard<std::mutex> lock(emitMutex);
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fflush(stderr);
}

/** Route one record through the installed emitter, or the default
 * single-write stderr line when none is installed. */
void
emit(const char *level, const std::string &msg)
{
    std::shared_ptr<LogEmitter> emitter;
    {
        std::lock_guard<std::mutex> lock(emitterMutex());
        emitter = emitterSlot();
    }
    if (emitter)
        (*emitter)(level, msg);
    else
        emitLine(level, msg);
}

} // namespace

void
setLogEmitter(LogEmitter emitter)
{
    std::lock_guard<std::mutex> lock(emitterMutex());
    if (emitter)
        emitterSlot() =
            std::make_shared<LogEmitter>(std::move(emitter));
    else
        emitterSlot().reset();
}

void
setLogLevel(LogLevel level)
{
    levelFlag.store(static_cast<int>(level),
                    std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return static_cast<LogLevel>(
        levelFlag.load(std::memory_order_relaxed));
}

void
setLogQuiet(bool quiet)
{
    setLogLevel(quiet ? LogLevel::Quiet : LogLevel::Info);
}

bool
logQuiet()
{
    return logLevel() == LogLevel::Quiet;
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    emit("panic",
         msg + " (" + file + ":" + std::to_string(line) + ")");
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    // Throwing (instead of exit(1)) lets tests exercise fatal paths and
    // lets embedding applications decide how to die.
    throw std::runtime_error(
        msg + " (" + file + ":" + std::to_string(line) + ")");
}

void
warnImpl(const std::string &msg)
{
    if (logLevel() >= LogLevel::Info)
        emit("warn", msg);
}

void
informImpl(const std::string &msg)
{
    if (logLevel() >= LogLevel::Info)
        emit("info", msg);
}

void
debugImpl(const std::string &msg)
{
    if (logLevel() == LogLevel::Debug)
        emit("debug", msg);
}

} // namespace detail

} // namespace rememberr
