#include "logging.hh"

#include <atomic>
#include <cstdio>
#include <stdexcept>

namespace rememberr {

namespace {

std::atomic<bool> quietFlag{false};

} // namespace

void
setLogQuiet(bool quiet)
{
    quietFlag.store(quiet, std::memory_order_relaxed);
}

bool
logQuiet()
{
    return quietFlag.load(std::memory_order_relaxed);
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    // Throwing (instead of exit(1)) lets tests exercise fatal paths and
    // lets embedding applications decide how to die.
    throw std::runtime_error(
        msg + " (" + file + ":" + std::to_string(line) + ")");
}

void
warnImpl(const std::string &msg)
{
    if (!logQuiet())
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (!logQuiet())
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace detail

} // namespace rememberr
