#include "logging.hh"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <stdexcept>

namespace rememberr {

namespace {

std::atomic<int> levelFlag{static_cast<int>(LogLevel::Info)};

/**
 * Write one already-formatted line to stderr. The message is
 * assembled into a single buffer and written with one fwrite under a
 * mutex: stdio locks individual fprintf calls, but a multi-part
 * emission (prefix, body, newline) could interleave between pool
 * workers without this.
 */
void
emitLine(const char *prefix, const std::string &msg)
{
    std::string line;
    line.reserve(msg.size() + 16);
    line += prefix;
    line += ": ";
    line += msg;
    line += '\n';
    static std::mutex emitMutex;
    std::lock_guard<std::mutex> lock(emitMutex);
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fflush(stderr);
}

} // namespace

void
setLogLevel(LogLevel level)
{
    levelFlag.store(static_cast<int>(level),
                    std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return static_cast<LogLevel>(
        levelFlag.load(std::memory_order_relaxed));
}

void
setLogQuiet(bool quiet)
{
    setLogLevel(quiet ? LogLevel::Quiet : LogLevel::Info);
}

bool
logQuiet()
{
    return logLevel() == LogLevel::Quiet;
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    emitLine("panic",
             msg + " (" + file + ":" + std::to_string(line) + ")");
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    // Throwing (instead of exit(1)) lets tests exercise fatal paths and
    // lets embedding applications decide how to die.
    throw std::runtime_error(
        msg + " (" + file + ":" + std::to_string(line) + ")");
}

void
warnImpl(const std::string &msg)
{
    if (logLevel() >= LogLevel::Info)
        emitLine("warn", msg);
}

void
informImpl(const std::string &msg)
{
    if (logLevel() >= LogLevel::Info)
        emitLine("info", msg);
}

void
debugImpl(const std::string &msg)
{
    if (logLevel() == LogLevel::Debug)
        emitLine("debug", msg);
}

} // namespace detail

} // namespace rememberr
