#include "fileio.hh"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#define REMEMBERR_FILEIO_POSIX 1
#include <cerrno>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace rememberr {

namespace {

std::atomic<std::uint64_t> fileSyncs{0};
std::atomic<std::uint64_t> dirSyncs{0};

/** Unique sibling temp name: pid + a process-wide sequence keep
 * concurrent writers (tests run commands in parallel processes and
 * the exporter thread rewrites its series repeatedly) from clobbering
 * each other's staging files. */
std::string
tempName(const std::string &path)
{
    static std::atomic<std::uint64_t> sequence{0};
    long pid = 0;
#if defined(__unix__) || defined(__APPLE__)
    pid = static_cast<long>(::getpid());
#endif
    return path + ".tmp." + std::to_string(pid) + "." +
           std::to_string(
               sequence.fetch_add(1, std::memory_order_relaxed));
}

#ifdef REMEMBERR_FILEIO_POSIX

/** write(2) the whole buffer, retrying on EINTR / short writes. */
bool
writeFully(int fd, const char *data, std::size_t size)
{
    std::size_t written = 0;
    while (written < size) {
        ssize_t wrote = ::write(fd, data + written, size - written);
        if (wrote < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        written += static_cast<std::size_t>(wrote);
    }
    return true;
}

/**
 * fsync the directory containing `path`, making a completed rename
 * in it durable. Failure is reported (metadata might still be
 * volatile), but the rename itself already happened — callers get an
 * error, not a rolled-back file.
 */
bool
syncParentDirectory(const std::string &path)
{
    std::string dir =
        std::filesystem::path(path).parent_path().string();
    if (dir.empty())
        dir = ".";
    int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0)
        return false;
    bool ok = ::fsync(fd) == 0;
    ::close(fd);
    if (ok)
        dirSyncs.fetch_add(1, std::memory_order_relaxed);
    return ok;
}

Expected<std::size_t>
atomicWriteFilePosix(const std::string &path,
                     const std::string &content)
{
    const std::string temp = tempName(path);
    int fd = ::open(temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                    0644);
    if (fd < 0)
        return makeError("cannot create " + temp);
    if (!writeFully(fd, content.data(), content.size())) {
        ::close(fd);
        ::unlink(temp.c_str());
        return makeError("cannot write " + temp);
    }
    // Data must be on disk before the rename publishes it; otherwise
    // a crash could leave the new name pointing at a zero-length (or
    // partial) file.
    if (::fsync(fd) != 0) {
        ::close(fd);
        ::unlink(temp.c_str());
        return makeError("cannot fsync " + temp);
    }
    fileSyncs.fetch_add(1, std::memory_order_relaxed);
    if (::close(fd) != 0) {
        ::unlink(temp.c_str());
        return makeError("cannot close " + temp);
    }
    if (::rename(temp.c_str(), path.c_str()) != 0) {
        int savedErrno = errno;
        ::unlink(temp.c_str());
        return makeError("cannot rename " + temp + " to " + path +
                         ": " + std::strerror(savedErrno));
    }
    if (!syncParentDirectory(path))
        return makeError("cannot fsync directory of " + path);
    return content.size();
}

#endif // REMEMBERR_FILEIO_POSIX

} // namespace

Expected<std::size_t>
atomicWriteFile(const std::string &path, const std::string &content)
{
#ifdef REMEMBERR_FILEIO_POSIX
    return atomicWriteFilePosix(path, content);
#else
    const std::string temp = tempName(path);
    {
        std::ofstream out(temp,
                          std::ios::binary | std::ios::trunc);
        out.write(content.data(),
                  static_cast<std::streamsize>(content.size()));
        out.flush();
        if (!out) {
            std::error_code ec;
            std::filesystem::remove(temp, ec);
            return makeError("cannot write " + temp);
        }
    }
    std::error_code ec;
    std::filesystem::rename(temp, path, ec);
    if (ec) {
        std::error_code removeEc;
        std::filesystem::remove(temp, removeEc);
        return makeError("cannot rename " + temp + " to " + path +
                         ": " + ec.message());
    }
    return content.size();
#endif
}

FileIoStats
fileIoStats()
{
    FileIoStats stats;
    stats.fileSyncs = fileSyncs.load(std::memory_order_relaxed);
    stats.dirSyncs = dirSyncs.load(std::memory_order_relaxed);
    return stats;
}

} // namespace rememberr
