#include "fileio.hh"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace rememberr {

namespace {

/** Unique sibling temp name: pid + a process-wide sequence keep
 * concurrent writers (tests run commands in parallel processes and
 * the exporter thread rewrites its series repeatedly) from clobbering
 * each other's staging files. */
std::string
tempName(const std::string &path)
{
    static std::atomic<std::uint64_t> sequence{0};
    long pid = 0;
#if defined(__unix__) || defined(__APPLE__)
    pid = static_cast<long>(::getpid());
#endif
    return path + ".tmp." + std::to_string(pid) + "." +
           std::to_string(
               sequence.fetch_add(1, std::memory_order_relaxed));
}

} // namespace

Expected<std::size_t>
atomicWriteFile(const std::string &path, const std::string &content)
{
    const std::string temp = tempName(path);
    {
        std::ofstream out(temp,
                          std::ios::binary | std::ios::trunc);
        out.write(content.data(),
                  static_cast<std::streamsize>(content.size()));
        out.flush();
        if (!out) {
            std::error_code ec;
            std::filesystem::remove(temp, ec);
            return makeError("cannot write " + temp);
        }
    }
    std::error_code ec;
    std::filesystem::rename(temp, path, ec);
    if (ec) {
        std::error_code removeEc;
        std::filesystem::remove(temp, removeEc);
        return makeError("cannot rename " + temp + " to " + path +
                         ": " + ec.message());
    }
    return content.size();
}

} // namespace rememberr
