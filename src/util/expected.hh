/**
 * @file
 * A minimal Expected<T> carrying either a value or an error message.
 *
 * C++20 lacks std::expected; parsers in this library return
 * Expected<T> so malformed input is reported without exceptions on the
 * happy path.
 */

#ifndef REMEMBERR_UTIL_EXPECTED_HH
#define REMEMBERR_UTIL_EXPECTED_HH

#include <optional>
#include <string>
#include <utility>

#include "logging.hh"

namespace rememberr {

/** Error payload: a message plus an optional source location. */
struct Error
{
    std::string message;
    /** 1-based line in the offending input, 0 when not applicable. */
    int line = 0;

    std::string
    toString() const
    {
        if (line > 0)
            return "line " + std::to_string(line) + ": " + message;
        return message;
    }
};

/**
 * Value-or-error result type.
 *
 * @tparam T the success payload.
 */
template <typename T>
class Expected
{
  public:
    Expected(T value) : value_(std::move(value)) {}
    Expected(Error error) : error_(std::move(error)) {}

    bool hasValue() const { return value_.has_value(); }
    explicit operator bool() const { return hasValue(); }

    /** Access the value; panics if this holds an error. */
    T &
    value()
    {
        if (!value_)
            REMEMBERR_PANIC("Expected::value() on error: ",
                            error_->toString());
        return *value_;
    }

    const T &
    value() const
    {
        if (!value_)
            REMEMBERR_PANIC("Expected::value() on error: ",
                            error_->toString());
        return *value_;
    }

    /** Access the error; panics if this holds a value. */
    const Error &
    error() const
    {
        if (!error_)
            REMEMBERR_PANIC("Expected::error() on value");
        return *error_;
    }

    T
    valueOr(T fallback) const
    {
        return value_ ? *value_ : std::move(fallback);
    }

  private:
    std::optional<T> value_;
    std::optional<Error> error_;
};

/** Convenience factory mirroring std::unexpected. */
inline Error
makeError(std::string message, int line = 0)
{
    return Error{std::move(message), line};
}

} // namespace rememberr

#endif // REMEMBERR_UTIL_EXPECTED_HH
