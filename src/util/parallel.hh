/**
 * @file
 * Fork-join work pool for the pipeline's hot stages.
 *
 * Every primitive here preserves serial semantics exactly: work is
 * split into contiguous index chunks, chunks are claimed by worker
 * threads through an atomic counter (so skewed chunks load-balance),
 * and per-chunk results are merged on the calling thread in chunk
 * order. Because chunks partition [0, n) in increasing index order,
 * an order-preserving merge (e.g. vector concatenation) yields
 * bit-identical output to the serial loop regardless of the thread
 * count. With `threads <= 1` (or trivially small inputs) everything
 * runs inline on the calling thread — no spawn, no overhead.
 *
 * Thread-count convention used across the library:
 *   0  — use every hardware thread;
 *   1  — serial (the default everywhere);
 *   N  — exactly N worker threads.
 */

#ifndef REMEMBERR_UTIL_PARALLEL_HH
#define REMEMBERR_UTIL_PARALLEL_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

namespace rememberr {

/** Resolve the 0/1/N thread-count convention to a worker count. */
std::size_t resolveThreadCount(std::size_t threads);

/**
 * Per-worker accounting for one fork-join region, reported through
 * the pool stats sink so scheduling skew (uneven chunk claims, long
 * tail waits) is visible to the observability layer.
 */
struct WorkerStats
{
    /** Worker index within the region (0 = the calling thread). */
    std::size_t worker = 0;
    /** Chunks this worker claimed. */
    std::size_t chunks = 0;
    /** Time spent inside chunk bodies. */
    std::uint64_t busyUs = 0;
    /** Wall time minus busy time: chunk-claim overhead plus the wait
     * for the region to drain after this worker ran out of work. */
    std::uint64_t idleUs = 0;
};

/**
 * Observer for fork-join regions; invoked on the calling thread
 * after every multi-worker region joins, with one entry per worker.
 * Serial (inline) execution reports nothing. The sink must be
 * thread-safe if parallel regions run from several threads at once.
 */
using PoolStatsSink =
    std::function<void(const std::vector<WorkerStats> &)>;

/**
 * Install (or, with nullptr, remove) the process-wide pool stats
 * sink. With no sink installed the executor takes no timestamps —
 * the only cost is one atomic flag test per region.
 */
void setPoolStatsSink(PoolStatsSink sink);

/**
 * Partition [0, n) into at most `chunks` contiguous half-open
 * ranges, in increasing index order. Sizes differ by at most one.
 */
std::vector<std::pair<std::size_t, std::size_t>>
chunkRanges(std::size_t n, std::size_t chunks);

namespace detail {

/**
 * Run body(chunkIndex) for every chunk in [0, chunkCount) on up to
 * `workers` threads. Chunks are claimed via an atomic counter. The
 * first exception (by chunk index) thrown by any body is rethrown on
 * the calling thread after all workers join.
 */
void runChunked(std::size_t chunkCount, std::size_t workers,
                const std::function<void(std::size_t)> &body);

/** Chunk-count multiplier used for load balancing. */
constexpr std::size_t chunksPerWorker = 8;

} // namespace detail

/**
 * Run body(i) for every i in [0, n). Bodies touching distinct data
 * per index need no synchronization; the call returns after every
 * index has been processed.
 */
void parallelFor(std::size_t n, std::size_t threads,
                 const std::function<void(std::size_t)> &body);

/**
 * Map contiguous index ranges to partial results and fold them in
 * chunk order.
 *
 * @param map    (begin, end) -> Result over one contiguous range.
 * @param reduce (Result &acc, Result &&part), applied serially on
 *               the calling thread in increasing chunk order.
 *
 * When `map` appends to its result in index order and `reduce`
 * concatenates, the merged result is identical to map(0, n).
 */
template <typename Result, typename MapFn, typename ReduceFn>
Result
parallelMapReduce(std::size_t n, std::size_t threads,
                  const MapFn &map, const ReduceFn &reduce)
{
    std::size_t workers = resolveThreadCount(threads);
    if (workers <= 1 || n <= 1)
        return map(static_cast<std::size_t>(0), n);

    auto ranges = chunkRanges(
        n, std::min(n, workers * detail::chunksPerWorker));
    std::vector<std::optional<Result>> parts(ranges.size());
    detail::runChunked(
        ranges.size(), workers, [&](std::size_t chunk) {
            parts[chunk].emplace(map(ranges[chunk].first,
                                     ranges[chunk].second));
        });

    Result merged = std::move(*parts[0]);
    for (std::size_t chunk = 1; chunk < parts.size(); ++chunk)
        reduce(merged, std::move(*parts[chunk]));
    return merged;
}

} // namespace rememberr

#endif // REMEMBERR_UTIL_PARALLEL_HH
