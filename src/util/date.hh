/**
 * @file
 * Proleptic-Gregorian calendar dates.
 *
 * The timeline analyses (Figures 2, 4 and 5) work on document revision
 * dates. A Date is a thin wrapper over a serial day number with
 * conversion to/from civil (year, month, day) triples using Howard
 * Hinnant's days_from_civil algorithm.
 */

#ifndef REMEMBERR_UTIL_DATE_HH
#define REMEMBERR_UTIL_DATE_HH

#include <compare>
#include <cstdint>
#include <string>

#include "expected.hh"

namespace rememberr {

/** A calendar date, stored as days since 1970-01-01. */
class Date
{
  public:
    /** Default: the Unix epoch. */
    Date() = default;

    /** From a civil triple. Panics on out-of-range month/day. */
    Date(int year, unsigned month, unsigned day);

    /** From a serial day number (days since 1970-01-01). */
    static Date fromSerial(std::int64_t days);

    /** Parse "YYYY-MM-DD". */
    static Expected<Date> parse(const std::string &text);

    std::int64_t serial() const { return days_; }

    int year() const;
    unsigned month() const;
    unsigned day() const;

    /** Render as "YYYY-MM-DD". */
    std::string toString() const;

    /** Whole days from this to other (positive if other is later). */
    std::int64_t daysUntil(Date other) const;

    Date addDays(std::int64_t n) const;

    /**
     * Add n calendar months, clamping the day-of-month (e.g.
     * 2013-01-31 + 1 month = 2013-02-28).
     */
    Date addMonths(int n) const;

    /** Fractional year, e.g. 2013-07-02 ~ 2013.5; used for plotting. */
    double toFractionalYear() const;

    auto operator<=>(const Date &) const = default;

  private:
    std::int64_t days_ = 0;
};

/** Days in the given month of the given year. */
unsigned daysInMonth(int year, unsigned month);

/** Gregorian leap-year test. */
bool isLeapYear(int year);

} // namespace rememberr

#endif // REMEMBERR_UTIL_DATE_HH
