#include "csv.hh"

#include "logging.hh"

namespace rememberr {

void
CsvWriter::setHeader(std::vector<std::string> header)
{
    if (!rows_.empty())
        REMEMBERR_PANIC("CsvWriter: header after rows");
    header_ = std::move(header);
}

void
CsvWriter::addRow(std::vector<std::string> row)
{
    if (!header_.empty() && row.size() != header_.size())
        REMEMBERR_PANIC("CsvWriter: row width ", row.size(),
                        " != header width ", header_.size());
    rows_.push_back(std::move(row));
}

std::string
csvQuote(const std::string &field)
{
    bool needsQuote = false;
    for (char c : field) {
        if (c == ',' || c == '"' || c == '\n' || c == '\r') {
            needsQuote = true;
            break;
        }
    }
    if (!needsQuote)
        return field;
    std::string out = "\"";
    for (char c : field) {
        if (c == '"')
            out += "\"\"";
        else
            out += c;
    }
    out += '"';
    return out;
}

namespace {

void
appendRecord(std::string &out, const std::vector<std::string> &fields)
{
    for (std::size_t i = 0; i < fields.size(); ++i) {
        if (i > 0)
            out += ',';
        out += csvQuote(fields[i]);
    }
    out += '\n';
}

} // namespace

std::string
CsvWriter::toString() const
{
    std::string out;
    if (!header_.empty())
        appendRecord(out, header_);
    for (const auto &row : rows_)
        appendRecord(out, row);
    return out;
}

Expected<CsvDocument>
parseCsv(const std::string &text, bool hasHeader)
{
    CsvDocument doc;
    std::vector<std::string> record;
    std::string field;
    bool inQuotes = false;
    bool fieldStarted = false;
    int line = 1;

    auto endField = [&]() {
        record.push_back(field);
        field.clear();
        fieldStarted = false;
    };
    auto endRecord = [&]() {
        endField();
        // Skip blank records (e.g. trailing newline).
        if (record.size() == 1 && record[0].empty()) {
            record.clear();
            return;
        }
        if (hasHeader && doc.header.empty())
            doc.header = std::move(record);
        else
            doc.rows.push_back(std::move(record));
        record.clear();
    };

    std::size_t i = 0;
    while (i < text.size()) {
        char c = text[i];
        if (inQuotes) {
            if (c == '"') {
                if (i + 1 < text.size() && text[i + 1] == '"') {
                    field += '"';
                    i += 2;
                    continue;
                }
                inQuotes = false;
                ++i;
                continue;
            }
            if (c == '\n')
                ++line;
            field += c;
            ++i;
            continue;
        }
        switch (c) {
          case '"':
            if (fieldStarted && !field.empty())
                return makeError("quote inside unquoted field", line);
            inQuotes = true;
            fieldStarted = true;
            ++i;
            break;
          case ',':
            endField();
            ++i;
            break;
          case '\r':
            ++i;
            break;
          case '\n':
            endRecord();
            ++line;
            ++i;
            break;
          default:
            field += c;
            fieldStarted = true;
            ++i;
            break;
        }
    }
    if (inQuotes)
        return makeError("unterminated quoted field", line);
    if (fieldStarted || !field.empty() || !record.empty())
        endRecord();
    return doc;
}

} // namespace rememberr
