#include "rng.hh"

#include <cmath>

#include "logging.hh"

namespace rememberr {

namespace {

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

std::uint64_t
SplitMix64::next()
{
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed)
{
    SplitMix64 sm(seed);
    for (auto &word : s_)
        word = sm.next();
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    if (bound == 0)
        REMEMBERR_PANIC("nextBelow(0)");
    // Lemire-style rejection keeping the result bias-free.
    std::uint64_t threshold = (-bound) % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::nextInRange(std::int64_t lo, std::int64_t hi)
{
    if (lo > hi)
        REMEMBERR_PANIC("nextInRange: lo ", lo, " > hi ", hi);
    std::uint64_t span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<std::int64_t>(next());
    return lo + static_cast<std::int64_t>(nextBelow(span));
}

double
Rng::nextDouble()
{
    // 53 random mantissa bits -> uniform in [0, 1).
    return (next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

double
Rng::nextGaussian()
{
    if (haveGaussian_) {
        haveGaussian_ = false;
        return cachedGaussian_;
    }
    double u1;
    do {
        u1 = nextDouble();
    } while (u1 <= 0.0);
    double u2 = nextDouble();
    double mag = std::sqrt(-2.0 * std::log(u1));
    cachedGaussian_ = mag * std::sin(2.0 * M_PI * u2);
    haveGaussian_ = true;
    return mag * std::cos(2.0 * M_PI * u2);
}

std::size_t
Rng::nextWeighted(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights) {
        if (w < 0.0)
            REMEMBERR_PANIC("nextWeighted: negative weight");
        total += w;
    }
    if (total <= 0.0)
        REMEMBERR_PANIC("nextWeighted: zero total weight");
    double target = nextDouble() * total;
    double acc = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        acc += weights[i];
        if (target < acc)
            return i;
    }
    // Floating-point slack: fall back to the last non-zero weight.
    for (std::size_t i = weights.size(); i-- > 0;) {
        if (weights[i] > 0.0)
            return i;
    }
    return weights.size() - 1;
}

int
Rng::nextGeometric(double p)
{
    if (p <= 0.0 || p > 1.0)
        REMEMBERR_PANIC("nextGeometric: p out of (0, 1]: ", p);
    if (p == 1.0)
        return 0;
    double u;
    do {
        u = nextDouble();
    } while (u <= 0.0);
    return static_cast<int>(std::log(u) / std::log1p(-p));
}

int
Rng::nextPoisson(double lambda)
{
    if (lambda < 0.0)
        REMEMBERR_PANIC("nextPoisson: negative lambda");
    if (lambda == 0.0)
        return 0;
    double limit = std::exp(-lambda);
    double prod = nextDouble();
    int n = 0;
    while (prod > limit) {
        prod *= nextDouble();
        ++n;
    }
    return n;
}

std::vector<std::size_t>
Rng::sampleIndices(std::size_t n, std::size_t k)
{
    if (k > n)
        REMEMBERR_PANIC("sampleIndices: k ", k, " > n ", n);
    // Floyd's algorithm would avoid the O(n) init, but n is small in
    // every call site; favor the obviously correct version.
    std::vector<std::size_t> all(n);
    for (std::size_t i = 0; i < n; ++i)
        all[i] = i;
    shuffle(all);
    all.resize(k);
    return all;
}

Rng
Rng::fork()
{
    return Rng(next() ^ 0xa0761d6478bd642fULL);
}

} // namespace rememberr
