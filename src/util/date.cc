#include "date.hh"

#include <cstdio>

#include "logging.hh"

namespace rememberr {

namespace {

// Hinnant's days_from_civil: serial day count from 1970-01-01.
std::int64_t
daysFromCivil(int y, unsigned m, unsigned d)
{
    y -= m <= 2;
    const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
    const unsigned yoe = static_cast<unsigned>(y - era * 400);
    const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
    const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

// Hinnant's civil_from_days: inverse of the above.
void
civilFromDays(std::int64_t z, int &y, unsigned &m, unsigned &d)
{
    z += 719468;
    const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
    const unsigned doe = static_cast<unsigned>(z - era * 146097);
    const unsigned yoe =
        (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
    const std::int64_t yr = static_cast<std::int64_t>(yoe) + era * 400;
    const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    const unsigned mp = (5 * doy + 2) / 153;
    d = doy - (153 * mp + 2) / 5 + 1;
    m = mp + (mp < 10 ? 3 : -9);
    y = static_cast<int>(yr + (m <= 2));
}

} // namespace

bool
isLeapYear(int year)
{
    return year % 4 == 0 && (year % 100 != 0 || year % 400 == 0);
}

unsigned
daysInMonth(int year, unsigned month)
{
    static const unsigned lengths[] = {31, 28, 31, 30, 31, 30,
                                       31, 31, 30, 31, 30, 31};
    if (month < 1 || month > 12)
        REMEMBERR_PANIC("daysInMonth: bad month ", month);
    if (month == 2 && isLeapYear(year))
        return 29;
    return lengths[month - 1];
}

Date::Date(int year, unsigned month, unsigned day)
{
    if (month < 1 || month > 12)
        REMEMBERR_PANIC("Date: bad month ", month);
    if (day < 1 || day > daysInMonth(year, month))
        REMEMBERR_PANIC("Date: bad day ", day, " for ", year, "-", month);
    days_ = daysFromCivil(year, month, day);
}

Date
Date::fromSerial(std::int64_t days)
{
    Date d;
    d.days_ = days;
    return d;
}

Expected<Date>
Date::parse(const std::string &text)
{
    // Strictly "YYYY-MM-DD", matching toString: exactly ten
    // characters, zero-padded digit spans, '-' separators. sscanf is
    // deliberately avoided — it tolerates leading whitespace, '+'/'-'
    // signs and variable-width fields, all of which would let
    // strings that cannot round-trip slip through.
    auto digit = [&](std::size_t i) {
        return text[i] >= '0' && text[i] <= '9';
    };
    bool shaped = text.size() == 10 && text[4] == '-' &&
                  text[7] == '-';
    if (shaped) {
        for (std::size_t i : {0u, 1u, 2u, 3u, 5u, 6u, 8u, 9u})
            shaped = shaped && digit(i);
    }
    if (!shaped)
        return makeError("malformed date '" + text + "'");
    auto span = [&](std::size_t from, std::size_t to) {
        int value = 0;
        for (std::size_t i = from; i < to; ++i)
            value = value * 10 + (text[i] - '0');
        return value;
    };
    int y = span(0, 4);
    unsigned m = static_cast<unsigned>(span(5, 7));
    unsigned d = static_cast<unsigned>(span(8, 10));
    if (m < 1 || m > 12)
        return makeError("month out of range in '" + text + "'");
    if (d < 1 || d > daysInMonth(y, m))
        return makeError("day out of range in '" + text + "'");
    return Date(y, m, d);
}

int
Date::year() const
{
    int y;
    unsigned m, d;
    civilFromDays(days_, y, m, d);
    return y;
}

unsigned
Date::month() const
{
    int y;
    unsigned m, d;
    civilFromDays(days_, y, m, d);
    return m;
}

unsigned
Date::day() const
{
    int y;
    unsigned m, d;
    civilFromDays(days_, y, m, d);
    return d;
}

std::string
Date::toString() const
{
    int y;
    unsigned m, d;
    civilFromDays(days_, y, m, d);
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%04d-%02u-%02u", y, m, d);
    return buf;
}

std::int64_t
Date::daysUntil(Date other) const
{
    return other.days_ - days_;
}

Date
Date::addDays(std::int64_t n) const
{
    return fromSerial(days_ + n);
}

Date
Date::addMonths(int n) const
{
    int y;
    unsigned m, d;
    civilFromDays(days_, y, m, d);
    int total = y * 12 + static_cast<int>(m) - 1 + n;
    int ny = total / 12;
    int nm = total % 12;
    if (nm < 0) {
        nm += 12;
        ny -= 1;
    }
    unsigned month = static_cast<unsigned>(nm) + 1;
    unsigned day = d;
    unsigned limit = daysInMonth(ny, month);
    if (day > limit)
        day = limit;
    return Date(ny, month, day);
}

double
Date::toFractionalYear() const
{
    int y = year();
    Date start(y, 1, 1);
    Date next(y + 1, 1, 1);
    double span = static_cast<double>(start.daysUntil(next));
    return y + static_cast<double>(start.daysUntil(*this)) / span;
}

} // namespace rememberr
