#include "json.hh"

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "logging.hh"

namespace rememberr {

bool
JsonValue::asBool() const
{
    if (type_ != Type::Bool)
        REMEMBERR_PANIC("JsonValue: not a bool");
    return bool_;
}

double
JsonValue::asNumber() const
{
    if (type_ != Type::Number)
        REMEMBERR_PANIC("JsonValue: not a number");
    return number_;
}

std::int64_t
JsonValue::asInt() const
{
    return static_cast<std::int64_t>(std::llround(asNumber()));
}

const std::string &
JsonValue::asString() const
{
    if (type_ != Type::String)
        REMEMBERR_PANIC("JsonValue: not a string");
    return string_;
}

const JsonValue::Array &
JsonValue::asArray() const
{
    if (type_ != Type::Array)
        REMEMBERR_PANIC("JsonValue: not an array");
    return array_;
}

JsonValue::Array &
JsonValue::asArray()
{
    if (type_ != Type::Array)
        REMEMBERR_PANIC("JsonValue: not an array");
    return array_;
}

const JsonValue::Object &
JsonValue::asObject() const
{
    if (type_ != Type::Object)
        REMEMBERR_PANIC("JsonValue: not an object");
    return object_;
}

JsonValue::Object &
JsonValue::asObject()
{
    if (type_ != Type::Object)
        REMEMBERR_PANIC("JsonValue: not an object");
    return object_;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    const Object &obj = asObject();
    auto it = obj.find(key);
    if (it == obj.end())
        REMEMBERR_PANIC("JsonValue: missing key '", key, "'");
    return it->second;
}

bool
JsonValue::contains(const std::string &key) const
{
    return type_ == Type::Object && object_.count(key) > 0;
}

JsonValue &
JsonValue::operator[](const std::string &key)
{
    return asObject()[key];
}

void
JsonValue::append(JsonValue value)
{
    asArray().push_back(std::move(value));
}

std::size_t
JsonValue::size() const
{
    if (type_ == Type::Array)
        return array_.size();
    if (type_ == Type::Object)
        return object_.size();
    REMEMBERR_PANIC("JsonValue: size() on scalar");
}

std::string
jsonEscape(const std::string &text)
{
    std::string out = "\"";
    for (char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned char>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

namespace {

std::string
formatNumber(double value)
{
    // Integers print without a decimal point for readability.
    if (std::isfinite(value) && value == std::floor(value) &&
        std::fabs(value) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", value);
        return buf;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
}

} // namespace

void
JsonValue::writeTo(std::string &out, int indent, int depth) const
{
    auto newline = [&](int d) {
        if (indent > 0) {
            out += '\n';
            out.append(static_cast<std::size_t>(indent) * d, ' ');
        }
    };

    switch (type_) {
      case Type::Null:
        out += "null";
        break;
      case Type::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Type::Number:
        out += formatNumber(number_);
        break;
      case Type::String:
        out += jsonEscape(string_);
        break;
      case Type::Array:
        if (array_.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        for (std::size_t i = 0; i < array_.size(); ++i) {
            if (i > 0)
                out += ',';
            newline(depth + 1);
            array_[i].writeTo(out, indent, depth + 1);
        }
        newline(depth);
        out += ']';
        break;
      case Type::Object:
        if (object_.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        {
            bool first = true;
            for (const auto &[key, value] : object_) {
                if (!first)
                    out += ',';
                first = false;
                newline(depth + 1);
                out += jsonEscape(key);
                out += indent > 0 ? ": " : ":";
                value.writeTo(out, indent, depth + 1);
            }
        }
        newline(depth);
        out += '}';
        break;
    }
}

std::string
JsonValue::dump() const
{
    std::string out;
    writeTo(out, 0, 0);
    return out;
}

std::string
JsonValue::dumpPretty() const
{
    std::string out;
    writeTo(out, 2, 0);
    return out;
}

bool
JsonValue::operator==(const JsonValue &other) const
{
    if (type_ != other.type_)
        return false;
    switch (type_) {
      case Type::Null: return true;
      case Type::Bool: return bool_ == other.bool_;
      case Type::Number: return number_ == other.number_;
      case Type::String: return string_ == other.string_;
      case Type::Array: return array_ == other.array_;
      case Type::Object: return object_ == other.object_;
    }
    return false;
}

namespace {

/** Recursive-descent JSON parser with line tracking. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    Expected<JsonValue>
    parse()
    {
        skipWhitespace();
        JsonValue value;
        if (!parseValue(value))
            return makeError(error_, line_);
        skipWhitespace();
        if (pos_ != text_.size())
            return makeError("trailing characters after document",
                             line_);
        return value;
    }

  private:
    bool
    fail(const std::string &message)
    {
        if (error_.empty())
            error_ = message;
        return false;
    }

    void
    skipWhitespace()
    {
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c == '\n')
                ++line_;
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
                ++pos_;
            else
                break;
        }
    }

    bool
    consume(char expected)
    {
        if (pos_ < text_.size() && text_[pos_] == expected) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    parseValue(JsonValue &out)
    {
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        char c = text_[pos_];
        switch (c) {
          case '{': return parseObject(out);
          case '[': return parseArray(out);
          case '"': return parseString(out);
          case 't': return parseLiteral("true", JsonValue(true), out);
          case 'f': return parseLiteral("false", JsonValue(false), out);
          case 'n': return parseLiteral("null", JsonValue(), out);
          default: return parseNumber(out);
        }
    }

    bool
    parseLiteral(const char *word, JsonValue value, JsonValue &out)
    {
        std::size_t len = std::string(word).size();
        if (text_.compare(pos_, len, word) != 0)
            return fail(std::string("invalid literal, expected ") + word);
        pos_ += len;
        out = std::move(value);
        return true;
    }

    bool
    parseNumber(JsonValue &out)
    {
        std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            ++pos_;
        }
        if (pos_ == start)
            return fail("invalid value");
        std::string token = text_.substr(start, pos_ - start);
        char *end = nullptr;
        double value = std::strtod(token.c_str(), &end);
        if (end == nullptr || *end != '\0')
            return fail("malformed number '" + token + "'");
        // JSON has no representation for non-finite numbers, so an
        // overflowing literal cannot round-trip; reject it.
        if (!std::isfinite(value))
            return fail("number out of range '" + token + "'");
        out = JsonValue(value);
        return true;
    }

    bool
    parseString(JsonValue &out)
    {
        std::string value;
        if (!parseRawString(value))
            return false;
        out = JsonValue(std::move(value));
        return true;
    }

    /**
     * Read exactly four hex digits after "\u". Strict: only
     * [0-9a-fA-F] counts, so signs and whitespace — which strtol
     * would tolerate — are malformed.
     */
    bool
    parseHexQuad(std::uint32_t &code)
    {
        if (pos_ + 4 > text_.size())
            return fail("truncated \\u escape");
        code = 0;
        for (int i = 0; i < 4; ++i) {
            char c = text_[pos_ + static_cast<std::size_t>(i)];
            std::uint32_t digit;
            if (c >= '0' && c <= '9')
                digit = static_cast<std::uint32_t>(c - '0');
            else if (c >= 'a' && c <= 'f')
                digit = static_cast<std::uint32_t>(c - 'a') + 10;
            else if (c >= 'A' && c <= 'F')
                digit = static_cast<std::uint32_t>(c - 'A') + 10;
            else
                return fail("malformed \\u escape");
            code = (code << 4) | digit;
        }
        pos_ += 4;
        return true;
    }

    static void
    appendUtf8(std::string &value, std::uint32_t code)
    {
        if (code < 0x80) {
            value += static_cast<char>(code);
        } else if (code < 0x800) {
            value += static_cast<char>(0xc0 | (code >> 6));
            value += static_cast<char>(0x80 | (code & 0x3f));
        } else if (code < 0x10000) {
            value += static_cast<char>(0xe0 | (code >> 12));
            value += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            value += static_cast<char>(0x80 | (code & 0x3f));
        } else {
            value += static_cast<char>(0xf0 | (code >> 18));
            value += static_cast<char>(0x80 | ((code >> 12) & 0x3f));
            value += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            value += static_cast<char>(0x80 | (code & 0x3f));
        }
    }

    bool
    parseRawString(std::string &value)
    {
        if (!consume('"'))
            return fail("expected '\"'");
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (pos_ >= text_.size())
                    return fail("unterminated escape");
                char esc = text_[pos_++];
                switch (esc) {
                  case '"': value += '"'; break;
                  case '\\': value += '\\'; break;
                  case '/': value += '/'; break;
                  case 'n': value += '\n'; break;
                  case 'r': value += '\r'; break;
                  case 't': value += '\t'; break;
                  case 'b': value += '\b'; break;
                  case 'f': value += '\f'; break;
                  case 'u': {
                    std::uint32_t code = 0;
                    if (!parseHexQuad(code))
                        return false;
                    // UTF-16 surrogate pair: a high surrogate must
                    // be followed by "\uDC00".."\uDFFF"; the pair
                    // combines into one supplementary code point.
                    if (code >= 0xD800 && code <= 0xDBFF) {
                        if (pos_ + 2 > text_.size() ||
                            text_[pos_] != '\\' ||
                            text_[pos_ + 1] != 'u') {
                            return fail(
                                "lone high surrogate in \\u escape");
                        }
                        pos_ += 2;
                        std::uint32_t low = 0;
                        if (!parseHexQuad(low))
                            return false;
                        if (low < 0xDC00 || low > 0xDFFF)
                            return fail("invalid low surrogate in "
                                        "\\u escape");
                        code = 0x10000 + ((code - 0xD800) << 10) +
                               (low - 0xDC00);
                    } else if (code >= 0xDC00 && code <= 0xDFFF) {
                        return fail(
                            "lone low surrogate in \\u escape");
                    }
                    appendUtf8(value, code);
                    break;
                  }
                  default:
                    return fail("unknown escape");
                }
            } else {
                if (c == '\n')
                    ++line_;
                value += c;
            }
        }
        return fail("unterminated string");
    }

    bool
    parseArray(JsonValue &out)
    {
        consume('[');
        JsonValue::Array items;
        skipWhitespace();
        if (consume(']')) {
            out = JsonValue(std::move(items));
            return true;
        }
        for (;;) {
            skipWhitespace();
            JsonValue item;
            if (!parseValue(item))
                return false;
            items.push_back(std::move(item));
            skipWhitespace();
            if (consume(']'))
                break;
            if (!consume(','))
                return fail("expected ',' or ']' in array");
        }
        out = JsonValue(std::move(items));
        return true;
    }

    bool
    parseObject(JsonValue &out)
    {
        consume('{');
        JsonValue::Object fields;
        skipWhitespace();
        if (consume('}')) {
            out = JsonValue(std::move(fields));
            return true;
        }
        for (;;) {
            skipWhitespace();
            std::string key;
            if (!parseRawString(key))
                return false;
            skipWhitespace();
            if (!consume(':'))
                return fail("expected ':' after object key");
            skipWhitespace();
            JsonValue value;
            if (!parseValue(value))
                return false;
            fields[key] = std::move(value);
            skipWhitespace();
            if (consume('}'))
                break;
            if (!consume(','))
                return fail("expected ',' or '}' in object");
        }
        out = JsonValue(std::move(fields));
        return true;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
    int line_ = 1;
    std::string error_;
};

} // namespace

Expected<JsonValue>
parseJson(const std::string &text)
{
    return JsonParser(text).parse();
}

} // namespace rememberr
