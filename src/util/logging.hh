/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic() is for internal invariant violations (library bugs); fatal()
 * is for unrecoverable user errors (bad input files, bad parameters).
 * warn()/inform() report conditions without stopping; debug() traces
 * internals and only prints at the Debug verbosity level.
 *
 * Emission is thread-safe: each message is formatted into one
 * complete line and written with a single locked write, so warnings
 * fired concurrently from pool workers never interleave.
 */

#ifndef REMEMBERR_UTIL_LOGGING_HH
#define REMEMBERR_UTIL_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <sstream>
#include <string>

namespace rememberr {

namespace detail {

/** Fold any streamable arguments into a single string. */
template <typename... Args>
std::string
formatMessage(const Args &...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
void debugImpl(const std::string &msg);

} // namespace detail

/**
 * Verbosity of warn()/inform()/debug() (panic/fatal are never
 * silenced). Quiet drops everything, Info (the default) drops only
 * debug traces, Debug prints all three.
 */
enum class LogLevel : int { Quiet = 0, Info = 1, Debug = 2 };

/** Set/read the process-wide verbosity. Thread-safe. */
void setLogLevel(LogLevel level);
LogLevel logLevel();

/** Back-compat quiet switch: quiet == LogLevel::Quiet, not quiet ==
 * LogLevel::Info. Tests silence warn()/inform() through this. */
void setLogQuiet(bool quiet);
bool logQuiet();

/**
 * Formats and writes one log record that passed the level check.
 * `level` is one of "warn", "info", "debug" (panic also routes its
 * last words through the emitter before aborting). The emitter must
 * be thread-safe; records may arrive concurrently from pool workers.
 */
using LogEmitter =
    std::function<void(const char *level, const std::string &msg)>;

/**
 * Replace how records are emitted (e.g. the structured JSON emitter
 * in obs/log); null restores the default "level: message" stderr
 * lines. Thread-safe; in-flight records finish with the emitter they
 * started with.
 */
void setLogEmitter(LogEmitter emitter);

} // namespace rememberr

/** Abort: something happened that should never happen (library bug). */
#define REMEMBERR_PANIC(...)                                              \
    ::rememberr::detail::panicImpl(                                       \
        __FILE__, __LINE__,                                               \
        ::rememberr::detail::formatMessage(__VA_ARGS__))

/** Exit: the user supplied input the library cannot continue with. */
#define REMEMBERR_FATAL(...)                                              \
    ::rememberr::detail::fatalImpl(                                       \
        __FILE__, __LINE__,                                               \
        ::rememberr::detail::formatMessage(__VA_ARGS__))

/** Report a suspicious but survivable condition. */
#define REMEMBERR_WARN(...)                                               \
    ::rememberr::detail::warnImpl(                                        \
        ::rememberr::detail::formatMessage(__VA_ARGS__))

/** Report normal operating status. */
#define REMEMBERR_INFORM(...)                                             \
    ::rememberr::detail::informImpl(                                      \
        ::rememberr::detail::formatMessage(__VA_ARGS__))

/** Trace internals; printed only at LogLevel::Debug. The level test
 * happens before formatting, so disabled traces cost one atomic
 * load and never evaluate their arguments' stream operators. */
#define REMEMBERR_DEBUG(...)                                              \
    do {                                                                  \
        if (::rememberr::logLevel() ==                                    \
            ::rememberr::LogLevel::Debug) {                               \
            ::rememberr::detail::debugImpl(                               \
                ::rememberr::detail::formatMessage(__VA_ARGS__));         \
        }                                                                 \
    } while (0)

#endif // REMEMBERR_UTIL_LOGGING_HH
