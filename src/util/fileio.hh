/**
 * @file
 * Crash-safe file writes: content lands in a temp file in the
 * destination's directory and is renamed into place, so readers (and
 * interrupted runs) only ever observe either the previous complete
 * file or the new complete file — never a truncated artifact.
 *
 * On POSIX the write is also durable: the temp file is fsync'd
 * before the rename and the containing directory is fsync'd after
 * it. Without the directory sync the rename itself lives only in the
 * directory's in-memory metadata, so a power loss shortly after a
 * "successful" write could roll the whole rename back — the classic
 * atomic-rename durability hole.
 */

#ifndef REMEMBERR_UTIL_FILEIO_HH
#define REMEMBERR_UTIL_FILEIO_HH

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/expected.hh"

namespace rememberr {

/**
 * Write `content` to `path` atomically: write + fsync a unique
 * sibling temp file, rename over `path` (atomic on POSIX when source
 * and destination share a filesystem, which the sibling placement
 * guarantees), then fsync the containing directory so the rename
 * survives a crash. The temp file is removed on failure. Returns the
 * byte count written.
 */
Expected<std::size_t> atomicWriteFile(const std::string &path,
                                      const std::string &content);

/**
 * Cumulative durability counters for this process; tests use them to
 * prove the fsync path actually ran (a write that silently skipped
 * the directory sync would still produce correct file contents).
 */
struct FileIoStats
{
    /** fsync(tempfile) calls that succeeded. */
    std::uint64_t fileSyncs = 0;
    /** fsync(containing directory) calls that succeeded. */
    std::uint64_t dirSyncs = 0;
};

FileIoStats fileIoStats();

} // namespace rememberr

#endif // REMEMBERR_UTIL_FILEIO_HH
