/**
 * @file
 * Crash-safe file writes: content lands in a temp file in the
 * destination's directory and is renamed into place, so readers (and
 * interrupted runs) only ever observe either the previous complete
 * file or the new complete file — never a truncated artifact.
 */

#ifndef REMEMBERR_UTIL_FILEIO_HH
#define REMEMBERR_UTIL_FILEIO_HH

#include <cstddef>
#include <string>

#include "util/expected.hh"

namespace rememberr {

/**
 * Write `content` to `path` atomically: write + flush a unique
 * sibling temp file, then rename over `path` (atomic on POSIX when
 * source and destination share a filesystem, which the sibling
 * placement guarantees). The temp file is removed on failure.
 * Returns the byte count written.
 */
Expected<std::size_t> atomicWriteFile(const std::string &path,
                                      const std::string &content);

} // namespace rememberr

#endif // REMEMBERR_UTIL_FILEIO_HH
