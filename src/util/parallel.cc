#include "parallel.hh"

#include <atomic>
#include <chrono>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

namespace rememberr {

std::size_t
resolveThreadCount(std::size_t threads)
{
    if (threads != 0)
        return threads;
    unsigned hardware = std::thread::hardware_concurrency();
    return hardware == 0 ? 1 : hardware;
}

std::vector<std::pair<std::size_t, std::size_t>>
chunkRanges(std::size_t n, std::size_t chunks)
{
    std::vector<std::pair<std::size_t, std::size_t>> ranges;
    if (n == 0 || chunks == 0)
        return ranges;
    if (chunks > n)
        chunks = n;
    std::size_t base = n / chunks;
    std::size_t extra = n % chunks;
    std::size_t begin = 0;
    for (std::size_t c = 0; c < chunks; ++c) {
        std::size_t size = base + (c < extra ? 1 : 0);
        ranges.emplace_back(begin, begin + size);
        begin += size;
    }
    return ranges;
}

namespace {

// The sink is shared_ptr-swapped so a region that already grabbed a
// reference keeps a valid callable even if another thread replaces
// the sink mid-region.
std::mutex poolSinkMutex;
std::shared_ptr<const PoolStatsSink> poolSink;
std::atomic<bool> poolSinkInstalled{false};

std::shared_ptr<const PoolStatsSink>
currentPoolSink()
{
    if (!poolSinkInstalled.load(std::memory_order_acquire))
        return nullptr;
    std::lock_guard<std::mutex> lock(poolSinkMutex);
    return poolSink;
}

std::uint64_t
nowUs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

void
setPoolStatsSink(PoolStatsSink sink)
{
    std::lock_guard<std::mutex> lock(poolSinkMutex);
    if (sink) {
        poolSink =
            std::make_shared<const PoolStatsSink>(std::move(sink));
        poolSinkInstalled.store(true, std::memory_order_release);
    } else {
        poolSinkInstalled.store(false, std::memory_order_release);
        poolSink.reset();
    }
}

namespace detail {

void
runChunked(std::size_t chunkCount, std::size_t workers,
           const std::function<void(std::size_t)> &body)
{
    if (chunkCount == 0)
        return;
    if (workers > chunkCount)
        workers = chunkCount;
    if (workers <= 1) {
        for (std::size_t c = 0; c < chunkCount; ++c)
            body(c);
        return;
    }

    auto sink = currentPoolSink();

    std::atomic<std::size_t> next{0};
    // First failure by *chunk index*, so the rethrown exception does
    // not depend on thread scheduling.
    std::vector<std::exception_ptr> failures(chunkCount);
    std::atomic<bool> failed{false};
    std::vector<WorkerStats> stats(sink ? workers : 0);

    auto work = [&](std::size_t worker) {
        std::uint64_t begin = sink ? nowUs() : 0;
        std::uint64_t busy = 0;
        std::size_t claimed = 0;
        for (;;) {
            std::size_t chunk =
                next.fetch_add(1, std::memory_order_relaxed);
            if (chunk >= chunkCount)
                break;
            std::uint64_t chunkBegin = sink ? nowUs() : 0;
            try {
                body(chunk);
            } catch (...) {
                failures[chunk] = std::current_exception();
                failed.store(true, std::memory_order_release);
            }
            if (sink) {
                busy += nowUs() - chunkBegin;
                ++claimed;
            }
        }
        if (sink) {
            std::uint64_t wall = nowUs() - begin;
            stats[worker].worker = worker;
            stats[worker].chunks = claimed;
            stats[worker].busyUs = busy;
            stats[worker].idleUs = wall > busy ? wall - busy : 0;
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (std::size_t w = 1; w < workers; ++w)
        pool.emplace_back(work, w);
    work(0);
    for (std::thread &thread : pool)
        thread.join();

    if (sink)
        (*sink)(stats);

    if (failed.load(std::memory_order_acquire)) {
        for (std::exception_ptr &failure : failures) {
            if (failure)
                std::rethrow_exception(failure);
        }
    }
}

} // namespace detail

void
parallelFor(std::size_t n, std::size_t threads,
            const std::function<void(std::size_t)> &body)
{
    std::size_t workers = resolveThreadCount(threads);
    if (workers <= 1 || n <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }
    auto ranges = chunkRanges(
        n, std::min(n, workers * detail::chunksPerWorker));
    detail::runChunked(ranges.size(), workers,
                       [&](std::size_t chunk) {
                           for (std::size_t i = ranges[chunk].first;
                                i < ranges[chunk].second; ++i)
                               body(i);
                       });
}

} // namespace rememberr
