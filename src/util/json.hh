/**
 * @file
 * Minimal JSON document model, parser and writer.
 *
 * The RemembERR database serializes to JSON (like the original
 * artifact's pandas/JSON dumps). This is a self-contained
 * implementation of the full JSON grammar; \uXXXX escapes decode to
 * UTF-8 (surrogate pairs combine into supplementary code points,
 * lone surrogates are rejected), and the writer emits raw UTF-8 for
 * non-ASCII text.
 */

#ifndef REMEMBERR_UTIL_JSON_HH
#define REMEMBERR_UTIL_JSON_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "expected.hh"

namespace rememberr {

/** A JSON value: null, bool, number, string, array or object. */
class JsonValue
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    using Array = std::vector<JsonValue>;
    // std::map keeps object keys sorted, making output deterministic.
    using Object = std::map<std::string, JsonValue>;

    JsonValue() : type_(Type::Null) {}
    JsonValue(std::nullptr_t) : type_(Type::Null) {}
    JsonValue(bool b) : type_(Type::Bool), bool_(b) {}
    JsonValue(double d) : type_(Type::Number), number_(d) {}
    JsonValue(int i) : type_(Type::Number), number_(i) {}
    JsonValue(std::int64_t i)
        : type_(Type::Number), number_(static_cast<double>(i)) {}
    JsonValue(std::size_t i)
        : type_(Type::Number), number_(static_cast<double>(i)) {}
    JsonValue(const char *s) : type_(Type::String), string_(s) {}
    JsonValue(std::string s)
        : type_(Type::String), string_(std::move(s)) {}
    JsonValue(Array a) : type_(Type::Array), array_(std::move(a)) {}
    JsonValue(Object o) : type_(Type::Object), object_(std::move(o)) {}

    static JsonValue makeArray() { return JsonValue(Array{}); }
    static JsonValue makeObject() { return JsonValue(Object{}); }

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    /** Typed accessors; panic when the type does not match. */
    bool asBool() const;
    double asNumber() const;
    std::int64_t asInt() const;
    const std::string &asString() const;
    const Array &asArray() const;
    Array &asArray();
    const Object &asObject() const;
    Object &asObject();

    /** Object field access; panics when absent or not an object. */
    const JsonValue &at(const std::string &key) const;
    /** True when this is an object containing key. */
    bool contains(const std::string &key) const;
    /** Mutable object field, inserting null when absent. */
    JsonValue &operator[](const std::string &key);

    /** Append to an array; panics when not an array. */
    void append(JsonValue value);

    /** Number of elements (array) or fields (object). */
    std::size_t size() const;

    /** Serialize compactly (no whitespace). */
    std::string dump() const;

    /** Serialize with 2-space indentation. */
    std::string dumpPretty() const;

    bool operator==(const JsonValue &other) const;

  private:
    void writeTo(std::string &out, int indent, int depth) const;

    Type type_;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    Array array_;
    Object object_;
};

/** Parse a complete JSON document. Trailing garbage is an error. */
Expected<JsonValue> parseJson(const std::string &text);

/** Escape a string into its JSON representation including quotes. */
std::string jsonEscape(const std::string &text);

} // namespace rememberr

#endif // REMEMBERR_UTIL_JSON_HH
