/**
 * @file
 * String helpers shared by the parsers, classifiers and reporters.
 */

#ifndef REMEMBERR_UTIL_STRINGS_HH
#define REMEMBERR_UTIL_STRINGS_HH

#include <string>
#include <string_view>
#include <vector>

namespace rememberr {
namespace strings {

/** Strip ASCII whitespace from both ends. */
std::string trim(std::string_view text);

/** Split on a single character; keeps empty fields. */
std::vector<std::string> split(std::string_view text, char sep);

/** Split on any whitespace run; drops empty fields. */
std::vector<std::string> splitWhitespace(std::string_view text);

/** Split into lines, treating both "\n" and "\r\n" as terminators. */
std::vector<std::string> splitLines(std::string_view text);

/** Join with a separator. */
std::string join(const std::vector<std::string> &parts,
                 std::string_view sep);

/** ASCII lower-case copy. */
std::string toLower(std::string_view text);

/** ASCII upper-case copy. */
std::string toUpper(std::string_view text);

/** Replace every occurrence of from with to. */
std::string replaceAll(std::string_view text, std::string_view from,
                       std::string_view to);

bool startsWith(std::string_view text, std::string_view prefix);
bool endsWith(std::string_view text, std::string_view suffix);

/** Case-insensitive substring test (ASCII). */
bool containsIgnoreCase(std::string_view haystack,
                        std::string_view needle);

/** Pad with spaces on the right up to width. */
std::string padRight(std::string_view text, std::size_t width);

/** Pad with spaces on the left up to width. */
std::string padLeft(std::string_view text, std::size_t width);

/** Repeat a string n times. */
std::string repeat(std::string_view unit, std::size_t n);

/**
 * Greedy word-wrap at the given column; words longer than the column
 * are emitted unbroken on their own line.
 */
std::vector<std::string> wrap(std::string_view text, std::size_t columns);

/** Format a double with the given number of decimals. */
std::string formatDouble(double value, int decimals);

/** Format a fraction as a percentage string, e.g. "35.9%". */
std::string formatPercent(double fraction, int decimals = 1);

/**
 * Normalize free text for comparison: lower-case, collapse whitespace
 * runs, strip punctuation except intra-word hyphens/underscores.
 */
std::string canonicalize(std::string_view text);

} // namespace strings
} // namespace rememberr

#endif // REMEMBERR_UTIL_STRINGS_HH
