/**
 * @file
 * RFC-4180-style CSV writing and reading.
 *
 * The bench harness exports every reproduced table and figure as CSV so
 * downstream plotting scripts can consume them.
 */

#ifndef REMEMBERR_UTIL_CSV_HH
#define REMEMBERR_UTIL_CSV_HH

#include <string>
#include <vector>

#include "expected.hh"

namespace rememberr {

/** Accumulates rows and renders a CSV document. */
class CsvWriter
{
  public:
    /** Set the header row. Must be called before addRow. */
    void setHeader(std::vector<std::string> header);

    /** Append a data row; must match the header width when one is set. */
    void addRow(std::vector<std::string> row);

    std::size_t rowCount() const { return rows_.size(); }

    /** Render the document, quoting fields as required. */
    std::string toString() const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Parsed CSV document: first row is the header when hasHeader. */
struct CsvDocument
{
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
};

/**
 * Parse CSV text with quoted-field support.
 *
 * @param text the document.
 * @param hasHeader when true, the first record populates header.
 */
Expected<CsvDocument> parseCsv(const std::string &text,
                               bool hasHeader = true);

/** Quote a single field if it contains separators, quotes or newlines. */
std::string csvQuote(const std::string &field);

} // namespace rememberr

#endif // REMEMBERR_UTIL_CSV_HH
