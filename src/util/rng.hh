/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * The corpus generator and the simulated annotators must be
 * reproducible bit-for-bit across platforms, so the library ships its
 * own xoshiro256** generator (seeded via SplitMix64) instead of relying
 * on implementation-defined std::default_random_engine behaviour, and
 * its own distribution transforms instead of the unspecified algorithms
 * behind std::uniform_int_distribution and friends.
 */

#ifndef REMEMBERR_UTIL_RNG_HH
#define REMEMBERR_UTIL_RNG_HH

#include <array>
#include <cstdint>
#include <vector>

namespace rememberr {

/** SplitMix64: used to expand a 64-bit seed into generator state. */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

    std::uint64_t next();

  private:
    std::uint64_t state_;
};

/**
 * xoshiro256** 1.0 (Blackman & Vigna), a fast all-purpose generator
 * with 256 bits of state and a 2^256 - 1 period.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL);

    /** Next raw 64-bit output. */
    std::uint64_t next();

    /** Uniform integer in [0, bound), bias-free via rejection. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t nextInRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli trial with success probability p. */
    bool nextBool(double p = 0.5);

    /** Standard normal deviate (Box-Muller, cached pair). */
    double nextGaussian();

    /**
     * Sample an index from unnormalized non-negative weights.
     * Panics if all weights are zero or the vector is empty.
     */
    std::size_t nextWeighted(const std::vector<double> &weights);

    /** Geometric-ish integer: number of failures before success(p). */
    int nextGeometric(double p);

    /** Poisson deviate via Knuth's product method (small lambda). */
    int nextPoisson(double lambda);

    /** Fisher-Yates shuffle. */
    template <typename T>
    void
    shuffle(std::vector<T> &items)
    {
        if (items.empty())
            return;
        for (std::size_t i = items.size() - 1; i > 0; --i) {
            std::size_t j = nextBelow(i + 1);
            std::swap(items[i], items[j]);
        }
    }

    /** Pick k distinct indices out of [0, n) (k <= n). */
    std::vector<std::size_t> sampleIndices(std::size_t n, std::size_t k);

    /** Derive an independent child generator (for sub-streams). */
    Rng fork();

  private:
    std::array<std::uint64_t, 4> s_;
    bool haveGaussian_ = false;
    double cachedGaussian_ = 0.0;
};

} // namespace rememberr

#endif // REMEMBERR_UTIL_RNG_HH
