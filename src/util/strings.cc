#include "strings.hh"

#include <cctype>
#include <cstdio>

namespace rememberr {
namespace strings {

namespace {

inline bool
isSpace(char c)
{
    return std::isspace(static_cast<unsigned char>(c)) != 0;
}

inline char
lowerChar(char c)
{
    return static_cast<char>(
        std::tolower(static_cast<unsigned char>(c)));
}

} // namespace

std::string
trim(std::string_view text)
{
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end && isSpace(text[begin]))
        ++begin;
    while (end > begin && isSpace(text[end - 1]))
        --end;
    return std::string(text.substr(begin, end - begin));
}

std::vector<std::string>
split(std::string_view text, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= text.size(); ++i) {
        if (i == text.size() || text[i] == sep) {
            out.emplace_back(text.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::vector<std::string>
splitWhitespace(std::string_view text)
{
    std::vector<std::string> out;
    std::size_t i = 0;
    while (i < text.size()) {
        while (i < text.size() && isSpace(text[i]))
            ++i;
        std::size_t start = i;
        while (i < text.size() && !isSpace(text[i]))
            ++i;
        if (i > start)
            out.emplace_back(text.substr(start, i - start));
    }
    return out;
}

std::vector<std::string>
splitLines(std::string_view text)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i < text.size(); ++i) {
        if (text[i] == '\n') {
            std::size_t end = i;
            if (end > start && text[end - 1] == '\r')
                --end;
            out.emplace_back(text.substr(start, end - start));
            start = i + 1;
        }
    }
    if (start < text.size()) {
        std::size_t end = text.size();
        if (end > start && text[end - 1] == '\r')
            --end;
        out.emplace_back(text.substr(start, end - start));
    }
    return out;
}

std::string
join(const std::vector<std::string> &parts, std::string_view sep)
{
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i > 0)
            out += sep;
        out += parts[i];
    }
    return out;
}

std::string
toLower(std::string_view text)
{
    std::string out(text);
    for (char &c : out)
        c = lowerChar(c);
    return out;
}

std::string
toUpper(std::string_view text)
{
    std::string out(text);
    for (char &c : out)
        c = static_cast<char>(
            std::toupper(static_cast<unsigned char>(c)));
    return out;
}

std::string
replaceAll(std::string_view text, std::string_view from,
           std::string_view to)
{
    if (from.empty())
        return std::string(text);
    std::string out;
    std::size_t pos = 0;
    for (;;) {
        std::size_t hit = text.find(from, pos);
        if (hit == std::string_view::npos) {
            out += text.substr(pos);
            return out;
        }
        out += text.substr(pos, hit - pos);
        out += to;
        pos = hit + from.size();
    }
}

bool
startsWith(std::string_view text, std::string_view prefix)
{
    return text.size() >= prefix.size() &&
           text.substr(0, prefix.size()) == prefix;
}

bool
endsWith(std::string_view text, std::string_view suffix)
{
    return text.size() >= suffix.size() &&
           text.substr(text.size() - suffix.size()) == suffix;
}

bool
containsIgnoreCase(std::string_view haystack, std::string_view needle)
{
    if (needle.empty())
        return true;
    if (needle.size() > haystack.size())
        return false;
    for (std::size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
        bool match = true;
        for (std::size_t j = 0; j < needle.size(); ++j) {
            if (lowerChar(haystack[i + j]) != lowerChar(needle[j])) {
                match = false;
                break;
            }
        }
        if (match)
            return true;
    }
    return false;
}

std::string
padRight(std::string_view text, std::size_t width)
{
    std::string out(text);
    if (out.size() < width)
        out.append(width - out.size(), ' ');
    return out;
}

std::string
padLeft(std::string_view text, std::size_t width)
{
    std::string out;
    if (text.size() < width)
        out.append(width - text.size(), ' ');
    out += text;
    return out;
}

std::string
repeat(std::string_view unit, std::size_t n)
{
    std::string out;
    out.reserve(unit.size() * n);
    for (std::size_t i = 0; i < n; ++i)
        out += unit;
    return out;
}

std::vector<std::string>
wrap(std::string_view text, std::size_t columns)
{
    std::vector<std::string> lines;
    std::string current;
    for (const std::string &word : splitWhitespace(text)) {
        if (current.empty()) {
            current = word;
        } else if (current.size() + 1 + word.size() <= columns) {
            current += ' ';
            current += word;
        } else {
            lines.push_back(current);
            current = word;
        }
    }
    if (!current.empty())
        lines.push_back(current);
    if (lines.empty())
        lines.emplace_back();
    return lines;
}

std::string
formatDouble(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

std::string
formatPercent(double fraction, int decimals)
{
    return formatDouble(fraction * 100.0, decimals) + "%";
}

std::string
canonicalize(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    bool pendingSpace = false;
    for (char raw : text) {
        char c = lowerChar(raw);
        bool keep = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '-' || c == '_';
        if (keep) {
            if (pendingSpace && !out.empty())
                out += ' ';
            pendingSpace = false;
            out += c;
        } else {
            pendingSpace = true;
        }
    }
    return out;
}

} // namespace strings
} // namespace rememberr
