#include "guidance.hh"

#include <algorithm>
#include <map>
#include <set>

#include "analysis/correlation.hh"
#include "analysis/frequency.hh"
#include "analysis/msr.hh"
#include "util/logging.hh"
#include "util/strings.hh"

namespace rememberr {

namespace {

/** Entries restricted to a vendor when requested. */
std::vector<const DbEntry *>
scopedEntries(const Database &db, std::optional<Vendor> vendor)
{
    std::vector<const DbEntry *> out;
    for (const DbEntry &entry : db.entries()) {
        if (!vendor || entry.vendor == *vendor)
            out.push_back(&entry);
    }
    return out;
}

} // namespace

TestCampaign
deriveCampaign(const Database &db, const CampaignOptions &options)
{
    const Taxonomy &taxonomy = Taxonomy::instance();
    TestCampaign campaign;
    auto entries = scopedEntries(db, options.vendor);

    // ---- Stimulus pairs (conjunctive triggers) ---------------------
    TriggerCorrelation correlation = triggerCorrelation(db);
    for (const auto &pair :
         correlation.topPairs(options.stimulusPairs)) {
        StimulusStep step;
        step.first = pair.a;
        step.second = pair.b;
        step.evidence = pair.count;
        // Quote up to two historical instances.
        for (const DbEntry *entry : entries) {
            if (entry->triggers.contains(pair.a) &&
                entry->triggers.contains(pair.b)) {
                step.concreteActions.push_back(entry->title);
                if (step.concreteActions.size() >= 2)
                    break;
            }
        }
        campaign.stimuli.push_back(std::move(step));
    }

    // ---- Contexts (disjunctive) ------------------------------------
    for (const CategoryFrequency &freq :
         categoryFrequencies(db, Axis::Context, options.contexts)) {
        campaign.contexts.push_back(freq.id);
    }

    // ---- Observation points ----------------------------------------
    for (const CategoryFrequency &freq :
         categoryFrequencies(db, Axis::Effect,
                             options.observationPoints)) {
        ObservationPoint point;
        point.effect = freq.id;
        point.evidence = freq.total();
        std::set<std::string> families;
        for (const DbEntry *entry : entries) {
            if (!entry->effects.contains(freq.id))
                continue;
            for (const MsrRef &msr : entry->msrs)
                families.insert(msrFamily(msr.name));
        }
        point.msrFamilies.assign(families.begin(), families.end());
        campaign.observations.push_back(std::move(point));
    }
    (void)taxonomy;
    return campaign;
}

std::string
TestCampaign::renderText() const
{
    const Taxonomy &taxonomy = Taxonomy::instance();
    std::string out;
    out += "Directed testing campaign\n";
    out += "=========================\n\n";
    out += "Combined stimuli (apply together; triggers are "
           "conjunctive):\n";
    for (const StimulusStep &step : stimuli) {
        out += "  - ";
        out += taxonomy.categoryById(step.first).description;
        out += " WHILE ";
        out += taxonomy.categoryById(step.second).description;
        out += " [" + std::to_string(step.evidence) +
               " past bugs]\n";
        for (const std::string &example : step.concreteActions) {
            out += "      e.g. \"" + example + "\"\n";
        }
    }
    out += "\nContexts (any suffices per bug; cover all across the "
           "campaign):\n";
    for (CategoryId context : contexts) {
        out += "  - ";
        out += taxonomy.categoryById(context).description;
        out += '\n';
    }
    out += "\nObservation points (one deviation suffices; keep the "
           "footprint minimal):\n";
    for (const ObservationPoint &point : observations) {
        out += "  - ";
        out += taxonomy.categoryById(point.effect).description;
        out += " [" + std::to_string(point.evidence) +
               " past bugs]";
        if (!point.msrFamilies.empty()) {
            out += " — poll ";
            out += strings::join(point.msrFamilies, ", ");
        }
        out += '\n';
    }
    return out;
}

JsonValue
TestCampaign::toJson() const
{
    const Taxonomy &taxonomy = Taxonomy::instance();
    JsonValue root = JsonValue::makeObject();

    JsonValue stimuliJson = JsonValue::makeArray();
    for (const StimulusStep &step : stimuli) {
        JsonValue item = JsonValue::makeObject();
        item["first"] = taxonomy.categoryById(step.first).code;
        item["second"] = taxonomy.categoryById(step.second).code;
        item["evidence"] =
            static_cast<std::int64_t>(step.evidence);
        JsonValue examples = JsonValue::makeArray();
        for (const std::string &example : step.concreteActions)
            examples.append(example);
        item["examples"] = std::move(examples);
        stimuliJson.append(std::move(item));
    }
    root["stimuli"] = std::move(stimuliJson);

    JsonValue contextsJson = JsonValue::makeArray();
    for (CategoryId context : contexts)
        contextsJson.append(taxonomy.categoryById(context).code);
    root["contexts"] = std::move(contextsJson);

    JsonValue observationsJson = JsonValue::makeArray();
    for (const ObservationPoint &point : observations) {
        JsonValue item = JsonValue::makeObject();
        item["effect"] = taxonomy.categoryById(point.effect).code;
        item["evidence"] =
            static_cast<std::int64_t>(point.evidence);
        JsonValue msrs = JsonValue::makeArray();
        for (const std::string &family : point.msrFamilies)
            msrs.append(family);
        item["msrs"] = std::move(msrs);
        observationsJson.append(std::move(item));
    }
    root["observations"] = std::move(observationsJson);
    return root;
}

SeedCorpus
generateSeedCorpus(const Database &db,
                   const SeedCorpusOptions &options)
{
    const Taxonomy &taxonomy = Taxonomy::instance();
    Rng rng(options.seed);
    SeedCorpus corpus;

    // Empirical marginals and pair counts.
    auto triggerFreqs = categoryFrequencies(db, Axis::Trigger);
    TriggerCorrelation correlation = triggerCorrelation(db);
    std::map<CategoryId, std::size_t> columnOf;
    for (std::size_t i = 0; i < correlation.categories.size(); ++i)
        columnOf[correlation.categories[i]] = i;

    std::vector<CategoryId> ids;
    std::vector<double> marginal;
    for (const CategoryFrequency &freq : triggerFreqs) {
        if (freq.total() == 0)
            continue;
        ids.push_back(freq.id);
        marginal.push_back(static_cast<double>(freq.total()));
    }
    if (ids.empty())
        return corpus;

    auto contextFreqs = categoryFrequencies(db, Axis::Context);
    std::vector<CategoryId> contextIds;
    std::vector<double> contextWeights;
    for (const CategoryFrequency &freq : contextFreqs) {
        if (freq.total() == 0)
            continue;
        contextIds.push_back(freq.id);
        contextWeights.push_back(
            static_cast<double>(freq.total()));
    }

    const std::vector<double> lengthWeights{0.45, 0.35, 0.15,
                                            0.05};
    std::set<std::vector<CategoryId>> seen;

    // The distinct-pattern space can be smaller than the requested
    // corpus; bound the attempts so saturation terminates.
    std::size_t attempts = 0;
    const std::size_t maxAttempts = options.sequenceCount * 64 + 64;

    while (corpus.sequences.size() < options.sequenceCount &&
           ++attempts <= maxAttempts) {
        std::size_t length =
            1 + rng.nextWeighted(lengthWeights);
        length = std::min(length, options.maxSequenceLength);

        StimulusSequence sequence;
        std::set<CategoryId> used;
        double weight = 0.0;
        for (std::size_t step = 0; step < length; ++step) {
            std::vector<double> weights = marginal;
            for (std::size_t i = 0; i < ids.size(); ++i) {
                if (used.count(ids[i])) {
                    weights[i] = 0.0;
                    continue;
                }
                // Bias towards historically co-occurring
                // triggers.
                for (CategoryId prev : sequence.triggers) {
                    std::size_t a = columnOf[prev];
                    std::size_t b = columnOf[ids[i]];
                    weights[i] *=
                        1.0 +
                        2.0 * static_cast<double>(
                                  correlation.counts[a][b]);
                }
            }
            double total = 0.0;
            for (double w : weights)
                total += w;
            if (total <= 0.0)
                break;
            CategoryId pick = ids[rng.nextWeighted(weights)];
            sequence.triggers.push_back(pick);
            used.insert(pick);
            weight += marginal[static_cast<std::size_t>(
                std::find(ids.begin(), ids.end(), pick) -
                ids.begin())];
        }
        if (sequence.triggers.empty())
            continue;
        if (!seen.insert(sequence.triggers).second)
            continue; // duplicate pattern
        if (!contextIds.empty() && rng.nextBool(0.45)) {
            sequence.context =
                contextIds[rng.nextWeighted(contextWeights)];
        }
        sequence.weight = weight;
        corpus.sequences.push_back(std::move(sequence));
    }
    (void)taxonomy;
    return corpus;
}

double
SeedCorpus::pairCoverage(const Database &db,
                         std::size_t top_n) const
{
    TriggerCorrelation correlation = triggerCorrelation(db);
    auto top = correlation.topPairs(top_n);
    if (top.empty())
        return 1.0;
    std::size_t covered = 0;
    for (const auto &pair : top) {
        bool hit = false;
        for (const StimulusSequence &sequence : sequences) {
            bool hasA = std::find(sequence.triggers.begin(),
                                  sequence.triggers.end(),
                                  pair.a) !=
                        sequence.triggers.end();
            bool hasB = std::find(sequence.triggers.begin(),
                                  sequence.triggers.end(),
                                  pair.b) !=
                        sequence.triggers.end();
            if (hasA && hasB) {
                hit = true;
                break;
            }
        }
        if (hit)
            ++covered;
    }
    return static_cast<double>(covered) /
           static_cast<double>(top.size());
}

JsonValue
SeedCorpus::toJson() const
{
    const Taxonomy &taxonomy = Taxonomy::instance();
    JsonValue root = JsonValue::makeArray();
    for (const StimulusSequence &sequence : sequences) {
        JsonValue item = JsonValue::makeObject();
        JsonValue triggers = JsonValue::makeArray();
        for (CategoryId id : sequence.triggers)
            triggers.append(taxonomy.categoryById(id).code);
        item["triggers"] = std::move(triggers);
        if (sequence.context) {
            item["context"] =
                taxonomy.categoryById(*sequence.context).code;
        }
        item["weight"] = sequence.weight;
        root.append(std::move(item));
    }
    return root;
}

std::string
MonitorRule::renderText() const
{
    const Taxonomy &taxonomy = Taxonomy::instance();
    std::string out = name;
    out += ": on activity of {";
    bool first = true;
    for (ClassId cls : armedBy) {
        if (!first)
            out += ", ";
        first = false;
        out += taxonomy.classById(cls).code;
    }
    out += "} check for ";
    out += taxonomy.categoryById(effect).description;
    if (!msrs.empty()) {
        out += " via ";
        out += strings::join(msrs, ", ");
    }
    out += " [" + std::to_string(evidence) + " past bugs]";
    return out;
}

namespace {

/** Coverage curve for a fixed pick order. */
ObservationPlan
planFromOrder(const Database &db,
              const std::vector<CategoryId> &order,
              std::size_t budget)
{
    ObservationPlan plan;
    plan.totalBugs = db.entries().size();
    CategorySet watched;
    for (std::size_t i = 0; i < order.size() && i < budget; ++i) {
        watched.insert(order[i]);
        plan.picks.push_back(order[i]);
        std::size_t covered = 0;
        for (const DbEntry &entry : db.entries()) {
            if (!(entry.effects & watched).empty())
                ++covered;
        }
        plan.coverageCurve.push_back(covered);
    }
    return plan;
}

} // namespace

ObservationPlan
selectObservationPoints(const Database &db, std::size_t budget)
{
    const Taxonomy &taxonomy = Taxonomy::instance();
    ObservationPlan plan;
    plan.totalBugs = db.entries().size();

    CategorySet watched;
    std::vector<bool> covered(db.entries().size(), false);
    std::size_t coveredCount = 0;

    for (std::size_t round = 0; round < budget; ++round) {
        CategoryId best = 0;
        std::size_t bestGain = 0;
        for (CategoryId candidate :
             taxonomy.categoriesOfAxis(Axis::Effect)) {
            if (watched.contains(candidate))
                continue;
            std::size_t gain = 0;
            for (std::size_t i = 0; i < db.entries().size(); ++i) {
                if (!covered[i] &&
                    db.entries()[i].effects.contains(candidate)) {
                    ++gain;
                }
            }
            if (gain > bestGain) {
                bestGain = gain;
                best = candidate;
            }
        }
        if (bestGain == 0)
            break; // every remaining point adds nothing
        watched.insert(best);
        plan.picks.push_back(best);
        for (std::size_t i = 0; i < db.entries().size(); ++i) {
            if (!covered[i] &&
                db.entries()[i].effects.contains(best)) {
                covered[i] = true;
                ++coveredCount;
            }
        }
        plan.coverageCurve.push_back(coveredCount);
    }
    return plan;
}

ObservationPlan
topFrequencyObservationPoints(const Database &db,
                              std::size_t budget)
{
    std::vector<CategoryId> order;
    for (const CategoryFrequency &freq :
         categoryFrequencies(db, Axis::Effect)) {
        order.push_back(freq.id);
    }
    return planFromOrder(db, order, budget);
}

std::vector<MonitorRule>
deriveMonitorRules(const Database &db, std::size_t max_rules)
{
    const Taxonomy &taxonomy = Taxonomy::instance();
    std::vector<MonitorRule> rules;

    for (const CategoryFrequency &freq :
         categoryFrequencies(db, Axis::Effect, max_rules)) {
        MonitorRule rule;
        rule.effect = freq.id;
        rule.evidence = freq.total();
        rule.name =
            "watch-" +
            strings::toLower(taxonomy.categoryById(freq.id).code);

        // Registers historically witnessing the effect, and the
        // trigger classes whose activity should arm the check.
        std::set<std::string> families;
        std::map<ClassId, std::size_t> classCounts;
        for (const DbEntry &entry : db.entries()) {
            if (!entry.effects.contains(freq.id))
                continue;
            for (const MsrRef &msr : entry.msrs)
                families.insert(msrFamily(msr.name));
            for (CategoryId trigger : entry.triggers.toVector())
                ++classCounts[taxonomy.categoryById(trigger)
                                  .classId];
        }
        rule.msrs.assign(families.begin(), families.end());

        std::vector<std::pair<std::size_t, ClassId>> ranked;
        for (const auto &[cls, count] : classCounts)
            ranked.emplace_back(count, cls);
        std::sort(ranked.rbegin(), ranked.rend());
        for (std::size_t i = 0; i < ranked.size() && i < 3; ++i)
            rule.armedBy.push_back(ranked[i].second);

        rules.push_back(std::move(rule));
    }
    return rules;
}

} // namespace rememberr
