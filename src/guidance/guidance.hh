/**
 * @file
 * Applications to design testing (Section VI).
 *
 * The database's value is operational: triggers are conjunctive, so
 * a campaign must *combine* the stimuli that historically uncovered
 * bugs; observations are disjunctive, so watching the few most
 * common observation points suffices. This module compiles the
 * database into three artifacts:
 *
 *   - a TestCampaign: ranked stimulus pairs + contexts +
 *     observation points for dynamic testing (Section VI-A);
 *   - a fuzzer SeedCorpus: weighted abstract stimulus sequences to
 *     seed hardware fuzzers (the RFUZZ/DifuzzRTL/TheHuzz gap the
 *     paper identifies);
 *   - MonitorRules: observation predicates for runtime detection
 *     (the Phoenix/SPECS line of work, Section VI-A "Runtime
 *     detection").
 */

#ifndef REMEMBERR_GUIDANCE_GUIDANCE_HH
#define REMEMBERR_GUIDANCE_GUIDANCE_HH

#include <optional>
#include <string>
#include <vector>

#include "db/database.hh"
#include "db/query.hh"
#include "util/json.hh"
#include "util/rng.hh"

namespace rememberr {

/** One combined stimulus of a directed campaign. */
struct StimulusStep
{
    CategoryId first = 0;
    CategoryId second = 0;
    /** Number of past bugs requiring at least this pair. */
    std::size_t evidence = 0;
    /** Concrete example actions, from the historical record. */
    std::vector<std::string> concreteActions;
};

/** One observation point with the registers to poll. */
struct ObservationPoint
{
    CategoryId effect = 0;
    std::size_t evidence = 0;
    /** MSR families historically witnessing this effect. */
    std::vector<std::string> msrFamilies;
};

/** A directed testing campaign. */
struct TestCampaign
{
    std::vector<StimulusStep> stimuli;
    /** Contexts ranked by evidence (disjunctive: any suffices). */
    std::vector<CategoryId> contexts;
    std::vector<ObservationPoint> observations;

    /** Human-readable plan. */
    std::string renderText() const;
    /** Machine-readable plan. */
    JsonValue toJson() const;
};

/** Campaign derivation knobs. */
struct CampaignOptions
{
    std::size_t stimulusPairs = 8;
    std::size_t contexts = 4;
    std::size_t observationPoints = 5;
    /** Restrict the quoted historical examples to one vendor;
     * evidence counts always use the whole corpus. */
    std::optional<Vendor> vendor;
};

/** Derive a campaign from the database. */
TestCampaign deriveCampaign(const Database &db,
                            const CampaignOptions &options = {});

/** One fuzzer seed: an ordered abstract stimulus sequence. */
struct StimulusSequence
{
    /** Abstract trigger categories, in application order. */
    std::vector<CategoryId> triggers;
    /** Context to set up before applying the sequence. */
    std::optional<CategoryId> context;
    /** Sampling weight of the historical pattern. */
    double weight = 0.0;
};

/** Seed-corpus generation knobs. */
struct SeedCorpusOptions
{
    std::size_t sequenceCount = 64;
    std::size_t maxSequenceLength = 4;
    std::uint64_t seed = 0x5eedc0de;
};

/** A generated fuzzer seed corpus. */
struct SeedCorpus
{
    std::vector<StimulusSequence> sequences;

    /**
     * Coverage of the top-n historical trigger pairs: the fraction
     * that appears (both members, any order) in at least one
     * sequence.
     */
    double pairCoverage(const Database &db, std::size_t top_n) const;

    /** One JSON object per sequence (JSON-lines friendly). */
    JsonValue toJson() const;
};

/**
 * Sample a seed corpus: sequences follow the empirical trigger
 * marginals and pairwise correlations, so the fuzzer starts from
 * the stimulus space where bugs historically lived.
 */
SeedCorpus generateSeedCorpus(const Database &db,
                              const SeedCorpusOptions &options = {});

/** One runtime monitor rule (Phoenix/SPECS style). */
struct MonitorRule
{
    std::string name;
    CategoryId effect = 0;
    /** MSR families to snapshot/compare. */
    std::vector<std::string> msrs;
    /** Trigger classes whose activity arms the rule. */
    std::vector<ClassId> armedBy;
    std::size_t evidence = 0;

    std::string renderText() const;
};

/**
 * Compile observation predicates for online bug detection: for each
 * frequent effect, which registers to watch and which trigger-class
 * activity should arm the check (keeping the observation footprint
 * minimal, Section VI-A "Challenge: observation space").
 */
std::vector<MonitorRule> deriveMonitorRules(const Database &db,
                                            std::size_t max_rules);

/**
 * Observation-budget optimization (Section VI-A "Challenge:
 * observation space"): observations are disjunctive, so covering a
 * bug requires watching only *one* of its effects — picking the k
 * observation points that maximize the number of covered bugs is a
 * maximum-coverage problem, solved greedily here (the classic
 * (1 - 1/e)-approximation).
 */
struct ObservationPlan
{
    /** Chosen effect categories, in greedy pick order. */
    std::vector<CategoryId> picks;
    /** Bugs covered after each pick (the coverage curve). */
    std::vector<std::size_t> coverageCurve;
    std::size_t totalBugs = 0;

    double
    coverage() const
    {
        return totalBugs == 0 || coverageCurve.empty()
                   ? 0.0
                   : static_cast<double>(coverageCurve.back()) /
                         static_cast<double>(totalBugs);
    }
};

/** Greedy maximum-coverage selection of k observation points. */
ObservationPlan selectObservationPoints(const Database &db,
                                        std::size_t budget);

/**
 * Baseline for the ablation: pick the k individually most frequent
 * effects (ignoring overlap) and report the same coverage curve.
 */
ObservationPlan topFrequencyObservationPoints(const Database &db,
                                              std::size_t budget);

} // namespace rememberr

#endif // REMEMBERR_GUIDANCE_GUIDANCE_HH
