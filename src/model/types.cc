#include "types.hh"

#include <cctype>
#include <cstdlib>

#include "util/logging.hh"

namespace rememberr {

std::string_view
vendorName(Vendor vendor)
{
    switch (vendor) {
      case Vendor::Intel: return "Intel";
      case Vendor::Amd: return "AMD";
    }
    REMEMBERR_PANIC("vendorName: bad vendor");
}

std::string_view
variantName(DesignVariant variant)
{
    switch (variant) {
      case DesignVariant::Desktop: return "D";
      case DesignVariant::Mobile: return "M";
      case DesignVariant::Unified: return "U";
    }
    REMEMBERR_PANIC("variantName: bad variant");
}

std::string
Design::key() const
{
    std::string out = vendor == Vendor::Intel ? "intel/" : "amd/";
    out += std::to_string(generation);
    out += '/';
    out += variantName(variant);
    return out;
}

std::vector<int>
Design::coveredGenerations() const
{
    // "Core 7/8" style names cover two consecutive generations.
    std::size_t slash = name.find('/');
    if (vendor == Vendor::Intel && slash != std::string::npos) {
        // Parse the digits around the slash.
        std::size_t start = slash;
        while (start > 0 &&
               std::isdigit(static_cast<unsigned char>(
                   name[start - 1]))) {
            --start;
        }
        int first = std::atoi(name.substr(start, slash - start)
                                  .c_str());
        int second = std::atoi(name.substr(slash + 1).c_str());
        if (first > 0 && second > first)
            return {first, second};
    }
    return {generation};
}

std::string_view
workaroundClassName(WorkaroundClass cls)
{
    switch (cls) {
      case WorkaroundClass::None: return "None";
      case WorkaroundClass::Bios: return "BIOS";
      case WorkaroundClass::Software: return "Software";
      case WorkaroundClass::Peripherals: return "Peripherals";
      case WorkaroundClass::Absent: return "Absent";
      case WorkaroundClass::DocumentationFix:
        return "DocumentationFix";
    }
    REMEMBERR_PANIC("workaroundClassName: bad class");
}

std::string_view
fixStatusName(FixStatus status)
{
    switch (status) {
      case FixStatus::NoFix: return "NoFix";
      case FixStatus::Planned: return "Planned";
      case FixStatus::Fixed: return "Fixed";
    }
    REMEMBERR_PANIC("fixStatusName: bad status");
}

} // namespace rememberr
