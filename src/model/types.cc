#include "types.hh"

#include <cctype>
#include <charconv>

#include "util/logging.hh"

namespace rememberr {

std::string_view
vendorName(Vendor vendor)
{
    switch (vendor) {
      case Vendor::Intel: return "Intel";
      case Vendor::Amd: return "AMD";
    }
    REMEMBERR_PANIC("vendorName: bad vendor");
}

std::string_view
variantName(DesignVariant variant)
{
    switch (variant) {
      case DesignVariant::Desktop: return "D";
      case DesignVariant::Mobile: return "M";
      case DesignVariant::Unified: return "U";
    }
    REMEMBERR_PANIC("variantName: bad variant");
}

std::string
Design::key() const
{
    std::string out = vendor == Vendor::Intel ? "intel/" : "amd/";
    out += std::to_string(generation);
    out += '/';
    out += variantName(variant);
    return out;
}

std::vector<int>
Design::coveredGenerations() const
{
    // "Core 7/8" style names cover two consecutive generations. The
    // digit spans on both sides of the slash are located explicitly
    // and parsed with std::from_chars; a malformed name ("Core /8",
    // "Core 9/", overflowing digits) never yields a half-parsed
    // range — it falls back to the generation field.
    std::size_t slash = name.find('/');
    if (vendor != Vendor::Intel || slash == std::string::npos)
        return {generation};

    std::size_t firstBegin = slash;
    while (firstBegin > 0 &&
           std::isdigit(static_cast<unsigned char>(
               name[firstBegin - 1]))) {
        --firstBegin;
    }
    std::size_t secondEnd = slash + 1;
    while (secondEnd < name.size() &&
           std::isdigit(
               static_cast<unsigned char>(name[secondEnd]))) {
        ++secondEnd;
    }
    if (firstBegin == slash || secondEnd == slash + 1)
        return {generation}; // digits missing on either side

    int first = 0;
    int second = 0;
    auto firstResult = std::from_chars(
        name.data() + firstBegin, name.data() + slash, first);
    auto secondResult = std::from_chars(
        name.data() + slash + 1, name.data() + secondEnd, second);
    if (firstResult.ec != std::errc() ||
        secondResult.ec != std::errc()) {
        return {generation};
    }
    if (first > 0 && second > first)
        return {first, second};
    return {generation};
}

std::string_view
workaroundClassName(WorkaroundClass cls)
{
    switch (cls) {
      case WorkaroundClass::None: return "None";
      case WorkaroundClass::Bios: return "BIOS";
      case WorkaroundClass::Software: return "Software";
      case WorkaroundClass::Peripherals: return "Peripherals";
      case WorkaroundClass::Absent: return "Absent";
      case WorkaroundClass::DocumentationFix:
        return "DocumentationFix";
    }
    REMEMBERR_PANIC("workaroundClassName: bad class");
}

std::string_view
fixStatusName(FixStatus status)
{
    switch (status) {
      case FixStatus::NoFix: return "NoFix";
      case FixStatus::Planned: return "Planned";
      case FixStatus::Fixed: return "Fixed";
    }
    REMEMBERR_PANIC("fixStatusName: bad status");
}

} // namespace rememberr
