/**
 * @file
 * The erratum entry and errata-document model.
 *
 * Mirrors the structure of vendor specification updates described in
 * Section II-B: each erratum has a title, a description, implications,
 * a workaround and a status; each document carries a revision history
 * that dates the introduction of each erratum.
 */

#ifndef REMEMBERR_MODEL_ERRATUM_HH
#define REMEMBERR_MODEL_ERRATUM_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "types.hh"
#include "util/date.hh"

namespace rememberr {

/** One published erratum entry. */
struct Erratum
{
    /** Document-local identifier, e.g. "ADL001" (Intel) or "1361"
     * (AMD). */
    std::string localId;
    std::string title;
    std::string description;
    std::string implications;
    std::string workaroundText;
    WorkaroundClass workaroundClass = WorkaroundClass::None;
    FixStatus status = FixStatus::NoFix;
    /**
     * Revision number (1-based) in which this erratum first appeared,
     * 0 when the revision summary omits it (one of the documented
     * "errata in errata").
     */
    int addedInRevision = 0;
    /** MSRs referenced by the description/implications. */
    std::vector<MsrRef> msrs;
    /**
     * 1-based line of the entry's "ID:" field in the source text;
     * 0 when the entry was not produced by the parser. Diagnostics
     * anchor on it so every finding points at a file:line.
     */
    int sourceLine = 0;
    /** 1-based line per parsed field key ("Title", "MSRs", ...). */
    std::map<std::string, int> fieldLines;

    /** Line of one field; falls back to sourceLine when unknown. */
    int
    fieldLine(const std::string &field) const
    {
        auto it = fieldLines.find(field);
        return it != fieldLines.end() ? it->second : sourceLine;
    }

    bool operator==(const Erratum &) const = default;
};

/** One entry of a document's revision history. */
struct Revision
{
    int number = 0;       ///< 1-based revision number
    Date date;            ///< release/update date of the revision
    /** Local ids the revision summary claims were added. */
    std::vector<std::string> addedIds;
    std::string note;     ///< free-text summary line
    /** 1-based line of the "Revision:" field; 0 when not parsed. */
    int sourceLine = 0;

    bool operator==(const Revision &) const = default;
};

/** A complete specification-update document for one design. */
struct ErrataDocument
{
    Design design;
    /**
     * Where the document came from: a file path for documents read
     * from disk, a "corpus:<design key>" pseudo-path for generated
     * ones. Diagnostics report it as the artifact location.
     */
    std::string sourcePath;
    std::vector<Revision> revisions;
    std::vector<Erratum> errata;
    /**
     * Errata listed in the document's summary whose details remain
     * hidden — typically no longer valid after a re-spin
     * (Section VII "Patchable errors", about 2% of entries). They
     * carry no description and are excluded from the database.
     */
    std::vector<std::string> hiddenErrata;

    /** Find an erratum by local id; nullptr when absent. */
    const Erratum *findErratum(const std::string &local_id) const;

    /**
     * Date an erratum via its revision history, applying the
     * approximation rules of Section IV-B1:
     *   1. if a revision summary lists the id, use the earliest such
     *      revision's date (contradicting logs resolve to the
     *      earlier one);
     *   2. otherwise, errata are sequentially numbered: use the date
     *      of the nearest dated successor;
     *   3. otherwise fall back to the first revision's date.
     */
    Date approximateDisclosureDate(const std::string &local_id) const;

    /**
     * Full structural equality. Not defaulted: Design::operator==
     * deliberately compares only the identity triple
     * (vendor, generation, variant), while snapshot round-trip
     * checks must also see name, reference and release-date
     * differences.
     */
    bool operator==(const ErrataDocument &other) const;
};

} // namespace rememberr

#endif // REMEMBERR_MODEL_ERRATUM_HH
