/**
 * @file
 * Basic identity types for vendors, designs and errata metadata.
 */

#ifndef REMEMBERR_MODEL_TYPES_HH
#define REMEMBERR_MODEL_TYPES_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/date.hh"

namespace rememberr {

/** Microprocessor vendor. */
enum class Vendor : std::uint8_t { Intel, Amd };

std::string_view vendorName(Vendor vendor);

/**
 * Intel document variant. Intel released separate Mobile and Desktop
 * documents up to Core generation 5 and one document per generation
 * afterwards; AMD designs are always Unified.
 */
enum class DesignVariant : std::uint8_t { Desktop, Mobile, Unified };

std::string_view variantName(DesignVariant variant);

/**
 * Identity of one examined design: an Intel Core generation(+variant)
 * or an AMD family/model range, i.e. one row of Table III.
 */
struct Design
{
    Vendor vendor = Vendor::Intel;
    /** Intel Core generation (1..12) or AMD family ordinal (1..12). */
    int generation = 0;
    DesignVariant variant = DesignVariant::Unified;
    /** Human name, e.g. "Core 4 (D)" or "Fam 17h 00-0F". */
    std::string name;
    /** Vendor document reference, e.g. "328899-039US". */
    std::string reference;
    /** Approximate market release date of the design. */
    Date releaseDate;

    /** Stable key for maps: "intel/4/D" or "amd/10/U". */
    std::string key() const;

    /**
     * Generations this document covers. Intel released combined
     * documents for Core 7/8 and Core 8/9; the name encodes that
     * ("Core 7/8" covers generations 7 and 8), everything else
     * covers exactly its generation field.
     */
    std::vector<int> coveredGenerations() const;

    bool operator==(const Design &other) const
    {
        return vendor == other.vendor &&
               generation == other.generation &&
               variant == other.variant;
    }
};

/** Workaround categories of Section IV-B3 (Figure 6). */
enum class WorkaroundClass : std::uint8_t {
    None,          ///< "None identified."
    Bios,          ///< mitigated by a BIOS/firmware update
    Software,      ///< mitigated by system software
    Peripherals,   ///< requires conditions on peripherals
    Absent,        ///< workaround exists but details are withheld
    DocumentationFix, ///< intended behavior was wrongly documented
};

std::string_view workaroundClassName(WorkaroundClass cls);

/** Fix status of Section IV-B4 (Figure 7). */
enum class FixStatus : std::uint8_t {
    NoFix,       ///< "No fix planned."
    Planned,     ///< fix announced for a future stepping
    Fixed,       ///< root cause removed in a shipped stepping
};

std::string_view fixStatusName(FixStatus status);

/** A Model Specific Register mentioned by an erratum. */
struct MsrRef
{
    /** Architectural name, e.g. "MC4_STATUS" or "IBS_FETCH_CTL". */
    std::string name;
    /** Register number; 0 when the document omits it. */
    std::uint32_t number = 0;

    bool operator==(const MsrRef &other) const = default;
};

} // namespace rememberr

#endif // REMEMBERR_MODEL_TYPES_HH
