#include "erratum.hh"

#include <algorithm>

#include "util/logging.hh"

namespace rememberr {

bool
ErrataDocument::operator==(const ErrataDocument &other) const
{
    return design.vendor == other.design.vendor &&
           design.generation == other.design.generation &&
           design.variant == other.design.variant &&
           design.name == other.design.name &&
           design.reference == other.design.reference &&
           design.releaseDate == other.design.releaseDate &&
           sourcePath == other.sourcePath &&
           revisions == other.revisions &&
           errata == other.errata &&
           hiddenErrata == other.hiddenErrata;
}

const Erratum *
ErrataDocument::findErratum(const std::string &local_id) const
{
    for (const Erratum &erratum : errata) {
        if (erratum.localId == local_id)
            return &erratum;
    }
    return nullptr;
}

Date
ErrataDocument::approximateDisclosureDate(
    const std::string &local_id) const
{
    if (revisions.empty())
        REMEMBERR_PANIC("approximateDisclosureDate: no revisions in ",
                        design.name);

    // Rule 1: the earliest revision whose summary lists the id.
    // (Contradicting logs pretending the same erratum was added twice
    // resolve to the earlier revision.)
    const Revision *earliest = nullptr;
    for (const Revision &revision : revisions) {
        bool listed = std::find(revision.addedIds.begin(),
                                revision.addedIds.end(),
                                local_id) != revision.addedIds.end();
        if (listed && (!earliest || revision.date < earliest->date))
            earliest = &revision;
    }
    if (earliest)
        return earliest->date;

    // Rule 2: errata are sequentially numbered inside a document, so
    // an unlisted erratum was most likely added together with the
    // nearest dated successor.
    std::size_t index = errata.size();
    for (std::size_t i = 0; i < errata.size(); ++i) {
        if (errata[i].localId == local_id) {
            index = i;
            break;
        }
    }
    if (index < errata.size()) {
        for (std::size_t i = index + 1; i < errata.size(); ++i) {
            for (const Revision &revision : revisions) {
                bool listed =
                    std::find(revision.addedIds.begin(),
                              revision.addedIds.end(),
                              errata[i].localId) !=
                    revision.addedIds.end();
                if (listed)
                    return revision.date;
            }
        }
    }

    // Rule 3: fall back to the initial revision.
    const Revision *first = &revisions.front();
    for (const Revision &revision : revisions) {
        if (revision.date < first->date)
            first = &revision;
    }
    return first->date;
}

} // namespace rememberr
