/**
 * @file
 * MSR witness analysis (Figure 19, Observation O13).
 *
 * Which registers most often carry evidence that a bug was triggered?
 * Individual bank registers (MC0_STATUS, MC4_STATUS, ...) group into
 * families (MCx_STATUS) as in the paper's figure.
 */

#ifndef REMEMBERR_ANALYSIS_MSR_HH
#define REMEMBERR_ANALYSIS_MSR_HH

#include <string>
#include <vector>

#include "db/database.hh"

namespace rememberr {

/** One ranked MSR family. */
struct MsrFrequency
{
    std::string family;      ///< e.g. "MCx_STATUS"
    std::size_t intelCount = 0;
    std::size_t amdCount = 0;
    double intelFraction = 0.0; ///< of Intel unique errata
    double amdFraction = 0.0;   ///< of AMD unique errata

    std::size_t total() const { return intelCount + amdCount; }
};

/** Collapse a register name into its family. */
std::string msrFamily(const std::string &name);

/** Ranked MSR families over unique errata. */
std::vector<MsrFrequency> msrFrequencies(const Database &db);

} // namespace rememberr

#endif // REMEMBERR_ANALYSIS_MSR_HH
