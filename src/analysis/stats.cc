#include "stats.hh"

#include "frequency.hh"
#include "workfix.hh"

namespace rememberr {

HeadlineStats
headlineStats(const Database &db)
{
    HeadlineStats stats;
    stats.intelRows = db.rowCount(Vendor::Intel);
    stats.intelUnique = db.uniqueCount(Vendor::Intel);
    stats.amdRows = db.rowCount(Vendor::Amd);
    stats.amdUnique = db.uniqueCount(Vendor::Amd);
    stats.totalRows = stats.intelRows + stats.amdRows;
    stats.totalUnique = stats.intelUnique + stats.amdUnique;

    TriggerCountHistogram histogram = triggerCountHistogram(db);
    stats.noTriggerFraction =
        histogram.noTriggerFraction(stats.totalUnique);
    stats.multiTriggerFraction = histogram.multiTriggerFraction();

    stats.complexIntel =
        complexConditionsFraction(db, Vendor::Intel);
    stats.complexAmd = complexConditionsFraction(db, Vendor::Amd);
    stats.simulationOnlyIntel =
        simulationOnlyCount(db, Vendor::Intel);
    stats.simulationOnlyAmd = simulationOnlyCount(db, Vendor::Amd);

    WorkaroundBreakdown workarounds = workaroundBreakdown(db);
    stats.workaroundNoneIntel =
        workarounds.noneFraction(Vendor::Intel);
    stats.workaroundNoneAmd = workarounds.noneFraction(Vendor::Amd);
    stats.neverFixed = neverFixedFraction(db);
    return stats;
}

} // namespace rememberr
