#include "correlation.hh"

#include <algorithm>

namespace rememberr {

TriggerCorrelation
triggerCorrelation(const Database &db)
{
    const Taxonomy &taxonomy = Taxonomy::instance();
    TriggerCorrelation matrix;
    matrix.categories = taxonomy.categoriesOfAxis(Axis::Trigger);
    for (CategoryId id : matrix.categories)
        matrix.codes.push_back(taxonomy.categoryById(id).code);

    const std::size_t n = matrix.categories.size();
    matrix.counts.assign(n, std::vector<std::size_t>(n, 0));

    std::vector<std::size_t> columnOf(64, n);
    for (std::size_t i = 0; i < n; ++i)
        columnOf[matrix.categories[i]] = i;

    for (const DbEntry &entry : db.entries()) {
        auto ids = entry.triggers.toVector();
        for (CategoryId a : ids) {
            for (CategoryId b : ids) {
                std::size_t i = columnOf[a];
                std::size_t j = columnOf[b];
                if (i < n && j < n)
                    ++matrix.counts[i][j];
            }
        }
    }
    return matrix;
}

std::vector<TriggerCorrelation::Pair>
TriggerCorrelation::topPairs(std::size_t n) const
{
    std::vector<Pair> pairs;
    for (std::size_t i = 0; i < categories.size(); ++i) {
        for (std::size_t j = i + 1; j < categories.size(); ++j) {
            if (counts[i][j] > 0) {
                pairs.push_back(Pair{categories[i], categories[j],
                                     counts[i][j]});
            }
        }
    }
    std::sort(pairs.begin(), pairs.end(),
              [](const Pair &a, const Pair &b) {
                  if (a.count != b.count)
                      return a.count > b.count;
                  if (a.a != b.a)
                      return a.a < b.a;
                  return a.b < b.b;
              });
    if (pairs.size() > n)
        pairs.resize(n);
    return pairs;
}

double
nonInteractingPairFraction(const TriggerCorrelation &matrix)
{
    std::size_t total = 0;
    std::size_t zero = 0;
    for (std::size_t i = 0; i < matrix.categories.size(); ++i) {
        for (std::size_t j = i + 1; j < matrix.categories.size();
             ++j) {
            ++total;
            if (matrix.counts[i][j] == 0)
                ++zero;
        }
    }
    return total == 0 ? 0.0
                      : static_cast<double>(zero) /
                            static_cast<double>(total);
}

} // namespace rememberr
