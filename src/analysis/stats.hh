/**
 * @file
 * Headline corpus statistics (Section IV-A and V-B prose numbers).
 */

#ifndef REMEMBERR_ANALYSIS_STATS_HH
#define REMEMBERR_ANALYSIS_STATS_HH

#include <cstddef>

#include "db/database.hh"

namespace rememberr {

/** All the single-number claims the paper states in prose. */
struct HeadlineStats
{
    std::size_t intelRows = 0;      ///< paper: 2,057
    std::size_t intelUnique = 0;    ///< paper: 743
    std::size_t amdRows = 0;        ///< paper: 506
    std::size_t amdUnique = 0;      ///< paper: 385
    std::size_t totalRows = 0;      ///< paper: 2,563
    std::size_t totalUnique = 0;    ///< paper: 1,128
    double noTriggerFraction = 0.0;     ///< paper: 14.4%
    double multiTriggerFraction = 0.0;  ///< paper: 49%
    double complexIntel = 0.0;          ///< paper: 8.7%
    double complexAmd = 0.0;            ///< paper: 20.8%
    std::size_t simulationOnlyIntel = 0; ///< paper: 1
    std::size_t simulationOnlyAmd = 0;   ///< paper: 5
    double workaroundNoneIntel = 0.0;    ///< paper: 35.9%
    double workaroundNoneAmd = 0.0;      ///< paper: 28.9%
    double neverFixed = 0.0;             ///< paper: "vast majority"
};

HeadlineStats headlineStats(const Database &db);

} // namespace rememberr

#endif // REMEMBERR_ANALYSIS_STATS_HH
