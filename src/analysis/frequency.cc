#include "frequency.hh"

#include <algorithm>

namespace rememberr {

std::vector<CategoryFrequency>
categoryFrequencies(const Database &db, Axis axis,
                    std::optional<std::size_t> top_n)
{
    const Taxonomy &taxonomy = Taxonomy::instance();
    std::vector<CategoryFrequency> frequencies;
    for (CategoryId id : taxonomy.categoriesOfAxis(axis)) {
        CategoryFrequency freq;
        freq.id = id;
        freq.code = taxonomy.categoryById(id).code;
        frequencies.push_back(std::move(freq));
    }

    auto indexOf = [&](CategoryId id) -> CategoryFrequency * {
        for (CategoryFrequency &freq : frequencies) {
            if (freq.id == id)
                return &freq;
        }
        return nullptr;
    };

    for (const DbEntry &entry : db.entries()) {
        const CategorySet &set = axis == Axis::Trigger
                                     ? entry.triggers
                                     : axis == Axis::Context
                                           ? entry.contexts
                                           : entry.effects;
        for (CategoryId id : set.toVector()) {
            CategoryFrequency *freq = indexOf(id);
            if (!freq)
                continue;
            if (entry.vendor == Vendor::Intel)
                ++freq->intelCount;
            else
                ++freq->amdCount;
        }
    }

    std::sort(frequencies.begin(), frequencies.end(),
              [](const CategoryFrequency &a,
                 const CategoryFrequency &b) {
                  if (a.total() != b.total())
                      return a.total() > b.total();
                  return a.code < b.code;
              });
    if (top_n && frequencies.size() > *top_n)
        frequencies.resize(*top_n);
    return frequencies;
}

double
TriggerCountHistogram::noTriggerFraction(
    std::size_t unique_total) const
{
    return unique_total == 0
               ? 0.0
               : static_cast<double>(noTriggerCount) /
                     static_cast<double>(unique_total);
}

double
TriggerCountHistogram::multiTriggerFraction() const
{
    std::size_t multi = 0;
    for (std::size_t k = 1; k < intelCounts.size(); ++k)
        multi += intelCounts[k];
    for (std::size_t k = 1; k < amdCounts.size(); ++k)
        multi += amdCounts[k];
    return totalWithTriggers == 0
               ? 0.0
               : static_cast<double>(multi) /
                     static_cast<double>(totalWithTriggers);
}

TriggerCountHistogram
triggerCountHistogram(const Database &db)
{
    TriggerCountHistogram histogram;
    std::size_t maxCount = 0;
    for (const DbEntry &entry : db.entries())
        maxCount = std::max(maxCount, entry.triggers.size());
    histogram.intelCounts.assign(maxCount, 0);
    histogram.amdCounts.assign(maxCount, 0);

    for (const DbEntry &entry : db.entries()) {
        std::size_t count = entry.triggers.size();
        if (count == 0) {
            ++histogram.noTriggerCount;
            continue;
        }
        ++histogram.totalWithTriggers;
        if (entry.vendor == Vendor::Intel)
            ++histogram.intelCounts[count - 1];
        else
            ++histogram.amdCounts[count - 1];
    }
    return histogram;
}

double
complexConditionsFraction(const Database &db, Vendor vendor)
{
    std::size_t total = 0;
    std::size_t complex = 0;
    for (const DbEntry &entry : db.entries()) {
        if (entry.vendor != vendor)
            continue;
        ++total;
        if (entry.complexConditions)
            ++complex;
    }
    return total == 0 ? 0.0
                      : static_cast<double>(complex) /
                            static_cast<double>(total);
}

std::size_t
simulationOnlyCount(const Database &db, Vendor vendor)
{
    std::size_t count = 0;
    for (const DbEntry &entry : db.entries()) {
        if (entry.vendor == vendor && entry.simulationOnly)
            ++count;
    }
    return count;
}

} // namespace rememberr
