#include "vendorcmp.hh"

#include <cmath>

#include "util/logging.hh"

namespace rememberr {

namespace {

void
normalize(std::vector<VendorShareRow> &rows)
{
    std::size_t intelTotal = 0;
    std::size_t amdTotal = 0;
    for (const VendorShareRow &row : rows) {
        intelTotal += row.intelCount;
        amdTotal += row.amdCount;
    }
    for (VendorShareRow &row : rows) {
        row.intelShare =
            intelTotal == 0 ? 0.0
                            : static_cast<double>(row.intelCount) /
                                  static_cast<double>(intelTotal);
        row.amdShare =
            amdTotal == 0 ? 0.0
                          : static_cast<double>(row.amdCount) /
                                static_cast<double>(amdTotal);
    }
}

} // namespace

std::vector<VendorShareRow>
triggerClassShares(const Database &db)
{
    const Taxonomy &taxonomy = Taxonomy::instance();
    std::vector<ClassId> classes =
        taxonomy.classesOfAxis(Axis::Trigger);
    std::vector<VendorShareRow> rows(classes.size());
    for (std::size_t i = 0; i < classes.size(); ++i)
        rows[i].code = taxonomy.classById(classes[i]).code;

    for (const DbEntry &entry : db.entries()) {
        for (CategoryId id : entry.triggers.toVector()) {
            ClassId cls = taxonomy.categoryById(id).classId;
            for (std::size_t i = 0; i < classes.size(); ++i) {
                if (classes[i] == cls) {
                    if (entry.vendor == Vendor::Intel)
                        ++rows[i].intelCount;
                    else
                        ++rows[i].amdCount;
                    break;
                }
            }
        }
    }
    normalize(rows);
    return rows;
}

std::vector<VendorShareRow>
triggerCategorySharesInClass(const Database &db,
                             const std::string &class_code)
{
    const Taxonomy &taxonomy = Taxonomy::instance();
    auto cls = taxonomy.parseClass(class_code);
    if (!cls)
        REMEMBERR_PANIC("triggerCategorySharesInClass: unknown class ",
                        class_code);
    std::vector<CategoryId> categories =
        taxonomy.categoriesOfClass(*cls);
    std::vector<VendorShareRow> rows(categories.size());
    for (std::size_t i = 0; i < categories.size(); ++i)
        rows[i].code = taxonomy.categoryById(categories[i]).code;

    for (const DbEntry &entry : db.entries()) {
        for (CategoryId id : entry.triggers.toVector()) {
            for (std::size_t i = 0; i < categories.size(); ++i) {
                if (categories[i] == id) {
                    if (entry.vendor == Vendor::Intel)
                        ++rows[i].intelCount;
                    else
                        ++rows[i].amdCount;
                    break;
                }
            }
        }
    }
    normalize(rows);
    return rows;
}

double
classShareDistance(const std::vector<VendorShareRow> &rows)
{
    double distance = 0.0;
    for (const VendorShareRow &row : rows)
        distance += std::fabs(row.intelShare - row.amdShare);
    return distance / 2.0;
}

} // namespace rememberr
