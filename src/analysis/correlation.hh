/**
 * @file
 * Pairwise trigger cross-correlation (Figure 12, Observation O8).
 *
 * Cell (i, j) counts the errata that require *at least* triggers i
 * and j together — the key input for directing combined-stimulus
 * testing campaigns (Section VI-A).
 */

#ifndef REMEMBERR_ANALYSIS_CORRELATION_HH
#define REMEMBERR_ANALYSIS_CORRELATION_HH

#include <string>
#include <vector>

#include "db/database.hh"

namespace rememberr {

/** The symmetric trigger co-occurrence matrix. */
struct TriggerCorrelation
{
    /** Abstract trigger categories covered (row/column order). */
    std::vector<CategoryId> categories;
    std::vector<std::string> codes;
    /** counts[i][j] = errata requiring at least triggers i and j. */
    std::vector<std::vector<std::size_t>> counts;

    /** The strongest off-diagonal pairs, ranked by count. */
    struct Pair
    {
        CategoryId a = 0;
        CategoryId b = 0;
        std::size_t count = 0;
    };
    std::vector<Pair> topPairs(std::size_t n) const;
};

/** Compute the matrix over all unique errata (both vendors). */
TriggerCorrelation triggerCorrelation(const Database &db);

/**
 * Observation O8 support: fraction of trigger pairs that never
 * co-occur ("most triggers do not interact with each other").
 */
double nonInteractingPairFraction(const TriggerCorrelation &matrix);

} // namespace rememberr

#endif // REMEMBERR_ANALYSIS_CORRELATION_HH
