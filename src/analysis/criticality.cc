#include "criticality.hh"

#include "util/logging.hh"

namespace rememberr {

namespace {

bool
has(const DbEntry &entry, const char *code)
{
    auto id = Taxonomy::instance().parseCategory(code);
    if (!id)
        REMEMBERR_PANIC("criticality: unknown category ", code);
    return entry.triggers.contains(*id) ||
           entry.contexts.contains(*id) ||
           entry.effects.contains(*id);
}

bool
securityCritical(const DbEntry &entry, std::vector<std::string> *why)
{
    bool critical = false;
    // Reachable from a virtual machine guest: unprivileged
    // tenant-controlled code can trigger it.
    if (has(entry, "Ctx_PRV_vmg")) {
        critical = true;
        if (why)
            why->push_back("triggerable from a virtual machine "
                           "guest (unprivileged tenant)");
    }
    // Performance-counter corruption undermines deployed
    // counter-based defenses (Section V-A4's references).
    if (has(entry, "Eff_CRP_prf")) {
        critical = true;
        if (why)
            why->push_back("corrupts performance counters that "
                           "security defenses depend on");
    }
    // Security features misbehaving while enabled.
    if (has(entry, "Ctx_FEA_sec")) {
        critical = true;
        if (why)
            why->push_back("manifests with a security feature "
                           "(SGX/SVM-class) enabled");
    }
    // Missing faults let software proceed past a violated check.
    if (has(entry, "Eff_FLT_fms")) {
        critical = true;
        if (why)
            why->push_back("an expected fault is not delivered, "
                           "so a protection check is skipped");
    }
    return critical;
}

bool
livenessCritical(const DbEntry &entry, std::vector<std::string> *why)
{
    bool critical = false;
    for (const char *code :
         {"Eff_HNG_hng", "Eff_HNG_crh", "Eff_HNG_boo"}) {
        if (has(entry, code)) {
            critical = true;
            if (why)
                why->push_back(
                    std::string("liveness effect: ") +
                    std::string(Taxonomy::instance()
                                    .categoryById(
                                        *Taxonomy::instance()
                                             .parseCategory(code))
                                    .description));
        }
    }
    return critical;
}

bool
functional(const DbEntry &entry)
{
    for (const char *code :
         {"Eff_HNG_unp", "Eff_FLT_mca", "Eff_FLT_unc",
          "Eff_FLT_fsp", "Eff_FLT_fid", "Eff_CRP_reg"}) {
        if (has(entry, code))
            return true;
    }
    return false;
}

} // namespace

std::string_view
criticalityName(Criticality level)
{
    switch (level) {
      case Criticality::SecurityCritical: return "security-critical";
      case Criticality::LivenessCritical: return "liveness-critical";
      case Criticality::Functional: return "functional";
      case Criticality::Low: return "low";
    }
    REMEMBERR_PANIC("criticalityName: bad level");
}

Criticality
assessCriticality(const DbEntry &entry)
{
    if (securityCritical(entry, nullptr))
        return Criticality::SecurityCritical;
    if (livenessCritical(entry, nullptr))
        return Criticality::LivenessCritical;
    if (functional(entry))
        return Criticality::Functional;
    return Criticality::Low;
}

std::vector<std::string>
criticalityReasons(const DbEntry &entry)
{
    std::vector<std::string> reasons;
    securityCritical(entry, &reasons);
    livenessCritical(entry, &reasons);
    if (reasons.empty() && functional(entry))
        reasons.push_back("functional deviation (wrong values, "
                          "spurious faults or corruptions)");
    if (reasons.empty())
        reasons.push_back("externally observable nuisance only");
    return reasons;
}

std::size_t
CriticalityBreakdown::total(Criticality level) const
{
    std::size_t count = 0;
    auto it = intel.find(level);
    if (it != intel.end())
        count += it->second;
    it = amd.find(level);
    if (it != amd.end())
        count += it->second;
    return count;
}

CriticalityBreakdown
criticalityBreakdown(const Database &db)
{
    CriticalityBreakdown breakdown;
    for (const DbEntry &entry : db.entries()) {
        Criticality level = assessCriticality(entry);
        if (entry.vendor == Vendor::Intel)
            ++breakdown.intel[level];
        else
            ++breakdown.amd[level];
    }
    return breakdown;
}

} // namespace rememberr
