/**
 * @file
 * Trigger classes across Intel Core generations (Figure 13,
 * Observation O9).
 */

#ifndef REMEMBERR_ANALYSIS_EVOLUTION_HH
#define REMEMBERR_ANALYSIS_EVOLUTION_HH

#include <string>
#include <vector>

#include "db/database.hh"

namespace rememberr {

/** Trigger-class breakdown of one generation. */
struct GenerationClassProfile
{
    int generation = 0;
    std::string label;
    /** Count per trigger class, aligned with classIds. */
    std::vector<std::size_t> classCounts;
    std::size_t totalTriggers = 0;
};

/** The per-generation evolution data. */
struct ClassEvolution
{
    /** Trigger class ids covered, in taxonomy order. */
    std::vector<ClassId> classIds;
    std::vector<std::string> classCodes;
    std::vector<GenerationClassProfile> generations;
};

/**
 * Compute trigger-class shares per generation for one vendor.
 * Desktop/Mobile documents of the same generation merge. An entry
 * counts towards every generation it occurs in.
 */
ClassEvolution classEvolution(const Database &db, Vendor vendor);

/** Observation O9 helper: generations in which every trigger class is
 * represented at least once. */
std::vector<int> generationsCoveringAllClasses(
    const ClassEvolution &evolution);

} // namespace rememberr

#endif // REMEMBERR_ANALYSIS_EVOLUTION_HH
