/**
 * @file
 * Timeline reconstruction (Section IV-B1, Figure 2).
 *
 * Bug discoveries are not timestamped; disclosure dates come from the
 * revision history via the approximation rules implemented in
 * ErrataDocument::approximateDisclosureDate. The cumulative series
 * per document shows errata growth over time; its concavity is
 * Observation O2.
 */

#ifndef REMEMBERR_ANALYSIS_TIMELINE_HH
#define REMEMBERR_ANALYSIS_TIMELINE_HH

#include <string>
#include <vector>

#include "db/database.hh"
#include "util/date.hh"

namespace rememberr {

/** A cumulative count series over dates. */
struct CumulativeSeries
{
    std::string label;
    /** Sorted points; count is cumulative at that date. */
    std::vector<std::pair<Date, std::size_t>> points;

    std::size_t
    total() const
    {
        return points.empty() ? 0 : points.back().second;
    }

    /** Cumulative count at a given date (0 before the first point). */
    std::size_t countAt(Date when) const;
};

/** Figure 2: one cumulative disclosure series per document; duplicate
 * rows are counted individually (as in the paper). */
std::vector<CumulativeSeries>
disclosureTimelines(const Database &db);

/** Concavity measure: fraction of the document's lifetime quarters in
 * which the per-quarter rate does not exceed the first year's mean
 * rate (O2 holds when late rates fall below early rates). */
double concavityScore(const CumulativeSeries &series);

/** Observation O1 helper: total errata per document release year. */
std::vector<std::pair<int, std::size_t>>
errataPerReleaseYear(const Database &db, Vendor vendor);

} // namespace rememberr

#endif // REMEMBERR_ANALYSIS_TIMELINE_HH
