/**
 * @file
 * Category frequency analyses (Figures 10, 11, 17 and 18).
 */

#ifndef REMEMBERR_ANALYSIS_FREQUENCY_HH
#define REMEMBERR_ANALYSIS_FREQUENCY_HH

#include <optional>
#include <string>
#include <vector>

#include "db/database.hh"

namespace rememberr {

/** One ranked category with its per-vendor counts. */
struct CategoryFrequency
{
    CategoryId id = 0;
    std::string code;
    std::size_t intelCount = 0;
    std::size_t amdCount = 0;

    std::size_t total() const { return intelCount + amdCount; }
};

/**
 * Figures 10/17/18: most frequent categories of an axis over unique
 * errata, ranked by total count; topN = nullopt returns all.
 */
std::vector<CategoryFrequency>
categoryFrequencies(const Database &db, Axis axis,
                    std::optional<std::size_t> top_n = std::nullopt);

/** Figure 11: number of errata per trigger count. */
struct TriggerCountHistogram
{
    /** countsByVendor[k] for k = 1..maxTriggers; vendor-split. */
    std::vector<std::size_t> intelCounts;
    std::vector<std::size_t> amdCounts;
    /** Errata without a clear trigger (excluded from the figure). */
    std::size_t noTriggerCount = 0;
    std::size_t totalWithTriggers = 0;

    /** Fraction of errata without a clear trigger (paper: 14.4%). */
    double noTriggerFraction(std::size_t unique_total) const;
    /** Fraction of triggered errata requiring >= 2 triggers
     * (paper: 49%). */
    double multiTriggerFraction() const;
};

TriggerCountHistogram triggerCountHistogram(const Database &db);

/** Fraction of unique errata mentioning a "complex set of
 * conditions" (paper: 8.7% Intel, 20.8% AMD). */
double complexConditionsFraction(const Database &db, Vendor vendor);

/** Count of unique errata only triggerable in simulation
 * (paper: 1 Intel, 5 AMD). */
std::size_t simulationOnlyCount(const Database &db, Vendor vendor);

} // namespace rememberr

#endif // REMEMBERR_ANALYSIS_FREQUENCY_HH
