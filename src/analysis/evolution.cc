#include "evolution.hh"

#include <map>
#include <set>

namespace rememberr {

ClassEvolution
classEvolution(const Database &db, Vendor vendor)
{
    const Taxonomy &taxonomy = Taxonomy::instance();
    ClassEvolution evolution;
    evolution.classIds = taxonomy.classesOfAxis(Axis::Trigger);
    for (ClassId id : evolution.classIds)
        evolution.classCodes.push_back(taxonomy.classById(id).code);

    std::map<ClassId, std::size_t> columnOf;
    for (std::size_t i = 0; i < evolution.classIds.size(); ++i)
        columnOf[evolution.classIds[i]] = i;

    // Generations of this vendor, in order.
    std::map<int, std::string> generationLabels;
    for (const ErrataDocument &doc : db.documents()) {
        if (doc.design.vendor != vendor)
            continue;
        auto [it, inserted] = generationLabels.try_emplace(
            doc.design.generation, doc.design.name);
        if (!inserted && doc.design.variant != DesignVariant::Unified)
            it->second = "Core " +
                         std::to_string(doc.design.generation);
    }

    std::map<int, GenerationClassProfile> profiles;
    for (const auto &[generation, label] : generationLabels) {
        GenerationClassProfile profile;
        profile.generation = generation;
        profile.label = label;
        profile.classCounts.assign(evolution.classIds.size(), 0);
        profiles[generation] = std::move(profile);
    }

    for (const DbEntry &entry : db.entries()) {
        if (entry.vendor != vendor)
            continue;
        std::set<int> generations;
        for (const Occurrence &occurrence : entry.occurrences) {
            generations.insert(
                db.documents()[static_cast<std::size_t>(
                                   occurrence.docIndex)]
                    .design.generation);
        }
        for (int generation : generations) {
            auto it = profiles.find(generation);
            if (it == profiles.end())
                continue;
            for (CategoryId id : entry.triggers.toVector()) {
                ClassId cls = taxonomy.categoryById(id).classId;
                auto column = columnOf.find(cls);
                if (column != columnOf.end()) {
                    ++it->second.classCounts[column->second];
                    ++it->second.totalTriggers;
                }
            }
        }
    }

    for (auto &[generation, profile] : profiles)
        evolution.generations.push_back(std::move(profile));
    return evolution;
}

std::vector<int>
generationsCoveringAllClasses(const ClassEvolution &evolution)
{
    std::vector<int> covered;
    for (const GenerationClassProfile &profile :
         evolution.generations) {
        bool all = true;
        for (std::size_t c = 0; c < profile.classCounts.size(); ++c) {
            if (profile.classCounts[c] == 0) {
                all = false;
                break;
            }
        }
        if (all)
            covered.push_back(profile.generation);
    }
    return covered;
}

} // namespace rememberr
