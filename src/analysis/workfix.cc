#include "workfix.hh"

#include <set>

namespace rememberr {

double
WorkaroundBreakdown::noneFraction(Vendor vendor) const
{
    const auto &counts = vendor == Vendor::Intel ? intel : amd;
    std::size_t total = vendor == Vendor::Intel ? intelTotal
                                                : amdTotal;
    auto it = counts.find(WorkaroundClass::None);
    std::size_t none = it == counts.end() ? 0 : it->second;
    return total == 0 ? 0.0
                      : static_cast<double>(none) /
                            static_cast<double>(total);
}

WorkaroundBreakdown
workaroundBreakdown(const Database &db)
{
    WorkaroundBreakdown breakdown;
    for (const DbEntry &entry : db.entries()) {
        if (entry.vendor == Vendor::Intel) {
            ++breakdown.intel[entry.workaroundClass];
            ++breakdown.intelTotal;
        } else {
            ++breakdown.amd[entry.workaroundClass];
            ++breakdown.amdTotal;
        }
    }
    return breakdown;
}

std::vector<FixRow>
fixBreakdown(const Database &db)
{
    std::vector<FixRow> rows;
    for (std::size_t d = 0; d < db.documents().size(); ++d) {
        FixRow row;
        row.docIndex = static_cast<int>(d);
        row.label = db.documents()[d].design.name;
        rows.push_back(std::move(row));
    }
    for (const DbEntry &entry : db.entries()) {
        // Count each entry once per document it occurs in.
        std::set<int> docs;
        for (const Occurrence &occurrence : entry.occurrences)
            docs.insert(occurrence.docIndex);
        for (int doc : docs) {
            FixRow &row = rows[static_cast<std::size_t>(doc)];
            switch (entry.status) {
              case FixStatus::Fixed:
                ++row.fixed;
                break;
              case FixStatus::Planned:
                ++row.planned;
                break;
              case FixStatus::NoFix:
                ++row.unfixed;
                break;
            }
        }
    }
    return rows;
}

double
neverFixedFraction(const Database &db)
{
    std::size_t total = 0;
    std::size_t unfixed = 0;
    for (const DbEntry &entry : db.entries()) {
        ++total;
        if (entry.status == FixStatus::NoFix)
            ++unfixed;
    }
    return total == 0 ? 0.0
                      : static_cast<double>(unfixed) /
                            static_cast<double>(total);
}

} // namespace rememberr
