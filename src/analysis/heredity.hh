/**
 * @file
 * Bug heredity across design generations (Section IV-B2).
 *
 * Figure 3: number of identical errata between pairs of Intel
 * documents. Figure 4: disclosure dates of the bugs shared by all
 * Intel Core generations 6-10. Figure 5: forward-/backward-latent
 * errata over time.
 */

#ifndef REMEMBERR_ANALYSIS_HEREDITY_HH
#define REMEMBERR_ANALYSIS_HEREDITY_HH

#include <string>
#include <vector>

#include "db/database.hh"
#include "analysis/timeline.hh"

namespace rememberr {

/** Figure 3: pairwise shared unique errata between documents. */
struct HeredityMatrix
{
    /** Document indices covered (row/column order). */
    std::vector<int> docIndices;
    std::vector<std::string> labels;
    /** counts[i][j] = unique errata present in both documents. */
    std::vector<std::vector<std::size_t>> counts;
};

/** Compute the heredity matrix over one vendor's documents. */
HeredityMatrix heredityMatrix(const Database &db, Vendor vendor);

/** Entries occurring in every one of the given documents. */
std::vector<const DbEntry *>
entriesSharedByAll(const Database &db, const std::vector<int> &docs);

/**
 * Longest heredity chain: the maximum number of distinct generations
 * (per the document's generation field) a single entry spans.
 */
std::size_t longestGenerationSpan(const Database &db, Vendor vendor);

/** Figure 4: for each document of the shared set, the cumulative
 * disclosure series of the shared bugs, prefixed by the document's
 * release date. */
std::vector<CumulativeSeries>
sharedBugDisclosures(const Database &db, const std::vector<int> &docs);

/** Figure 5: forward- and backward-latent cumulative series. */
struct LatentSeries
{
    CumulativeSeries forwardLatent;
    CumulativeSeries backwardLatent;
    std::size_t forwardCount = 0;
    std::size_t backwardCount = 0;
};

/**
 * An erratum is forward-latent when it was reported in one design and
 * strictly later in a later-released design; backward-latent when it
 * was reported in a design strictly before being reported in an
 * earlier-released design. Event timestamps are the date of the
 * qualifying (later) report.
 */
LatentSeries latentErrata(const Database &db, Vendor vendor);

/** Observation O4: of the entries shared between consecutive designs,
 * the fraction already reported before the later design's release. */
double knownBeforeNextReleaseFraction(const Database &db,
                                      Vendor vendor);

} // namespace rememberr

#endif // REMEMBERR_ANALYSIS_HEREDITY_HH
