/**
 * @file
 * Workaround (Figure 6, Observation O5) and fix (Figure 7,
 * Observation O6) statistics.
 */

#ifndef REMEMBERR_ANALYSIS_WORKFIX_HH
#define REMEMBERR_ANALYSIS_WORKFIX_HH

#include <map>
#include <string>
#include <vector>

#include "db/database.hh"

namespace rememberr {

/** Figure 6: unique-errata counts per workaround category/vendor. */
struct WorkaroundBreakdown
{
    std::map<WorkaroundClass, std::size_t> intel;
    std::map<WorkaroundClass, std::size_t> amd;
    std::size_t intelTotal = 0;
    std::size_t amdTotal = 0;

    /** Fraction of a vendor's unique errata with no workaround
     * (paper: 35.9% Intel, 28.9% AMD). */
    double noneFraction(Vendor vendor) const;
};

WorkaroundBreakdown workaroundBreakdown(const Database &db);

/** Figure 7: fixed vs unfixed per document. */
struct FixRow
{
    int docIndex = 0;
    std::string label;
    std::size_t fixed = 0;
    std::size_t planned = 0;
    std::size_t unfixed = 0;
};

std::vector<FixRow> fixBreakdown(const Database &db);

/** Overall fraction of unique errata that are never fixed (O6). */
double neverFixedFraction(const Database &db);

} // namespace rememberr

#endif // REMEMBERR_ANALYSIS_WORKFIX_HH
