/**
 * @file
 * Intel/AMD relative trigger representation (Figures 14-16,
 * Observation O10).
 */

#ifndef REMEMBERR_ANALYSIS_VENDORCMP_HH
#define REMEMBERR_ANALYSIS_VENDORCMP_HH

#include <string>
#include <vector>

#include "db/database.hh"

namespace rememberr {

/** One row of a vendor-comparison table. */
struct VendorShareRow
{
    std::string code;
    double intelShare = 0.0; ///< fraction of Intel's triggers
    double amdShare = 0.0;   ///< fraction of AMD's triggers
    std::size_t intelCount = 0;
    std::size_t amdCount = 0;
};

/** Figure 14: relative representation of trigger *classes*. */
std::vector<VendorShareRow> triggerClassShares(const Database &db);

/** Figures 15/16: relative representation of the abstract triggers
 * inside one class (Trg_EXT for Figure 15, Trg_FEA for Figure 16). */
std::vector<VendorShareRow>
triggerCategorySharesInClass(const Database &db,
                             const std::string &class_code);

/**
 * Observation O10 support: total variation distance between the two
 * vendors' class share distributions (small = very similar).
 */
double classShareDistance(const std::vector<VendorShareRow> &rows);

} // namespace rememberr

#endif // REMEMBERR_ANALYSIS_VENDORCMP_HH
