/**
 * @file
 * Conservative criticality assessment (Section V-A4).
 *
 * "Only a few bugs can be considered non-critical: criticality
 * generally depends on the assumptions made by the software running
 * on the faulty CPU. Therefore, it is necessary to be conservative."
 * Crashes and hangs are evidently liveness-critical; bugs reachable
 * from unprivileged or guest contexts are security-critical; even
 * wrong performance-counter values are security-relevant because
 * deployed defenses depend on counter integrity.
 */

#ifndef REMEMBERR_ANALYSIS_CRITICALITY_HH
#define REMEMBERR_ANALYSIS_CRITICALITY_HH

#include <map>
#include <string_view>
#include <vector>

#include "db/database.hh"

namespace rememberr {

/** Conservative criticality bands, most severe first. */
enum class Criticality : std::uint8_t
{
    SecurityCritical, ///< guest/unprivileged reachability or
                      ///< defense-relevant corruption
    LivenessCritical, ///< hangs, crashes, boot failures
    Functional,       ///< wrong results, faults, corruptions
    Low,              ///< externally observable nuisances only
};

std::string_view criticalityName(Criticality level);

/** Assess one entry conservatively (the most severe band wins). */
Criticality assessCriticality(const DbEntry &entry);

/** Why the entry landed in its band, for reports. */
std::vector<std::string> criticalityReasons(const DbEntry &entry);

/** Band populations over the database, per vendor. */
struct CriticalityBreakdown
{
    std::map<Criticality, std::size_t> intel;
    std::map<Criticality, std::size_t> amd;

    std::size_t total(Criticality level) const;
};

CriticalityBreakdown criticalityBreakdown(const Database &db);

} // namespace rememberr

#endif // REMEMBERR_ANALYSIS_CRITICALITY_HH
