#include "msr.hh"

#include <algorithm>
#include <map>
#include <set>

#include "text/regex.hh"
#include "util/strings.hh"

namespace rememberr {

std::string
msrFamily(const std::string &name)
{
    static const Regex mcPattern =
        Regex::compileOrDie(R"(^MC\d+_(STATUS|ADDR)$)");
    auto match = mcPattern.search(name);
    if (match && match->begin == 0 && match->end == name.size()) {
        return strings::startsWith(name.substr(match->groups[0]
                                                   ->first),
                                   "STATUS")
                   ? "MCx_STATUS"
                   : "MCx_ADDR";
    }
    if (strings::startsWith(name, "IBS_"))
        return "IBS_*";
    if (strings::startsWith(name, "PERF_") ||
        strings::startsWith(name, "FIXED_CTR")) {
        return "PERF_*";
    }
    return name;
}

std::vector<MsrFrequency>
msrFrequencies(const Database &db)
{
    std::map<std::string, MsrFrequency> families;
    std::size_t intelUnique = 0;
    std::size_t amdUnique = 0;

    for (const DbEntry &entry : db.entries()) {
        if (entry.vendor == Vendor::Intel)
            ++intelUnique;
        else
            ++amdUnique;
        std::set<std::string> seen;
        for (const MsrRef &msr : entry.msrs) {
            std::string family = msrFamily(msr.name);
            if (!seen.insert(family).second)
                continue;
            MsrFrequency &freq = families[family];
            freq.family = family;
            if (entry.vendor == Vendor::Intel)
                ++freq.intelCount;
            else
                ++freq.amdCount;
        }
    }

    std::vector<MsrFrequency> out;
    for (auto &[family, freq] : families) {
        freq.intelFraction =
            intelUnique == 0
                ? 0.0
                : static_cast<double>(freq.intelCount) /
                      static_cast<double>(intelUnique);
        freq.amdFraction =
            amdUnique == 0 ? 0.0
                           : static_cast<double>(freq.amdCount) /
                                 static_cast<double>(amdUnique);
        out.push_back(freq);
    }
    std::sort(out.begin(), out.end(),
              [](const MsrFrequency &a, const MsrFrequency &b) {
                  if (a.total() != b.total())
                      return a.total() > b.total();
                  return a.family < b.family;
              });
    return out;
}

} // namespace rememberr
