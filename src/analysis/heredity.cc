#include "heredity.hh"

#include <algorithm>
#include <map>
#include <set>

namespace rememberr {

HeredityMatrix
heredityMatrix(const Database &db, Vendor vendor)
{
    HeredityMatrix matrix;
    for (std::size_t d = 0; d < db.documents().size(); ++d) {
        if (db.documents()[d].design.vendor == vendor) {
            matrix.docIndices.push_back(static_cast<int>(d));
            matrix.labels.push_back(db.documents()[d].design.name);
        }
    }
    const std::size_t n = matrix.docIndices.size();
    matrix.counts.assign(n, std::vector<std::size_t>(n, 0));

    std::map<int, std::size_t> column;
    for (std::size_t i = 0; i < n; ++i)
        column[matrix.docIndices[i]] = i;

    for (const DbEntry &entry : db.entries()) {
        if (entry.vendor != vendor)
            continue;
        std::set<std::size_t> present;
        for (const Occurrence &occurrence : entry.occurrences) {
            auto it = column.find(occurrence.docIndex);
            if (it != column.end())
                present.insert(it->second);
        }
        for (std::size_t i : present) {
            for (std::size_t j : present)
                ++matrix.counts[i][j];
        }
    }
    return matrix;
}

std::vector<const DbEntry *>
entriesSharedByAll(const Database &db, const std::vector<int> &docs)
{
    std::vector<const DbEntry *> shared;
    for (const DbEntry &entry : db.entries()) {
        std::set<int> present;
        for (const Occurrence &occurrence : entry.occurrences)
            present.insert(occurrence.docIndex);
        bool all = true;
        for (int doc : docs) {
            if (!present.count(doc)) {
                all = false;
                break;
            }
        }
        if (all)
            shared.push_back(&entry);
    }
    return shared;
}

std::size_t
longestGenerationSpan(const Database &db, Vendor vendor)
{
    std::size_t longest = 0;
    for (const DbEntry &entry : db.entries()) {
        if (entry.vendor != vendor)
            continue;
        std::set<int> generations;
        for (const Occurrence &occurrence : entry.occurrences) {
            for (int generation :
                 db.documents()[static_cast<std::size_t>(
                                    occurrence.docIndex)]
                     .design.coveredGenerations()) {
                generations.insert(generation);
            }
        }
        longest = std::max(longest, generations.size());
    }
    return longest;
}

std::vector<CumulativeSeries>
sharedBugDisclosures(const Database &db, const std::vector<int> &docs)
{
    auto shared = entriesSharedByAll(db, docs);
    std::vector<CumulativeSeries> series;
    for (int doc : docs) {
        CumulativeSeries current;
        current.label =
            db.documents()[static_cast<std::size_t>(doc)].design.name;
        std::map<Date, std::size_t> perDate;
        // The first data point is the document's release date.
        Date release = db.documents()[static_cast<std::size_t>(doc)]
                           .design.releaseDate;
        perDate[release] = 0;
        for (const DbEntry *entry : shared) {
            for (const Occurrence &occurrence : entry->occurrences) {
                if (occurrence.docIndex == doc) {
                    ++perDate[occurrence.disclosed];
                    break;
                }
            }
        }
        std::size_t cumulative = 0;
        for (const auto &[date, count] : perDate) {
            cumulative += count;
            current.points.emplace_back(date, cumulative);
        }
        series.push_back(std::move(current));
    }
    return series;
}

LatentSeries
latentErrata(const Database &db, Vendor vendor)
{
    LatentSeries result;
    result.forwardLatent.label = "forward-latent";
    result.backwardLatent.label = "backward-latent";

    std::map<Date, std::size_t> forwardEvents;
    std::map<Date, std::size_t> backwardEvents;

    for (const DbEntry &entry : db.entries()) {
        if (entry.vendor != vendor ||
            entry.occurrences.size() < 2) {
            continue;
        }
        // Find the earliest qualifying event of each kind.
        std::optional<Date> forwardAt;
        std::optional<Date> backwardAt;
        for (const Occurrence &a : entry.occurrences) {
            Date releaseA =
                db.documents()[static_cast<std::size_t>(a.docIndex)]
                    .design.releaseDate;
            for (const Occurrence &b : entry.occurrences) {
                if (a.docIndex == b.docIndex)
                    continue;
                Date releaseB =
                    db.documents()[static_cast<std::size_t>(
                                       b.docIndex)]
                        .design.releaseDate;
                // a reported strictly before b.
                if (a.disclosed >= b.disclosed)
                    continue;
                if (releaseA < releaseB) {
                    // Earlier design first, later design later.
                    if (!forwardAt || b.disclosed < *forwardAt)
                        forwardAt = b.disclosed;
                } else if (releaseB < releaseA) {
                    // Later design first, earlier design later.
                    if (!backwardAt || b.disclosed < *backwardAt)
                        backwardAt = b.disclosed;
                }
            }
        }
        if (forwardAt) {
            ++forwardEvents[*forwardAt];
            ++result.forwardCount;
        }
        if (backwardAt) {
            ++backwardEvents[*backwardAt];
            ++result.backwardCount;
        }
    }

    auto accumulate = [](const std::map<Date, std::size_t> &events,
                         CumulativeSeries &series) {
        std::size_t cumulative = 0;
        for (const auto &[date, count] : events) {
            cumulative += count;
            series.points.emplace_back(date, cumulative);
        }
    };
    accumulate(forwardEvents, result.forwardLatent);
    accumulate(backwardEvents, result.backwardLatent);
    return result;
}

double
knownBeforeNextReleaseFraction(const Database &db, Vendor vendor)
{
    std::size_t shared = 0;
    std::size_t knownBefore = 0;
    for (const DbEntry &entry : db.entries()) {
        if (entry.vendor != vendor || entry.occurrences.size() < 2)
            continue;
        // Order occurrences by design release.
        std::vector<const Occurrence *> ordered;
        for (const Occurrence &occurrence : entry.occurrences)
            ordered.push_back(&occurrence);
        std::sort(ordered.begin(), ordered.end(),
                  [&](const Occurrence *a, const Occurrence *b) {
                      Date ra =
                          db.documents()[static_cast<std::size_t>(
                                             a->docIndex)]
                              .design.releaseDate;
                      Date rb =
                          db.documents()[static_cast<std::size_t>(
                                             b->docIndex)]
                              .design.releaseDate;
                      return ra < rb;
                  });
        for (std::size_t i = 0; i + 1 < ordered.size(); ++i) {
            Date thisRelease =
                db.documents()[static_cast<std::size_t>(
                                   ordered[i]->docIndex)]
                    .design.releaseDate;
            Date nextRelease =
                db.documents()[static_cast<std::size_t>(
                                   ordered[i + 1]->docIndex)]
                    .design.releaseDate;
            // O4 is about transmission to a *subsequent* design;
            // same-day Desktop/Mobile document pairs do not count.
            if (nextRelease <= thisRelease)
                continue;
            ++shared;
            if (ordered[i]->disclosed < nextRelease)
                ++knownBefore;
        }
    }
    return shared == 0 ? 0.0
                       : static_cast<double>(knownBefore) /
                             static_cast<double>(shared);
}

} // namespace rememberr
