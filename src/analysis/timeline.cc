#include "timeline.hh"

#include <algorithm>
#include <map>

namespace rememberr {

std::size_t
CumulativeSeries::countAt(Date when) const
{
    std::size_t count = 0;
    for (const auto &[date, cumulative] : points) {
        if (date > when)
            break;
        count = cumulative;
    }
    return count;
}

std::vector<CumulativeSeries>
disclosureTimelines(const Database &db)
{
    std::vector<CumulativeSeries> series;
    for (std::size_t d = 0; d < db.documents().size(); ++d) {
        const ErrataDocument &doc = db.documents()[d];
        CumulativeSeries current;
        current.label = doc.design.name;

        std::map<Date, std::size_t> perDate;
        for (const Erratum &erratum : doc.errata)
            ++perDate[doc.approximateDisclosureDate(erratum.localId)];

        std::size_t cumulative = 0;
        for (const auto &[date, count] : perDate) {
            cumulative += count;
            current.points.emplace_back(date, cumulative);
        }
        series.push_back(std::move(current));
    }
    return series;
}

double
concavityScore(const CumulativeSeries &series)
{
    if (series.points.size() < 2)
        return 1.0;
    const Date start = series.points.front().first;
    const Date end = series.points.back().first;
    const std::int64_t lifetime = start.daysUntil(end);
    if (lifetime < 365)
        return 1.0;

    // Mean rate over the first year.
    const Date firstYearEnd = start.addDays(365);
    const double firstYearRate =
        static_cast<double>(series.countAt(firstYearEnd)) / 365.0;
    if (firstYearRate <= 0.0)
        return 0.0;

    // Quarterly rates afterwards.
    std::size_t quarters = 0;
    std::size_t flatOrSlower = 0;
    Date cursor = firstYearEnd;
    while (cursor < end) {
        Date next = cursor.addDays(91);
        double rate = static_cast<double>(series.countAt(next) -
                                          series.countAt(cursor)) /
                      91.0;
        if (rate <= firstYearRate)
            ++flatOrSlower;
        ++quarters;
        cursor = next;
    }
    return quarters == 0 ? 1.0
                         : static_cast<double>(flatOrSlower) /
                               static_cast<double>(quarters);
}

std::vector<std::pair<int, std::size_t>>
errataPerReleaseYear(const Database &db, Vendor vendor)
{
    std::map<int, std::size_t> perYear;
    for (std::size_t d = 0; d < db.documents().size(); ++d) {
        const ErrataDocument &doc = db.documents()[d];
        if (doc.design.vendor != vendor)
            continue;
        perYear[doc.design.releaseDate.year()] += doc.errata.size();
    }
    return {perYear.begin(), perYear.end()};
}

} // namespace rememberr
