#include "log.hh"

#include <chrono>
#include <cstdio>
#include <mutex>

#include "util/json.hh"
#include "util/logging.hh"

namespace rememberr {

namespace {

/** One locked write per record, mirroring util/logging's emitLine:
 * stdio would not keep multi-part writes atomic across threads. */
void
writeRecord(const std::string &line)
{
    static std::mutex writeMutex;
    std::lock_guard<std::mutex> lock(writeMutex);
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fflush(stderr);
}

} // namespace

std::string
formatJsonLogRecord(const char *level, const std::string &msg,
                    std::uint64_t tsUs, std::uint32_t thread,
                    std::uint64_t span)
{
    // Hand-assembled in key order (ts_us, level, thread, span, msg)
    // rather than via JsonValue: records must stay cheap and must
    // not reorder keys under the std::map-backed object model.
    std::string line;
    line.reserve(msg.size() + 80);
    line += "{\"ts_us\":";
    line += std::to_string(tsUs);
    line += ",\"level\":";
    line += jsonEscape(level);
    line += ",\"thread\":";
    line += std::to_string(thread);
    line += ",\"span\":";
    line += std::to_string(span);
    line += ",\"msg\":";
    line += jsonEscape(msg);
    line += "}";
    return line;
}

void
enableJsonLogging(const JsonLogOptions &options)
{
    const TraceRecorder *trace = options.trace;
    auto epoch = std::chrono::steady_clock::now();
    setLogEmitter([trace, epoch](const char *level,
                                 const std::string &msg) {
        std::uint64_t tsUs;
        if (trace) {
            tsUs = trace->nowUs();
        } else {
            tsUs = static_cast<std::uint64_t>(
                std::chrono::duration_cast<
                    std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - epoch)
                    .count());
        }
        writeRecord(formatJsonLogRecord(level, msg, tsUs,
                                        obsThreadId(),
                                        activeSpanId()) +
                    "\n");
    });
}

void
disableJsonLogging()
{
    setLogEmitter(nullptr);
}

} // namespace rememberr
