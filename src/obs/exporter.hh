/**
 * @file
 * Periodic metrics exporter: a background thread that snapshots a
 * MetricsRegistry every interval and maintains an append-only JSONL
 * time series on disk, so a long-lived process (the future `serve`
 * daemon) has a continuous health record instead of a single
 * dump-on-exit.
 *
 * Each line is one self-contained JSON object:
 *
 *   {"seq": 3, "elapsed_ms": 150, "counters": {...}, "gauges":
 *    {...}, "histograms": {...}, "quantiles": {...}}
 *
 * Before each snapshot the exporter samples process resources
 * (obs/proc) into the registry's `proc.*` gauges, so RSS/CPU/context
 * switches ride in the same series. The file is rewritten atomically
 * every tick (all accumulated lines → sibling temp file → rename):
 * an interrupted run can never leave a truncated line, and any
 * moment's on-disk file is a complete, parseable series. Exporter
 * overhead is visible in its own instruments
 * (`obs.exporter.ticks` counter, `obs.exporter.tick_us` quantile).
 *
 * Shutdown is a clean join: stop() (or the destructor) wakes the
 * thread, takes one final snapshot so the series always ends with
 * the process's last state, and joins.
 */

#ifndef REMEMBERR_OBS_EXPORTER_HH
#define REMEMBERR_OBS_EXPORTER_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hh"

namespace rememberr {

/** Exporter configuration. */
struct ExporterOptions
{
    /** Snapshot period. */
    std::chrono::milliseconds interval{1000};
    /** Registry to snapshot (required, must outlive the exporter). */
    MetricsRegistry *metrics = nullptr;
    /** Sample obs/proc resource gauges before each snapshot. */
    bool sampleProc = true;
};

class MetricsExporter
{
  public:
    /** Starts the flusher thread immediately. */
    MetricsExporter(std::string path, ExporterOptions options);

    /** Equivalent to stop(). */
    ~MetricsExporter();

    MetricsExporter(const MetricsExporter &) = delete;
    MetricsExporter &operator=(const MetricsExporter &) = delete;

    /**
     * Take a final snapshot, flush, and join the thread. Idempotent;
     * called by the destructor when not called explicitly. Returns
     * false when any write failed (the last error is kept).
     */
    bool stop();

    /** Snapshot + flush right now, without waiting for the tick.
     * Thread-safe; lines stay in seq order. */
    void flushNow();

    /** Snapshots taken so far. */
    std::uint64_t ticks() const;

    /** Empty when every write so far succeeded. */
    std::string lastError() const;

    const std::string &path() const { return path_; }

  private:
    void run();
    /** Append one snapshot line and rewrite the file atomically.
     * Caller must hold mutex_. */
    void snapshotLocked();

    std::string path_;
    ExporterOptions options_;
    std::chrono::steady_clock::time_point epoch_;

    mutable std::mutex mutex_;
    std::condition_variable wake_;
    bool stopping_ = false;
    bool stopped_ = false;
    std::vector<std::string> lines_;
    std::uint64_t seq_ = 0;
    std::string lastError_;

    std::thread thread_;
};

} // namespace rememberr

#endif // REMEMBERR_OBS_EXPORTER_HH
