/**
 * @file
 * Metrics registry: named counters, gauges and fixed-bucket
 * histograms for pipeline observability.
 *
 * Design goals, in order:
 *   1. the hot path (incrementing an already-created instrument) is
 *      lock-free — a single relaxed atomic RMW;
 *   2. creation/lookup by name takes a registry mutex but returns a
 *      stable reference, so instrumentation sites look up once and
 *      increment many times;
 *   3. a disabled pipeline passes a null `MetricsRegistry *` and
 *      pays only a pointer test per instrumentation site.
 *
 * Snapshots (`toJson`/`toCsv`) iterate the registry under the mutex
 * and read every atomic with relaxed ordering: values written by
 * worker threads become visible through the fork-join joins the
 * pipeline already performs, so a snapshot taken after a stage sees
 * everything that stage counted.
 */

#ifndef REMEMBERR_OBS_METRICS_HH
#define REMEMBERR_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/quantile.hh"
#include "util/json.hh"

namespace rememberr {

/** Monotonically increasing event count. */
class Counter
{
  public:
    void
    add(std::uint64_t delta = 1)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-write-wins instantaneous value. */
class Gauge
{
  public:
    void
    set(std::int64_t value)
    {
        value_.store(value, std::memory_order_relaxed);
    }

    std::int64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::int64_t> value_{0};
};

/**
 * Fixed-bucket histogram. Bucket i counts observations with
 * `value <= bounds[i]`; one overflow bucket counts the rest. Bounds
 * are fixed at creation, so observe() is a branch-free scan plus one
 * relaxed atomic increment — no allocation, no lock.
 */
class Histogram
{
  public:
    /** @param bounds ascending inclusive upper bounds. */
    explicit Histogram(std::vector<double> bounds);

    void observe(double value);
    void reset();

    const std::vector<double> &bounds() const { return bounds_; }
    /** Count in bucket i (i == bounds().size() is overflow). */
    std::uint64_t bucketCount(std::size_t i) const;
    std::uint64_t count() const;
    double sum() const;

  private:
    std::vector<double> bounds_;
    std::vector<std::atomic<std::uint64_t>> buckets_;
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
};

/**
 * Thread-safe registry of named instruments. Lookup-or-create takes
 * a mutex; returned references stay valid for the registry's
 * lifetime (instruments are never removed, reset() zeroes them in
 * place). Names are independent per instrument kind.
 */
class MetricsRegistry
{
  public:
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    /** Bounds apply on creation; later calls reuse the instrument. */
    Histogram &histogram(const std::string &name,
                         std::vector<double> bounds = defaultBounds());
    /**
     * Log-bucketed quantile histogram (the default for timing
     * instruments): p50/p95/p99/max with bounded relative error.
     * Alpha applies on creation; later calls reuse the instrument.
     */
    QuantileHistogram &
    quantile(const std::string &name,
             double alpha = QuantileHistogram::defaultAlpha());

    /** Lookup without creating; null when absent. */
    const Counter *findCounter(const std::string &name) const;
    const Gauge *findGauge(const std::string &name) const;
    const Histogram *findHistogram(const std::string &name) const;
    const QuantileHistogram *
    findQuantile(const std::string &name) const;

    /** Zero every instrument, keeping registrations (and therefore
     * outstanding references) intact. */
    void reset();

    /**
     * Snapshot as JSON:
     *   {"counters": {name: n}, "gauges": {name: n},
     *    "histograms": {name: {"count": n, "sum": x,
     *                          "buckets": [{"le": b, "count": n}]}},
     *    "quantiles": {name: {"count": n, "sum": x, "max": x,
     *                         "p50": x, "p95": x, "p99": x}}}
     * Keys are sorted (std::map), so output is deterministic.
     */
    JsonValue toJson() const;

    /** Snapshot as CSV with columns kind,name,field,value. */
    std::string toCsv() const;

    /** The process-global registry (default pipeline target). */
    static MetricsRegistry &global();

    /** Default histogram bounds: microsecond-scale powers of ten. */
    static std::vector<double> defaultBounds();

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
    std::map<std::string, std::unique_ptr<QuantileHistogram>>
        quantiles_;
};

} // namespace rememberr

#endif // REMEMBERR_OBS_METRICS_HH
