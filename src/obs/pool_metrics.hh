/**
 * @file
 * Bridges the work pool's per-region worker stats
 * (util/parallel.hh's PoolStatsSink) into a MetricsRegistry, so
 * scheduling skew shows up next to the pipeline's stage counters.
 *
 * Instruments maintained while attached:
 *   counter   parallel.regions           fork-join regions joined
 *   counter   parallel.workers           worker activations
 *   counter   parallel.chunks            chunks claimed
 *   counter   parallel.busy_us           total in-body time
 *   counter   parallel.idle_us           total claim/drain overhead
 *   histogram parallel.worker_chunks     chunks claimed per worker
 *   quantile  parallel.worker_idle_us    idle time per worker
 *   quantile  parallel.worker_busy_us    busy time per worker
 *
 * The timing distributions are log-bucketed quantile histograms
 * (p50/p95/p99/max with bounded relative error) per the repo-wide
 * convention that durations go into quantile instruments; only the
 * small-integer chunk count keeps a fixed-bucket histogram.
 */

#ifndef REMEMBERR_OBS_POOL_METRICS_HH
#define REMEMBERR_OBS_POOL_METRICS_HH

#include "obs/metrics.hh"

namespace rememberr {

/**
 * Install a process-wide pool stats sink that accumulates into
 * `registry`. The registry must outlive the attachment. Replaces
 * any previously attached sink.
 */
void attachPoolMetrics(MetricsRegistry &registry);

/** Remove the pool stats sink (the pool reverts to zero-cost). */
void detachPoolMetrics();

} // namespace rememberr

#endif // REMEMBERR_OBS_POOL_METRICS_HH
