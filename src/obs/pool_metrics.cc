#include "pool_metrics.hh"

#include "util/parallel.hh"

namespace rememberr {

void
attachPoolMetrics(MetricsRegistry &registry)
{
    // Resolve every instrument once; the sink then only performs
    // atomic adds, so it is safe to invoke from concurrent regions.
    Counter &regions = registry.counter("parallel.regions");
    Counter &workers = registry.counter("parallel.workers");
    Counter &chunks = registry.counter("parallel.chunks");
    Counter &busyUs = registry.counter("parallel.busy_us");
    Counter &idleUs = registry.counter("parallel.idle_us");
    Histogram &workerChunks = registry.histogram(
        "parallel.worker_chunks",
        {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0});
    QuantileHistogram &workerIdle =
        registry.quantile("parallel.worker_idle_us");
    QuantileHistogram &workerBusy =
        registry.quantile("parallel.worker_busy_us");

    setPoolStatsSink([&regions, &workers, &chunks, &busyUs, &idleUs,
                      &workerChunks, &workerIdle, &workerBusy](
                         const std::vector<WorkerStats> &stats) {
        regions.add(1);
        workers.add(stats.size());
        for (const WorkerStats &worker : stats) {
            chunks.add(worker.chunks);
            busyUs.add(worker.busyUs);
            idleUs.add(worker.idleUs);
            workerChunks.observe(
                static_cast<double>(worker.chunks));
            workerIdle.observe(static_cast<double>(worker.idleUs));
            workerBusy.observe(static_cast<double>(worker.busyUs));
        }
    });
}

void
detachPoolMetrics()
{
    setPoolStatsSink(nullptr);
}

} // namespace rememberr
