/**
 * @file
 * Log-bucketed quantile histogram (DDSketch/HDR-style) for latency
 * instruments that must answer p50/p95/p99 while the process keeps
 * running.
 *
 * Values are mapped to geometrically spaced buckets with ratio
 * gamma = (1 + alpha) / (1 - alpha): bucket j (j >= 1) covers
 * (gamma^(j-1), gamma^j], and the estimate reported for any value in
 * that bucket is 2 * gamma^j / (gamma + 1), which is within a factor
 * of [1 - alpha, 1 + alpha) of the true value. Quantile estimation
 * therefore carries a *bounded relative error* of alpha for any
 * observation in [1, maxTrackable()] — the guarantee the tests pin.
 *
 * Concurrency model:
 *   - observe() is lock-free: one relaxed fetch_add on a bucket in a
 *     per-thread shard (threads are striped over a small fixed shard
 *     set, so concurrent writers almost never share a cache line),
 *     plus CAS loops for the shard's sum and max;
 *   - readers (count/sum/max/quantile) merge all shards with relaxed
 *     loads — mergeability is the point of sharding: a snapshot is
 *     just a sum over shards, no stop-the-world, no locking;
 *   - reset() zeroes shards in place, keeping references valid.
 *
 * Observations below 1.0 land in an underflow bucket (estimated as
 * 0.5, outside the relative-error guarantee); observations above
 * maxTrackable() land in an overflow bucket and are answered from
 * the exact tracked maximum.
 */

#ifndef REMEMBERR_OBS_QUANTILE_HH
#define REMEMBERR_OBS_QUANTILE_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace rememberr {

class QuantileHistogram
{
  public:
    /** @param alpha relative error bound in (0, 1); default 1%. */
    explicit QuantileHistogram(double alpha = defaultAlpha());

    /** Record one observation. Lock-free; thread-safe. */
    void observe(double value);

    /** Total observations across all shards. */
    std::uint64_t count() const;

    /** Sum of all observed values. */
    double sum() const;

    /** Exact largest observed value (0 when empty). */
    double max() const;

    /**
     * Estimate the q-quantile (q in [0, 1]) of everything observed
     * so far: the value whose rank is floor(q * (count - 1)) in the
     * sorted sample, within relative error alpha() for observations
     * in [1, maxTrackable()]. Returns 0 when empty; quantile(1.0)
     * returns the exact max.
     */
    double quantile(double q) const;

    /** The configured relative error bound. */
    double alpha() const { return alpha_; }

    /** Largest value the log buckets cover (larger observations are
     * answered from the exact max). */
    static double maxTrackable() { return 1e9; }

    static double defaultAlpha() { return 0.01; }

    /** Zero every shard in place; outstanding references stay valid. */
    void reset();

  private:
    struct Shard
    {
        std::vector<std::atomic<std::uint64_t>> buckets;
        std::atomic<std::uint64_t> count{0};
        std::atomic<double> sum{0.0};
        std::atomic<double> max{0.0};

        explicit Shard(std::size_t bucketCount)
            : buckets(bucketCount)
        {
        }
    };

    std::size_t bucketIndex(double value) const;
    double bucketEstimate(std::size_t index) const;

    double alpha_;
    double gamma_;
    double invLogGamma_;
    /** buckets: [0] underflow (< 1), [1..logBuckets] log-spaced,
     * [logBuckets + 1] overflow (> maxTrackable). */
    std::size_t logBuckets_;
    std::vector<std::unique_ptr<Shard>> shards_;
};

} // namespace rememberr

#endif // REMEMBERR_OBS_QUANTILE_HH
