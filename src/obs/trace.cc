#include "trace.hh"

#include <algorithm>
#include <atomic>

#include "util/json.hh"

namespace rememberr {

namespace {

/** Per-thread stack of open span ids (innermost last). */
std::vector<std::uint64_t> &
spanStack()
{
    thread_local std::vector<std::uint64_t> stack;
    return stack;
}

/** Process-unique span ids; 0 is reserved for "no span". */
std::uint64_t
nextSpanId()
{
    static std::atomic<std::uint64_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
}

/** Recorder ids for the thread-local buffer cache. Never reused, so
 * a stale cache entry for a destroyed recorder can never alias a
 * newly constructed one. */
std::uint64_t
nextRecorderId()
{
    static std::atomic<std::uint64_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
}

} // namespace

std::uint32_t
obsThreadId()
{
    // Sequential ids so events from different OS threads stay
    // distinguishable even after thread-id reuse.
    static std::atomic<std::uint32_t> next{1};
    thread_local std::uint32_t tid =
        next.fetch_add(1, std::memory_order_relaxed);
    return tid;
}

std::uint64_t
activeSpanId()
{
    const std::vector<std::uint64_t> &stack = spanStack();
    return stack.empty() ? 0 : stack.back();
}

TraceRecorder::TraceRecorder()
    : epoch_(std::chrono::steady_clock::now()),
      recorderId_(nextRecorderId())
{
}

std::uint64_t
TraceRecorder::nowUs() const
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
}

TraceRecorder::ThreadBuffer &
TraceRecorder::localBuffer()
{
    // One-entry cache: pool workers record against a single recorder
    // for their whole (short) life, so a map would be overkill.
    thread_local std::uint64_t cachedRecorder = 0;
    thread_local ThreadBuffer *cachedBuffer = nullptr;
    if (cachedRecorder == recorderId_ && cachedBuffer)
        return *cachedBuffer;

    std::lock_guard<std::mutex> lock(mutex_);
    auto buffer = std::make_unique<ThreadBuffer>();
    buffer->tid = obsThreadId();
    buffers_.push_back(std::move(buffer));
    cachedRecorder = recorderId_;
    cachedBuffer = buffers_.back().get();
    return *cachedBuffer;
}

void
TraceRecorder::record(std::string name, std::uint64_t tsUs,
                      std::uint64_t durUs, std::uint64_t id)
{
    ThreadBuffer &buffer = localBuffer();
    TraceEvent event;
    event.name = std::move(name);
    event.tsUs = tsUs;
    event.durUs = durUs;
    event.tid = buffer.tid;
    event.id = id;
    std::lock_guard<std::mutex> lock(buffer.mutex);
    buffer.events.push_back(std::move(event));
}

std::vector<TraceEvent>
TraceRecorder::snapshot() const
{
    std::vector<TraceEvent> merged;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &buffer : buffers_) {
            std::lock_guard<std::mutex> bufferLock(buffer->mutex);
            merged.insert(merged.end(), buffer->events.begin(),
                          buffer->events.end());
        }
    }
    std::sort(merged.begin(), merged.end(),
              [](const TraceEvent &a, const TraceEvent &b) {
                  if (a.tsUs != b.tsUs)
                      return a.tsUs < b.tsUs;
                  if (a.durUs != b.durUs)
                      return a.durUs > b.durUs;
                  return a.name < b.name;
              });
    return merged;
}

void
TraceRecorder::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &buffer : buffers_) {
        std::lock_guard<std::mutex> bufferLock(buffer->mutex);
        buffer->events.clear();
    }
}

std::string
TraceRecorder::toChromeJson() const
{
    JsonValue events = JsonValue::makeArray();
    for (const TraceEvent &event : snapshot()) {
        JsonValue entry = JsonValue::makeObject();
        entry["name"] = JsonValue(event.name);
        entry["ph"] = JsonValue("X");
        entry["ts"] = JsonValue(static_cast<double>(event.tsUs));
        entry["dur"] = JsonValue(static_cast<double>(event.durUs));
        entry["pid"] = JsonValue(1);
        entry["tid"] =
            JsonValue(static_cast<double>(event.tid));
        if (event.id != 0) {
            JsonValue eventArgs = JsonValue::makeObject();
            eventArgs["span_id"] =
                JsonValue(static_cast<double>(event.id));
            entry["args"] = std::move(eventArgs);
        }
        events.append(std::move(entry));
    }
    return events.dumpPretty();
}

TraceRecorder &
TraceRecorder::global()
{
    static TraceRecorder recorder;
    return recorder;
}

ScopedSpan::ScopedSpan(TraceRecorder *recorder, std::string name)
    : recorder_(recorder), name_(std::move(name))
{
    if (recorder_) {
        startUs_ = recorder_->nowUs();
        id_ = nextSpanId();
        spanStack().push_back(id_);
    }
}

ScopedSpan::~ScopedSpan()
{
    if (recorder_) {
        spanStack().pop_back();
        recorder_->record(std::move(name_), startUs_,
                          recorder_->nowUs() - startUs_, id_);
    }
}

std::uint64_t
ScopedSpan::elapsedUs() const
{
    return recorder_ ? recorder_->nowUs() - startUs_ : 0;
}

} // namespace rememberr
