/**
 * @file
 * Trace spans: RAII duration events collected into per-thread
 * buffers and exported as Chrome `trace_event` JSON, loadable in
 * chrome://tracing and Perfetto.
 *
 * A `ScopedSpan` stamps its start against the recorder's monotonic
 * epoch (std::chrono::steady_clock) on construction and appends one
 * complete event (ph "X") to the *recording thread's* buffer on
 * destruction. Each thread's first record against a recorder
 * registers a buffer under the recorder mutex; subsequent records
 * append under that buffer's own (uncontended) mutex, so concurrent
 * workers never share a buffer and never serialize against each
 * other. Buffers are owned by the recorder and outlive the threads
 * that fill them — short-lived pool workers are fine. `snapshot()`
 * merges every buffer and sorts by (start, longest-first), giving a
 * stable order where enclosing spans precede the spans they nest.
 *
 * A null `TraceRecorder *` disables a span entirely: no clock read,
 * no allocation, no buffer touch.
 */

#ifndef REMEMBERR_OBS_TRACE_HH
#define REMEMBERR_OBS_TRACE_HH

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace rememberr {

/** One complete ("X") trace event. Times are in microseconds since
 * the recorder's construction. */
struct TraceEvent
{
    std::string name;
    std::uint64_t tsUs = 0;
    std::uint64_t durUs = 0;
    std::uint32_t tid = 0;
    /** Process-unique span id (0 = none), assigned when the span
     * opens so concurrent log records can reference it; exported as
     * args.span_id in the Chrome JSON. */
    std::uint64_t id = 0;

    bool operator==(const TraceEvent &other) const = default;
};

/**
 * Sequential id of the calling thread (1-based, never reused) — the
 * id trace events and structured log records are stamped with.
 */
std::uint32_t obsThreadId();

/**
 * The innermost live span id on the calling thread (0 when no span
 * is open). ScopedSpan maintains a per-thread stack of open spans;
 * structured log records join against trace exports through this id.
 */
std::uint64_t activeSpanId();

/** Collects trace events from any number of threads. */
class TraceRecorder
{
  public:
    TraceRecorder();

    /** Microseconds elapsed since this recorder was constructed. */
    std::uint64_t nowUs() const;

    /** Append one complete event to the calling thread's buffer. */
    void record(std::string name, std::uint64_t tsUs,
                std::uint64_t durUs, std::uint64_t id = 0);

    /** Merge all buffers, sorted by (tsUs, durUs desc, name). */
    std::vector<TraceEvent> snapshot() const;

    /** Drop every recorded event (buffers stay registered). */
    void clear();

    /**
     * Chrome trace_event format: a JSON array of objects
     * {"name", "ph": "X", "ts", "dur", "pid", "tid"} — the "JSON
     * Array Format" accepted by chrome://tracing and Perfetto.
     */
    std::string toChromeJson() const;

    /** The process-global recorder (default pipeline target). */
    static TraceRecorder &global();

  private:
    struct ThreadBuffer
    {
        std::uint32_t tid = 0;
        mutable std::mutex mutex;
        std::vector<TraceEvent> events;
    };

    ThreadBuffer &localBuffer();

    std::chrono::steady_clock::time_point epoch_;
    std::uint64_t recorderId_;
    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

/**
 * RAII span: records [construction, destruction) of the current
 * thread against `recorder`, or nothing when `recorder` is null.
 */
class ScopedSpan
{
  public:
    ScopedSpan(TraceRecorder *recorder, std::string name);
    ~ScopedSpan();

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

    /** Microseconds since the span started (0 when disabled). */
    std::uint64_t elapsedUs() const;

    /** This span's process-unique id (0 when disabled). */
    std::uint64_t id() const { return id_; }

  private:
    TraceRecorder *recorder_;
    std::string name_;
    std::uint64_t startUs_ = 0;
    std::uint64_t id_ = 0;
};

} // namespace rememberr

#endif // REMEMBERR_OBS_TRACE_HH
