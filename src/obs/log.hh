/**
 * @file
 * Structured JSON logging: one self-contained JSON object per
 * record, machine-joinable with trace spans.
 *
 *   {"ts_us": 12345, "level": "warn", "thread": 2, "span": 17,
 *    "msg": "..."}
 *
 * `enableJsonLogging` swaps util/logging's emitter (every
 * REMEMBERR_WARN / INFORM / DEBUG site, unchanged) for one that
 * stamps each record with a monotonic timestamp, the obs thread id
 * and the innermost open span id from the `TraceRecorder` span
 * stack. A log line's "span" equals the "args.span_id" of the trace
 * event that encloses it, so a JSONL log stream and a Chrome trace
 * export join on that key. Records are written to stderr with one
 * locked write each — concurrent pool workers never interleave.
 *
 * Level filtering still happens in util/logging before the emitter
 * runs, so Quiet stays free and disabled debug traces still cost
 * only the level check.
 */

#ifndef REMEMBERR_OBS_LOG_HH
#define REMEMBERR_OBS_LOG_HH

#include <cstdint>
#include <string>

#include "obs/trace.hh"

namespace rememberr {

/** How enableJsonLogging stamps and writes records. */
struct JsonLogOptions
{
    /**
     * Timestamp source: ts_us is this recorder's monotonic clock
     * (so log records and its trace spans share a time base). Null
     * falls back to a process epoch taken at enable time.
     */
    const TraceRecorder *trace = &TraceRecorder::global();
};

/**
 * Build one JSON log record (no trailing newline). Split out so
 * tests can pin the schema without reaching stderr.
 */
std::string formatJsonLogRecord(const char *level,
                                const std::string &msg,
                                std::uint64_t tsUs,
                                std::uint32_t thread,
                                std::uint64_t span);

/** Install the JSON emitter (replacing any previous emitter). */
void enableJsonLogging(const JsonLogOptions &options = {});

/** Restore the default "level: message" stderr lines. */
void disableJsonLogging();

} // namespace rememberr

#endif // REMEMBERR_OBS_LOG_HH
