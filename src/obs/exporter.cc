#include "exporter.hh"

#include "obs/proc.hh"
#include "util/fileio.hh"
#include "util/logging.hh"

namespace rememberr {

MetricsExporter::MetricsExporter(std::string path,
                                 ExporterOptions options)
    : path_(std::move(path)), options_(options),
      epoch_(std::chrono::steady_clock::now())
{
    if (!options_.metrics)
        REMEMBERR_PANIC("MetricsExporter requires a registry");
    if (options_.interval.count() <= 0)
        REMEMBERR_PANIC("MetricsExporter interval must be positive");
    thread_ = std::thread([this] { run(); });
}

MetricsExporter::~MetricsExporter() { stop(); }

void
MetricsExporter::run()
{
    std::unique_lock<std::mutex> lock(mutex_);
    while (true) {
        // wait_for with a predicate: spurious wakeups re-check, and
        // a stop requested mid-wait flushes immediately.
        wake_.wait_for(lock, options_.interval,
                       [this] { return stopping_; });
        if (stopping_)
            return; // stop() takes the final snapshot itself
        snapshotLocked();
    }
}

void
MetricsExporter::snapshotLocked()
{
    auto begin = std::chrono::steady_clock::now();
    if (options_.sampleProc)
        publishProcGauges(*options_.metrics, sampleProc());

    JsonValue line = options_.metrics->toJson();
    line["seq"] = JsonValue(static_cast<double>(seq_));
    line["elapsed_ms"] = JsonValue(static_cast<double>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            begin - epoch_)
            .count()));
    ++seq_;
    lines_.push_back(line.dump());

    std::string body;
    for (const std::string &entry : lines_) {
        body += entry;
        body += '\n';
    }
    auto written = atomicWriteFile(path_, body);
    if (!written)
        lastError_ = written.error().toString();

    // The exporter's own cost, measured into the series it exports.
    auto elapsed =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - begin)
            .count();
    options_.metrics->counter("obs.exporter.ticks").add(1);
    options_.metrics->quantile("obs.exporter.tick_us")
        .observe(static_cast<double>(elapsed));
}

void
MetricsExporter::flushNow()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_)
        return;
    snapshotLocked();
}

bool
MetricsExporter::stop()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopped_)
            return lastError_.empty();
        stopping_ = true;
    }
    wake_.notify_all();
    if (thread_.joinable())
        thread_.join();
    std::lock_guard<std::mutex> lock(mutex_);
    // Final snapshot: the series always ends with the process's
    // last state, even when the run was shorter than one interval.
    snapshotLocked();
    stopped_ = true;
    return lastError_.empty();
}

std::uint64_t
MetricsExporter::ticks() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return seq_;
}

std::string
MetricsExporter::lastError() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return lastError_;
}

} // namespace rememberr
