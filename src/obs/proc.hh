/**
 * @file
 * Process resource sampling: RSS, CPU time and context switches as
 * registry gauges, so the periodic exporter's JSONL time series
 * carries a continuous health record next to the flow counters.
 *
 * Sources: getrusage(RUSAGE_SELF) for CPU time, context switches and
 * peak RSS (portable across POSIX); /proc/self/statm for the current
 * resident set (Linux only — elsewhere the current-RSS gauge falls
 * back to the getrusage peak). Sampling is a handful of syscalls and
 * one small read; it is driven by the exporter tick, never by the
 * instrumented code itself.
 */

#ifndef REMEMBERR_OBS_PROC_HH
#define REMEMBERR_OBS_PROC_HH

#include <cstdint>

#include "obs/metrics.hh"

namespace rememberr {

/** One point-in-time resource sample; -1 = source unavailable. */
struct ProcSample
{
    /** Current resident set size in bytes (/proc/self/statm). */
    std::int64_t rssBytes = -1;
    /** Peak resident set size in bytes (ru_maxrss). */
    std::int64_t maxRssBytes = -1;
    /** User-mode CPU time, microseconds (ru_utime). */
    std::int64_t userCpuUs = -1;
    /** Kernel-mode CPU time, microseconds (ru_stime). */
    std::int64_t sysCpuUs = -1;
    /** Voluntary context switches (ru_nvcsw). */
    std::int64_t voluntaryCtxSwitches = -1;
    /** Involuntary context switches (ru_nivcsw). */
    std::int64_t involuntaryCtxSwitches = -1;
};

/** Sample the current process. Thread-safe. */
ProcSample sampleProc();

/**
 * Publish a sample as gauges:
 *   proc.rss_bytes, proc.max_rss_bytes, proc.cpu_user_us,
 *   proc.cpu_sys_us, proc.ctxsw_voluntary, proc.ctxsw_involuntary
 * Unavailable fields (-1) are skipped, so a registry only ever
 * carries gauges the platform can actually fill.
 */
void publishProcGauges(MetricsRegistry &registry,
                       const ProcSample &sample);

} // namespace rememberr

#endif // REMEMBERR_OBS_PROC_HH
