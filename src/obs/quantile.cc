#include "quantile.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace rememberr {

namespace {

/** Shards are a contention valve, not a correctness feature: any
 * thread may write any shard, readers always merge all of them. Four
 * covers the container's realistic parallelism without bloating the
 * per-instrument footprint. */
constexpr std::size_t kShards = 4;

std::size_t
shardIndex()
{
    static std::atomic<std::size_t> next{0};
    thread_local std::size_t index =
        next.fetch_add(1, std::memory_order_relaxed) % kShards;
    return index;
}

/** CAS-maximum for atomic<double> (no fetch_max for FP types). */
void
atomicMax(std::atomic<double> &slot, double value)
{
    double seen = slot.load(std::memory_order_relaxed);
    while (seen < value &&
           !slot.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
}

void
atomicAdd(std::atomic<double> &slot, double delta)
{
    double seen = slot.load(std::memory_order_relaxed);
    while (!slot.compare_exchange_weak(seen, seen + delta,
                                       std::memory_order_relaxed)) {
    }
}

} // namespace

QuantileHistogram::QuantileHistogram(double alpha) : alpha_(alpha)
{
    if (!(alpha > 0.0) || !(alpha < 1.0))
        REMEMBERR_PANIC("quantile alpha must be in (0, 1), got ",
                        alpha);
    gamma_ = (1.0 + alpha_) / (1.0 - alpha_);
    invLogGamma_ = 1.0 / std::log(gamma_);
    logBuckets_ = static_cast<std::size_t>(
        std::ceil(std::log(maxTrackable()) * invLogGamma_));
    shards_.reserve(kShards);
    for (std::size_t s = 0; s < kShards; ++s)
        shards_.push_back(std::make_unique<Shard>(logBuckets_ + 2));
}

std::size_t
QuantileHistogram::bucketIndex(double value) const
{
    if (!(value >= 1.0))
        return 0; // underflow (also NaN)
    if (value > maxTrackable())
        return logBuckets_ + 1; // overflow
    double j = std::ceil(std::log(value) * invLogGamma_);
    if (j < 0.0)
        j = 0.0;
    auto index = static_cast<std::size_t>(j) + 1;
    return std::min(index, logBuckets_ + 1);
}

double
QuantileHistogram::bucketEstimate(std::size_t index) const
{
    if (index == 0)
        return 0.5;
    if (index >= logBuckets_ + 1)
        return max();
    if (index == 1)
        return 1.0; // bucket 1 holds exactly value == 1
    // Bucket index covers (gamma^(index-2), gamma^(index-1)]; the
    // harmonic point 2 * gamma^(index-1) / (gamma + 1) keeps the
    // relative error within [-alpha, +alpha) over the whole bucket.
    return 2.0 *
           std::pow(gamma_, static_cast<double>(index - 1)) /
           (gamma_ + 1.0);
}

void
QuantileHistogram::observe(double value)
{
    Shard &shard = *shards_[shardIndex()];
    shard.buckets[bucketIndex(value)].fetch_add(
        1, std::memory_order_relaxed);
    shard.count.fetch_add(1, std::memory_order_relaxed);
    atomicAdd(shard.sum, value);
    atomicMax(shard.max, value);
}

std::uint64_t
QuantileHistogram::count() const
{
    std::uint64_t total = 0;
    for (const auto &shard : shards_)
        total += shard->count.load(std::memory_order_relaxed);
    return total;
}

double
QuantileHistogram::sum() const
{
    double total = 0.0;
    for (const auto &shard : shards_)
        total += shard->sum.load(std::memory_order_relaxed);
    return total;
}

double
QuantileHistogram::max() const
{
    double best = 0.0;
    for (const auto &shard : shards_) {
        best = std::max(best,
                        shard->max.load(std::memory_order_relaxed));
    }
    return best;
}

double
QuantileHistogram::quantile(double q) const
{
    q = std::clamp(q, 0.0, 1.0);
    // Merge shard buckets once; the copy keeps the walk consistent
    // even while writers keep observing.
    std::vector<std::uint64_t> merged(logBuckets_ + 2, 0);
    std::uint64_t total = 0;
    for (const auto &shard : shards_) {
        for (std::size_t b = 0; b < merged.size(); ++b) {
            std::uint64_t n =
                shard->buckets[b].load(std::memory_order_relaxed);
            merged[b] += n;
            total += n;
        }
    }
    if (total == 0)
        return 0.0;
    if (q >= 1.0)
        return max();
    // Rank of the q-quantile in the sorted sample (0-based), then
    // walk buckets until the cumulative count passes it.
    auto rank = static_cast<std::uint64_t>(
        q * static_cast<double>(total - 1));
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < merged.size(); ++b) {
        cumulative += merged[b];
        if (cumulative > rank) {
            // The midpoint estimate can overshoot the largest sample
            // by up to alpha; clamping to the exact tracked maximum
            // keeps every quantile <= max() without widening the
            // error bound.
            return std::min(bucketEstimate(b), max());
        }
    }
    return max();
}

void
QuantileHistogram::reset()
{
    for (auto &shard : shards_) {
        for (auto &bucket : shard->buckets)
            bucket.store(0, std::memory_order_relaxed);
        shard->count.store(0, std::memory_order_relaxed);
        shard->sum.store(0.0, std::memory_order_relaxed);
        shard->max.store(0.0, std::memory_order_relaxed);
    }
}

} // namespace rememberr
