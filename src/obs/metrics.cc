#include "metrics.hh"

#include <algorithm>
#include <sstream>

#include "util/csv.hh"
#include "util/logging.hh"

namespace rememberr {

namespace {

/** Format a double the way the CSV/JSON goldens expect: integral
 * values without a fractional part, others with full precision. */
std::string
formatNumber(double value)
{
    if (value == static_cast<double>(static_cast<std::int64_t>(value)))
        return std::to_string(static_cast<std::int64_t>(value));
    std::ostringstream os;
    os << value;
    return os.str();
}

} // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1)
{
    if (!std::is_sorted(bounds_.begin(), bounds_.end()))
        REMEMBERR_PANIC("histogram bounds must be ascending");
}

void
Histogram::observe(double value)
{
    std::size_t bucket = 0;
    while (bucket < bounds_.size() && value > bounds_[bucket])
        ++bucket;
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    // atomic<double>::fetch_add is C++20 but not universally lowered;
    // a CAS loop is portable and the histogram path is not hot.
    double expected = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(expected, expected + value,
                                       std::memory_order_relaxed)) {
    }
}

void
Histogram::reset()
{
    for (auto &bucket : buckets_)
        bucket.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
}

std::uint64_t
Histogram::bucketCount(std::size_t i) const
{
    if (i >= buckets_.size())
        REMEMBERR_PANIC("histogram bucket ", i, " out of range");
    return buckets_[i].load(std::memory_order_relaxed);
}

std::uint64_t
Histogram::count() const
{
    return count_.load(std::memory_order_relaxed);
}

double
Histogram::sum() const
{
    return sum_.load(std::memory_order_relaxed);
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
MetricsRegistry::histogram(const std::string &name,
                           std::vector<double> bounds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>(std::move(bounds));
    return *slot;
}

QuantileHistogram &
MetricsRegistry::quantile(const std::string &name, double alpha)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = quantiles_[name];
    if (!slot)
        slot = std::make_unique<QuantileHistogram>(alpha);
    return *slot;
}

const Counter *
MetricsRegistry::findCounter(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = counters_.find(name);
    return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge *
MetricsRegistry::findGauge(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = gauges_.find(name);
    return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram *
MetricsRegistry::findHistogram(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : it->second.get();
}

const QuantileHistogram *
MetricsRegistry::findQuantile(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = quantiles_.find(name);
    return it == quantiles_.end() ? nullptr : it->second.get();
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &entry : counters_)
        entry.second->reset();
    for (auto &entry : gauges_)
        entry.second->set(0);
    for (auto &entry : histograms_)
        entry.second->reset();
    for (auto &entry : quantiles_)
        entry.second->reset();
}

JsonValue
MetricsRegistry::toJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    JsonValue counters = JsonValue::makeObject();
    for (const auto &entry : counters_)
        counters[entry.first] =
            JsonValue(static_cast<double>(entry.second->value()));
    JsonValue gauges = JsonValue::makeObject();
    for (const auto &entry : gauges_)
        gauges[entry.first] =
            JsonValue(static_cast<double>(entry.second->value()));
    JsonValue histograms = JsonValue::makeObject();
    for (const auto &entry : histograms_) {
        const Histogram &h = *entry.second;
        JsonValue buckets = JsonValue::makeArray();
        for (std::size_t b = 0; b < h.bounds().size(); ++b) {
            JsonValue bucket = JsonValue::makeObject();
            bucket["le"] = JsonValue(h.bounds()[b]);
            bucket["count"] = JsonValue(
                static_cast<double>(h.bucketCount(b)));
            buckets.append(std::move(bucket));
        }
        JsonValue overflow = JsonValue::makeObject();
        overflow["le"] = JsonValue("inf");
        overflow["count"] = JsonValue(static_cast<double>(
            h.bucketCount(h.bounds().size())));
        buckets.append(std::move(overflow));
        JsonValue body = JsonValue::makeObject();
        body["count"] = JsonValue(static_cast<double>(h.count()));
        body["sum"] = JsonValue(h.sum());
        body["buckets"] = std::move(buckets);
        histograms[entry.first] = std::move(body);
    }
    JsonValue quantiles = JsonValue::makeObject();
    for (const auto &entry : quantiles_) {
        const QuantileHistogram &q = *entry.second;
        JsonValue body = JsonValue::makeObject();
        body["count"] = JsonValue(static_cast<double>(q.count()));
        body["sum"] = JsonValue(q.sum());
        body["max"] = JsonValue(q.max());
        body["p50"] = JsonValue(q.quantile(0.50));
        body["p95"] = JsonValue(q.quantile(0.95));
        body["p99"] = JsonValue(q.quantile(0.99));
        quantiles[entry.first] = std::move(body);
    }
    JsonValue root = JsonValue::makeObject();
    root["counters"] = std::move(counters);
    root["gauges"] = std::move(gauges);
    root["histograms"] = std::move(histograms);
    root["quantiles"] = std::move(quantiles);
    return root;
}

std::string
MetricsRegistry::toCsv() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    CsvWriter csv;
    csv.setHeader({"kind", "name", "field", "value"});
    for (const auto &entry : counters_) {
        csv.addRow({"counter", entry.first, "value",
                    std::to_string(entry.second->value())});
    }
    for (const auto &entry : gauges_) {
        csv.addRow({"gauge", entry.first, "value",
                    std::to_string(entry.second->value())});
    }
    for (const auto &entry : histograms_) {
        const Histogram &h = *entry.second;
        csv.addRow({"histogram", entry.first, "count",
                    std::to_string(h.count())});
        csv.addRow({"histogram", entry.first, "sum",
                    formatNumber(h.sum())});
        for (std::size_t b = 0; b < h.bounds().size(); ++b) {
            csv.addRow({"histogram", entry.first,
                        "le " + formatNumber(h.bounds()[b]),
                        std::to_string(h.bucketCount(b))});
        }
        csv.addRow({"histogram", entry.first, "le inf",
                    std::to_string(
                        h.bucketCount(h.bounds().size()))});
    }
    for (const auto &entry : quantiles_) {
        const QuantileHistogram &q = *entry.second;
        csv.addRow({"quantile", entry.first, "count",
                    std::to_string(q.count())});
        csv.addRow({"quantile", entry.first, "sum",
                    formatNumber(q.sum())});
        csv.addRow({"quantile", entry.first, "max",
                    formatNumber(q.max())});
        csv.addRow({"quantile", entry.first, "p50",
                    formatNumber(q.quantile(0.50))});
        csv.addRow({"quantile", entry.first, "p95",
                    formatNumber(q.quantile(0.95))});
        csv.addRow({"quantile", entry.first, "p99",
                    formatNumber(q.quantile(0.99))});
    }
    return csv.toString();
}

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

std::vector<double>
MetricsRegistry::defaultBounds()
{
    return {10.0,     100.0,     1000.0,     10000.0,
            100000.0, 1000000.0, 10000000.0};
}

} // namespace rememberr
