#include "proc.hh"

#include <cstdio>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#define REMEMBERR_HAVE_GETRUSAGE 1
#endif

namespace rememberr {

namespace {

#ifdef REMEMBERR_HAVE_GETRUSAGE

std::int64_t
timevalUs(const timeval &tv)
{
    return static_cast<std::int64_t>(tv.tv_sec) * 1000000 +
           static_cast<std::int64_t>(tv.tv_usec);
}

#endif

#if defined(__linux__)

/** Current RSS from /proc/self/statm field 2 (resident pages). */
std::int64_t
statmRssBytes()
{
    std::FILE *statm = std::fopen("/proc/self/statm", "r");
    if (!statm)
        return -1;
    long size = 0;
    long resident = 0;
    int fields = std::fscanf(statm, "%ld %ld", &size, &resident);
    std::fclose(statm);
    if (fields != 2)
        return -1;
    long pageSize = sysconf(_SC_PAGESIZE);
    if (pageSize <= 0)
        return -1;
    return static_cast<std::int64_t>(resident) * pageSize;
}

#endif

} // namespace

ProcSample
sampleProc()
{
    ProcSample sample;
#ifdef REMEMBERR_HAVE_GETRUSAGE
    struct rusage usage;
    if (getrusage(RUSAGE_SELF, &usage) == 0) {
        sample.userCpuUs = timevalUs(usage.ru_utime);
        sample.sysCpuUs = timevalUs(usage.ru_stime);
        sample.voluntaryCtxSwitches =
            static_cast<std::int64_t>(usage.ru_nvcsw);
        sample.involuntaryCtxSwitches =
            static_cast<std::int64_t>(usage.ru_nivcsw);
        // ru_maxrss is kilobytes on Linux, bytes on macOS.
#if defined(__APPLE__)
        sample.maxRssBytes =
            static_cast<std::int64_t>(usage.ru_maxrss);
#else
        sample.maxRssBytes =
            static_cast<std::int64_t>(usage.ru_maxrss) * 1024;
#endif
    }
#endif
#if defined(__linux__)
    sample.rssBytes = statmRssBytes();
#endif
    if (sample.rssBytes < 0)
        sample.rssBytes = sample.maxRssBytes;
    return sample;
}

void
publishProcGauges(MetricsRegistry &registry,
                  const ProcSample &sample)
{
    struct Field
    {
        const char *name;
        std::int64_t value;
    };
    const Field fields[] = {
        {"proc.rss_bytes", sample.rssBytes},
        {"proc.max_rss_bytes", sample.maxRssBytes},
        {"proc.cpu_user_us", sample.userCpuUs},
        {"proc.cpu_sys_us", sample.sysCpuUs},
        {"proc.ctxsw_voluntary", sample.voluntaryCtxSwitches},
        {"proc.ctxsw_involuntary", sample.involuntaryCtxSwitches},
    };
    for (const Field &field : fields) {
        if (field.value >= 0)
            registry.gauge(field.name).set(field.value);
    }
}

} // namespace rememberr
