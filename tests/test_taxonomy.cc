/**
 * @file
 * Unit tests for the classification taxonomy (Tables IV-VI).
 */

#include <gtest/gtest.h>

#include <set>

#include "taxonomy/taxonomy.hh"

namespace rememberr {
namespace {

TEST(Taxonomy, SixtyAbstractCategories)
{
    // Section V-A: "in total, we defined 60 categories".
    EXPECT_EQ(Taxonomy::instance().categoryCount(), 60u);
}

TEST(Taxonomy, FifteenClasses)
{
    // 8 trigger + 3 context + 4 effect classes.
    const Taxonomy &taxonomy = Taxonomy::instance();
    EXPECT_EQ(taxonomy.classCount(), 15u);
    EXPECT_EQ(taxonomy.classesOfAxis(Axis::Trigger).size(), 8u);
    EXPECT_EQ(taxonomy.classesOfAxis(Axis::Context).size(), 3u);
    EXPECT_EQ(taxonomy.classesOfAxis(Axis::Effect).size(), 4u);
}

TEST(Taxonomy, AxisCategoryCountsMatchTables)
{
    const Taxonomy &taxonomy = Taxonomy::instance();
    EXPECT_EQ(taxonomy.categoriesOfAxis(Axis::Trigger).size(), 34u);
    EXPECT_EQ(taxonomy.categoriesOfAxis(Axis::Context).size(), 10u);
    EXPECT_EQ(taxonomy.categoriesOfAxis(Axis::Effect).size(), 16u);
}

TEST(Taxonomy, ClassMemberCountsMatchTableIV)
{
    const Taxonomy &taxonomy = Taxonomy::instance();
    auto sizeOf = [&](const char *code) {
        auto cls = taxonomy.parseClass(code);
        EXPECT_TRUE(cls) << code;
        return taxonomy.categoriesOfClass(*cls).size();
    };
    EXPECT_EQ(sizeOf("Trg_MBR"), 3u);
    EXPECT_EQ(sizeOf("Trg_MOP"), 8u);
    EXPECT_EQ(sizeOf("Trg_EXC"), 4u);
    EXPECT_EQ(sizeOf("Trg_PRV"), 2u);
    EXPECT_EQ(sizeOf("Trg_CFG"), 3u);
    EXPECT_EQ(sizeOf("Trg_POW"), 2u);
    EXPECT_EQ(sizeOf("Trg_EXT"), 6u);
    EXPECT_EQ(sizeOf("Trg_FEA"), 6u);
    EXPECT_EQ(sizeOf("Ctx_PRV"), 5u);
    EXPECT_EQ(sizeOf("Ctx_FEA"), 2u);
    EXPECT_EQ(sizeOf("Ctx_PHY"), 3u);
    EXPECT_EQ(sizeOf("Eff_HNG"), 4u);
    EXPECT_EQ(sizeOf("Eff_FLT"), 5u);
    EXPECT_EQ(sizeOf("Eff_CRP"), 2u);
    EXPECT_EQ(sizeOf("Eff_EXT"), 5u);
}

TEST(Taxonomy, DescriptorCodec)
{
    const Taxonomy &taxonomy = Taxonomy::instance();
    auto id = taxonomy.parseCategory("Trg_EXT_rst");
    ASSERT_TRUE(id);
    const AbstractCategory &cat = taxonomy.categoryById(*id);
    EXPECT_EQ(cat.code, "Trg_EXT_rst");
    EXPECT_EQ(cat.suffix, "rst");
    EXPECT_EQ(cat.axis, Axis::Trigger);
    EXPECT_EQ(taxonomy.classById(cat.classId).code, "Trg_EXT");
}

TEST(Taxonomy, FigureStyleLowercasePrefixAccepted)
{
    // The figures write trg_CFG_wrg / ctx_PRV_vmg / eff_CRP_reg.
    const Taxonomy &taxonomy = Taxonomy::instance();
    EXPECT_TRUE(taxonomy.parseCategory("trg_CFG_wrg"));
    EXPECT_TRUE(taxonomy.parseCategory("ctx_PRV_vmg"));
    EXPECT_TRUE(taxonomy.parseCategory("eff_CRP_reg"));
    EXPECT_TRUE(taxonomy.parseClass("trg_POW"));
}

TEST(Taxonomy, RejectsUnknownDescriptors)
{
    const Taxonomy &taxonomy = Taxonomy::instance();
    EXPECT_FALSE(taxonomy.parseCategory("Trg_EXT_xyz"));
    EXPECT_FALSE(taxonomy.parseCategory("Foo_BAR_baz"));
    EXPECT_FALSE(taxonomy.parseCategory(""));
    EXPECT_FALSE(taxonomy.parseClass("Trg_XXX"));
}

TEST(Taxonomy, AllCodesUniqueAndParseable)
{
    const Taxonomy &taxonomy = Taxonomy::instance();
    std::set<std::string> codes;
    for (const AbstractCategory &cat : taxonomy.categories()) {
        EXPECT_TRUE(codes.insert(cat.code).second)
            << "duplicate " << cat.code;
        auto parsed = taxonomy.parseCategory(cat.code);
        ASSERT_TRUE(parsed);
        EXPECT_EQ(*parsed, cat.id);
        EXPECT_FALSE(cat.description.empty());
    }
}

TEST(Taxonomy, PaperExampleCategoriesExist)
{
    // Categories named in the running examples of the paper.
    const Taxonomy &taxonomy = Taxonomy::instance();
    for (const char *code :
         {"Trg_FEA_fpu", "Ctx_PRV_rea", "Eff_HNG_unp",
          "Trg_POW_pwc", "Trg_POW_tht", "Trg_FEA_dbg",
          "Trg_PRV_vmt", "Trg_EXT_pci", "Trg_EXT_ram",
          "Eff_CRP_prf", "Eff_FLT_fsp", "Eff_CRP_reg"}) {
        EXPECT_TRUE(taxonomy.parseCategory(code)) << code;
    }
}

// ---- CategorySet ----------------------------------------------------

TEST(CategorySet, InsertEraseContains)
{
    CategorySet set;
    EXPECT_TRUE(set.empty());
    set.insert(3);
    set.insert(59);
    EXPECT_TRUE(set.contains(3));
    EXPECT_TRUE(set.contains(59));
    EXPECT_FALSE(set.contains(4));
    EXPECT_EQ(set.size(), 2u);
    set.erase(3);
    EXPECT_FALSE(set.contains(3));
    EXPECT_EQ(set.size(), 1u);
}

TEST(CategorySet, SetOperations)
{
    CategorySet a, b;
    a.insert(1);
    a.insert(2);
    b.insert(2);
    b.insert(3);
    CategorySet u = a | b;
    CategorySet i = a & b;
    EXPECT_EQ(u.size(), 3u);
    EXPECT_EQ(i.size(), 1u);
    EXPECT_TRUE(i.contains(2));
}

TEST(CategorySet, ToVectorSorted)
{
    CategorySet set;
    set.insert(40);
    set.insert(2);
    set.insert(17);
    EXPECT_EQ(set.toVector(),
              (std::vector<CategoryId>{2, 17, 40}));
}

TEST(CategorySet, FilterAxis)
{
    const Taxonomy &taxonomy = Taxonomy::instance();
    CategorySet set;
    set.insert(*taxonomy.parseCategory("Trg_EXT_rst"));
    set.insert(*taxonomy.parseCategory("Ctx_PRV_vmg"));
    set.insert(*taxonomy.parseCategory("Eff_HNG_hng"));

    EXPECT_EQ(set.filterAxis(Axis::Trigger).size(), 1u);
    EXPECT_EQ(set.filterAxis(Axis::Context).size(), 1u);
    EXPECT_EQ(set.filterAxis(Axis::Effect).size(), 1u);
    EXPECT_TRUE(set.filterAxis(Axis::Trigger)
                    .contains(*taxonomy.parseCategory(
                        "Trg_EXT_rst")));
}

TEST(CategorySet, CoveredClasses)
{
    const Taxonomy &taxonomy = Taxonomy::instance();
    CategorySet set;
    set.insert(*taxonomy.parseCategory("Trg_EXT_rst"));
    set.insert(*taxonomy.parseCategory("Trg_EXT_pci"));
    set.insert(*taxonomy.parseCategory("Trg_POW_tht"));
    auto classes = set.coveredClasses();
    EXPECT_EQ(classes.size(), 2u);
}

TEST(CategorySet, Equality)
{
    CategorySet a, b;
    a.insert(5);
    b.insert(5);
    EXPECT_EQ(a, b);
    b.insert(6);
    EXPECT_NE(a, b);
}

/** Sweep: every abstract category round-trips through its code. */
class CategoryRoundTrip
    : public ::testing::TestWithParam<int>
{
};

TEST_P(CategoryRoundTrip, CodeParsesToSameId)
{
    const Taxonomy &taxonomy = Taxonomy::instance();
    CategoryId id = static_cast<CategoryId>(GetParam());
    const AbstractCategory &cat = taxonomy.categoryById(id);
    auto parsed = taxonomy.parseCategory(cat.code);
    ASSERT_TRUE(parsed);
    EXPECT_EQ(*parsed, id);
    // The class prefix is consistent.
    const CategoryClass &cls = taxonomy.classById(cat.classId);
    EXPECT_EQ(cat.code.substr(0, cls.code.size()), cls.code);
    EXPECT_EQ(cls.axis, cat.axis);
}

INSTANTIATE_TEST_SUITE_P(AllCategories, CategoryRoundTrip,
                         ::testing::Range(0, 60));

} // namespace
} // namespace rememberr
