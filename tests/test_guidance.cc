/**
 * @file
 * Unit tests for the Section VI guidance module.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/pipeline.hh"
#include "guidance/guidance.hh"
#include "util/logging.hh"

namespace rememberr {
namespace {

class GuidanceTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        setLogQuiet(true);
        PipelineOptions options;
        options.roundTripDocuments = false;
        options.lint = false;
        result_ = new PipelineResult(runPipeline(options));
    }

    static void
    TearDownTestSuite()
    {
        delete result_;
        result_ = nullptr;
    }

    static const Database &db() { return result_->groundTruth; }

    static PipelineResult *result_;
};

PipelineResult *GuidanceTest::result_ = nullptr;

// ---- Campaign derivation ------------------------------------------------

TEST_F(GuidanceTest, CampaignHasRequestedShape)
{
    CampaignOptions options;
    options.stimulusPairs = 6;
    options.contexts = 3;
    options.observationPoints = 4;
    TestCampaign campaign = deriveCampaign(db(), options);
    EXPECT_EQ(campaign.stimuli.size(), 6u);
    EXPECT_EQ(campaign.contexts.size(), 3u);
    EXPECT_EQ(campaign.observations.size(), 4u);
}

TEST_F(GuidanceTest, StimuliRankedByEvidence)
{
    TestCampaign campaign = deriveCampaign(db());
    for (std::size_t i = 1; i < campaign.stimuli.size(); ++i) {
        EXPECT_GE(campaign.stimuli[i - 1].evidence,
                  campaign.stimuli[i].evidence);
    }
    // Every stimulus pair carries historical examples.
    for (const StimulusStep &step : campaign.stimuli) {
        EXPECT_GT(step.evidence, 0u);
        EXPECT_FALSE(step.concreteActions.empty());
        EXPECT_NE(step.first, step.second);
    }
}

TEST_F(GuidanceTest, TopContextIsVmGuest)
{
    TestCampaign campaign = deriveCampaign(db());
    ASSERT_FALSE(campaign.contexts.empty());
    EXPECT_EQ(Taxonomy::instance()
                  .categoryById(campaign.contexts[0])
                  .code,
              "Ctx_PRV_vmg");
}

TEST_F(GuidanceTest, ObservationPointsCarryMsrs)
{
    TestCampaign campaign = deriveCampaign(db());
    // At least one observation point names registers to poll.
    bool anyMsrs = false;
    for (const ObservationPoint &point : campaign.observations)
        anyMsrs |= !point.msrFamilies.empty();
    EXPECT_TRUE(anyMsrs);
}

TEST_F(GuidanceTest, CampaignRendersAndSerializes)
{
    TestCampaign campaign = deriveCampaign(db());
    std::string text = campaign.renderText();
    EXPECT_NE(text.find("Combined stimuli"), std::string::npos);
    EXPECT_NE(text.find("Observation points"), std::string::npos);

    JsonValue json = campaign.toJson();
    EXPECT_TRUE(json.contains("stimuli"));
    EXPECT_TRUE(json.contains("contexts"));
    EXPECT_TRUE(json.contains("observations"));
    EXPECT_EQ(json.at("stimuli").size(),
              campaign.stimuli.size());
    // Round-trips through the JSON text form.
    auto reparsed = parseJson(json.dump());
    ASSERT_TRUE(reparsed);
    EXPECT_EQ(reparsed.value(), json);
}

TEST_F(GuidanceTest, VendorScopedCampaignUsesVendorExamples)
{
    CampaignOptions options;
    options.vendor = Vendor::Amd;
    TestCampaign campaign = deriveCampaign(db(), options);
    // All quoted examples exist among AMD entries.
    std::set<std::string> amdTitles;
    for (const DbEntry &entry : db().entries()) {
        if (entry.vendor == Vendor::Amd)
            amdTitles.insert(entry.title);
    }
    for (const StimulusStep &step : campaign.stimuli) {
        for (const std::string &example : step.concreteActions)
            EXPECT_TRUE(amdTitles.count(example)) << example;
    }
}

// ---- Seed corpus ----------------------------------------------------------

TEST_F(GuidanceTest, SeedCorpusHasRequestedCount)
{
    SeedCorpusOptions options;
    options.sequenceCount = 32;
    SeedCorpus corpus = generateSeedCorpus(db(), options);
    EXPECT_EQ(corpus.sequences.size(), 32u);
}

TEST_F(GuidanceTest, SeedSequencesAreValidAndDistinct)
{
    SeedCorpus corpus = generateSeedCorpus(db());
    const Taxonomy &taxonomy = Taxonomy::instance();
    std::set<std::vector<CategoryId>> seen;
    for (const StimulusSequence &sequence : corpus.sequences) {
        ASSERT_FALSE(sequence.triggers.empty());
        ASSERT_LE(sequence.triggers.size(), 4u);
        EXPECT_TRUE(seen.insert(sequence.triggers).second);
        std::set<CategoryId> unique(sequence.triggers.begin(),
                                    sequence.triggers.end());
        EXPECT_EQ(unique.size(), sequence.triggers.size());
        for (CategoryId id : sequence.triggers)
            EXPECT_EQ(taxonomy.categoryById(id).axis,
                      Axis::Trigger);
        if (sequence.context) {
            EXPECT_EQ(taxonomy.categoryById(*sequence.context)
                          .axis,
                      Axis::Context);
        }
        EXPECT_GT(sequence.weight, 0.0);
    }
}

TEST_F(GuidanceTest, SeedCorpusCoversTopPairs)
{
    SeedCorpusOptions options;
    options.sequenceCount = 96;
    SeedCorpus corpus = generateSeedCorpus(db(), options);
    // The corpus must exercise most of the strongest historical
    // trigger pairs — that is its whole purpose.
    EXPECT_GT(corpus.pairCoverage(db(), 10), 0.7);
}

TEST_F(GuidanceTest, SeedCorpusDeterministic)
{
    SeedCorpus a = generateSeedCorpus(db());
    SeedCorpus b = generateSeedCorpus(db());
    ASSERT_EQ(a.sequences.size(), b.sequences.size());
    for (std::size_t i = 0; i < a.sequences.size(); ++i)
        EXPECT_EQ(a.sequences[i].triggers,
                  b.sequences[i].triggers);
}

TEST_F(GuidanceTest, SeedCorpusJsonShape)
{
    SeedCorpusOptions options;
    options.sequenceCount = 8;
    SeedCorpus corpus = generateSeedCorpus(db(), options);
    JsonValue json = corpus.toJson();
    ASSERT_EQ(json.size(), 8u);
    for (const JsonValue &item : json.asArray()) {
        EXPECT_TRUE(item.contains("triggers"));
        EXPECT_TRUE(item.contains("weight"));
    }
}

// ---- Monitor rules ----------------------------------------------------------

TEST_F(GuidanceTest, MonitorRulesRankedAndBounded)
{
    auto rules = deriveMonitorRules(db(), 5);
    ASSERT_EQ(rules.size(), 5u);
    for (std::size_t i = 1; i < rules.size(); ++i)
        EXPECT_GE(rules[i - 1].evidence, rules[i].evidence);
    for (const MonitorRule &rule : rules) {
        EXPECT_FALSE(rule.name.empty());
        EXPECT_LE(rule.armedBy.size(), 3u);
        EXPECT_FALSE(rule.renderText().empty());
    }
}

TEST_F(GuidanceTest, RegisterCorruptionRuleNamesMsrs)
{
    auto rules = deriveMonitorRules(db(), 5);
    const Taxonomy &taxonomy = Taxonomy::instance();
    bool found = false;
    for (const MonitorRule &rule : rules) {
        if (taxonomy.categoryById(rule.effect).code ==
            "Eff_CRP_reg") {
            found = true;
            EXPECT_FALSE(rule.msrs.empty());
        }
    }
    EXPECT_TRUE(found);
}

} // namespace
} // namespace rememberr
